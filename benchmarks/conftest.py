"""Shared helpers for the per-figure benchmark targets.

Run with ``pytest benchmarks/ --benchmark-only`` (add ``-s`` to stream the
result tables; they are always written to ``benchmarks/results/`` too).
Each target regenerates one table or figure of the paper and reports the
measured rows next to the paper's values; simulations are memoised across
targets within the session.
"""

from __future__ import annotations

import pathlib
import sys

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print a result block and persist it under benchmarks/results/."""
    sys.stdout.write("\n" + text + "\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


@pytest.fixture
def once(benchmark):
    """Benchmark a driver exactly once (simulations dominate; no warmup)."""

    def run(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return run
