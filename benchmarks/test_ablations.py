"""Ablation studies for design choices the paper makes but does not sweep.

Four ablations on a representative benchmark subset:

* **Buffer associativity** — the paper chose direct-indexed VSB/RB after
  observing that associative search "was marginal" (Sections V-A, V-C).
* **Hash width** — the 32-bit H3 signature makes false positives "very
  rare" (Section V-A); narrower hashes trade signature storage for
  verify-read mismatches.
* **Pending-retry queue depth** — the paper picked 16 entries after seeing
  15.1% additional hits (Section VI-B).
* **Warp scheduler** — GTO (the paper's Table II policy) vs LRR: scheduling
  shapes how closely warps cluster and therefore how often pending-retry
  is needed versus plain reuse hits.
"""

from benchmarks.conftest import emit
from repro.harness.reporting import format_table
from repro.harness.runner import run_benchmark
from repro.workloads import all_abbrs

SUBSET = ["SF", "BT", "GA", "BO", "KM", "SN", "MQ", "BF", "LK", "HW"]


def _suite_reuse(model="RLPV", **overrides):
    fractions = []
    for abbr in SUBSET:
        run = run_benchmark(abbr, model, **overrides)
        fractions.append(run.reuse_fraction)
    return sum(fractions) / len(fractions)


def test_ablation_buffer_associativity(once):
    def sweep():
        out = {}
        for assoc in (1, 2, 4, 8):
            out[assoc] = _suite_reuse(reuse_buffer_associativity=assoc,
                                      vsb_associativity=assoc)
        return out

    data = once(sweep)
    table = format_table(
        ["associativity", "reused fraction"],
        [[assoc, f"{frac * 100:.2f}%"] for assoc, frac in data.items()],
        title="Ablation — VSB/RB associativity (paper: direct-indexed, "
              "associative 'marginal')")
    gain = data[8] - data[1]
    table += f"\n\n8-way gain over direct-indexed: {gain * 100:+.2f}pp"
    emit("ablation_associativity", table)
    # The paper's conclusion: associativity buys little.
    assert abs(gain) < 0.05
    assert data[4] >= data[1] - 0.02


def test_ablation_hash_width(once):
    def sweep():
        out = {}
        for bits in (8, 12, 16, 24, 32):
            false_pos = lookups = reused = issued = 0
            for abbr in SUBSET:
                run = run_benchmark(abbr, "RLPV", hash_bits=bits)
                stats = run.result.wir_stats
                false_pos += stats["vsb_false_positives"]
                lookups += stats["vsb_lookups"]
                reused += run.result.reused_instructions
                issued += run.result.issued_instructions
            out[bits] = {
                "false_positive_rate": false_pos / max(1, lookups),
                "reuse_fraction": reused / max(1, issued),
            }
        return out

    data = once(sweep)
    table = format_table(
        ["hash bits", "VSB false positives / lookup", "reused"],
        [[bits, f"{row['false_positive_rate'] * 100:.3f}%",
          f"{row['reuse_fraction'] * 100:.1f}%"] for bits, row in data.items()],
        title="Ablation — H3 signature width (paper: 32 bits, collisions "
              "'very rare')")
    emit("ablation_hash_width", table)
    # Verify-reads make narrow hashes safe (correctness never depends on
    # the width), but false positives must rise as the hash narrows...
    assert data[8]["false_positive_rate"] >= data[32]["false_positive_rate"]
    # ...and at 32 bits they are vanishingly rare, as the paper claims.
    assert data[32]["false_positive_rate"] < 1e-3
    # Reuse itself is width-insensitive (the VSB verifies every candidate).
    assert abs(data[8]["reuse_fraction"] - data[32]["reuse_fraction"]) < 0.05


def test_ablation_retry_queue_depth(once):
    def sweep():
        out = {}
        for depth in (0, 4, 8, 16, 32):
            pending = issued = 0
            for abbr in SUBSET:
                run = run_benchmark(abbr, "RLPV", retry_queue_entries=depth)
                pending += run.result.wir_stats["rb_pending_releases"]
                issued += run.result.issued_instructions
            out[depth] = pending / max(1, issued)
        return out

    data = once(sweep)
    table = format_table(
        ["queue entries", "pending-retry hits / issued"],
        [[depth, f"{frac * 100:.2f}%"] for depth, frac in data.items()],
        title="Ablation — pending-retry queue depth (paper: 16 entries, "
              "+15.1% hits)")
    emit("ablation_retry_queue", table)
    assert data[0] == 0.0
    assert data[16] > data[4] - 0.01
    # 16 entries capture nearly all of the benefit (the paper's choice).
    assert data[32] - data[16] < 0.02


def test_ablation_scheduler_policy(once):
    from repro.sim.config import SchedulerPolicy
    from repro import GPU, KernelLaunch, model_config
    from repro.workloads import build_workload

    def sweep():
        out = {}
        for policy in (SchedulerPolicy.GTO, SchedulerPolicy.LRR):
            reused = pending = issued = 0
            for abbr in SUBSET:
                config = model_config("RLPV")
                config.num_sms = 2
                config.scheduler_policy = policy
                wl = build_workload(abbr)
                result = GPU(config).run(
                    KernelLaunch(wl.program, wl.grid, wl.block, wl.image))
                reused += result.reused_instructions
                pending += result.wir_stats["rb_pending_releases"]
                issued += result.issued_instructions
            out[policy.value] = {
                "reuse_fraction": reused / issued,
                "pending_fraction": pending / issued,
            }
        return out

    data = once(sweep)
    table = format_table(
        ["scheduler", "reused", "via pending-retry"],
        [[name, f"{row['reuse_fraction'] * 100:.1f}%",
          f"{row['pending_fraction'] * 100:.1f}%"]
         for name, row in data.items()],
        title="Ablation — warp scheduler vs reuse (paper runs GTO)")
    table += ("\n\nLRR keeps warps in lockstep, so identical instructions "
              "arrive back-to-back\nand lean harder on pending-retry; GTO "
              "spreads warps out in time.")
    emit("ablation_scheduler", table)
    for row in data.values():
        assert 0.05 < row["reuse_fraction"] < 0.8
    # Lockstep scheduling leans on the pending-retry queue at least as much.
    assert (data["lrr"]["pending_fraction"]
            >= data["gto"]["pending_fraction"] - 0.03)
