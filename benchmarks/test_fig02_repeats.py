"""Figure 2: percentage of repeated computations per 1K-instruction window.

Paper: 31.4% of dynamic warp instructions repeat a recent computation
(average over 34 benchmarks); 16.0% of computations appear more than 10
times.  Benchmarks are listed in the paper's descending-reuse order.
"""

from benchmarks.conftest import emit
from repro.harness import experiments, reporting


def test_fig02_repeated_computations(once):
    data = once(experiments.fig2_repeated_computations)
    table = reporting.render_per_benchmark(
        data, title="Figure 2 — repeated warp computations (1K windows)",
        percent=True)
    avg = data["AVG"]
    table += (
        f"\n\nmeasured AVG repeated: {avg['repeated'] * 100:.1f}%"
        f"   (paper: 31.4%)"
        f"\nmeasured AVG repeated >10x: {avg['repeated_gt10'] * 100:.1f}%"
        f"   (paper: 16.0%)"
    )
    emit("fig02_repeats", table)
    assert 0.15 < avg["repeated"] < 0.55
    assert 0.03 < avg["repeated_gt10"] < 0.30
