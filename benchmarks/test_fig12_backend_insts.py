"""Figure 12: instructions processed in the backend, RLPV relative to Base.

Paper: 18.7% of warp instructions bypass backend execution via reuse;
dummy MOVs for divergence add 1.6% instructions on average.
"""

from benchmarks.conftest import emit
from repro.harness import experiments, reporting


def test_fig12_backend_instructions(once):
    data = once(experiments.fig12_backend_instructions)
    table = reporting.render_per_benchmark(
        data, title="Figure 12 — backend-processed instructions (RLPV / Base)")
    avg = data["AVG"]
    table += (
        f"\n\nmeasured AVG relative backend: {avg['relative_backend']:.3f}"
        f"   (paper: ~0.83 incl. dummy MOVs)"
        f"\nmeasured AVG reused fraction: {avg['reuse_fraction'] * 100:.1f}%"
        f"   (paper: 18.7%)"
        f"\nmeasured AVG dummy-MOV fraction: "
        f"{avg['dummy_mov_fraction'] * 100:.1f}%   (paper: 1.6%)"
    )
    emit("fig12_backend_insts", table)
    assert 0.60 < avg["relative_backend"] < 1.0
    assert 0.08 < avg["reuse_fraction"] < 0.35
    assert avg["dummy_mov_fraction"] < 0.05
