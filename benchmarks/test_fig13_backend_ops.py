"""Figure 13: relative backend operation counts per design point.

Paper: NoVSB bypasses <2% (register IDs cannot proxy values without the
VSB); Affine executes the same operation COUNT as Base (it saves energy per
operation, not operations); RLPV cuts memory-pipeline activations by up to
32.4% over RPV; RLPVc tracks RLPV closely.
"""

from benchmarks.conftest import emit
from repro.harness import experiments, reporting


def test_fig13_backend_operations(once):
    data = once(experiments.fig13_backend_operations)
    table = reporting.render_per_benchmark(
        data, title="Figure 13 — backend operations relative to Base (suite avg)")
    mem_cut = 1 - data["RLPV"]["memory ops"] / data["RPV"]["memory ops"]
    table += (
        f"\n\nmemory-pipeline reduction RLPV vs RPV: {mem_cut * 100:.1f}%"
        f"   (paper: up to 32.4%)"
        f"\nNoVSB SP/SFU ops: {data['NoVSB']['SP/SFU ops']:.3f}"
        f"   (paper: > 0.98 — almost no bypass without the VSB)"
    )
    emit("fig13_backend_ops", table)
    # Affine does not change operation counts.
    assert all(abs(v - 1.0) < 1e-9 for v in data["Affine"].values())
    # The VSB is what makes reuse work.
    assert data["NoVSB"]["SP/SFU ops"] > data["RLPV"]["SP/SFU ops"]
    # Load reuse cuts memory work; RPV (no load reuse) does not.
    assert data["RPV"]["memory ops"] == 1.0
    assert data["RLPV"]["memory ops"] < 0.9
    # Capped-register policy costs only slightly.
    assert data["RLPVc"]["SP/SFU ops"] <= data["RLPV"]["SP/SFU ops"] + 0.06
