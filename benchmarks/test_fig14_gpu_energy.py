"""Figure 14: GPU-wide energy relative to Base.

Paper: RLPV saves 10.7% GPU energy on average (RPV alone 7.6%; load reuse
adds 3.1%); the more-reusable top half of the suite saves far more than the
bottom half (18.3% vs 4.3% in the paper's split).
"""

from benchmarks.conftest import emit
from repro.harness import experiments, reporting


def test_fig14_gpu_energy(once):
    data = once(experiments.fig14_gpu_energy)
    table = reporting.render_per_benchmark(
        data, title="Figure 14 — GPU energy relative to Base")
    avg = data["AVG"]
    table += (
        f"\n\nmeasured RLPV GPU energy: {avg['RLPV']:.3f}   (paper: 0.893)"
        f"\nmeasured RPV GPU energy: {avg['RPV']:.3f}   (paper: 0.924)"
        f"\nload-reuse contribution: {(avg['RPV'] - avg['RLPV']) * 100:.1f}%"
        f"   (paper: 3.1%)"
        f"\ntop-half / bottom-half RLPV: {data['TOP-HALF']['RLPV']:.3f} / "
        f"{data['BOTTOM-HALF']['RLPV']:.3f}   (paper: more savings in the "
        f"reuse-friendly half)"
    )
    emit("fig14_gpu_energy", table)
    assert avg["RLPV"] < 1.0
    assert avg["RLPV"] <= avg["RPV"]  # load reuse only helps
    assert data["TOP-HALF"]["RLPV"] < data["BOTTOM-HALF"]["RLPV"]


def test_fig14_breakdown_for_a_reuse_friendly_benchmark(once):
    data = once(experiments.fig14_breakdown, "SF")
    table = reporting.render_per_benchmark(
        data, title="Figure 14 (inset) — SF energy breakdown / Base total")
    emit("fig14_breakdown_sf", table)
    assert abs(sum(data["Base"].values()) - 1.0) < 1e-9
    assert sum(data["RLPV"].values()) < 1.0
