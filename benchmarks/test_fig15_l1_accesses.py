"""Figure 15: L1 data-cache accesses and misses, Base vs RLPV.

Paper: load reuse cuts both accesses and misses substantially in SF, BT,
HS, S2, and LK (LK misses -61.5%); KM can regress (cache contention under
reordered execution); the suite-wide averages improve.
"""

from benchmarks.conftest import emit
from repro.harness import experiments, reporting


def test_fig15_l1_access_breakdown(once):
    data = once(experiments.fig15_l1_accesses)
    table = reporting.render_per_benchmark(
        data, title="Figure 15 — L1D traffic, RLPV relative to Base")
    lk = data["LK"]
    table += (
        f"\n\nLK miss reduction: {(1 - lk['relative_misses']) * 100:.1f}%"
        f"   (paper: 61.5%)"
        f"\nsuite-average access ratio: {data['AVG']['relative_accesses']:.3f}"
    )
    emit("fig15_l1_accesses", table)
    # The load-reuse showcase benchmarks shed L1 traffic.
    for abbr in ("SF", "BT", "HS", "S2", "LK"):
        assert data[abbr]["relative_accesses"] < 1.0, abbr
    assert lk["relative_misses"] < 0.7
    assert data["AVG"]["relative_accesses"] < 1.0
