"""Figure 16: SM energy relative to Base for every design point.

Paper: RLPV -20.5%, Affine -13.6%, Affine+RLPV -27.9% (the synergy case),
NoVSB ~no savings, RLPVc only slightly behind RLPV.

Known deviation (see EXPERIMENTS.md): our synthetic kernels are more
address-arithmetic-heavy than the paper's full applications, so the Affine
baseline saves somewhat more here than in the paper, landing close to (and
sometimes below) RLPV; the Affine+RLPV synergy matches the paper closely.
"""

from benchmarks.conftest import emit
from repro.harness import experiments, reporting


def test_fig16_sm_energy(once):
    data = once(experiments.fig16_sm_energy)
    rows = [[model, ratio, f"{(1 - ratio) * 100:.1f}%"]
            for model, ratio in data.items()]
    table = reporting.format_table(
        ["model", "relative SM energy", "saving"], rows,
        title="Figure 16 — SM energy relative to Base (suite average)")
    table += (
        f"\n\nmeasured RLPV saving: {(1 - data['RLPV']) * 100:.1f}%"
        f"   (paper: 20.5%)"
        f"\nmeasured Affine+RLPV saving: {(1 - data['Affine+RLPV']) * 100:.1f}%"
        f"   (paper: 27.9%)"
    )
    emit("fig16_sm_energy", table)
    assert data["RLPV"] < 0.95
    assert data["RLPVc"] <= data["RLPV"] + 0.05       # capped policy ~ RLPV
    assert 0.9 < data["NoVSB"] < 1.1                  # no VSB, no savings
    assert data["Affine+RLPV"] < data["RLPV"]         # synergy
    assert data["Affine+RLPV"] < data["Affine"]
