"""Figure 17: speedup of the incremental reuse designs over Base.

Paper: most applications stay within +-10%; leukocyte exceeds 2x once load
reuse is enabled; GA/BO/BF suffer under RLP's verify-read bank pressure and
recover with the verify cache (RLPV).
"""

from benchmarks.conftest import emit
from repro.harness import experiments, reporting


def test_fig17_speedup(once):
    data = once(experiments.fig17_speedup)
    table = reporting.render_per_benchmark(
        data, title="Figure 17 — speedup relative to Base")
    gmean = data["GMEAN"]
    table += (
        f"\n\nGMEAN RLPV speedup: {gmean['RLPV']:.3f}   (paper: ~1.0)"
        f"\nLK RLPV speedup: {data['LK']['RLPV']:.2f}   (paper: 2.03)"
    )
    emit("fig17_speedup", table)
    # Shape: geometric mean close to 1, LK the load-reuse outlier.
    assert 0.9 < gmean["RLPV"] < 1.2
    assert data["LK"]["RL"] > data["LK"]["R"]      # load reuse is LK's win
    assert data["LK"]["RLPV"] > 1.2
    # Verify cache mitigates (never hurts) the verify-read pressure cases.
    for abbr in ("GA", "BO", "BF"):
        assert data[abbr]["RLPV"] >= data[abbr]["RLP"] - 0.02, abbr
