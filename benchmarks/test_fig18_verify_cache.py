"""Figure 18: verify-cache effect on register-file traffic.

Paper: in RLP roughly half of the register writes are replaced by
verify-reads, which raises bank conflicts; a small 8-entry verify cache
removes about half of the added conflicts and doubling it adds little.
"""

from benchmarks.conftest import emit
from repro.harness import experiments, reporting


def test_fig18_verify_cache(once):
    data = once(experiments.fig18_verify_cache)
    table = reporting.render_per_benchmark(
        data, title="Figure 18 — RF access mix and bank retries (GA/BO/BF)")
    base_r = data["Base"]["retries_per_request"]
    rlp_r = data["RLP"]["retries_per_request"]
    v8_r = data["RLPV8"]["retries_per_request"]
    table += (
        f"\n\nbank retries/request: Base {base_r:.4f}, RLP {rlp_r:.4f}, "
        f"RLPV8 {v8_r:.4f}"
        f"\n(the verify cache relieves the verify-read bank pressure;"
        f" paper: 8 entries remove ~half the RLP-added conflicts."
        f" Deviation: at our reuse rates the RLP total can already sit"
        f" below Base because reuse removes so many true reads —"
        f" see EXPERIMENTS.md.)"
    )
    emit("fig18_verify_cache", table)
    # Verify-reads appear only in the reuse designs.
    assert data["Base"]["verify_reads"] == 0
    assert data["RLP"]["verify_reads"] > 0
    # The verify cache absorbs bank verify-reads monotonically with size.
    assert data["RLPV16"]["verify_reads"] <= data["RLPV8"]["verify_reads"]
    assert data["RLPV8"]["verify_reads"] <= data["RLPV4"]["verify_reads"]
    assert data["RLPV8"]["verify_reads"] < data["RLP"]["verify_reads"]
    # The verify cache relieves bank pressure relative to unfiltered RLP,
    # with diminishing returns beyond 8 entries (the paper's conclusion).
    assert v8_r <= rlp_r
    assert (data["RLPV8"]["retries_per_request"]
            - data["RLPV16"]["retries_per_request"]) < (rlp_r - v8_r) + 0.01
