"""Figure 19: physical warp register utilisation (of 1,024 per SM).

Paper: even Base leaves the file underused (occupancy limits elsewhere);
RLPV's average sits BELOW Base because register reuse lets many logical
registers share one physical register; RLPVc caps the total.
"""

from benchmarks.conftest import emit
from repro.harness import experiments, reporting


def test_fig19_register_utilization(once):
    data = once(experiments.fig19_register_utilization)
    table = reporting.render_per_benchmark(
        data, title="Figure 19 — physical registers in use (avg / peak of 1024)")
    table += (
        f"\n\nRLPV average {data['RLPV']['average']:.0f} vs Base estimate "
        f"{data['Base']['average']:.0f} — sharing reduces live registers"
    )
    emit("fig19_reg_util", table)
    for model in ("Base", "RLPV", "RLPVc"):
        assert data[model]["peak"] <= 1024
        assert data[model]["average"] <= data[model]["peak"]
    # Register sharing keeps the average below the one-to-one mapping.
    assert data["RLPV"]["average"] < data["Base"]["average"]
    assert data["RLPVc"]["peak"] <= data["RLPV"]["peak"] + 32
