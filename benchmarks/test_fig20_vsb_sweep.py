"""Figure 20: value-signature-buffer entries vs hit rate.

Paper: already >50% hits at 128 entries; saturating beyond 256 (the chosen
default).
"""

from benchmarks.conftest import emit
from repro.harness import experiments, reporting


def test_fig20_vsb_sweep(once):
    data = once(experiments.fig20_vsb_sweep)
    table = reporting.render_series(
        data, "entries", "hit rate",
        title="Figure 20 — VSB size vs hit rate (suite average)")
    table += (
        f"\n\nhit rate at 128 entries: {data[128] * 100:.1f}%"
        f"   (paper: >50%; our synthetic kernels carry more unique"
        f" accumulator values per reused load/op — see EXPERIMENTS.md)"
        f"\nsaturation 256 -> 512: +{(data[512] - data[256]) * 100:.1f}pp"
    )
    emit("fig20_vsb_sweep", table)
    sizes = sorted(data)
    # Monotone (within noise) improvement with capacity.
    for small, big in zip(sizes, sizes[1:]):
        assert data[big] >= data[small] - 0.03
    assert data[128] > 0.15
    # Diminishing returns: the last doubling buys less than the first two.
    assert data[512] - data[256] < data[128] - data[16] + 0.05
