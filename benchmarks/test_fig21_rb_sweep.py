"""Figure 21: reuse-buffer entries vs reused-instruction fraction.

Paper: 18.7% of instructions reuse at the 256-entry default, >20% at 512;
pending-retry hits are worth roughly a doubling of the buffer.
"""

from benchmarks.conftest import emit
from repro.harness import experiments, reporting


def test_fig21_reuse_buffer_sweep(once):
    data = once(experiments.fig21_reuse_buffer_sweep)
    table = reporting.render_series(
        data, "entries", "reuse",
        title="Figure 21 — reuse buffer size vs reused instructions")
    at_256 = data[256]
    table += (
        f"\n\nreuse at 256 entries: {at_256['reuse_fraction'] * 100:.1f}%"
        f"   (paper: 18.7%)"
        f"\npending-retry contribution: "
        f"{at_256['pending_retry_fraction'] * 100:.1f}% of instructions"
    )
    emit("fig21_rb_sweep", table)
    sizes = sorted(data)
    for small, big in zip(sizes, sizes[1:]):
        assert (data[big]["reuse_fraction"]
                >= data[small]["reuse_fraction"] - 0.02)
    assert 0.10 < at_256["reuse_fraction"] < 0.35
    assert at_256["pending_retry_fraction"] > 0.01
    # Pending-retry at 128 entries performs at least like a plain 256-entry
    # buffer would ("doubling" effect): compare against the no-retry run.
    from repro.harness.runner import run_benchmark
    from repro.workloads import all_abbrs
    fractions = []
    for abbr in all_abbrs():
        run = run_benchmark(abbr, "RL", reuse_buffer_entries=256)
        fractions.append(run.result.reused_instructions
                         / max(1, run.result.issued_instructions))
    no_retry_256 = sum(fractions) / len(fractions)
    with_retry_128 = data[128]["reuse_fraction"]
    assert with_retry_128 > no_retry_256 - 0.02
