"""Figure 22: backend pipeline delay (D3..D7) vs speedup.

Paper: performance degrades gently as the added reuse-stage latency grows
from 3 to 7 cycles, crossing below Base near the high end; even the worst
case is not a severe degradation.
"""

from benchmarks.conftest import emit
from repro.harness import experiments, reporting


def test_fig22_delay_sweep(once):
    data = once(experiments.fig22_delay_sweep)
    table = reporting.render_series(
        data, "delay", "gmean speedup",
        title="Figure 22 — backend delay vs speedup (suite gmean)")
    table += (
        f"\n\nD4 (default): {data['D4']:.3f};  D7 (worst): {data['D7']:.3f}"
        f"   (paper: gentle degradation, D7 slightly below 1.0; our grids"
        f" resident far fewer warps per SM than the paper's full inputs, so"
        f" added latency is hidden less well — see EXPERIMENTS.md)"
    )
    emit("fig22_delay_sweep", table)
    # Less pipeline latency never hurts (within noise).
    delays = ["D3", "D4", "D5", "D6", "D7"]
    for shorter, longer in zip(delays, delays[1:]):
        assert data[shorter] >= data[longer] - 0.02
    # Even the deepest pipeline is not catastrophic, and the crossover
    # below 1.0 falls between D3 and D7 as in the paper.
    assert data["D7"] > 0.7
    assert data["D3"] > data["D7"]
    assert data["D3"] > 0.95
