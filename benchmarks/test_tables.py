"""Tables I, II, and III of the paper."""

from benchmarks.conftest import emit
from repro.harness import experiments, reporting


def test_table1_benchmarks(once):
    rows = once(experiments.table1_benchmarks)
    table = reporting.format_table(
        ["abbr", "name", "suite", "%FP"],
        [[r["abbr"], r["name"], r["suite"],
          "-" if r["fp_fraction"] is None else f"{r['fp_fraction'] * 100:.1f}%"]
         for r in rows],
        title="Table I — benchmark applications (Figure 2 order)")
    emit("table1_benchmarks", table)
    assert len(rows) == 34
    suites = {r["suite"] for r in rows}
    assert suites == {"Parboil", "Rodinia", "CUDA SDK"}


def test_table2_parameters(once):
    params = once(experiments.table2_parameters)
    table = reporting.format_table(
        ["parameter", "value"], list(params.items()),
        title="Table II — simulation parameters")
    emit("table2_parameters", table)
    assert "700 MHz, 15 SMs" in params["SM parameters"]
    assert "1024 warp registers" in params["Resource limits/SM"]
    assert "128 KB" in params["Register file"]
    assert "48 KB" in params["Scratchpad memory"]
    assert "256 entries" in params["Reuse buffer"]


def test_table3_hardware_costs(once):
    data = once(experiments.table3_hardware_costs)
    rows = []
    for name, row in data.items():
        if name == "storage_budget":
            continue
        rows.append([
            name, row["model_energy_pj"], row["paper_energy_pj"],
            row["model_latency_ns"], row["paper_latency_ns"],
        ])
    table = reporting.format_table(
        ["component", "model pJ/op", "paper pJ/op", "model ns", "paper ns"],
        rows, title="Table III — added component costs (model vs paper)")
    budget = data["storage_budget"]
    table += "\n\nper-SM storage budget (Section VII-E):\n"
    table += reporting.format_table(
        ["structure", "bytes", "KB"],
        [[k, v, f"{v / 1024:.2f}"] for k, v in budget.items()])
    table += "\n(paper total: ~9.9 KB per SM)"
    emit("table3_hw_costs", table)
    assert 9.0 * 1024 < budget["total"] < 10.5 * 1024
    for name, row in data.items():
        if name == "storage_budget" or row["model_energy_pj"] is None:
            continue
        assert row["model_energy_pj"] > 0
