#!/usr/bin/env python
"""Tutorial: write your own kernel and inspect the reuse machinery.

Builds a per-block 8-bin histogram from scratch — global loads staged into
scratchpad behind a barrier, a counting loop whose shared-memory reads are
uniform (prime load-reuse traffic), a predicated (divergent) accumulate,
and a divergent publish — then walks through what each WIR structure did:
rename-table traffic, VSB sharing, reuse-buffer hits, dummy MOVs, and the
hazard rules that keep the scratchpad loads correct.

The ISA has no atomics, so the classic racy shared-memory increment is
restructured as "each of the first 8 threads owns one bin and scans the
staged items" — race-free and still exercising every mechanism.

Run:  python examples/custom_kernel.py
"""

import numpy as np

from repro import Dim3, MemoryImage, assemble, model_config, simulate

OUT = 1 << 20

HISTOGRAM = f"""
    mov   r0, %tid.x
    mov   r1, %ctaid.x
    mov   r2, %ntid.x
    mad   r3, r1, r2, r0            // gtid
    // stage this thread's item into scratchpad
    shl   r4, r0, 2
    shl   r5, r3, 2
    add   r5, r5, 4096
    ld.global r6, [r5]              // item
    st.shared -, [r4], r6
    bar.sync
    // thread t (t < 8) counts the staged items falling into bin t;
    // the setp below is simply false for t >= 8, so the loop is uniform.
    mov   r7, 0                     // count
    mov   r8, 0                     // i
count_loop:
    shl   r9, r8, 2
    ld.shared r10, [r9]             // staged item (uniform address: the
    shr   r11, r10, 13              //  whole block reuses each load)
    setp.eq p0, r11, r0             // my bin?
@p0 add   r7, r7, 1                 // divergent accumulate (pin-bit path)
    add   r8, r8, 1
    setp.lt p1, r8, 64
@p1 bra   count_loop
    // the first 8 threads publish their bins
    setp.lt p2, r0, 8
    shl   r12, r1, 5                // block * 8 bins * 4 bytes
    add   r12, r12, r4
    add   r12, r12, {OUT}
@p2 st.global -, [r12], r7
    exit
"""


def main() -> None:
    rng = np.random.default_rng(11)
    n = 8 * 64
    items = rng.integers(0, 1 << 16, size=n, dtype=np.uint32)
    image = MemoryImage()
    image.global_mem.write_block(4096, items)

    program = assemble(HISTOGRAM, name="histogram")
    config = model_config("RLPV")
    config.num_sms = 2
    result = simulate(program, grid=Dim3(8), block=Dim3(64),
                      config=config, image=image)

    stats = result.wir_stats
    print("What the WIR machinery did on the histogram kernel")
    print("-" * 55)
    print(f"issued warp instructions      {result.issued_instructions}")
    print(f"reused (backend bypassed)     {result.reused_instructions}"
          f"  ({result.reuse_fraction * 100:.1f}%)")
    print(f"  of which loads              {result.total('reused_loads')}")
    print(f"rename table reads/writes     {stats['rename_reads']:.0f} / "
          f"{stats['rename_writes']:.0f}")
    print(f"VSB lookups -> hits           {stats['vsb_lookups']:.0f} -> "
          f"{stats['vsb_hits']:.0f}")
    print(f"register writes avoided       {stats['writes_avoided']:.0f} "
          f"(verified VSB matches)")
    print(f"verify-reads (bank)           {stats['verify_reads']:.0f}, "
          f"filtered by verify cache: {stats['verify_cache_filtered']:.0f}")
    print(f"dummy MOVs (divergent writes) {stats['dummy_movs']:.0f}")
    print(f"reuse-buffer evictions        {stats['rb_evictions']:.0f}")
    print()
    print("Hazard notes: each block's scratchpad loads carry the block's")
    print("TBID in the reuse-buffer tag, so block A never reuses block B's")
    print("staged items; the barrier bumps the barrier count, preventing")
    print("any reuse of pre-barrier scratchpad state (Section VI-A).")

    out = image.global_mem.read_block(OUT, 8 * 8).reshape(8, 8)
    for block in range(8):
        chunk = items[block * 64:(block + 1) * 64]
        expected = np.bincount(chunk >> 13, minlength=8)
        assert (out[block] == expected).all(), (block, out[block], expected)
    print()
    print("histogram verified against numpy for all 8 blocks")


if __name__ == "__main__":
    main()
