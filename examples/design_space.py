#!/usr/bin/env python
"""Design-space exploration on a benchmark subset (paper Section VII-G).

Sweeps the three sizing knobs the paper studies — reuse-buffer entries
(Figure 21), VSB entries (Figure 20), and the added pipeline latency
(Figure 22) — on a fast subset of the suite, and prints the per-SM storage
bill for each configuration so the energy/storage trade-off is visible.

Run:  python examples/design_space.py
"""

from repro.core.models import model_config
from repro.energy import wir_storage_budget
from repro.harness import experiments
from repro.harness.reporting import format_table

SUBSET = ["SF", "BT", "GA", "KM", "SN", "BF", "MQ", "HW"]


def main() -> None:
    print("Benchmark subset:", ", ".join(SUBSET))
    print()

    rb = experiments.fig21_reuse_buffer_sweep(SUBSET,
                                              entry_counts=(32, 64, 128, 256, 512))
    rows = []
    for entries, stats in rb.items():
        budget = wir_storage_budget(model_config("RLPV",
                                                 reuse_buffer_entries=entries))
        rows.append([entries, f"{stats['reuse_fraction'] * 100:.1f}%",
                     f"{stats['pending_retry_fraction'] * 100:.1f}%",
                     f"{budget['reuse buffer'] / 1024:.2f} KB"])
    print(format_table(
        ["RB entries", "reused", "via pending-retry", "RB storage"], rows,
        title="Reuse-buffer sizing (Figure 21)"))
    print()

    vsb = experiments.fig20_vsb_sweep(SUBSET, entry_counts=(32, 64, 128, 256))
    rows = []
    for entries, hit_rate in vsb.items():
        budget = wir_storage_budget(model_config("RLPV", vsb_entries=entries))
        rows.append([entries, f"{hit_rate * 100:.1f}%",
                     f"{budget['value signature buffer'] / 1024:.2f} KB"])
    print(format_table(["VSB entries", "hit rate", "VSB storage"], rows,
                       title="Value-signature-buffer sizing (Figure 20)"))
    print()

    delays = experiments.fig22_delay_sweep(SUBSET, delays=(3, 4, 5, 6, 7))
    print(format_table(
        ["added delay", "gmean speedup"],
        [[d, f"{s:.3f}"] for d, s in delays.items()],
        title="Backend pipeline delay (Figure 22)"))
    print()
    print("The paper picks 256 RB entries, 256 VSB entries, 4-cycle delay;")
    print("the sweeps above show each choice sitting at the knee.")


if __name__ == "__main__":
    main()
