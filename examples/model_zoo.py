#!/usr/bin/env python
"""Run one benchmark through every design point of the paper's model zoo.

Shows the incremental designs (R -> RL -> RLP -> RLPV) and comparison
models side by side on a single benchmark: reuse rate, backend work,
L1 traffic, cycles, and SM energy relative to Base — a one-benchmark
version of Figures 13, 16, and 17 combined.

Run:  python examples/model_zoo.py [ABBR]     (default: BT)
"""

import sys

from repro import MODEL_ORDER
from repro.harness.reporting import format_table
from repro.harness.runner import run_benchmark


def main() -> None:
    abbr = sys.argv[1] if len(sys.argv) > 1 else "BT"
    base = run_benchmark(abbr, "Base")
    rows = []
    for model in MODEL_ORDER:
        run = run_benchmark(abbr, model)
        rows.append([
            model,
            f"{run.reuse_fraction * 100:.1f}%",
            f"{run.result.backend_instructions / base.result.backend_instructions:.3f}",
            f"{run.result.l1d_stats['accesses'] / max(1, base.result.l1d_stats['accesses']):.3f}",
            f"{base.cycles / run.cycles:.3f}",
            f"{run.energy.sm_total / base.energy.sm_total:.3f}",
        ])
    print(format_table(
        ["model", "reused", "backend/Base", "L1D/Base", "speedup", "SM energy/Base"],
        rows,
        title=f"Design points on {abbr} "
              f"({base.workload.program.name}, "
              f"{base.result.issued_instructions} warp instructions)"))
    print()
    print("Reading guide (paper Section VII-A):")
    print("  R      renaming + reuse buffer + VSB        (arithmetic reuse)")
    print("  RL     + load reuse                         (Section VI-A)")
    print("  RLP    + pending-retry                      (Section VI-B)")
    print("  RLPV   + verify cache                       (Section VI-C)")
    print("  RPV    RLPV without load reuse")
    print("  RLPVc  RLPV with the capped-register policy (Section V-E)")
    print("  NoVSB  renaming without value sharing: register IDs stop")
    print("         proxying values and reuse collapses")
    print("  Affine / Affine+RLPV: the spatial-redundancy baseline and the")
    print("         synergy case")


if __name__ == "__main__":
    main()
