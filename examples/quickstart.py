#!/usr/bin/env python
"""Quickstart: assemble a kernel, run it on Base and RLPV, compare.

This walks the library's core loop end to end:

1. write a small kernel in the PTX-like ISA,
2. initialise a memory image with input data,
3. simulate it on the baseline GPU and on the paper's RLPV reuse design,
4. inspect reuse statistics and the energy report.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Dim3, MemoryImage, assemble, model_config, simulate
from repro.energy import compute_energy

OUT = 1 << 20

# A SAXPY-flavoured kernel: y[i] = a * x[i] + y[i], with the scale factor
# loaded from a single global address (prime load-reuse traffic) and the
# address arithmetic repeating across thread blocks (prime value reuse).
KERNEL = f"""
    mov   r0, %tid.x
    mov   r1, %ctaid.x
    mov   r2, %ntid.x
    mad   r3, r1, r2, r0          // global thread id
    mov   r4, 4096
    ld.global r5, [r4]            // a (same address for every warp)
    shl   r6, r3, 2
    add   r7, r6, 8192
    ld.global r8, [r7]            // x[i]
    add   r9, r6, 262144
    ld.global r10, [r9]           // y[i]
    mad   r11, r5, r8, r10        // a*x + y
    add   r12, r6, {OUT}
    st.global -, [r12], r11
    exit
"""


def build_image(n: int) -> MemoryImage:
    image = MemoryImage()
    image.global_mem.write_block(4096, np.array([3], dtype=np.uint32))
    image.global_mem.write_block(8192, np.arange(n, dtype=np.uint32))
    image.global_mem.write_block(262144, np.full(n, 100, dtype=np.uint32))
    return image


def main() -> None:
    program = assemble(KERNEL, name="saxpy")
    print(program.listing())
    print()

    n = 16 * 128
    runs = {}
    for model in ("Base", "RLPV"):
        config = model_config(model)
        config.num_sms = 2
        image = build_image(n)
        result = simulate(program, grid=Dim3(16), block=Dim3(128),
                          config=config, image=image)
        y = image.global_mem.read_block(OUT, n)
        expected = 3 * np.arange(n, dtype=np.uint32) + 100
        assert np.array_equal(y, expected), "functional mismatch!"
        runs[model] = result

    base, rlpv = runs["Base"], runs["RLPV"]
    print(f"issued warp instructions : {base.issued_instructions}")
    print(f"cycles  Base / RLPV      : {base.cycles} / {rlpv.cycles}")
    print(f"reused instructions      : {rlpv.reused_instructions} "
          f"({rlpv.reuse_fraction * 100:.1f}% of issued)")
    print(f"reused loads             : {rlpv.total('reused_loads')}")
    print(f"L1D accesses Base / RLPV : {base.l1d_stats['accesses']} / "
          f"{rlpv.l1d_stats['accesses']}")

    base_energy = compute_energy(base)
    rlpv_energy = compute_energy(rlpv)
    saving = 1 - rlpv_energy.sm_total / base_energy.sm_total
    print(f"SM energy saving         : {saving * 100:.1f}%")
    print()
    print("RLPV SM energy breakdown:")
    for component, pj in sorted(rlpv_energy.sm_breakdown.items(),
                                key=lambda kv: -kv[1]):
        share = pj / rlpv_energy.sm_total * 100
        print(f"  {component:<20s} {pj / 1e6:8.2f} uJ  ({share:4.1f}%)")


if __name__ == "__main__":
    main()
