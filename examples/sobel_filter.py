#!/usr/bin/env python
"""The paper's motivating workload: Sobel filtering (Figure 3).

Sweeps the *flatness* of the input image and shows how the repeated-
computation fraction (Figure 2's metric) and the reuse rate respond: flat
regions make whole 3x3 neighbourhoods identical, so the |Gx|+|Gy|
arithmetic repeats across pixels and across thread blocks — exactly the
redundancy source Section III-B describes.

Run:  python examples/sobel_filter.py
"""

import numpy as np

from repro import GPU, Dim3, KernelLaunch, model_config
from repro.profiling import RedundancyProfiler
from repro.workloads.common import flat_patch_image, random_words, rng_for
from repro.workloads.imaging import IMG_BASE, OUT_BASE, WIDTH, build_sf
from repro.sim.memory.space import MemoryImage


def run_with_image(img: np.ndarray, model: str = "RLPV"):
    """Run the SF kernel on a custom image; returns (result, profile)."""
    workload = build_sf()             # supplies the program + geometry
    image = MemoryImage()
    image.global_mem.write_block(IMG_BASE, img.ravel())
    image.global_mem.write_block(768 * 1024,
                                 np.array([1, 2, 3, 2], dtype=np.uint32))
    config = model_config(model)
    config.num_sms = 2

    profilers = []

    def factory():
        p = RedundancyProfiler()
        profilers.append(p)
        return p

    launch = KernelLaunch(workload.program, workload.grid, workload.block, image)
    result = GPU(config, profiler_factory=factory).run(launch)
    profile = profilers[0].profile
    for p in profilers[1:]:
        profile = profile.merge(p.profile)
    return result, profile


def main() -> None:
    rng = rng_for(7, "SF-example")
    rows = 18
    images = {
        "flat (patch=32)": flat_patch_image(WIDTH, rows, rng, patch=32, levels=2),
        "patchy (patch=16)": flat_patch_image(WIDTH, rows, rng, patch=16, levels=3),
        "busy (patch=4)": flat_patch_image(WIDTH, rows, rng, patch=4, levels=8),
        "noise": random_words(WIDTH * rows, rng, bits=8).reshape(rows, WIDTH),
    }

    print(f"{'input image':<20s} {'repeated%':>10s} {'reused%':>9s} "
          f"{'backend insts':>14s} {'cycles':>8s}")
    print("-" * 66)
    for label, img in images.items():
        result, profile = run_with_image(img.astype(np.uint32))
        print(f"{label:<20s} {profile.repeat_fraction * 100:9.1f}% "
              f"{result.reuse_fraction * 100:8.1f}% "
              f"{result.backend_instructions:>14d} {result.cycles:>8d}")

    print()
    print("Flat regions repeat whole warp computations (paper Section III-B);")
    print("noise leaves only the threadIdx-derived address arithmetic to reuse.")


if __name__ == "__main__":
    main()
