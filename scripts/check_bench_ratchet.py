#!/usr/bin/env python3
"""Ratchet guard for the committed throughput baseline.

The bench CI job gates *fresh* measurements against the committed
``BENCH_sim_throughput.json`` (machine-normalized, 15% tolerance) — but
that alone would let the headline speedup regress silently: re-measuring
on any machine and committing the new report always passes its own gate.
This script pins the floor the committed baseline itself must clear, so
lowering the headline number requires editing the ratchet here, in
review, instead of just re-running ``repro bench --out``.

Floors are ratcheted upward when an engine gets faster (PR 4 set the
vector floor; the superblock PR set its own from the clean-machine
measurement, leaving headroom for host noise) and never lowered without
a matching DESIGN.md/README update.

Usage: ``PYTHONPATH=src python scripts/check_bench_ratchet.py``.
Exit status 0 when every floor holds, 1 otherwise.
"""

from __future__ import annotations

import sys
from pathlib import Path

#: Engine -> minimum aggregate cycles/sec speedup over the scalar oracle
#: that the *committed* baseline must show.
FLOORS = {
    "vector": 2.0,
    "superblock": 3.0,
}


def repo_root() -> Path:
    here = Path(__file__).resolve()
    for parent in here.parents:
        if (parent / "pyproject.toml").exists():
            return parent
    raise SystemExit(f"cannot locate repo root above {here}")


def main() -> int:
    from repro.bench import DEFAULT_REPORT_NAME, PINNED_SUBSET, BenchReport

    path = repo_root() / DEFAULT_REPORT_NAME
    baseline = BenchReport.load(path)
    failures = []
    if baseline.subset != PINNED_SUBSET:
        failures.append(
            f"baseline subset {baseline.subset} != pinned {PINNED_SUBSET}")
    for engine, floor in sorted(FLOORS.items()):
        speedup = baseline.engine_speedup(engine)
        status = "ok" if speedup >= floor else "RATCHET BROKEN"
        print(f"{engine:10s} speedup {speedup:.2f}x  floor {floor:.2f}x  "
              f"[{status}]")
        if speedup < floor:
            failures.append(
                f"{engine} speedup {speedup:.2f}x below ratcheted floor "
                f"{floor:.2f}x — the committed {DEFAULT_REPORT_NAME} must "
                f"be measured on an unloaded machine")
    for failure in failures:
        print(f"error: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
