#!/usr/bin/env python3
"""Source-budget guard: fail CI when a capped file regrows past its budget.

The PR that split ``sim/smcore.py`` into the declarative stage pipeline
(``src/repro/pipeline``) left the SM core under 700 lines; this guard keeps
future changes from quietly re-accreting pipeline logic onto the core
instead of adding a stage.  Stdlib-only so it runs anywhere (CI, hooks)
without installing the project.

Usage: ``python scripts/check_budgets.py`` from anywhere in the repo.
Exit status 0 when every budget holds, 1 otherwise.
"""

from __future__ import annotations

import sys
from pathlib import Path

#: Repo-relative path -> maximum allowed line count.
BUDGETS = {
    "src/repro/sim/smcore.py": 700,
}


def repo_root() -> Path:
    here = Path(__file__).resolve()
    for parent in here.parents:
        if (parent / "pyproject.toml").exists():
            return parent
    raise SystemExit(f"cannot locate repo root above {here}")


def check(root: Path) -> list[str]:
    failures = []
    for rel, budget in sorted(BUDGETS.items()):
        path = root / rel
        if not path.exists():
            failures.append(f"{rel}: budgeted file is missing")
            continue
        lines = path.read_text().count("\n")
        status = "ok" if lines <= budget else "OVER"
        print(f"{rel}: {lines} lines (budget {budget}) {status}")
        if lines > budget:
            failures.append(
                f"{rel}: {lines} lines exceeds the {budget}-line budget — "
                "move logic into a pipeline stage (src/repro/pipeline) "
                "instead of growing the core")
    return failures


def main() -> int:
    failures = check(repo_root())
    for failure in failures:
        print(f"budget violation: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
