"""CI saturation smoke for the overload ladder (DESIGN.md §17).

Boots a :class:`repro.serve.ResultService` with a deliberately tiny
admission limit, then fires a mixed storm — warm figure queries, cold
(missing-run) queries, and health probes — at several times that limit.
The pass condition is the resilience contract, not zero sheds: every
response must be a byte-correct fresh 200, a well-formed 202 or 503
carrying ``Retry-After``, or a 304 revalidation; liveness probes must
stay 200 throughout; and afterwards the admission gate must read zero
in-flight (no leaked slots).  The final ``/v1/healthz`` document and the
access log are written out as CI artifacts.

Usage: PYTHONPATH=src python scripts/serve_chaos_smoke.py
           [--requests 120] [--max-concurrent 4] [--dir DIR]
           [--access-log PATH] [--healthz PATH]
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import tempfile
from pathlib import Path

from repro.harness.runner import clear_cache, run_benchmark, set_cache_dir
from repro.serve import ResilienceConfig, ResultService

WARM = "/v1/figure/fig17?workload=GA&scale=1&sms=1"
COLD = "/v1/figure/fig17?workload=KM&scale=1&sms=1"


async def http_get(port, path, headers=None):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        request = [f"GET {path} HTTP/1.1", "Host: chaos",
                   "Connection: close"]
        request += [f"{k}: {v}" for k, v in (headers or {}).items()]
        writer.write(("\r\n".join(request) + "\r\n\r\n").encode())
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(), 30.0)
    finally:
        writer.close()
    head, _, body = raw.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    parsed = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        parsed[name.strip().lower()] = value.strip()
    return status, parsed, body


def classify(path, status, headers, body, fresh_body, etag):
    """None when the response honours the contract, else a complaint."""
    if path == "/v1/healthz":
        if status != 200 or not json.loads(body).get("ok"):
            return f"health probe degraded: {status}"
        return None
    if status == 200:
        if path == WARM and body != fresh_body:
            return "fresh 200 not byte-identical to the reference"
        return None
    if status == 304:
        return None if headers.get("etag") == etag else "304 without ETag"
    if status in (202, 503):
        if "retry-after" not in headers:
            return f"{status} without Retry-After"
        try:
            json.loads(body)
        except ValueError:
            return f"{status} with a malformed body"
        return None
    return f"unexpected status {status}"


async def storm(base: Path, requests: int, limit: int,
                access_log: Path, healthz_out: Path) -> int:
    config = ResilienceConfig(max_concurrent=limit)
    service = ResultService(base, worker=True, access_log=access_log,
                            resilience=config)
    _, port = await service.start(host="127.0.0.1", port=0)
    try:
        status, headers, fresh_body = await http_get(port, WARM)
        assert status == 200, f"priming GET failed: {status}"
        etag = headers["etag"]

        plan = []
        for index in range(requests):
            kind = index % 4
            if kind == 0:
                plan.append(WARM)
            elif kind == 1:
                plan.append((WARM, {"If-None-Match": etag}))
            elif kind == 2:
                plan.append(COLD)
            else:
                plan.append("/v1/healthz")
        plan = [(p, None) if isinstance(p, str) else p for p in plan]

        responses = await asyncio.gather(
            *(http_get(port, path, hdrs) for path, hdrs in plan))

        failures = 0
        for (path, _), (got, got_headers, got_body) in zip(plan, responses):
            complaint = classify(path, got, got_headers, got_body,
                                 fresh_body, etag)
            if complaint:
                failures += 1
                print(f"FAIL {path}: {complaint}")
        if service.gate.in_flight != 0:
            failures += 1
            print(f"FAIL admission gate leaked "
                  f"{service.gate.in_flight} slots")

        _, _, health_body = await http_get(port, "/v1/healthz")
        healthz_out.write_text(health_body.decode())
        health = json.loads(health_body)
        print(f"chaos storm: {len(responses)} requests at limit {limit}, "
              f"{failures} contract violations "
              f"(admission: {health['admission']}, "
              f"outcomes: {health['outcomes']})")
        return 1 if failures else 0
    finally:
        await service.close()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=120)
    parser.add_argument("--max-concurrent", type=int, default=4)
    parser.add_argument("--dir", default=None,
                        help="cache directory (default: a temp dir)")
    parser.add_argument("--access-log", default=None)
    parser.add_argument("--healthz", default=None,
                        help="where to write the final healthz snapshot")
    args = parser.parse_args()

    base = Path(args.dir) if args.dir else Path(
        tempfile.mkdtemp(prefix="serve-chaos-"))
    access_log = Path(args.access_log) if args.access_log \
        else base / "access.log"
    healthz_out = Path(args.healthz) if args.healthz \
        else base / "healthz.json"

    # Warm the two runs fig17/GA needs; KM stays cold on purpose.
    set_cache_dir(base)
    for model in ("Base", "RLPV"):
        run_benchmark("GA", model, scale=1, num_sms=1)
    clear_cache()

    code = asyncio.run(storm(base, args.requests, args.max_concurrent,
                             access_log, healthz_out))
    if code and access_log.exists():
        print("--- access log ---")
        print(access_log.read_text())
    return code


if __name__ == "__main__":
    sys.exit(main())
