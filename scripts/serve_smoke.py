"""CI smoke storm for the serve API: N concurrent requests, zero errors.

Warms a small cache (the two GA runs fig17 needs), boots a
:class:`repro.serve.ResultService` on a loopback port, and fires a
gathered storm of concurrent requests over real sockets — full GETs,
``If-None-Match`` revalidations, raw-result fetches, and health checks,
interleaved.  Every response must be a correct 200/304 with a stable
ETag and identical bodies across the whole storm.  Exits non-zero (with
the access log on stdout) on any deviation; the access log file is kept
for the CI artifact.

Usage: PYTHONPATH=src python scripts/serve_smoke.py [--requests 200]
                                                    [--dir DIR]
                                                    [--access-log PATH]
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import tempfile
from pathlib import Path

from repro.harness.runner import RunSpec, clear_cache, run_benchmark, \
    set_cache_dir
from repro.serve import ResultService

FIGURE = "/v1/figure/fig17?workload=GA&scale=1&sms=1"


async def http_get(port, path, headers=None):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        request = [f"GET {path} HTTP/1.1", "Host: smoke",
                   "Connection: close"]
        request += [f"{k}: {v}" for k, v in (headers or {}).items()]
        writer.write(("\r\n".join(request) + "\r\n\r\n").encode())
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
    head, _, body = raw.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    parsed = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        parsed[name.strip().lower()] = value.strip()
    return status, parsed, body


async def storm(base: Path, requests: int, access_log: Path) -> int:
    service = ResultService(base, worker=False, access_log=access_log)
    _, port = await service.start(host="127.0.0.1", port=0)
    try:
        # One priming GET gives us the reference body, ETag, and digests.
        status, headers, body = await http_get(port, FIGURE)
        assert status == 200, f"priming GET failed: {status}"
        etag = headers["etag"]
        digests = sorted(d for runs in json.loads(body)["runs"].values()
                         for d in runs.values())

        plan = []
        for index in range(requests):
            kind = index % 4
            if kind == 0:
                plan.append((200, FIGURE, None))
            elif kind == 1:
                plan.append((304, FIGURE, {"If-None-Match": etag}))
            elif kind == 2:
                digest = digests[index % len(digests)]
                plan.append((200, f"/v1/result/{digest}", None))
            else:
                plan.append((200, "/v1/healthz", None))

        responses = await asyncio.gather(
            *(http_get(port, path, headers) for _, path, headers in plan))

        failures = 0
        for (want, path, _), (got, got_headers, got_body) in zip(plan,
                                                                 responses):
            ok = got == want
            if path == FIGURE and want == 200:
                ok = ok and got_body == body and got_headers["etag"] == etag
            if not ok:
                failures += 1
                print(f"FAIL {path}: status {got} (want {want})")
        print(f"storm: {len(responses)} concurrent requests, "
              f"{failures} failures "
              f"(service counters: {service.counts})")
        return 1 if failures else 0
    finally:
        await service.close()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=200)
    parser.add_argument("--dir", default=None,
                        help="cache directory (default: a temp dir)")
    parser.add_argument("--access-log", default=None)
    args = parser.parse_args()

    base = Path(args.dir) if args.dir else Path(
        tempfile.mkdtemp(prefix="serve-smoke-"))
    access_log = Path(args.access_log) if args.access_log \
        else base / "access.log"

    # Warm the two runs fig17/GA needs (no-ops if already cached).
    set_cache_dir(base)
    for model in ("Base", "RLPV"):
        run_benchmark("GA", model, scale=1, num_sms=1)
        digest = RunSpec.make("GA", model, scale=1, num_sms=1).digest()
        assert (base / digest[:2] / f"{digest}.json").exists()
    clear_cache()

    code = asyncio.run(storm(base, args.requests, access_log))
    if code and access_log.exists():
        print("--- access log ---")
        print(access_log.read_text())
    return code


if __name__ == "__main__":
    sys.exit(main())
