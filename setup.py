"""Legacy setup shim: enables `pip install -e .` where the `wheel` package
is unavailable (offline environments)."""

from setuptools import setup

setup()
