"""repro — reproduction of *WIR: Warp Instruction Reuse to Minimize
Repeated Computations in GPUs* (Kim & Ro, HPCA 2018).

The package provides:

* ``repro.isa`` — a compact PTX-like ISA with a text assembler.
* ``repro.sim`` — a cycle-level SIMT GPU simulator (the substrate).
* ``repro.core`` — the WIR mechanisms: warp register reuse (renaming +
  value signature buffer) and warp instruction reuse (reuse buffer,
  load reuse, pending-retry, verify cache), plus the evaluated model zoo.
* ``repro.energy`` — the event-based energy model (GPUWattch-style SM and
  GPU breakdowns with the paper's Table III component costs).
* ``repro.workloads`` — 34 synthetic benchmarks mirroring the paper's
  Table I suite.
* ``repro.profiling`` — the repeated-computation profiler behind Figure 2.
* ``repro.harness`` — runners and per-figure experiment drivers.

Quickstart::

    from repro import assemble, simulate, model_config, Dim3

    program = assemble('''
        mov   r0, %tid.x
        add   r1, r0, 7
        exit
    ''', name="demo")
    result = simulate(program, grid=Dim3(4), block=Dim3(64),
                      config=model_config("RLPV"))
    print(result.reuse_fraction)
"""

from repro.core.models import MODEL_ORDER, model_config, model_names, model_wir
from repro.isa import KernelBuilder, assemble
from repro.sim import GPU, Dim3, GPUConfig, KernelLaunch, RunResult, WIRConfig
from repro.sim.memory.space import MemoryImage

__version__ = "1.0.0"

__all__ = [
    "assemble",
    "KernelBuilder",
    "simulate",
    "model_config",
    "model_names",
    "model_wir",
    "MODEL_ORDER",
    "GPU",
    "GPUConfig",
    "WIRConfig",
    "KernelLaunch",
    "RunResult",
    "Dim3",
    "MemoryImage",
]


def simulate(program, grid, block, config=None, image=None, profiler_factory=None):
    """Run *program* on a simulated GPU and return the :class:`RunResult`.

    Args:
        program: an assembled :class:`~repro.isa.Program`.
        grid: grid dimensions (:class:`Dim3` or int).
        block: block dimensions (:class:`Dim3` or int).
        config: a :class:`GPUConfig`; defaults to the Base GPU of Table II.
        image: a pre-initialised :class:`MemoryImage` (inputs in global /
            const / param memory); a fresh empty image by default.
        profiler_factory: optional callable creating one per-SM profiler.
    """
    if isinstance(grid, int):
        grid = Dim3(grid)
    if isinstance(block, int):
        block = Dim3(block)
    if config is None:
        config = GPUConfig()
    launch = KernelLaunch(
        program=program, grid=grid, block=block,
        image=image if image is not None else MemoryImage(),
    )
    return GPU(config, profiler_factory=profiler_factory).run(launch)
