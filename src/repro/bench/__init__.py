"""Simulator performance benchmarking and regression gating.

``python -m repro bench`` times the simulator itself (cycles simulated per
wall-clock second) over a pinned workload subset under every execution
engine, writes a schema-versioned ``BENCH_sim_throughput.json`` report,
and — given a committed baseline — fails when throughput regresses by more
than the tolerance.  See :mod:`repro.bench.throughput`.
"""

from repro.bench.throughput import (
    BENCH_SCHEMA_VERSION,
    DEFAULT_REPORT_NAME,
    ENGINES,
    PINNED_SUBSET,
    REGRESSION_TOLERANCE,
    BenchEntry,
    BenchReport,
    calibrate_machine,
    compare_reports,
    measure_subset,
    speedup_table,
)

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "DEFAULT_REPORT_NAME",
    "ENGINES",
    "PINNED_SUBSET",
    "REGRESSION_TOLERANCE",
    "BenchEntry",
    "BenchReport",
    "calibrate_machine",
    "compare_reports",
    "measure_subset",
    "speedup_table",
]
