"""Simulator throughput measurement and perf-regression gating.

The unit under test is the *simulator*, not the modelled GPU: the headline
metric is cycles simulated per wall-clock second.  Three design decisions
keep the numbers comparable across commits and machines:

* **Pinned subset.**  A fixed set of (workload, scale) pairs under the Base
  model, chosen to cover the arithmetic/memory/divergence mix of the full
  suite while finishing in minutes.  Changing the subset invalidates the
  baseline, so it is part of the report and compared by the gate.
* **Best-of-N timing.**  Wall times on shared machines are noisy (±30%
  between runs is routine); the *minimum* over N repetitions estimates the
  noise-free cost far better than the mean.  Every per-entry wall time in
  the report is a best-of-``reps`` minimum.
* **Machine normalization.**  A short calibration microkernel (pure-Python
  dict/arithmetic churn plus a small numpy loop — the same instruction mix
  that dominates the simulator) is timed on every run.  Throughputs are
  scaled by ``calibration_s / reference_s`` so a report from a faster or
  slower machine lands near the committed baseline; the regression gate
  compares *normalized* aggregates only.

Runs bypass the harness result caches entirely (direct ``GPU.run`` on a
freshly built workload) — a cache hit would time nothing.
"""

from __future__ import annotations

import json
import platform
import statistics
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.models import model_config
from repro.sim.gpu import GPU, KernelLaunch
from repro.workloads import build_workload

#: Bump when the report layout changes incompatibly.
BENCH_SCHEMA_VERSION = 1

#: Committed report / baseline filename (repo root).
DEFAULT_REPORT_NAME = "BENCH_sim_throughput.json"

#: Gate threshold: fail when a normalized aggregate drops by more than this.
REGRESSION_TOLERANCE = 0.15

#: (abbr, scale) pairs timed under the Base model.  Covers compute-bound
#: (KM, BS), memory-heavy (SD, MQ), branchy (BP) and tiny-kernel (HW) shapes.
PINNED_SUBSET: Tuple[Tuple[str, int], ...] = (
    ("KM", 5),
    ("SD", 4),
    ("MQ", 5),
    ("BS", 6),
    ("HW", 2),
    ("BP", 3),
)

#: Engines measured, in report order.  "scalar" is the oracle interpreter;
#: "vector" is the compiled per-instruction fast path; "superblock" adds
#: trace-compiled straight-line runs (DESIGN.md §16).  All three are
#: bit-identical by construction — see tests/test_exec_differential.py.
ENGINES: Tuple[str, ...] = ("scalar", "vector", "superblock")

#: Calibration wall time on the machine the committed baseline was measured
#: on.  Units cancel in the normalization ratio; the constant only anchors
#: "normalized" to mean "as if on the reference machine".
CALIBRATION_REFERENCE_S = 0.048

_SEED = 7
_NUM_SMS = 2


def calibrate_machine(reps: int = 5) -> float:
    """Best-of-*reps* wall time of the calibration microkernel, seconds."""
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        # Python-side churn: dict updates, integer mixing, attribute-free
        # loops — the shape of the simulator's scheduler/scoreboard work.
        acc = 0
        table: Dict[int, int] = {}
        for i in range(150_000):
            key = i & 1023
            table[key] = i
            acc += table[key] ^ (i >> 3)
        # numpy-side churn: small-vector elementwise ops, the shape of the
        # execution engines' 32-lane kernels.
        lanes = np.arange(4096, dtype=np.uint32)
        for _ in range(300):
            lanes = (lanes * np.uint32(2654435761)) & np.uint32(0xFFFFFFFF)
        if int(lanes[0]) + acc < 0:  # defeat dead-code elimination
            raise AssertionError
        best = min(best, time.perf_counter() - t0)
    return best


@dataclass
class BenchEntry:
    """One (workload, engine) measurement."""

    abbr: str
    scale: int
    model: str
    engine: str
    cycles: int
    instructions: int
    wall_s: float          # best-of-reps minimum
    cycles_per_sec: float

    def to_dict(self) -> Dict[str, object]:
        return {
            "abbr": self.abbr,
            "scale": self.scale,
            "model": self.model,
            "engine": self.engine,
            "cycles": self.cycles,
            "instructions": self.instructions,
            "wall_s": round(self.wall_s, 6),
            "cycles_per_sec": round(self.cycles_per_sec, 1),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "BenchEntry":
        return cls(
            abbr=data["abbr"], scale=data["scale"], model=data["model"],
            engine=data["engine"], cycles=data["cycles"],
            instructions=data["instructions"], wall_s=data["wall_s"],
            cycles_per_sec=data["cycles_per_sec"],
        )


@dataclass
class BenchReport:
    """A full throughput report (what ``BENCH_sim_throughput.json`` holds)."""

    calibration_s: float
    reps: int
    entries: List[BenchEntry] = field(default_factory=list)
    subset: Tuple[Tuple[str, int], ...] = PINNED_SUBSET
    machine: str = ""

    @property
    def normalization(self) -> float:
        """Multiplier mapping raw throughput to reference-machine units."""
        return self.calibration_s / CALIBRATION_REFERENCE_S

    def engine_entries(self, engine: str) -> List[BenchEntry]:
        return [e for e in self.entries if e.engine == engine]

    def aggregate_cps(self, engine: str, normalized: bool = False) -> float:
        """Geometric-mean cycles/sec across the subset for *engine*."""
        values = [e.cycles_per_sec for e in self.engine_entries(engine)]
        if not values:
            return 0.0
        mean = statistics.geometric_mean(values)
        return mean * self.normalization if normalized else mean

    def engine_speedup(self, engine: str) -> float:
        """Aggregate throughput of *engine* relative to the scalar oracle."""
        scalar = self.aggregate_cps("scalar")
        return self.aggregate_cps(engine) / scalar if scalar else 0.0

    @property
    def vector_speedup(self) -> float:
        return self.engine_speedup("vector")

    @property
    def superblock_speedup(self) -> float:
        return self.engine_speedup("superblock")

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema_version": BENCH_SCHEMA_VERSION,
            "machine": self.machine,
            "calibration": {
                "seconds": round(self.calibration_s, 6),
                "reference_seconds": CALIBRATION_REFERENCE_S,
                "normalization": round(self.normalization, 4),
            },
            "reps": self.reps,
            "subset": [list(pair) for pair in self.subset],
            "entries": [e.to_dict() for e in self.entries],
            "aggregate": {
                engine: {
                    "cycles_per_sec": round(self.aggregate_cps(engine), 1),
                    "normalized_cycles_per_sec": round(
                        self.aggregate_cps(engine, normalized=True), 1),
                }
                for engine in ENGINES
            },
            "vector_speedup": round(self.vector_speedup, 3),
            "superblock_speedup": round(self.superblock_speedup, 3),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2) + "\n"

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "BenchReport":
        version = data.get("schema_version")
        if version != BENCH_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported bench report schema {version!r} "
                f"(this build reads version {BENCH_SCHEMA_VERSION})")
        return cls(
            calibration_s=data["calibration"]["seconds"],
            reps=data["reps"],
            entries=[BenchEntry.from_dict(e) for e in data["entries"]],
            subset=tuple((abbr, scale) for abbr, scale in data["subset"]),
            machine=data.get("machine", ""),
        )

    @classmethod
    def load(cls, path) -> "BenchReport":
        with open(path) as handle:
            return cls.from_dict(json.load(handle))


def _time_once(abbr: str, scale: int, engine: str,
               model: str = "Base") -> Tuple[float, int, int]:
    """One uncached simulation; returns (wall_s, cycles, instructions)."""
    config = model_config(model)
    config.num_sms = _NUM_SMS
    config.exec_engine = engine
    workload = build_workload(abbr, scale=scale, seed=_SEED)
    launch = KernelLaunch(workload.program, workload.grid, workload.block,
                          workload.image)
    gpu = GPU(config)
    t0 = time.perf_counter()
    result = gpu.run(launch)
    wall = time.perf_counter() - t0
    workload.verify()
    return wall, result.cycles, result.issued_instructions


def measure_subset(
    reps: int = 3,
    subset: Sequence[Tuple[str, int]] = PINNED_SUBSET,
    engines: Sequence[str] = ENGINES,
    model: str = "Base",
    progress: Optional[Callable[[str], None]] = None,
) -> BenchReport:
    """Measure the pinned subset under every engine; returns the report.

    Interleaves engines per workload (scalar rep, vector rep, ...) so slow
    machine-wide drift (thermal, noisy neighbours) hits both engines alike.
    """
    report = BenchReport(
        calibration_s=calibrate_machine(),
        reps=reps,
        subset=tuple(subset),
        machine=f"{platform.machine()}/{platform.python_implementation()}"
                f"-{platform.python_version()}",
    )
    for abbr, scale in subset:
        best: Dict[str, Tuple[float, int, int]] = {}
        for rep in range(reps):
            for engine in engines:
                sample = _time_once(abbr, scale, engine, model=model)
                if engine not in best or sample[0] < best[engine][0]:
                    best[engine] = sample
        for engine in engines:
            wall, cycles, instructions = best[engine]
            report.entries.append(BenchEntry(
                abbr=abbr, scale=scale, model=model, engine=engine,
                cycles=cycles, instructions=instructions, wall_s=wall,
                cycles_per_sec=cycles / wall if wall else 0.0,
            ))
        if progress is not None:
            cps = {engine: next((e.cycles_per_sec for e in report.entries
                                 if e.abbr == abbr and e.scale == scale
                                 and e.engine == engine), 0.0)
                   for engine in engines}
            scalar_cps = cps.get("scalar", 0.0)
            parts = []
            for engine in engines:
                text = f"{engine} {cps[engine]:,.0f} c/s"
                if engine != "scalar" and scalar_cps:
                    text += f" ({cps[engine] / scalar_cps:.2f}x)"
                parts.append(text)
            progress(f"{abbr}@{scale}: " + ", ".join(parts))
    return report


def speedup_table(report: BenchReport) -> str:
    """Per-workload speedup table in markdown (the CI bench artifact)."""
    engines = [e for e in ENGINES if report.engine_entries(e)]
    fast = [e for e in engines if e != "scalar"]
    header = ("| workload | "
              + " | ".join(f"{engine} c/s" for engine in engines)
              + " | " + " | ".join(f"{engine} speedup" for engine in fast)
              + " |")
    lines = [header, "|" + " --- |" * (1 + len(engines) + len(fast))]
    by_key: Dict[Tuple[str, int], Dict[str, BenchEntry]] = {}
    for entry in report.entries:
        by_key.setdefault((entry.abbr, entry.scale), {})[entry.engine] = entry
    for abbr, scale in report.subset:
        row = by_key.get((abbr, scale), {})
        scalar = row.get("scalar")
        cells = [f"{abbr}@{scale}"]
        for engine in engines:
            entry = row.get(engine)
            cells.append(f"{entry.cycles_per_sec:,.0f}" if entry else "-")
        for engine in fast:
            entry = row.get(engine)
            if entry and scalar and scalar.cycles_per_sec:
                cells.append(
                    f"{entry.cycles_per_sec / scalar.cycles_per_sec:.2f}x")
            else:
                cells.append("-")
        lines.append("| " + " | ".join(cells) + " |")
    cells = ["aggregate"]
    for engine in engines:
        cells.append(f"{report.aggregate_cps(engine):,.0f}")
    for engine in fast:
        cells.append(f"{report.engine_speedup(engine):.2f}x")
    lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines) + "\n"


@dataclass
class GateResult:
    """Outcome of comparing a fresh report against the committed baseline."""

    ok: bool
    messages: List[str] = field(default_factory=list)


def compare_reports(
    current: BenchReport,
    baseline: BenchReport,
    tolerance: float = REGRESSION_TOLERANCE,
) -> GateResult:
    """Regression gate: normalized aggregates must not drop > *tolerance*.

    Also trips when the pinned subset changed (the aggregates would not be
    comparable) or when cycle counts moved for the same spec — a correctness
    drift the perf gate is well placed to catch early.
    """
    result = GateResult(ok=True)
    if tuple(current.subset) != tuple(baseline.subset):
        result.ok = False
        result.messages.append(
            "pinned subset changed; regenerate the baseline "
            f"(baseline {list(baseline.subset)}, current {list(current.subset)})")
        return result

    base_cycles = {(e.abbr, e.scale, e.engine): e.cycles
                   for e in baseline.entries}
    for entry in current.entries:
        key = (entry.abbr, entry.scale, entry.engine)
        expected = base_cycles.get(key)
        if expected is not None and expected != entry.cycles:
            result.ok = False
            result.messages.append(
                f"cycle-count drift on {entry.abbr}@{entry.scale}/"
                f"{entry.engine}: baseline {expected}, now {entry.cycles}")

    for engine in ENGINES:
        base = baseline.aggregate_cps(engine, normalized=True)
        cur = current.aggregate_cps(engine, normalized=True)
        if not base:
            continue
        ratio = cur / base
        label = (f"{engine}: normalized {cur:,.0f} c/s vs baseline "
                 f"{base:,.0f} c/s ({ratio:.2f}x)")
        if ratio < 1.0 - tolerance:
            result.ok = False
            worst = _worst_entry(current, baseline, engine)
            if worst is not None:
                abbr, scale, base_cps, cur_cps = worst
                label += (f"; worst offender {abbr}@{scale}: baseline "
                          f"{base_cps:,.0f} c/s, now {cur_cps:,.0f} c/s")
            result.messages.append(f"REGRESSION {label}")
        else:
            result.messages.append(f"ok {label}")
    return result


def _worst_entry(
    current: BenchReport, baseline: BenchReport, engine: str,
) -> Optional[Tuple[str, int, float, float]]:
    """The (abbr, scale) whose normalized per-entry throughput dropped the
    most for *engine*, with (baseline, current) cycles/sec — so an aggregate
    REGRESSION names the workload to profile first."""
    base_cps = {(e.abbr, e.scale): e.cycles_per_sec * baseline.normalization
                for e in baseline.engine_entries(engine)}
    worst: Optional[Tuple[float, str, int, float, float]] = None
    for entry in current.engine_entries(engine):
        expected = base_cps.get((entry.abbr, entry.scale))
        if not expected:
            continue
        cur = entry.cycles_per_sec * current.normalization
        ratio = cur / expected
        if worst is None or ratio < worst[0]:
            worst = (ratio, entry.abbr, entry.scale, expected, cur)
    if worst is None:
        return None
    return worst[1], worst[2], worst[3], worst[4]
