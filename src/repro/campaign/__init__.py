"""Fault-tolerant campaign runner (DESIGN.md §14).

Shard a whole experiment matrix — workloads × models × scales × seeds ×
config sweeps — into a durable, crash-safe job graph over the
content-addressed result cache.  Workers claim jobs through expiring
leases, heartbeat while simulating, resume reclaimed jobs from their
checkpoint slots, and park poison jobs in quarantine; every event is an
append to a checksummed journal, so killing any process at any point
loses at most the work since the last checkpoint.
"""

from repro.campaign.engine import (Campaign, CampaignError,
                                   CampaignRunReport, LocalBackend,
                                   RemoteShellBackend,
                                   RemoteSpawnUnsupported, campaign_complete,
                                   fold_journal, job_state, list_campaigns,
                                   run_campaign, run_worker, worker_main)
from repro.campaign.journal import (JournalReadResult, append_record,
                                    read_journal)
from repro.campaign.lease import (Heartbeat, Lease, LeaseManager,
                                  SingleFlight)
from repro.campaign.spec import MatrixSpec
from repro.campaign.status import (CampaignStatus, JobStatus,
                                   aggregate_results, campaign_status,
                                   render_status)

__all__ = [
    "Campaign", "CampaignError", "CampaignRunReport", "CampaignStatus",
    "Heartbeat", "JobStatus", "JournalReadResult", "Lease", "LeaseManager",
    "LocalBackend", "MatrixSpec", "RemoteShellBackend",
    "RemoteSpawnUnsupported", "SingleFlight",
    "aggregate_results", "append_record",
    "campaign_complete", "campaign_status", "fold_journal", "job_state",
    "list_campaigns", "read_journal", "render_status", "run_campaign",
    "run_worker", "worker_main",
]
