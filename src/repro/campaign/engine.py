"""Campaign engine: durable job graph, leased workers, chaos-safe resume.

A **campaign** is one durable directory under the content-addressed result
cache::

    <cache>/campaign/<id>/
        campaign.json       # materialized job graph (atomic write, immutable)
        journal.jsonl       # append-only event log (claims, completes, ...)
        leases/<digest>.json# live worker claims with TTL + heartbeats
        workers/<wid>.log   # per-worker subprocess output

``campaign.json`` freezes the matrix expansion into ``RunSpec`` digests, so
the job graph survives any coordinator death; everything that *happens* is
an append to the journal.  No state is ever rewritten in place — deriving
"where are we?" is a pure fold over (journal records, live leases, disk
cache), so a campaign killed at any instruction boundary is resumable by
simply running it again.

Workers are plain processes (``repro campaign work``) that share nothing
but the filesystem: they claim jobs through the lease protocol
(:mod:`repro.campaign.lease`), heartbeat while simulating, and publish
results through the existing harness disk cache.  A SIGKILLed worker's
lease expires and a survivor *reclaims* the job — resuming from the PR-5
checkpoint slot the victim left under ``<cache>/ckpt/`` instead of
restarting.  A job whose attempts (failures + reclaims) reach
``max_attempts`` is parked in **quarantine** with its failure records
rather than wedging the campaign.

The coordinator (:func:`run_campaign`) only spawns and replaces workers;
it holds no authoritative state and can itself be killed and rerun.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
import shlex
import signal
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

import repro.harness.runner as runner
from repro.ckpt import CheckpointError, atomic_write_text, read_checkpoint
from repro.campaign.journal import (MAX_ERROR_CHARS, append_record,
                                    read_journal)
from repro.campaign.lease import (DEFAULT_TTL, Heartbeat, LeaseManager,
                                  SingleFlight)
from repro.campaign.spec import MatrixSpec
from repro.harness.runner import JobFailure, RunSpec

#: Bump when the campaign manifest layout changes incompatibly.
CAMPAIGN_VERSION = 1

#: A job that costs this many attempts (worker deaths + raised errors)
#: is quarantined instead of being granted again.
DEFAULT_MAX_ATTEMPTS = 3

#: Default checkpoint cadence for campaign jobs (cycles); every job runs
#: with a checkpoint slot so reclaimed work resumes instead of restarting.
DEFAULT_CHECKPOINT_EVERY = 2000

#: Environment seam for tests and CI chaos: ``"window:<p>:<seed>"`` makes
#: a worker SIGKILL itself with probability ``p`` at any checkpoint write
#: in the first cadence window of a *fresh* run (a resumed run writes past
#: the window and always survives, so chaos terminates).
CHAOS_ENV = "REPRO_CAMPAIGN_CHAOS"

#: Environment seam: comma-separated benchmark abbrs whose simulation
#: raises inside campaign workers (poison-job / quarantine tests).
FAIL_ENV = "REPRO_CAMPAIGN_FAIL_ABBRS"


class CampaignError(RuntimeError):
    """A campaign directory is missing, malformed, or incompatible."""


def campaign_base(base: Optional[os.PathLike] = None) -> Path:
    """The campaign root under a result-cache directory."""
    root = Path(base) if base is not None else runner.cache_dir()
    if root is None:
        raise CampaignError(
            "campaigns need an on-disk cache (set REPRO_CACHE_DIR or pass "
            "a directory)")
    return root / "campaign"


def list_campaigns(base: Optional[os.PathLike] = None) -> List[str]:
    root = campaign_base(base)
    if not root.exists():
        return []
    return sorted(p.parent.name for p in root.glob("*/campaign.json"))


# ------------------------------------------------------------------ campaign

class Campaign:
    """Handle over one durable campaign directory."""

    def __init__(self, cache_base: Path, manifest: Dict) -> None:
        self.base = Path(cache_base)
        self.manifest = manifest
        self.id: str = manifest["id"]
        self.root = campaign_base(cache_base) / self.id
        self.jobs: Dict[str, RunSpec] = {
            entry["digest"]: RunSpec.from_dict(entry["spec"])
            for entry in manifest["jobs"]
        }

    # -- config views ------------------------------------------------------

    @property
    def matrix(self) -> MatrixSpec:
        if self.manifest.get("matrix") is None:
            raise CampaignError(
                f"campaign {self.id} is ad-hoc (built from explicit specs); "
                "it has no experiment matrix")
        return MatrixSpec.from_dict(self.manifest["matrix"])

    @property
    def ttl(self) -> float:
        return float(self.manifest["ttl"])

    @property
    def max_attempts(self) -> int:
        return int(self.manifest["max_attempts"])

    @property
    def checkpoint_every(self) -> Optional[int]:
        return self.manifest.get("checkpoint_every")

    @property
    def journal_path(self) -> Path:
        return self.root / "journal.jsonl"

    def lease_manager(self, clock: Callable[[], float] = time.time
                      ) -> LeaseManager:
        return LeaseManager(self.root / "leases", ttl=self.ttl, clock=clock)

    def result_path(self, digest: str) -> Path:
        return self.base / digest[:2] / f"{digest}.json"

    # -- construction ------------------------------------------------------

    @classmethod
    def create(cls, matrix: MatrixSpec,
               base: Optional[os.PathLike] = None,
               checkpoint_every: Optional[int] = DEFAULT_CHECKPOINT_EVERY,
               ttl: float = DEFAULT_TTL,
               max_attempts: int = DEFAULT_MAX_ATTEMPTS) -> "Campaign":
        """Materialize (or re-open) the campaign a matrix defines.

        Idempotent: the campaign id is the matrix digest, so creating the
        same matrix twice resumes the existing campaign — its stored
        manifest (including ``ttl`` / ``max_attempts``) wins, because live
        workers may already be honouring it.
        """
        cache_root = Path(base) if base is not None else runner.cache_dir()
        if cache_root is None:
            raise CampaignError(
                "campaigns need an on-disk cache (set REPRO_CACHE_DIR or "
                "pass a directory)")
        campaign_id = matrix.campaign_id(checkpoint_every)
        root = campaign_base(cache_root) / campaign_id
        manifest_path = root / "campaign.json"
        if manifest_path.exists():
            return cls.open(campaign_id, base=cache_root)
        specs = matrix.expand(checkpoint_every=checkpoint_every)
        manifest = {
            "version": CAMPAIGN_VERSION,
            "id": campaign_id,
            "matrix": matrix.to_dict(),
            "checkpoint_every": checkpoint_every,
            "ttl": ttl,
            "max_attempts": max_attempts,
            "jobs": [{"digest": spec.digest(), "spec": spec.to_dict()}
                     for spec in specs],
        }
        atomic_write_text(manifest_path,
                          json.dumps(manifest, sort_keys=True, indent=1))
        return cls(cache_root, manifest)

    @classmethod
    def create_from_specs(cls, specs: Sequence[RunSpec],
                          base: Optional[os.PathLike] = None,
                          ttl: float = DEFAULT_TTL,
                          max_attempts: int = DEFAULT_MAX_ATTEMPTS
                          ) -> "Campaign":
        """Materialize (or re-open) an *ad-hoc* campaign from explicit specs.

        This is the programmatic enqueue path the serve API uses: the
        specs are recorded **verbatim** — in particular no checkpoint
        cadence is stamped onto them, because rewriting any spec field
        would move its result to a different content address than the
        one the enqueuing query (and every CLI invocation of the same
        parameters) will look up.  The campaign id is derived from the
        sorted job digests, so re-submitting the same spec set resumes
        the existing campaign instead of duplicating it.
        """
        if not specs:
            raise CampaignError("an ad-hoc campaign needs at least one spec")
        cache_root = Path(base) if base is not None else runner.cache_dir()
        if cache_root is None:
            raise CampaignError(
                "campaigns need an on-disk cache (set REPRO_CACHE_DIR or "
                "pass a directory)")
        by_digest = {spec.digest(): spec for spec in specs}
        digests = sorted(by_digest)
        campaign_id = cls.adhoc_id(digests)
        root = campaign_base(cache_root) / campaign_id
        manifest_path = root / "campaign.json"
        if manifest_path.exists():
            return cls.open(campaign_id, base=cache_root)
        manifest = {
            "version": CAMPAIGN_VERSION,
            "id": campaign_id,
            "matrix": None,
            "checkpoint_every": None,
            "ttl": ttl,
            "max_attempts": max_attempts,
            "jobs": [{"digest": digest, "spec": by_digest[digest].to_dict()}
                     for digest in digests],
        }
        atomic_write_text(manifest_path,
                          json.dumps(manifest, sort_keys=True, indent=1))
        return cls(cache_root, manifest)

    @staticmethod
    def adhoc_id(digests: Sequence[str]) -> str:
        """The durable id an ad-hoc campaign over *digests* would get.

        Pure function of the sorted digest set — callers (the serve
        JobManager) use it to answer "is this spec set already known?"
        without materializing a campaign directory first.
        """
        ordered = sorted(digests)
        return ("adhoc-"
                + hashlib.sha256("\n".join(ordered).encode())
                .hexdigest()[:16])

    @classmethod
    def open(cls, campaign_id: str,
             base: Optional[os.PathLike] = None) -> "Campaign":
        cache_root = Path(base) if base is not None else runner.cache_dir()
        if cache_root is None:
            raise CampaignError("no cache directory (set REPRO_CACHE_DIR)")
        manifest_path = campaign_base(cache_root) / campaign_id / "campaign.json"
        try:
            manifest = json.loads(manifest_path.read_text())
        except FileNotFoundError:
            raise CampaignError(
                f"no campaign {campaign_id!r} under {campaign_base(cache_root)} "
                f"(known: {', '.join(list_campaigns(cache_root)) or 'none'})"
            ) from None
        except (OSError, ValueError) as err:
            raise CampaignError(
                f"unreadable campaign manifest {manifest_path}: {err}"
            ) from None
        if manifest.get("version") != CAMPAIGN_VERSION:
            raise CampaignError(
                f"campaign {campaign_id} has manifest version "
                f"{manifest.get('version')!r}; this build speaks "
                f"{CAMPAIGN_VERSION}")
        return cls(cache_root, manifest)


# ------------------------------------------------------------- journal fold

@dataclass
class JobLog:
    """Everything the journal says about one job."""

    digest: str
    completes: List[Dict] = field(default_factory=list)
    failures: List[Dict] = field(default_factory=list)
    reclaims: List[Dict] = field(default_factory=list)
    claims: List[Dict] = field(default_factory=list)
    abandons: List[Dict] = field(default_factory=list)
    quarantined: bool = False

    @property
    def attempts_consumed(self) -> int:
        """Attempts this job has burned: raised errors plus worker deaths
        (each reclaim proves a worker died or stalled out holding it)."""
        return len(self.failures) + len(self.reclaims)


def fold_journal(records: Sequence[Dict]) -> Dict[str, JobLog]:
    """Fold the record stream into per-job logs (duplicates tolerated)."""
    logs: Dict[str, JobLog] = {}
    for record in records:
        data = record.get("data", {})
        digest = data.get("job")
        if not digest:
            continue
        log = logs.setdefault(digest, JobLog(digest))
        kind = record.get("type")
        if kind == "complete":
            log.completes.append(data)
        elif kind == "failed":
            log.failures.append(data)
        elif kind == "reclaim":
            log.reclaims.append(data)
        elif kind == "claim":
            log.claims.append(data)
        elif kind == "abandoned":
            log.abandons.append(data)
        elif kind == "quarantine":
            log.quarantined = True
    return logs


def job_state(log: Optional[JobLog], leased: bool) -> str:
    """One job's state: ``done`` | ``quarantined`` | ``running`` | ``pending``."""
    if log is not None and log.completes:
        return "done"
    if log is not None and log.quarantined:
        return "quarantined"
    if leased:
        return "running"
    return "pending"


# ---------------------------------------------------------------- the worker

def _slot_cycle(spec: RunSpec) -> int:
    """Cycle stored in a job's checkpoint slot (0 = no usable checkpoint)."""
    path = runner._ckpt_path(spec)
    if path is None or not path.exists():
        return 0
    try:
        return int(read_checkpoint(path)["state"].get("cycle", 0))
    except (CheckpointError, TypeError, ValueError):
        return 0


@dataclass
class WorkerSummary:
    """What one worker process accomplished before draining out."""

    worker_id: str
    completed: int = 0
    failed: int = 0
    reclaimed: int = 0
    quarantined: int = 0
    #: Jobs finished locally but *not* published because the worker's
    #: lease had expired and been reclaimed mid-run (the reclaimer owns
    #: the publish; completing anyway would double-publish).
    abandoned: int = 0


def run_worker(campaign: Campaign, worker_id: str,
               backoff: float = 0.25, poll: float = 0.2,
               progress: Optional[Callable[[str], None]] = None,
               should_stop: Optional[Callable[[], bool]] = None
               ) -> WorkerSummary:
    """Claim-and-run jobs until every campaign job is done or quarantined.

    Runs in-process (tests call it directly); ``repro campaign work``
    wraps it for the subprocess backend.  The worker installs the
    single-flight lease guard so *any* simulation it performs — including
    nested ``run_benchmark`` calls — dedups against other live workers.

    *should_stop*, checked between jobs, lets an embedding process (the
    serve JobManager draining on SIGTERM) wind the worker down at a job
    boundary — always checkpoint-safe, since unfinished jobs stay leased
    or pending in the durable campaign and any process can resume them.
    """
    manager = campaign.lease_manager()
    guard = SingleFlight(manager, worker_id)
    summary = WorkerSummary(worker_id)
    runner.set_job_guard(guard)
    try:
        while True:
            if should_stop is not None and should_stop():
                return summary
            logs = fold_journal(read_journal(campaign.journal_path).records)
            live = {lease.job for lease in manager.live()}
            states = {digest: job_state(logs.get(digest), digest in live)
                      for digest in campaign.jobs}
            if all(state in ("done", "quarantined")
                   for state in states.values()):
                return summary
            if not _claim_and_run(campaign, manager, logs, states, worker_id,
                                  backoff, summary, progress):
                # Everything unfinished is held by live siblings: wait for
                # a completion or an expiry worth reclaiming.
                time.sleep(poll)
    finally:
        runner.set_job_guard(None)


def _claim_and_run(campaign: Campaign, manager: LeaseManager,
                   logs: Dict[str, JobLog], states: Dict[str, str],
                   worker_id: str, backoff: float, summary: WorkerSummary,
                   progress: Optional[Callable[[str], None]]) -> bool:
    """Try one job: claim, simulate, journal the outcome.  False = nothing
    claimable this pass."""
    for digest, spec in campaign.jobs.items():
        if states[digest] not in ("pending", "running"):
            continue
        log = logs.get(digest)
        attempts = log.attempts_consumed if log is not None else 0
        if attempts >= campaign.max_attempts:
            # Poison job: park it (once) with its failure history intact.
            if not (log is not None and log.quarantined):
                append_record(campaign.journal_path, "quarantine",
                              {"job": digest, "worker": worker_id,
                               "attempts": attempts})
                summary.quarantined += 1
                if progress is not None:
                    progress(f"{worker_id}: quarantined {spec.abbr}/"
                             f"{spec.model} after {attempts} attempts")
            continue
        lease = manager.claim(digest, worker_id, attempts + 1)
        if lease is None:
            continue  # live holder (possibly granted since our scan)
        if lease.reclaimed_from:
            summary.reclaimed += 1
            append_record(campaign.journal_path, "reclaim",
                          {"job": digest, "worker": worker_id,
                           "attempt": lease.attempt,
                           "dead_owner": lease.reclaimed_from})
        else:
            append_record(campaign.journal_path, "claim",
                          {"job": digest, "worker": worker_id,
                           "attempt": lease.attempt})
        _execute_job(campaign, manager, digest, spec, lease.attempt,
                     worker_id, backoff, summary, progress)
        return True
    return False


def _execute_job(campaign: Campaign, manager: LeaseManager, digest: str,
                 spec: RunSpec, attempt: int, worker_id: str, backoff: float,
                 summary: WorkerSummary,
                 progress: Optional[Callable[[str], None]]) -> None:
    resumed_from = _slot_cycle(spec)
    with Heartbeat(manager, digest, worker_id) as heartbeat:
        try:
            runner._obtain_result(spec, None)
        except Exception as err:  # noqa: BLE001 - journalled per job
            failure = JobFailure(
                spec=spec, digest=digest, kind="error",
                error=f"{type(err).__name__}: {err}"[:MAX_ERROR_CHARS],
                attempts=attempt)
            append_record(campaign.journal_path, "failed",
                          {"job": digest, "worker": worker_id,
                           "attempt": attempt,
                           "failure": failure.to_dict()})
            summary.failed += 1
            manager.release(digest, worker_id)
            if progress is not None:
                progress(f"{worker_id}: {spec.abbr}/{spec.model} failed "
                         f"(attempt {attempt}): {failure.error}")
            runner._retry_wait(backoff, attempt - 1)
            return
    if heartbeat.lost:
        # The lease expired and may already be reclaimed: the reclaimer
        # owns this attempt's publish now.  Journalling "complete" here
        # would double-publish the job (two workers both claiming the
        # authoritative completion for one attempt stream), so record the
        # abandonment instead and let the owner finish.  The simulation
        # itself is not wasted — the content-addressed cache write is
        # idempotent, so the reclaimer's lookup hits immediately.
        append_record(campaign.journal_path, "abandoned",
                      {"job": digest, "worker": worker_id,
                       "attempt": attempt})
        summary.abandoned += 1
        manager.release(digest, worker_id)  # no-op if reclaimed already
        if progress is not None:
            progress(f"{worker_id}: {spec.abbr}/{spec.model} abandoned "
                     f"(lease lost mid-run, attempt {attempt})")
        return
    result = runner._RESULT_CACHE[spec][0]
    append_record(campaign.journal_path, "complete",
                  {"job": digest, "worker": worker_id, "attempt": attempt,
                   "cycles": result.cycles,
                   "resumed_from_cycle": resumed_from})
    summary.completed += 1
    manager.release(digest, worker_id)
    if progress is not None:
        progress(f"{worker_id}: {spec.abbr}/{spec.model} done "
                 f"({result.cycles} cycles"
                 + (f", resumed from {resumed_from}" if resumed_from else "")
                 + ")")


def worker_main(base: os.PathLike, campaign_id: str, worker_id: str,
                chaos: Optional[str] = None) -> int:
    """Entry point of one worker process (``repro campaign work``)."""
    runner.set_cache_dir(base)
    campaign = Campaign.open(campaign_id, base=base)
    chaos = chaos or os.environ.get(CHAOS_ENV)
    if chaos:
        _install_chaos(chaos, worker_id, campaign.checkpoint_every)
    fail_abbrs = [abbr for abbr in
                  os.environ.get(FAIL_ENV, "").split(",") if abbr]
    if fail_abbrs:
        def _poison(spec: RunSpec) -> None:
            if spec.abbr in fail_abbrs:
                raise RuntimeError(f"injected campaign failure ({spec.abbr})")
        runner._TEST_HOOK = _poison
    summary = run_worker(campaign, worker_id)
    print(f"{worker_id}: drained — {summary.completed} completed, "
          f"{summary.failed} failed, {summary.reclaimed} reclaimed, "
          f"{summary.quarantined} quarantined")
    return 0


def _install_chaos(chaos: str, worker_id: str,
                   checkpoint_every: Optional[int]) -> None:
    """Arm the checkpoint-write SIGKILL hook (see :data:`CHAOS_ENV`)."""
    import repro.ckpt.snapshot as snapshot

    try:
        kind, prob, seed = chaos.split(":")
        prob = float(prob)
    except ValueError:
        raise CampaignError(
            f"malformed chaos spec {chaos!r} (want 'window:<p>:<seed>')"
        ) from None
    if kind != "window":
        raise CampaignError(f"unknown chaos kind {kind!r}")
    rng = random.Random(f"{seed}:{worker_id}")
    # Fresh runs write their first checkpoint inside [cadence, 2*cadence)
    # (idle skipping can push past the exact cadence cycle); a resumed run
    # writes at >= 2*cadence.  Killing only inside the window therefore
    # guarantees chaos converges: every job survives once it has a slot.
    limit = 2 * (checkpoint_every or 0)

    def _kill(cycle: int, _path) -> None:
        if cycle < limit and rng.random() < prob:
            os.kill(os.getpid(), signal.SIGKILL)

    snapshot._TEST_HOOK = _kill


# ------------------------------------------------------------- backends

class LocalBackend:
    """Spawn workers as local subprocesses (stdout to per-worker logs)."""

    def spawn(self, campaign: Campaign, worker_id: str,
              chaos: Optional[str] = None) -> subprocess.Popen:
        argv = worker_argv(campaign, worker_id, chaos=chaos)
        log_dir = campaign.root / "workers"
        log_dir.mkdir(parents=True, exist_ok=True)
        log = open(log_dir / f"{worker_id}.log", "ab")
        try:
            return subprocess.Popen(argv, env=_worker_env(),
                                    stdout=log, stderr=subprocess.STDOUT)
        finally:
            log.close()


class RemoteSpawnUnsupported(CampaignError, NotImplementedError):
    """Remote spawning is a stub; carries the exact per-host command.

    Callers that want to degrade gracefully can catch this and print
    :attr:`rendered` (already shell-quoted) for the operator to run by
    hand on :attr:`host` — the lease/journal protocol needs nothing
    beyond a shared cache directory.
    """

    def __init__(self, host: str, argv: List[str]) -> None:
        self.host = host
        self.argv = list(argv)
        self.rendered = shlex.join(self.argv)
        super().__init__(
            "the remote backend is a stub; start this worker on "
            f"{host} by hand:\n  {self.rendered}")


class RemoteShellBackend:
    """Multi-host stub: renders the command each host would run.

    Remote execution is not wired up; workers on other machines must share
    the cache directory (e.g. NFS) and can be started by hand with
    :meth:`command_line` — the lease/journal protocol needs nothing else.
    """

    def __init__(self, host: str) -> None:
        self.host = host

    def command_line(self, campaign: Campaign, worker_id: str) -> List[str]:
        return ["ssh", self.host] + worker_argv(campaign, worker_id,
                                                python="python3")

    def spawn(self, campaign: Campaign, worker_id: str,
              chaos: Optional[str] = None) -> subprocess.Popen:
        raise RemoteSpawnUnsupported(
            self.host, self.command_line(campaign, worker_id))


def worker_argv(campaign: Campaign, worker_id: str,
                chaos: Optional[str] = None,
                python: Optional[str] = None) -> List[str]:
    argv = [python or sys.executable, "-m", "repro", "campaign", "work",
            "--dir", str(campaign.base), "--id", campaign.id,
            "--worker-id", worker_id]
    if chaos:
        argv += ["--chaos", chaos]
    return argv


def _worker_env() -> Dict[str, str]:
    """Subprocess env with the repro package importable."""
    src = str(Path(__file__).resolve().parents[2])
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (src if not existing
                         else src + os.pathsep + existing)
    return env


# ----------------------------------------------------------- the coordinator

@dataclass
class CampaignRunReport:
    """Outcome of one :func:`run_campaign` coordination pass."""

    campaign_id: str
    complete: bool
    done: int
    quarantined: int
    total: int
    #: Workers spawned beyond the initial fleet (each one replaced a
    #: worker that died — SIGKILL, crash — before the campaign finished).
    respawns: int = 0
    #: How many worker processes exited on a signal (negative returncode).
    worker_kills: int = 0


def campaign_complete(campaign: Campaign) -> bool:
    logs = fold_journal(read_journal(campaign.journal_path).records)
    return all(
        job_state(logs.get(digest), leased=False) in ("done", "quarantined")
        for digest in campaign.jobs)


def run_campaign(campaign: Campaign, workers: int = 2,
                 chaos: Optional[str] = None,
                 backend: Optional[LocalBackend] = None,
                 poll: float = 0.25,
                 max_respawns: Optional[int] = None,
                 progress: Optional[Callable[[str], None]] = None
                 ) -> CampaignRunReport:
    """Drive a worker fleet until the campaign converges.

    The coordinator is stateless: it spawns ``workers`` processes,
    replaces any that die before the job graph is drained, and returns
    when every job is done or quarantined.  Killing the coordinator
    mid-run loses nothing — rerunning it (or ``repro campaign resume``)
    picks up from the journal.
    """
    backend = backend or LocalBackend()
    if max_respawns is None:
        # Generous ceiling: every job may burn its full attempt budget,
        # each costing one worker; past that something is structurally
        # wrong and respawning would loop forever.
        max_respawns = workers + len(campaign.jobs) * campaign.max_attempts
    generation = 0
    respawns = 0
    kills = 0
    fleet: Dict[str, subprocess.Popen] = {}
    for index in range(max(1, workers)):
        worker_id = f"w{index}"
        fleet[worker_id] = backend.spawn(campaign, worker_id, chaos=chaos)
    try:
        while True:
            done = campaign_complete(campaign)
            for worker_id, proc in list(fleet.items()):
                code = proc.poll()
                if code is None:
                    continue
                del fleet[worker_id]
                if code < 0:
                    kills += 1
                if done or code == 0:
                    continue
                if respawns >= max_respawns:
                    raise CampaignError(
                        f"campaign {campaign.id}: {respawns} worker "
                        "respawns without convergence — giving up (see "
                        f"{campaign.root / 'workers'} logs)")
                generation += 1
                respawns += 1
                replacement = f"{worker_id.split('.')[0]}.g{generation}"
                if progress is not None:
                    progress(f"worker {worker_id} died (exit {code}); "
                             f"respawning as {replacement}")
                fleet[replacement] = backend.spawn(campaign, replacement,
                                                   chaos=chaos)
            if not fleet:
                if campaign_complete(campaign):
                    break
                # Every worker drained out (exit 0) yet jobs remain — a
                # stale live lease from a dead external worker; one more
                # worker will reclaim it after expiry.
                generation += 1
                respawns += 1
                if respawns > max_respawns:
                    raise CampaignError(
                        f"campaign {campaign.id} cannot converge")
                worker_id = f"w0.g{generation}"
                fleet[worker_id] = backend.spawn(campaign, worker_id,
                                                 chaos=chaos)
            time.sleep(poll)
    finally:
        for proc in fleet.values():
            proc.terminate()
        for proc in fleet.values():
            try:
                proc.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                proc.kill()
    logs = fold_journal(read_journal(campaign.journal_path).records)
    states = [job_state(logs.get(d), leased=False) for d in campaign.jobs]
    return CampaignRunReport(
        campaign_id=campaign.id,
        complete=all(s in ("done", "quarantined") for s in states),
        done=states.count("done"),
        quarantined=states.count("quarantined"),
        total=len(states),
        respawns=respawns,
        worker_kills=kills,
    )
