"""The campaign journal: an append-only, checksummed event log.

A campaign's durable history lives in one ``journal.jsonl`` file.  Each
line is a self-contained JSON record::

    {"v": 1, "type": "complete", "time": 1722.5, "data": {...}, "sum": "..."}

``sum`` is a SHA-256 over the canonical record body (``sort_keys=True``,
``sum`` absent) — the same recipe as the result cache and checkpoint
container — so a truncated or bit-rotted line can never masquerade as an
event.  Appends go through a single ``os.write`` on an ``O_APPEND`` file
descriptor: concurrent workers appending to the same journal never
interleave bytes within a record, and a worker SIGKILLed mid-append can
leave at most one torn *final* line, which the reader detects (checksum /
parse failure) and drops without losing any earlier history.

The journal is never rewritten or compacted in place; the reader folds the
record stream into per-job state (:mod:`repro.campaign.status`).  Records
the reader cannot verify are counted so ``repro campaign status`` can
report journal health alongside job progress.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional

#: Bump when the record envelope layout changes incompatibly.
RECORD_VERSION = 1

#: Failure messages are truncated to keep every record well under the
#: size where a single O_APPEND write could be split by the kernel.
MAX_ERROR_CHARS = 500

#: Set to ``"1"`` to fsync the journal after every append.  Default off:
#: the torn-tail reader already recovers the longest durable prefix after
#: a crash, so fsync buys only power-loss durability of the final record
#: at a per-append cost.  Deployments that want it (serving real traffic
#: from one box) flip the env var rather than forking the code path.
FSYNC_ENV = "REPRO_JOURNAL_FSYNC"


class JournalError(RuntimeError):
    """The journal file itself is unusable (not per-record corruption)."""


def _record_checksum(body: Dict) -> str:
    canonical = json.dumps(body, sort_keys=True).encode()
    return hashlib.sha256(canonical).hexdigest()


def append_record(path: Path, type: str, data: Dict,
                  clock: Callable[[], float] = time.time) -> Dict:
    """Append one checksummed record; returns the record written.

    The append is a single ``write(2)`` on an ``O_APPEND`` descriptor, so
    records from concurrent workers land whole and in *some* total order.
    """
    record = {
        "v": RECORD_VERSION,
        "type": type,
        "time": round(clock(), 3),
        "data": data,
    }
    record["sum"] = _record_checksum(record)
    line = (json.dumps(record, sort_keys=True) + "\n").encode()
    path.parent.mkdir(parents=True, exist_ok=True)
    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        os.write(fd, line)
        if os.environ.get(FSYNC_ENV) == "1":
            os.fsync(fd)
    finally:
        os.close(fd)
    return record


@dataclass
class JournalReadResult:
    """Verified records plus the damage tally from one read pass."""

    records: List[Dict] = field(default_factory=list)
    #: Unverifiable non-final lines (bit rot, tampering): history was lost.
    corrupt: int = 0
    #: Whether the final line failed verification — the signature of a
    #: writer killed mid-append; benign, the event simply never happened.
    torn_tail: bool = False


def read_journal(path: Path) -> JournalReadResult:
    """Read every verifiable record; skip (and count) damaged lines."""
    out = JournalReadResult()
    try:
        raw = Path(path).read_bytes()
    except FileNotFoundError:
        return out
    except OSError as err:
        raise JournalError(f"unreadable journal {path}: {err}") from None
    lines = raw.split(b"\n")
    if lines and lines[-1] == b"":
        lines.pop()
    bad_positions: List[int] = []
    for index, line in enumerate(lines):
        record = _verify_line(line)
        if record is None:
            bad_positions.append(index)
        else:
            out.records.append(record)
    if bad_positions:
        if bad_positions[-1] == len(lines) - 1:
            out.torn_tail = True
            bad_positions.pop()
        out.corrupt = len(bad_positions)
    return out


def _verify_line(line: bytes) -> Optional[Dict]:
    try:
        record = json.loads(line)
    except ValueError:
        return None
    if not isinstance(record, dict) or record.get("v") != RECORD_VERSION:
        return None
    stored = record.get("sum")
    body = {key: value for key, value in record.items() if key != "sum"}
    if stored != _record_checksum(body):
        return None
    return record
