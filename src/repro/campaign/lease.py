"""Job leases: exclusive, expiring claims over campaign jobs.

A lease is one small JSON file under ``<campaign>/leases/<digest>.json``
naming its owner, attempt number, and wall-clock expiry.  The protocol is
built from two filesystem primitives that are atomic on POSIX:

* **grant** — ``open(O_CREAT | O_EXCL)``: of any number of racing
  claimants, exactly one creates the file and owns the job;
* **reclaim** — ``os.rename`` of an *expired* lease to a unique tombstone:
  of any number of racing reclaimers, exactly one rename succeeds (the
  losers see ``ENOENT``), and only the winner goes on to grant itself a
  fresh lease.

A live worker renews its lease from a heartbeat thread well before expiry
(interval ``ttl / 3``); a SIGKILLed worker's heartbeat dies with it, the
lease runs out, and any surviving worker reclaims the job.  A worker whose
renewal discovers the lease was lost (expired and reclaimed during a long
stall) abandons ownership — its in-flight result commit stays safe because
the result cache is content-addressed and written atomically, so duplicate
completions are idempotent.

``SingleFlight`` adapts the lease protocol into the guard the harness
consumes (``repro.harness.runner.set_job_guard``): concurrently-missing
results are simulated by exactly one live worker while the others wait on
the winner's disk-cache publish.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, List, Optional

from repro.ckpt import atomic_write_text

#: Default lease lifetime.  Heartbeats renew at ttl / 3, so a lease only
#: expires after ~3 consecutive missed heartbeats — i.e. a dead worker.
DEFAULT_TTL = 30.0

_TOMBSTONE_COUNTER = itertools.count()


@dataclass
class Lease:
    """One granted claim (the decoded contents of a lease file)."""

    job: str
    owner: str
    attempt: int
    expires: float
    renewals: int = 0
    #: Owner of the expired lease this grant broke, if any ("" for a
    #: fresh claim).  Lets the worker journal reclaims attributably.
    reclaimed_from: str = ""

    def to_dict(self) -> dict:
        return {"job": self.job, "owner": self.owner,
                "attempt": self.attempt, "expires": self.expires,
                "renewals": self.renewals}


class LeaseManager:
    """Grant, renew, release, and reclaim leases under one directory.

    ``clock`` is injectable so the lease lifecycle can be driven by a fake
    clock in tests (see the hypothesis state machine in
    ``tests/test_campaign.py``).
    """

    def __init__(self, root: Path, ttl: float = DEFAULT_TTL,
                 clock: Callable[[], float] = time.time) -> None:
        self.root = Path(root)
        self.ttl = ttl
        self.clock = clock
        #: Jobs this manager currently believes it owns (local bookkeeping
        #: only; the lease files are the ground truth).
        self.owned: set = set()

    def path(self, job: str) -> Path:
        return self.root / f"{job}.json"

    def read(self, job: str) -> Optional[Lease]:
        """Decode a lease file; ``None`` when missing or unreadable.

        An unreadable lease is treated like an expired one: it cannot
        prove liveness, so it is safe to break.
        """
        try:
            payload = json.loads(self.path(job).read_text())
            return Lease(job=payload["job"], owner=payload["owner"],
                         attempt=int(payload["attempt"]),
                         expires=float(payload["expires"]),
                         renewals=int(payload.get("renewals", 0)))
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def _grant(self, job: str, owner: str, attempt: int,
               reclaimed_from: str = "") -> Optional[Lease]:
        lease = Lease(job=job, owner=owner, attempt=attempt,
                      expires=self.clock() + self.ttl,
                      reclaimed_from=reclaimed_from)
        self.root.mkdir(parents=True, exist_ok=True)
        try:
            fd = os.open(self.path(job),
                         os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
        except FileExistsError:
            return None
        try:
            os.write(fd, json.dumps(lease.to_dict(),
                                    sort_keys=True).encode())
        finally:
            os.close(fd)
        self.owned.add(job)
        return lease

    def claim(self, job: str, owner: str, attempt: int) -> Optional[Lease]:
        """Try to acquire *job*; ``None`` when a live lease blocks it.

        An expired (or undecodable) existing lease is broken first: the
        rename-to-tombstone guarantees at most one of any number of racing
        reclaimers proceeds to the fresh grant.  The tombstone uses the
        cache-wide ``*.tmp`` suffix so a reclaimer killed between rename
        and unlink leaves only debris ``repro cache verify --prune``
        already sweeps.
        """
        granted = self._grant(job, owner, attempt)
        if granted is not None:
            return granted
        current = self.read(job)
        if current is not None and current.expires > self.clock():
            return None  # live holder
        dead_owner = current.owner if current is not None else ""
        tombstone = self.root / (f"{job}.{os.getpid()}."
                                 f"{next(_TOMBSTONE_COUNTER)}.tmp")
        try:
            os.rename(self.path(job), tombstone)
        except FileNotFoundError:
            return None  # another reclaimer won the race
        try:
            tombstone.unlink()
        except OSError:
            pass
        # A third claimant may slip in between our rename and this grant;
        # O_EXCL keeps the outcome single-granted either way.
        return self._grant(job, owner, attempt, reclaimed_from=dead_owner)

    def renew(self, job: str, owner: str) -> bool:
        """Extend a held lease; ``False`` means the lease was lost.

        Renewal refuses to touch a lease that is missing, owned by someone
        else, or already expired — an expired lease is up for reclaim, and
        overwriting it could stomp a racing reclaimer's fresh grant.
        """
        current = self.read(job)
        if (current is None or current.owner != owner
                or current.expires <= self.clock()):
            self.owned.discard(job)
            return False
        renewed = Lease(job=job, owner=owner, attempt=current.attempt,
                        expires=self.clock() + self.ttl,
                        renewals=current.renewals + 1)
        atomic_write_text(self.path(job),
                          json.dumps(renewed.to_dict(), sort_keys=True))
        return True

    def release(self, job: str, owner: str) -> None:
        """Drop a held lease (no-op if it was already lost or reclaimed)."""
        self.owned.discard(job)
        current = self.read(job)
        if current is None or current.owner != owner:
            return
        try:
            self.path(job).unlink()
        except OSError:
            pass

    def live(self) -> List[Lease]:
        """Every currently unexpired lease under this manager's root."""
        now = self.clock()
        leases = []
        if not self.root.exists():
            return leases
        for path in sorted(self.root.glob("*.json")):
            lease = self.read(path.stem)
            if lease is not None and lease.expires > now:
                leases.append(lease)
        return leases


class Heartbeat:
    """Background renewal of one held lease until stopped.

    Dies with the process — which is the point: a SIGKILLed worker stops
    heartbeating and its lease expires on schedule.  ``lost`` flips when a
    renewal discovers the lease is gone; the worker checks it before
    journalling completion and *abandons* the job instead (the reclaimer
    owns the publish), so a superseded attempt never double-publishes.
    """

    def __init__(self, manager: LeaseManager, job: str, owner: str,
                 interval: Optional[float] = None) -> None:
        self.manager = manager
        self.job = job
        self.owner = owner
        self.interval = (interval if interval is not None
                         else max(0.05, manager.ttl / 3.0))
        self.lost = False
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            if not self.manager.renew(self.job, self.owner):
                self.lost = True
                return

    def __enter__(self) -> "Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)


class SingleFlight:
    """Harness-facing guard: one simulation per digest across workers.

    Installed by campaign workers via
    :func:`repro.harness.runner.set_job_guard`.  The harness calls
    :meth:`flight` before simulating a disk-cache miss; the winner holds
    the job's lease for the duration and the losers poll the disk cache
    until the winner publishes (or dies, at which point a loser takes
    over).  Re-entrant over jobs the worker already claimed through the
    campaign scheduler: those fly immediately and stay leased afterwards.
    """

    def __init__(self, manager: LeaseManager, owner: str,
                 poll: float = 0.05,
                 sleep: Callable[[float], None] = time.sleep) -> None:
        self.manager = manager
        self.owner = owner
        self.poll = poll
        self.sleep = sleep

    @contextmanager
    def flight(self, job: str, reload: Callable[[], Optional[dict]]):
        """Yield another worker's payload, or ``None`` with the lease held.

        ``reload`` re-checks the disk cache; it is only called while some
        other live worker holds the lease.
        """
        acquired = False
        payload = None
        while True:
            if job in self.manager.owned:
                break
            lease = self.manager.claim(job, self.owner, attempt=1)
            if lease is not None:
                acquired = True
                break
            payload = self._await_holder(job, reload)
            if payload is not None:
                break
            # The holder died without publishing; loop back and reclaim.
        try:
            yield payload
        finally:
            if acquired:
                self.manager.release(job, self.owner)

    def _await_holder(self, job: str,
                      reload: Callable[[], Optional[dict]]) -> Optional[dict]:
        while True:
            payload = reload()
            if payload is not None:
                return payload
            current = self.manager.read(job)
            if current is None or current.expires <= self.manager.clock():
                return None
            self.sleep(self.poll)
