"""Declarative campaign matrices: axes in, RunSpec job graph out.

A :class:`MatrixSpec` names the experiment design space — benchmarks ×
models × scales × seeds × WIR-config sweeps — without running anything.
``expand()`` materializes the cartesian product into concrete
:class:`~repro.harness.runner.RunSpec` jobs, and the matrix digest (over
the canonical dict plus the campaign-relevant execution knobs) names the
campaign itself: re-running ``repro campaign run`` with the same matrix
resumes the same campaign instead of starting a second one.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.harness.runner import EXPERIMENT_SMS, RunSpec


@dataclass(frozen=True)
class MatrixSpec:
    """The declarative design space of one campaign."""

    benchmarks: Tuple[str, ...]
    models: Tuple[str, ...] = ("Base",)
    scales: Tuple[int, ...] = (1,)
    seeds: Tuple[int, ...] = (7,)
    num_sms: int = EXPERIMENT_SMS
    exec_engine: str = "scalar"
    #: WIR config override sweeps: ``((name, (v1, v2, ...)), ...)``.
    #: Every combination across axes becomes its own design point.
    sweeps: Tuple[Tuple[str, Tuple[object, ...]], ...] = field(
        default_factory=tuple)

    @classmethod
    def make(cls, benchmarks, models=("Base",), scales=(1,), seeds=(7,),
             num_sms: int = EXPERIMENT_SMS, exec_engine: str = "scalar",
             **sweeps) -> "MatrixSpec":
        """Convenience constructor: ``sweeps`` kwargs may be scalars or
        iterables, e.g. ``MatrixSpec.make(["KM"], reuse_buffer_entries=(64,
        256))``."""
        normalized = tuple(sorted(
            (name, tuple(values) if isinstance(values, (tuple, list))
             else (values,))
            for name, values in sweeps.items()))
        return cls(tuple(benchmarks), tuple(models), tuple(scales),
                   tuple(seeds), num_sms, exec_engine, normalized)

    def expand(self, checkpoint_every: Optional[int] = None) -> List[RunSpec]:
        """Materialize every job of the matrix, in deterministic order."""
        sweep_names = [name for name, _ in self.sweeps]
        sweep_values = [values for _, values in self.sweeps]
        specs: List[RunSpec] = []
        for abbr, model, scale, seed in itertools.product(
                self.benchmarks, self.models, self.scales, self.seeds):
            for combo in itertools.product(*sweep_values):
                overrides = dict(zip(sweep_names, combo))
                specs.append(RunSpec.make(
                    abbr, model, scale=scale, seed=seed,
                    num_sms=self.num_sms, exec_engine=self.exec_engine,
                    checkpoint_every=checkpoint_every, **overrides))
        return specs

    def to_dict(self) -> Dict[str, object]:
        return {
            "benchmarks": list(self.benchmarks),
            "models": list(self.models),
            "scales": list(self.scales),
            "seeds": list(self.seeds),
            "num_sms": self.num_sms,
            "exec_engine": self.exec_engine,
            "sweeps": [[name, list(values)] for name, values in self.sweeps],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "MatrixSpec":
        return cls(
            benchmarks=tuple(data["benchmarks"]),
            models=tuple(data["models"]),
            scales=tuple(data["scales"]),
            seeds=tuple(data["seeds"]),
            num_sms=data.get("num_sms", EXPERIMENT_SMS),
            exec_engine=data.get("exec_engine", "scalar"),
            sweeps=tuple((name, tuple(values))
                         for name, values in data.get("sweeps", [])),
        )

    def campaign_id(self, checkpoint_every: Optional[int] = None) -> str:
        """Stable short identity of the campaign this matrix defines."""
        payload = {"matrix": self.to_dict(),
                   "checkpoint_every": checkpoint_every}
        canonical = json.dumps(payload, sort_keys=True)
        return hashlib.sha256(canonical.encode()).hexdigest()[:12]
