"""Campaign progress, failure history, ETA, and merged-result aggregation.

Everything here is a *pure read*: status is derived by folding the journal,
the live leases, and the result cache — it works identically while workers
run, after they all died, or on a campaign directory copied off a dead
machine.  That is what makes ``repro campaign status`` able to report the
failure history of a process that no longer exists (the failures were
journalled, not merely raised as :class:`~repro.harness.runner.SuiteError`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import repro.harness.runner as runner
from repro.campaign.engine import Campaign, JobLog, fold_journal, job_state
from repro.campaign.journal import read_journal
from repro.harness.reporting import format_table
from repro.sim.gpu import RunResult
from repro.stats import StatGroup

#: Display order of job states.
STATE_ORDER = ("done", "running", "pending", "quarantined")


@dataclass
class JobStatus:
    """One job's derived status."""

    digest: str
    abbr: str
    model: str
    state: str
    attempts: int
    #: Live lease owner while running, else "".
    worker: str = ""
    #: Cycle the completing worker resumed from (0 = ran from scratch).
    resumed_from_cycle: int = 0
    cycles: int = 0
    failures: List[Dict] = field(default_factory=list)

    def to_dict(self) -> Dict:
        return {
            "digest": self.digest, "abbr": self.abbr, "model": self.model,
            "state": self.state, "attempts": self.attempts,
            "worker": self.worker,
            "resumed_from_cycle": self.resumed_from_cycle,
            "cycles": self.cycles, "failures": self.failures,
        }


@dataclass
class CampaignStatus:
    """Snapshot of a whole campaign, fit for humans and ``--json``."""

    campaign_id: str
    total: int
    counts: Dict[str, int]
    jobs: List[JobStatus]
    #: Every journalled failure record, campaign-wide, oldest first.
    failures: List[Dict]
    live_workers: int
    eta_seconds: Optional[float]
    journal_corrupt: int
    journal_torn_tail: bool

    @property
    def complete(self) -> bool:
        return (self.counts.get("done", 0)
                + self.counts.get("quarantined", 0)) == self.total

    def to_dict(self) -> Dict:
        return {
            "campaign_id": self.campaign_id,
            "total": self.total,
            "counts": self.counts,
            "complete": self.complete,
            "live_workers": self.live_workers,
            "eta_seconds": self.eta_seconds,
            "journal": {"corrupt_records": self.journal_corrupt,
                        "torn_tail": self.journal_torn_tail},
            "failures": self.failures,
            "jobs": [job.to_dict() for job in self.jobs],
        }


def campaign_status(campaign: Campaign,
                    clock: Callable[[], float] = time.time
                    ) -> CampaignStatus:
    """Fold journal + leases + cache into one status snapshot."""
    journal = read_journal(campaign.journal_path)
    logs = fold_journal(journal.records)
    manager = campaign.lease_manager(clock=clock)
    live = {lease.job: lease for lease in manager.live()}

    jobs: List[JobStatus] = []
    failures: List[Dict] = []
    counts = {state: 0 for state in STATE_ORDER}
    for digest, spec in campaign.jobs.items():
        log = logs.get(digest)
        state = job_state(log, digest in live)
        counts[state] += 1
        status = JobStatus(
            digest=digest, abbr=spec.abbr, model=spec.model, state=state,
            attempts=log.attempts_consumed if log is not None else 0,
            worker=live[digest].owner if digest in live else "",
        )
        if log is not None:
            status.failures = [entry["failure"] for entry in log.failures
                               if "failure" in entry]
            failures.extend(status.failures)
            if log.completes:
                first = log.completes[0]
                status.cycles = int(first.get("cycles", 0))
                status.resumed_from_cycle = int(
                    first.get("resumed_from_cycle", 0))
        jobs.append(status)

    return CampaignStatus(
        campaign_id=campaign.id,
        total=len(jobs),
        counts=counts,
        jobs=jobs,
        failures=failures,
        live_workers=len({lease.owner for lease in live.values()}),
        eta_seconds=_estimate_eta(journal.records, logs, counts,
                                  len({l.owner for l in live.values()})),
        journal_corrupt=journal.corrupt,
        journal_torn_tail=journal.torn_tail,
    )


def _estimate_eta(records, logs: Dict[str, JobLog], counts: Dict[str, int],
                  live_workers: int) -> Optional[float]:
    """Remaining wall clock from observed grant→complete durations."""
    last_grant: Dict[str, float] = {}
    durations: List[float] = []
    for record in records:
        data = record.get("data", {})
        digest = data.get("job")
        if not digest:
            continue
        if record["type"] in ("claim", "reclaim"):
            last_grant[digest] = record["time"]
        elif record["type"] == "complete" and digest in last_grant:
            durations.append(max(0.0, record["time"] - last_grant[digest]))
    remaining = counts.get("pending", 0) + counts.get("running", 0)
    if not durations or remaining == 0:
        return 0.0 if remaining == 0 else None
    average = sum(durations) / len(durations)
    return average * remaining / max(1, live_workers)


# ------------------------------------------------------------- aggregation

def aggregate_results(campaign: Campaign
                      ) -> Tuple[Dict[str, RunResult], StatGroup]:
    """Load every completed job's :class:`RunResult` from the cache and
    merge their stats registries into one campaign-wide tree.

    Raises :class:`KeyError`-free: jobs whose payload is missing or fails
    its checksum are simply skipped (they will rerun on resume), so
    aggregation over a damaged cache degrades instead of crashing.
    """
    logs = fold_journal(read_journal(campaign.journal_path).records)
    results: Dict[str, RunResult] = {}
    for digest in campaign.jobs:
        log = logs.get(digest)
        if log is None or not log.completes:
            continue
        path = campaign.result_path(digest)
        if not path.exists():
            continue
        status, payload = runner._read_payload(path)
        if status != "ok":
            continue
        results[digest] = RunResult.from_dict(payload["result"])
    merged = StatGroup.merged(
        (result.stats for result in results.values()), name="campaign")
    return results, merged


# --------------------------------------------------------------- rendering

def render_status(status: CampaignStatus) -> str:
    """Human-readable status block (summary + failures + quarantine)."""
    lines = [
        f"campaign {status.campaign_id}: "
        + ", ".join(f"{status.counts.get(state, 0)} {state}"
                    for state in STATE_ORDER)
        + f" (of {status.total})"
    ]
    if status.live_workers:
        lines.append(f"live workers: {status.live_workers}")
    if status.eta_seconds is not None:
        lines.append(f"eta: {status.eta_seconds:.0f}s"
                     if status.eta_seconds else "eta: done")
    if status.journal_corrupt:
        lines.append(f"journal: {status.journal_corrupt} corrupt record(s) "
                     "skipped")
    rows = []
    for job in status.jobs:
        if job.state == "done" and not job.failures:
            continue  # keep the table focused on work left / trouble seen
        rows.append([job.abbr, job.model, job.digest[:12], job.state,
                     job.attempts, job.worker or "-",
                     job.failures[-1]["error"][:40] if job.failures else "-"])
    if rows:
        lines.append(format_table(
            ["abbr", "model", "digest", "state", "attempts", "worker",
             "last failure"],
            rows, title="jobs needing attention"))
    return "\n".join(lines)
