"""Robustness layer: lockstep oracle, fault injection, typed check errors.

The error types are dependency-free and imported eagerly — any layer may
raise them.  The oracle and fault modules import the simulator, so they
are exposed lazily (PEP 562) to keep ``repro.core``/``repro.sim`` modules
free to import :mod:`repro.check.errors` without a cycle.
"""

from __future__ import annotations

from repro.check.errors import (CheckError, DivergenceError,
                                InvariantViolation, ReuseCorruptionError)

__all__ = [
    "CheckError", "DivergenceError", "InvariantViolation",
    "ReuseCorruptionError",
    "CheckedGPU", "LockstepChecker", "OracleStats", "check_benchmark",
    "FaultInjector", "FaultPlan", "FaultStats",
]

_LAZY = {
    "CheckedGPU": "repro.check.oracle",
    "LockstepChecker": "repro.check.oracle",
    "OracleStats": "repro.check.oracle",
    "check_benchmark": "repro.check.oracle",
    "FaultInjector": "repro.check.faults",
    "FaultPlan": "repro.check.faults",
    "FaultStats": "repro.check.faults",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
