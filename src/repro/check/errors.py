"""Typed errors of the robustness layer.

This module is deliberately dependency-free (no imports from ``repro.sim``
or ``repro.core``) so that *any* layer — the core reuse structures, the SM
pipeline, the harness — can raise these without import cycles.

Error taxonomy:

* :class:`InvariantViolation` — a WIR structure broke one of its own
  invariants (reference-count conservation, retry-queue accounting, a
  buffer naming a dead register).  Carries the dotted stats path of the
  offending structure (``"wir.phys"``, ``"wir.rb"``, ``"wir.vsb"``).
* :class:`ReuseCorruptionError` — an arithmetic reuse hit returned a value
  different from the functionally computed result.  Subclasses
  ``AssertionError`` for backwards compatibility with the original inline
  assertion.
* :class:`DivergenceError` — the lockstep oracle observed the timing
  pipeline committing architectural state different from the pure
  functional executor.  Carries full provenance (SM, warp, instruction,
  cycle, first mismatching lane) and round-trips through JSON for the CI
  divergence-snapshot artifact.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional


class CheckError(RuntimeError):
    """Base class of all robustness-layer failures."""


class InvariantViolation(CheckError):
    """A WIR structure invariant does not hold.

    ``path`` is the dotted stats path of the offending structure relative
    to the owning SM subtree (e.g. ``"wir.rb"`` means the structure whose
    counters live at ``sm{N}.wir.rb``).
    """

    def __init__(self, message: str, path: Optional[str] = None) -> None:
        super().__init__(
            f"[{path}] {message}" if path else message)
        self.path = path


class ReuseCorruptionError(CheckError, AssertionError):
    """A reuse hit returned a value that differs from recomputation."""


def _jsonable(value: Any) -> Any:
    """Best-effort conversion of numpy scalars/arrays for the snapshot."""
    if hasattr(value, "tolist"):
        return value.tolist()
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


class DivergenceError(CheckError):
    """The timing pipeline and the golden model disagree.

    ``kind`` classifies the divergence:

    * ``"control"``  — the pipeline issued from a pc the shadow warp is not
      at (or from an exited shadow warp).
    * ``"mask"``     — active-mask mismatch for one instruction.
    * ``"branch"``   — branch taken-mask mismatch.
    * ``"register"`` / ``"predicate"`` — committed destination value differs.
    * ``"address"`` / ``"store"`` — memory operand mismatch.
    * ``"memory"``   — final memory image differs.
    * ``"exit"``     — a warp's final exit state differs.
    * ``"protocol"`` — the lockstep protocol itself broke (checker bug or
      a commit that never happened).
    """

    def __init__(
        self,
        message: str,
        *,
        kind: str = "register",
        benchmark: Optional[str] = None,
        sm_id: Optional[int] = None,
        cycle: Optional[int] = None,
        block_id: Optional[int] = None,
        warp_in_block: Optional[int] = None,
        warp_slot: Optional[int] = None,
        pc: Optional[int] = None,
        opcode: Optional[str] = None,
        lane: Optional[int] = None,
        expected: Any = None,
        actual: Any = None,
        repair: Any = None,
    ) -> None:
        where: List[str] = []
        if sm_id is not None:
            where.append(f"sm{sm_id}")
        if block_id is not None:
            where.append(f"block {block_id}")
        if warp_in_block is not None:
            where.append(f"warp {warp_in_block}")
        if warp_slot is not None:
            where.append(f"slot {warp_slot}")
        if pc is not None:
            where.append(f"pc {pc}")
        if opcode is not None:
            where.append(str(opcode))
        if cycle is not None:
            where.append(f"cycle {cycle}")
        prefix = f"[{kind}] " + (f"({', '.join(where)}) " if where else "")
        super().__init__(prefix + message)
        self.kind = kind
        self.benchmark = benchmark
        self.sm_id = sm_id
        self.cycle = cycle
        self.block_id = block_id
        self.warp_in_block = warp_in_block
        self.warp_slot = warp_slot
        self.pc = pc
        self.opcode = opcode
        self.lane = lane
        self.expected = expected
        self.actual = actual
        #: The golden-model value the caller may use to repair architectural
        #: state when quarantining instead of aborting (``None`` when the
        #: divergence is not repairable, e.g. control-flow divergence).
        self.repair = repair

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe snapshot (the CI failure artifact)."""
        return {
            "kind": self.kind,
            "message": str(self),
            "benchmark": self.benchmark,
            "sm_id": self.sm_id,
            "cycle": self.cycle,
            "block_id": self.block_id,
            "warp_in_block": self.warp_in_block,
            "warp_slot": self.warp_slot,
            "pc": self.pc,
            "opcode": self.opcode,
            "lane": self.lane,
            "expected": _jsonable(self.expected),
            "actual": _jsonable(self.actual),
        }
