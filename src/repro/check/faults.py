"""Deterministic fault injection for the WIR structures.

A :class:`FaultPlan` is a frozen, seeded description of *which* faults to
inject and *how often*; a :class:`FaultInjector` is the live, per-SM
instance the :class:`~repro.core.wir_unit.WIRUnit` consults from four hook
points.  Identical plans produce identical fault sequences, so every
failing fault run is replayable.

The fault taxonomy splits along the design's safety boundary:

**Architecturally-safe faults** — the design must absorb these without any
wrong result, because the verify-read (not the VSB hint) is the safety
mechanism:

* *signature squashing* (:meth:`FaultInjector.mutate_signature`) truncates
  VSB signatures to a few bits, forcing massive hash collisions.  Every
  collision must surface as a verify-read false positive, never a wrong
  reuse.
* *structure evictions* (:meth:`FaultInjector.tick_structures`) randomly
  drop reuse-buffer entries, VSB entries, and verify-cache lines.  These
  are availability faults: reuse opportunities disappear (pending waiters
  re-enter the reuse stage), results stay correct.
* *allocator scrambling* (:meth:`FaultInjector.scramble_allocated`) fills
  freshly allocated physical registers with garbage, modelling stale
  contents from a previous life.  Correctness requires that no pipeline
  path ever consumes an allocated register before fully writing it.

**Post-verify corruption** — :meth:`FaultInjector.maybe_corrupt_result`
flips a bit in the physical register *after* the verify point (at the
commit stage).  This is exactly the class of fault the design itself
cannot catch; it exists to prove the lockstep oracle (and, for arithmetic
reuse, the recomputation cross-check in the SM core) has teeth: a later
reuse of the corrupted register must raise ``DivergenceError`` /
``ReuseCorruptionError`` — or, with ``config.wir.quarantine`` set, must
quarantine the WIR unit and still produce correct results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.stats import StatGroup

#: Mirrors :data:`repro.core.physreg.ZERO_REG` without importing the core
#: layer (keeps this module importable from anywhere).
_ZERO_REG = 0


class FaultStats(StatGroup):
    """Counts of injected faults, adopted under ``sm{N}.wir.faults``."""

    COUNTERS = ("signature_squashes", "rb_evictions", "vsb_evictions",
                "vc_drops", "alloc_scrambles", "result_corruptions")


@dataclass(frozen=True)
class FaultPlan:
    """Seeded description of the faults to inject (all rates in [0, 1])."""

    seed: int = 0
    #: Probability of squashing each generated VSB signature.
    signature_squash_rate: float = 0.0
    #: Bits a squashed signature keeps (small => frequent collisions).
    signature_keep_bits: int = 4
    #: Per-issue probability of evicting a random reuse-buffer entry.
    rb_evict_rate: float = 0.0
    #: Per-issue probability of evicting a random VSB entry.
    vsb_evict_rate: float = 0.0
    #: Per-issue probability of dropping a random verify-cache line.
    vc_drop_rate: float = 0.0
    #: Probability of filling a freshly allocated register with garbage.
    alloc_scramble_rate: float = 0.0
    #: Per-commit probability of flipping a bit in the committed physical
    #: register — *past* the verify point.
    corrupt_result_rate: float = 0.0
    #: Restrict result corruption to loads.  Arithmetic reuse is checked by
    #: recomputation in the SM core, so loads-only corruption isolates the
    #: oracle as the only possible catcher.
    corrupt_loads_only: bool = True

    @property
    def any_enabled(self) -> bool:
        return any((self.signature_squash_rate, self.rb_evict_rate,
                    self.vsb_evict_rate, self.vc_drop_rate,
                    self.alloc_scramble_rate, self.corrupt_result_rate))


class FaultInjector:
    """Live fault source for one WIR unit (seeded per SM)."""

    def __init__(self, plan: FaultPlan, salt: int = 0) -> None:
        self.plan = plan
        self._rng = np.random.default_rng((plan.seed & 0xFFFFFFFF, salt))
        self.stats = FaultStats("faults")

    def _roll(self, rate: float) -> bool:
        return rate > 0.0 and self._rng.random() < rate

    # ----------------------------------------------------------- fault hooks

    def mutate_signature(self, signature: int) -> int:
        """Squash a VSB signature to ``signature_keep_bits`` bits."""
        if not self._roll(self.plan.signature_squash_rate):
            return signature
        self.stats.signature_squashes += 1
        return signature & ((1 << self.plan.signature_keep_bits) - 1)

    def tick_structures(self, unit) -> None:
        """Random structure evictions (called once per WIR issue stage)."""
        plan = self.plan
        if self._roll(plan.rb_evict_rate):
            rb = unit.reuse_buffer
            if rb.num_entries and rb.evict_index(
                    int(self._rng.integers(rb.num_entries))):
                self.stats.rb_evictions += 1
        if self._roll(plan.vsb_evict_rate):
            vsb = unit.vsb
            if vsb.num_entries and vsb.evict_index(
                    int(self._rng.integers(vsb.num_entries))):
                self.stats.vsb_evictions += 1
        if self._roll(plan.vc_drop_rate):
            if unit.verify_cache.drop_random(self._rng):
                self.stats.vc_drops += 1

    def scramble_allocated(self, physfile, reg: int) -> None:
        """Fill a freshly allocated register with garbage ("stale" bits)."""
        if reg == _ZERO_REG or not self._roll(self.plan.alloc_scramble_rate):
            return
        self.stats.alloc_scrambles += 1
        garbage = self._rng.integers(0, 1 << 32, size=physfile.read(reg).shape,
                                     dtype=np.uint32)
        physfile.write(reg, garbage)

    def maybe_corrupt_result(self, physfile, reg: int, is_load: bool) -> None:
        """Flip one bit of a committed result — past the verify point."""
        if reg == _ZERO_REG:
            return
        if self.plan.corrupt_loads_only and not is_load:
            return
        if not self._roll(self.plan.corrupt_result_rate):
            return
        self.stats.result_corruptions += 1
        values = physfile.read(reg).copy()
        lane = int(self._rng.integers(values.shape[0]))
        bit = int(self._rng.integers(32))
        values[lane] ^= np.uint32(1 << bit)
        physfile.write(reg, values)
