"""Lockstep golden-model oracle (the correctness pillar of ``repro.check``).

The WIR design's safety argument rests on the verify-read: a VSB hit is
only a *hint* and reuse is safe only because the candidate register's value
is compared against the freshly computed result before remapping.  The
simulator therefore needs an independent referee: a pure functional
executor with **no** renaming, no reuse buffer, no VSB — just
:mod:`repro.sim.exec_engine` semantics applied to private register state
and a private copy of the memory image.

:class:`LockstepChecker` runs that executor in lockstep with the timing
pipeline.  Every instruction the SM issues is replayed on a *shadow warp*
(same :class:`~repro.sim.warp.Warp` state machine, private storage) in the
exact same global order, and the architectural effects are compared:

* the shadow warp must be at the pc the pipeline issued from;
* active masks and branch outcomes must match;
* every committed destination register/predicate must match the shadow's
  value, including results delivered by reuse hits and pending-retry
  wakeups (the deferred-commit path);
* at the end of the run, every shadow warp must have exited and the final
  global/local memory images must be identical.

On the first mismatch a :class:`DivergenceError` with full provenance
(SM, block, warp, pc, opcode, cycle, first bad lane) is raised — or, when
``config.wir.quarantine`` is set, the SM repairs the register from the
golden value and quarantines its WIR unit (see ``SMCore.quarantine_wir``).

The comparison is exact (bit-for-bit on uint32 lanes): both sides run the
same numpy kernels on the same inputs, so any difference is a real
disagreement between the timing pipeline's bookkeeping and the ISA
semantics, not floating-point noise.
"""

from __future__ import annotations

import copy
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.check.errors import DivergenceError
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode, OpClass
from repro.sim.exec_engine import execute
from repro.sim.gpu import GPU, KernelLaunch, RunResult
from repro.sim.memory.space import MemoryImage
from repro.sim.warp import Warp
from repro.stats import StatGroup

#: Key identifying one warp for the whole launch (warp slots are recycled
#: across blocks; ``(block_id, warp_in_block)`` is unique).
WarpKey = Tuple[int, int]


class OracleStats(StatGroup):
    """Oracle effort counters, adopted into the run's stats registry."""

    COUNTERS = ("instructions", "commits", "memory_words")


def _first_mismatch(expected: np.ndarray, actual: np.ndarray) -> int:
    """Index of the first differing element of two equal-shape arrays."""
    diff = np.nonzero(expected != actual)[0]
    return int(diff[0]) if diff.size else -1


class LockstepChecker:
    """Pure functional referee running in lockstep with the SM pipelines.

    One instance checks one kernel launch.  The SM core drives it through
    two hooks:

    * :meth:`observe_issue` — at instruction issue: steps the shadow warp,
      checks control state, and snapshots the expected destination value;
    * :meth:`check_commit` — after the pipeline's functional commit
      (immediately for the execute/reuse paths, at wakeup for the
      pending-retry path): compares the committed value to the snapshot.

    :meth:`finalize` closes the loop with exit-state and memory-image
    comparison.
    """

    def __init__(self, benchmark: Optional[str] = None) -> None:
        self.benchmark = benchmark
        self.stats = OracleStats("oracle")
        self._program = None
        self._image: Optional[MemoryImage] = None
        self._shadows: Dict[WarpKey, Warp] = {}
        #: Outstanding expected commit per warp: (pc, kind, value copy).
        #: The scoreboard guarantees at most one in-flight writer per
        #: logical destination, and a queued (pending-retry) warp cannot
        #: issue further instructions, so one slot per warp suffices.
        self._pending: Dict[WarpKey, Tuple[int, str, np.ndarray]] = {}

    # ------------------------------------------------------------- lifecycle

    def begin(self, launch: KernelLaunch) -> None:
        """Snapshot the pristine memory image before the pipeline runs."""
        self._program = launch.program
        self._image = copy.deepcopy(launch.image)
        self._shadows.clear()
        self._pending.clear()

    # -------------------------------------------------------------- helpers

    def _shadow_for(self, warp: Warp) -> Warp:
        key = (warp.block.block_id, warp.warp_in_block)
        shadow = self._shadows.get(key)
        if shadow is None:
            shadow = Warp(warp.warp_slot, warp.block, warp.warp_in_block,
                          self._program)
            self._shadows[key] = shadow
        return shadow

    def _diverge(self, sm, warp: Warp, inst: Optional[Instruction],
                 message: str, **kwargs) -> DivergenceError:
        return DivergenceError(
            message,
            benchmark=self.benchmark,
            sm_id=getattr(sm, "sm_id", None),
            cycle=getattr(sm, "cycle", None),
            block_id=warp.block.block_id,
            warp_in_block=warp.warp_in_block,
            warp_slot=warp.warp_slot,
            pc=inst.pc if inst is not None else None,
            opcode=inst.opcode.value if inst is not None else None,
            **kwargs,
        )

    # ----------------------------------------------------------- issue hook

    def observe_issue(self, sm, warp: Warp, inst: Instruction,
                      exec_result) -> None:
        """Replay *inst* on the shadow warp and cross-check control state.

        Called by the SM core right after functional execution, before the
        reuse decision — i.e. once per issued instruction, in the global
        issue order (which is the order functional memory state mutates).
        """
        shadow = self._shadow_for(warp)
        if shadow.exited:
            raise self._diverge(
                sm, warp, inst, "pipeline issued from an exited shadow warp",
                kind="control")
        if shadow.pc != inst.pc:
            raise self._diverge(
                sm, warp, inst,
                f"pipeline issued pc {inst.pc} but the golden model is at "
                f"pc {shadow.pc}",
                kind="control", expected=shadow.pc, actual=inst.pc)

        s_res = execute(inst, shadow)
        if not np.array_equal(s_res.mask, exec_result.mask):
            lane = _first_mismatch(s_res.mask, exec_result.mask)
            raise self._diverge(
                sm, warp, inst, f"active-mask mismatch (first lane {lane})",
                kind="mask", lane=lane, expected=s_res.mask,
                actual=exec_result.mask)

        self.stats.instructions += 1
        cls = inst.op_class

        if cls is OpClass.CONTROL:
            if inst.opcode is Opcode.BRA:
                if not np.array_equal(s_res.taken_mask,
                                      exec_result.taken_mask):
                    lane = _first_mismatch(s_res.taken_mask,
                                           exec_result.taken_mask)
                    raise self._diverge(
                        sm, warp, inst,
                        f"branch taken-mask mismatch (first lane {lane})",
                        kind="branch", lane=lane, expected=s_res.taken_mask,
                        actual=exec_result.taken_mask)
                shadow.resolve_branch(inst.pc, s_res.taken_mask, inst.target)
            else:
                shadow.execute_exit(s_res.mask)
            return
        if cls in (OpClass.SYNC, OpClass.NOP):
            shadow.advance()
            return

        shadow.advance()
        if cls is OpClass.LOAD:
            if not np.array_equal(s_res.addresses, exec_result.addresses):
                lane = _first_mismatch(s_res.addresses, exec_result.addresses)
                raise self._diverge(
                    sm, warp, inst,
                    f"load address mismatch (first lane {lane})",
                    kind="address", lane=lane, expected=s_res.addresses,
                    actual=exec_result.addresses)
            store = self._image.store_for(inst.space, warp.block.block_id)
            values = store.load(s_res.addresses, s_res.mask)
            shadow.write_reg(inst.dst.value, values, s_res.mask)
        elif cls is OpClass.STORE:
            if not np.array_equal(s_res.addresses, exec_result.addresses):
                lane = _first_mismatch(s_res.addresses, exec_result.addresses)
                raise self._diverge(
                    sm, warp, inst,
                    f"store address mismatch (first lane {lane})",
                    kind="address", lane=lane, expected=s_res.addresses,
                    actual=exec_result.addresses)
            if not np.array_equal(s_res.store_values,
                                  exec_result.store_values):
                lane = _first_mismatch(s_res.store_values,
                                       exec_result.store_values)
                raise self._diverge(
                    sm, warp, inst,
                    f"store value mismatch (first lane {lane})",
                    kind="store", lane=lane, expected=s_res.store_values,
                    actual=exec_result.store_values)
            store = self._image.store_for(inst.space, warp.block.block_id)
            store.store(s_res.addresses, s_res.store_values, s_res.mask)
        else:
            if s_res.result is not None:
                shadow.write_reg(inst.dst.value, s_res.result, s_res.mask)
            if s_res.pred_result is not None:
                shadow.write_pred(inst.dst.value, s_res.pred_result,
                                  s_res.mask)

        key = (warp.block.block_id, warp.warp_in_block)
        if inst.writes_register:
            self._pending[key] = (
                inst.pc, "register", shadow.read_reg(inst.dst.value).copy())
        elif inst.writes_predicate:
            self._pending[key] = (
                inst.pc, "predicate", shadow.read_pred(inst.dst.value).copy())

    # ---------------------------------------------------------- commit hook

    def check_commit(self, sm, warp: Warp, inst: Instruction) -> None:
        """Compare the pipeline's committed destination against the oracle.

        Called once the destination value is architecturally visible:
        at the end of issue for the execute and immediate-reuse paths, and
        at wakeup for the pending-retry path.  Raises
        :class:`DivergenceError` (with ``repair`` set to the golden value)
        on mismatch.
        """
        key = (warp.block.block_id, warp.warp_in_block)
        entry = self._pending.pop(key, None)
        if entry is None:
            return  # nothing to check (no register/predicate destination)
        pc, kind, expected = entry
        if pc != inst.pc:
            raise self._diverge(
                sm, warp, inst,
                f"commit for pc {inst.pc} but the oracle expected the "
                f"commit of pc {pc} first",
                kind="protocol", expected=pc, actual=inst.pc)
        if kind == "register":
            actual = warp.read_reg(inst.dst.value)
        else:
            actual = warp.read_pred(inst.dst.value)
        if not np.array_equal(expected, actual):
            lane = _first_mismatch(expected, actual)
            raise self._diverge(
                sm, warp, inst,
                f"committed {kind} r{inst.dst.value} diverges from the "
                f"golden model at lane {lane} "
                f"(expected {expected[lane]}, got {actual[lane]})",
                kind=kind, lane=lane, expected=expected.copy(),
                actual=actual.copy(), repair=expected)
        self.stats.commits += 1

    # ------------------------------------------------------------- finalize

    def finalize(self, launch: KernelLaunch, sms) -> None:
        """End-of-run checks: exit states, protocol drain, memory image."""
        for (block_id, warp_in_block), shadow in self._shadows.items():
            if not shadow.exited:
                raise DivergenceError(
                    f"the pipeline completed but the golden warp "
                    f"(block {block_id}, warp {warp_in_block}) has not "
                    f"exited (stuck at pc {shadow.pc})",
                    kind="exit", benchmark=self.benchmark,
                    block_id=block_id, warp_in_block=warp_in_block,
                    pc=shadow.pc)
        if self._pending:
            (block_id, warp_in_block), (pc, kind, _) = next(
                iter(self._pending.items()))
            raise DivergenceError(
                f"run completed with an unchecked {kind} commit "
                f"(block {block_id}, warp {warp_in_block}, pc {pc})",
                kind="protocol", benchmark=self.benchmark,
                block_id=block_id, warp_in_block=warp_in_block, pc=pc)

        for name, timing_store, golden_store in (
            ("global", launch.image.global_mem, self._image.global_mem),
            ("local", launch.image.local_mem, self._image.local_mem),
        ):
            words = max(timing_store.size_words, golden_store.size_words)
            timing = timing_store.read_block(0, words)
            golden = golden_store.read_block(0, words)
            self.stats.memory_words += words
            if not np.array_equal(timing, golden):
                word = _first_mismatch(golden, timing)
                raise DivergenceError(
                    f"final {name} memory diverges at byte address "
                    f"{word * 4:#x} (expected {golden[word]}, got "
                    f"{timing[word]})",
                    kind="memory", benchmark=self.benchmark,
                    expected=int(golden[word]), actual=int(timing[word]))


class CheckedGPU(GPU):
    """A :class:`GPU` that referees every launch against the golden model.

    Also turns on periodic WIR invariant checking (every 64 cycles unless
    the config already sets an interval) — checked mode is exactly where
    that assertion should be armed.
    """

    #: Interval used when the config does not set one (perf runs keep 0).
    DEFAULT_INVARIANT_INTERVAL = 64

    def __init__(self, config, profiler_factory=None, fault_plan=None,
                 benchmark: Optional[str] = None) -> None:
        if config.wir.enabled and not config.wir.invariant_check_interval:
            config.wir.invariant_check_interval = (
                self.DEFAULT_INVARIANT_INTERVAL)
        super().__init__(config, profiler_factory=profiler_factory,
                         fault_plan=fault_plan)
        self._benchmark = benchmark

    def run(self, launch: KernelLaunch, resume=None) -> RunResult:
        # Forward ``resume`` so the harness can call every GPU uniformly;
        # GPU._check_resumable still refuses an actual resume while the
        # lockstep checker is attached.
        self._checker = LockstepChecker(benchmark=self._benchmark)
        try:
            return super().run(launch, resume=resume)
        finally:
            self._checker = None


def check_benchmark(
    abbr: str,
    model: str = "RLPV",
    scale: int = 1,
    seed: int = 7,
    num_sms: int = 2,
    fault_plan=None,
    **wir_overrides,
) -> Dict[str, object]:
    """Run one benchmark under the lockstep oracle and verify its output.

    Always simulates (no result cache — a cached result would check
    nothing).  Returns a summary dict; raises :class:`DivergenceError` /
    :class:`InvariantViolation` on failure.
    """
    from repro.core.models import model_config
    from repro.workloads import build_workload

    config = model_config(model, **wir_overrides)
    config.num_sms = num_sms
    workload = build_workload(abbr, scale=scale, seed=seed)
    launch = KernelLaunch(workload.program, workload.grid, workload.block,
                          workload.image)
    gpu = CheckedGPU(config, fault_plan=fault_plan, benchmark=abbr)
    result = gpu.run(launch)
    workload.verify()
    return {
        "benchmark": abbr,
        "model": model,
        "cycles": result.cycles,
        "instructions": result.stat("oracle.instructions"),
        "commits": result.stat("oracle.commits"),
        "quarantines": (result.sm_stat("wir.quarantines")
                        if "wir" in result.sm_groups[0].children else 0),
        "result": result,
    }
