"""Deterministic checkpoint/restore of simulator state (DESIGN.md §12).

``repro.ckpt`` turns the simulator's live object graph into a plain-data,
schema-versioned, checksummed snapshot that a fresh process can restore
bit-identically.  Every stateful component exposes an explicit
``state_dict()`` / ``load_state()`` pair — there is no pickling of live
objects, so snapshots survive refactors that preserve the schema and are
human-inspectable JSON.

Layout:

* :mod:`repro.ckpt.codec` — numpy array <-> JSON-safe dict encoding.
* :mod:`repro.ckpt.snapshot` — the on-disk container: format/schema
  versioning, SHA-256 checksum, atomic unique-temp-name writes, and
  read/verify/inspect helpers.
"""

from repro.ckpt.codec import decode_array, encode_array
from repro.ckpt.snapshot import (
    CKPT_FORMAT,
    CKPT_SCHEMA,
    CheckpointError,
    atomic_write_text,
    inspect_checkpoint,
    read_checkpoint,
    write_checkpoint,
)

__all__ = [
    "CKPT_FORMAT",
    "CKPT_SCHEMA",
    "CheckpointError",
    "atomic_write_text",
    "decode_array",
    "encode_array",
    "inspect_checkpoint",
    "read_checkpoint",
    "write_checkpoint",
]
