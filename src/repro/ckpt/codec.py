"""Numpy <-> JSON-safe encoding for checkpoint payloads.

Arrays are serialized as ``{"dtype", "shape", "data"}`` with the raw bytes
base64-encoded.  ``dtype`` uses the explicit-endianness string form
(``"<u4"``), so a snapshot taken on one machine decodes identically on
another; decoding copies out of the base64 buffer so the result is a
normal writable array.
"""

from __future__ import annotations

import base64
from typing import Dict, Optional

import numpy as np


def encode_array(arr: Optional[np.ndarray]) -> Optional[Dict]:
    """JSON-safe form of *arr* (``None`` passes through)."""
    if arr is None:
        return None
    arr = np.ascontiguousarray(arr)
    return {
        "dtype": arr.dtype.str,
        "shape": list(arr.shape),
        "data": base64.b64encode(arr.tobytes()).decode("ascii"),
    }


def decode_array(data: Optional[Dict]) -> Optional[np.ndarray]:
    """Inverse of :func:`encode_array`; returns a fresh writable array."""
    if data is None:
        return None
    raw = base64.b64decode(data["data"])
    arr = np.frombuffer(raw, dtype=np.dtype(data["dtype"]))
    return arr.reshape(data["shape"]).copy()
