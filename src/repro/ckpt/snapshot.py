"""The on-disk checkpoint container.

A checkpoint file is one JSON object::

    {
      "format":   1,          # file container layout
      "schema":   1,          # simulator state_dict schema
      "meta":     {...},      # program/launch/config identity (free-form)
      "state":    {...},      # GPU.state_dict() payload
      "checksum": "sha256..." # over the canonical body minus this key
    }

The checksum is computed over ``json.dumps(body, sort_keys=True)`` with the
``checksum`` key absent — the same recipe as the harness result cache
(``repro.harness.runner._payload_checksum``) — so truncated or bit-rotted
files are detected before any state is restored.  Writes go to a unique
per-process ``*.tmp`` name in the target directory and are published with
``os.replace``, so concurrent writers and SIGKILLed workers can never leave
a torn checkpoint under the final name (orphaned temps are swept by
``repro cache verify --prune``).
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
from pathlib import Path
from typing import Callable, Dict, Optional

#: Bump when the file container layout changes incompatibly.
CKPT_FORMAT = 1
#: Bump when any component's ``state_dict`` schema changes incompatibly.
#: 2: the SM's functional-unit timing moved into a ``pipeline`` sub-document
#: keyed by stage name (repro.pipeline), replacing the top-level
#: ``sp_free``/``sfu_free``/``mem_free`` keys.
CKPT_SCHEMA = 2

#: Test seam: called as ``hook(cycle, path)`` after every checkpoint write.
#: The chaos tests install a hook that SIGKILLs the worker at a chosen
#: checkpoint, proving the harness resumes from the file just written.
_TEST_HOOK: Optional[Callable[[int, Path], None]] = None

_TMP_COUNTER = itertools.count()


class CheckpointError(RuntimeError):
    """A checkpoint file is missing, corrupt, or incompatible."""


def _checksum(body: Dict) -> str:
    canonical = json.dumps(body, sort_keys=True).encode()
    return hashlib.sha256(canonical).hexdigest()


def atomic_write_text(path: Path, text: str) -> None:
    """Write *text* to *path* via a unique same-directory temp + rename.

    The temp name embeds the pid and a process-local counter, so two
    workers publishing the same path never truncate each other's temp
    file mid-replace; ``os.replace`` makes the final publish atomic.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.parent / f"{path.name}.{os.getpid()}.{next(_TMP_COUNTER)}.tmp"
    try:
        tmp.write_text(text)
        os.replace(tmp, path)
    finally:
        if tmp.exists():
            tmp.unlink()


def write_checkpoint(path, state: Dict, meta: Dict) -> Path:
    """Atomically write a checkpoint file; returns the final path."""
    path = Path(path)
    body = {
        "format": CKPT_FORMAT,
        "schema": CKPT_SCHEMA,
        "meta": meta,
        "state": state,
    }
    payload = dict(body)
    payload["checksum"] = _checksum(body)
    atomic_write_text(path, json.dumps(payload, sort_keys=True))
    hook = _TEST_HOOK
    if hook is not None:
        hook(int(state.get("cycle", -1)), path)
    return path


def read_checkpoint(path) -> Dict:
    """Load and verify a checkpoint file; raises :class:`CheckpointError`."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except FileNotFoundError:
        raise CheckpointError(f"no checkpoint at {path}") from None
    except (OSError, json.JSONDecodeError) as err:
        raise CheckpointError(f"unreadable checkpoint {path}: {err}") from None
    if not isinstance(payload, dict):
        raise CheckpointError(f"malformed checkpoint {path}: not an object")
    if payload.get("format") != CKPT_FORMAT:
        raise CheckpointError(
            f"checkpoint {path} has container format "
            f"{payload.get('format')!r}; this build reads {CKPT_FORMAT}")
    if payload.get("schema") != CKPT_SCHEMA:
        raise CheckpointError(
            f"checkpoint {path} has state schema {payload.get('schema')!r}; "
            f"this build reads {CKPT_SCHEMA}")
    stored = payload.get("checksum")
    body = {k: v for k, v in payload.items() if k != "checksum"}
    if stored != _checksum(body):
        raise CheckpointError(f"checksum mismatch in checkpoint {path}")
    return payload


def inspect_checkpoint(path) -> Dict:
    """Summary of a checkpoint (validates it as a side effect).

    Returns plain data fit for ``repro ckpt inspect``: versions, checksum
    status, the snapshot cycle, the stored meta, and per-SM occupancy.
    """
    # Deferred import: repro.ckpt must stay importable without triggering
    # the simulator package (serde pulls in the exec engine).
    from repro.sim.serde import event_kind_summary

    payload = read_checkpoint(path)
    state = payload["state"]
    sms = []
    for sm in state.get("sms", []):
        sms.append({
            "resident_blocks": len(sm.get("blocks", {})),
            "live_warps": sum(1 for w in sm.get("warps", []) if w is not None),
            "queued_events": len(sm.get("events", [])),
            "event_kinds": event_kind_summary(sm.get("events", [])),
        })
    return {
        "path": str(path),
        "format": payload["format"],
        "schema": payload["schema"],
        "checksum": "ok",
        "cycle": state.get("cycle"),
        "next_block_index": state.get("next_block_index"),
        "meta": payload.get("meta", {}),
        "sms": sms,
    }
