"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list``                      — benchmarks (Table I) and design points.
* ``run ABBR [--model M] ...``  — simulate one benchmark, print statistics
  (``--json OUT`` additionally dumps the full result registry as JSON).
* ``check [ABBR ...|--all]``    — referee benchmarks against the lockstep
  golden-model oracle (``--snapshot OUT`` writes a JSON divergence report
  on failure, e.g. for a CI artifact).
* ``cache verify [--prune]``    — audit the on-disk result cache's
  checksums, optionally deleting corrupt entries and sweeping orphaned
  temp files left behind by killed workers.
* ``ckpt save ABBR --cycle N --out PATH`` — run a workload to cycle N and
  snapshot the full simulator state; ``ckpt resume PATH`` finishes such a
  run bit-identically in a fresh process; ``ckpt inspect PATH`` validates
  a checkpoint's checksum and summarises its contents.
* ``trace ABBR [--chrome OUT] [--stalls]`` — run one workload with the
  observability layer armed: print the per-SM stall-attribution table and
  export a Chrome ``trace_event`` JSON (chrome://tracing / Perfetto).
* ``bench [--check] ...``       — time the simulator itself (cycles/sec,
  scalar vs vector engine) over the pinned subset; write
  ``BENCH_sim_throughput.json`` and optionally gate against the committed
  baseline (>15% normalized regression fails).
* ``pipeline show``             — print the composed stage graph (declared
  dataflow, engine bindings, stats, checkpointed state) for a config.
* ``campaign run ...``          — materialize a workload × model × scale ×
  seed × sweep matrix into a crash-safe job graph and drive it with
  leased, checkpoint-resuming workers; ``campaign status`` reports
  progress/failures of any campaign (running or dead), ``campaign
  resume`` restarts the worker fleet, ``campaign work`` is one worker
  process (normally spawned by ``run``).
* ``serve --dir DIR``           — results-as-a-service: an asyncio HTTP API
  answering figure queries from the checksummed result cache (digest-derived
  ETags, 304 revalidation); misses become 202 + durable campaign jobs.
* ``query FIG --workload W``    — the same figure document ``serve`` would
  return, computed locally through the harness (simulating on miss); the
  serve test battery pins the two byte-identical.
* ``compare ABBR``              — one benchmark across the whole model zoo.
* ``profile ABBR``              — Figure 2 repeated-computation profile.
* ``experiment NAME``           — run one figure/table driver (fig2..fig22,
  table1..table3) and print the rendered rows; ``--jobs N`` simulates in
  parallel, ``--json OUT`` dumps the raw data.
* ``params``                    — Table II simulation parameters.

Set ``REPRO_CACHE_DIR`` to persist simulation results on disk between
invocations (see :mod:`repro.harness.runner`).
"""

from __future__ import annotations

import argparse
import json
import shlex
import sys
from pathlib import Path
from typing import List, Optional

from repro.core.models import MODEL_ORDER, model_names
from repro.harness import experiments, reporting
from repro.harness.runner import RunSpec, prefetch, run_benchmark
from repro.workloads import DEMO_WORKLOADS, WORKLOADS, all_abbrs

EXPERIMENTS = {
    "fig2": (experiments.fig2_repeated_computations, "per-benchmark", True),
    "fig12": (experiments.fig12_backend_instructions, "per-benchmark", False),
    "fig13": (experiments.fig13_backend_operations, "per-benchmark", False),
    "fig14": (experiments.fig14_gpu_energy, "per-benchmark", False),
    "fig15": (experiments.fig15_l1_accesses, "per-benchmark", False),
    "fig16": (experiments.fig16_sm_energy, "series", False),
    "fig17": (experiments.fig17_speedup, "per-benchmark", False),
    "fig18": (experiments.fig18_verify_cache, "per-benchmark", False),
    "fig19": (experiments.fig19_register_utilization, "per-benchmark", False),
    "fig20": (experiments.fig20_vsb_sweep, "series", False),
    "fig21": (experiments.fig21_reuse_buffer_sweep, "series", False),
    "fig22": (experiments.fig22_delay_sweep, "series", False),
}


def _write_json(text: str, dest: str) -> None:
    """Write a JSON payload to a file, or stdout when *dest* is ``-``."""
    if dest == "-":
        print(text)
    else:
        Path(dest).write_text(text + "\n")


def _cmd_list(_args) -> int:
    rows = [[info.abbr, info.name, info.suite,
             "-" if info.fp_fraction is None else f"{info.fp_fraction:.0%}"]
            for info in WORKLOADS.values()]
    print(reporting.format_table(["abbr", "name", "suite", "%FP"], rows,
                                 title="Benchmarks (Table I, Figure 2 order)"))
    print()
    print("Design points:", ", ".join(MODEL_ORDER))
    return 0


def _cmd_run(args) -> int:
    run = run_benchmark(args.benchmark, args.model, scale=args.scale,
                        seed=args.seed, num_sms=args.sms)
    result = run.result
    print(f"{args.benchmark} on {args.model} "
          f"({args.sms} SMs, scale {args.scale}, seed {args.seed})")
    print(f"  cycles                 {result.cycles}")
    print(f"  issued instructions    {result.issued_instructions}")
    print(f"  backend instructions   {result.backend_instructions}")
    print(f"  reused instructions    {result.reused_instructions} "
          f"({result.reuse_fraction:.1%})")
    print(f"  reused loads           {result.sm_stat('core.reused_loads')}")
    print(f"  L1D accesses / misses  {result.sm_stat('l1d.accesses')} / "
          f"{result.sm_stat('l1d.misses')}")
    print(f"  DRAM accesses          {result.stat('memory.dram.accesses')}")
    print(f"  SM energy              {run.energy.sm_total / 1e6:.2f} uJ")
    print(f"  GPU energy             {run.energy.gpu_total / 1e6:.2f} uJ")
    if "wir" in result.sm_groups[0].children:
        vsb_hits = result.sm_stat("wir.vsb.hits")
        vsb_lookups = result.sm_stat("wir.vsb.lookups")
        print(f"  VSB hit rate           {vsb_hits / max(1, vsb_lookups):.1%}")
        print(f"  dummy MOVs             {result.sm_stat('wir.dummy_movs')}")
        print(f"  verify-reads (bank)    {result.sm_stat('wir.verify_reads')}")
    if args.json:
        _write_json(result.to_json(indent=2), args.json)
    return 0


def _cmd_compare(args) -> int:
    if args.jobs > 1:
        prefetch((RunSpec.make(args.benchmark, model, num_sms=args.sms)
                  for model in ["Base"] + list(MODEL_ORDER)), jobs=args.jobs)
    base = run_benchmark(args.benchmark, "Base", num_sms=args.sms)
    rows = []
    for model in MODEL_ORDER:
        run = run_benchmark(args.benchmark, model, num_sms=args.sms)
        rows.append([
            model,
            f"{run.reuse_fraction:.1%}",
            f"{base.cycles / run.cycles:.3f}",
            f"{run.energy.sm_total / base.energy.sm_total:.3f}",
            f"{run.energy.gpu_total / base.energy.gpu_total:.3f}",
        ])
    print(reporting.format_table(
        ["model", "reused", "speedup", "SM energy/Base", "GPU energy/Base"],
        rows, title=f"{args.benchmark} across the model zoo"))
    return 0


def _cmd_profile(args) -> int:
    run = run_benchmark(args.benchmark, "Base", num_sms=args.sms, profile=True)
    profile = run.profile
    print(f"{args.benchmark}: {profile.instructions} instructions profiled "
          f"in {profile.windows} full 1K windows")
    print(f"  repeated computations: {profile.repeat_fraction:.1%} "
          f"(paper suite average: 31.4%)")
    print(f"  repeated more than 10x: {profile.high_repeat_fraction:.1%}")
    return 0


def _cmd_experiment(args) -> int:
    try:
        driver, kind, percent = EXPERIMENTS[args.name]
    except KeyError:
        if args.name == "table1":
            return _cmd_list(args)
        if args.name == "table2":
            return _cmd_params(args)
        if args.name == "table3":
            data = experiments.table3_hardware_costs()
            if args.json:
                _write_json(json.dumps(data, indent=2, default=str), args.json)
            for name, row in data.items():
                print(name, row)
            return 0
        print(f"unknown experiment {args.name!r}; choose from "
              f"{', '.join(EXPERIMENTS)} or table1/table2/table3",
              file=sys.stderr)
        return 2
    # Only pass jobs through when parallelism was requested, so drivers (and
    # test stand-ins) without a jobs parameter keep working.
    data = driver(jobs=args.jobs) if args.jobs > 1 else driver()
    if kind == "per-benchmark":
        print(reporting.render_per_benchmark(data, title=args.name,
                                             percent=percent))
    else:
        print(reporting.render_series(data, "x", "value", title=args.name))
    if args.json:
        _write_json(json.dumps(data, indent=2, default=str), args.json)
    return 0


def _cmd_check(args) -> int:
    from repro.check import CheckError, check_benchmark

    abbrs = list(args.benchmarks) or (all_abbrs() if args.all else [])
    if not abbrs:
        print("check: name at least one benchmark or pass --all",
              file=sys.stderr)
        return 2
    unknown = [abbr for abbr in abbrs if abbr not in all_abbrs()]
    if unknown:
        print(f"check: unknown benchmark(s) {', '.join(unknown)} "
              f"(see 'repro list')", file=sys.stderr)
        return 2
    failed = 0
    for abbr in abbrs:
        try:
            info = check_benchmark(abbr, model=args.model, scale=args.scale,
                                   seed=args.seed, num_sms=args.sms)
        except CheckError as err:
            failed += 1
            print(f"FAIL {abbr:<4} {err}")
            if args.snapshot:
                snapshot = (err.to_dict() if hasattr(err, "to_dict")
                            else {"kind": "invariant", "message": str(err),
                                  "benchmark": abbr})
                _write_json(json.dumps(snapshot, indent=2, default=str),
                            args.snapshot)
        else:
            print(f"OK   {abbr:<4} {info['cycles']} cycles, "
                  f"{info['instructions']} instructions refereed, "
                  f"{info['commits']} commits checked")
    print(f"{len(abbrs) - failed}/{len(abbrs)} benchmarks verified "
          f"against the golden model ({args.model})")
    return 1 if failed else 0


def _cmd_trace(args) -> int:
    from repro.core.models import model_config
    from repro.sim.gpu import GPU, KernelLaunch
    from repro.trace import export_chrome_trace, validate_chrome_trace
    from repro.workloads import build_workload

    config = model_config(args.model)
    config.num_sms = args.sms
    config.trace.stalls = True
    config.trace.enabled = True
    config.trace.ring_capacity = args.ring_capacity
    config.trace.sample_period = args.sample_period
    config.trace.sample_window = args.sample_window

    workload = build_workload(args.benchmark, scale=args.scale, seed=args.seed)
    launch = KernelLaunch(workload.program, workload.grid, workload.block,
                          workload.image)
    result = GPU(config).run(launch)
    workload.verify()

    print(f"{args.benchmark} on {args.model} "
          f"({args.sms} SMs, scale {args.scale}, seed {args.seed}): "
          f"{result.cycles} cycles, {result.issued_instructions} issued")

    # Conservation is the layer's core invariant; trip hard if it fails.
    violations = []
    for sm in result.sm_groups:
        stall = sm.lookup("stall")
        try:
            stall.check_conservation()
        except AssertionError as err:
            violations.append(str(err))
    if violations:
        for violation in violations:
            print(f"CONSERVATION VIOLATION: {violation}", file=sys.stderr)
        return 1

    if args.stalls:
        print()
        print(reporting.render_stall_table(
            result.stall_breakdown(),
            title=f"Stall attribution — {args.benchmark}/{args.model}"))

    if args.chrome:
        trace = export_chrome_trace(result.trace, path=args.chrome)
        problems = validate_chrome_trace(trace)
        if problems:
            for problem in problems:
                print(f"TRACE SCHEMA PROBLEM: {problem}", file=sys.stderr)
            return 1
        ring = result.trace.ring
        print(f"\nwrote {args.chrome}: {len(trace['traceEvents'])} events"
              + (f" ({ring.dropped} dropped at ring capacity "
                 f"{ring.capacity})" if ring.dropped else ""))
    return 0


def _cmd_bench(args) -> int:
    from repro.bench import (DEFAULT_REPORT_NAME, ENGINES, PINNED_SUBSET,
                             BenchReport, compare_reports, measure_subset,
                             speedup_table)

    baseline_path = Path(args.baseline or DEFAULT_REPORT_NAME)
    if args.check and not baseline_path.exists():
        print(f"bench: no baseline at {baseline_path} "
              "(run 'repro bench' once and commit the report)",
              file=sys.stderr)
        return 2

    subset = PINNED_SUBSET
    if args.quick:
        # Small-scale spot check (CI smoke / local sanity): same workloads,
        # lighter scales, one rep.  Never written over the committed report.
        subset = tuple((abbr, max(1, scale - 2)) for abbr, scale in subset)
    reps = 1 if args.quick else args.reps

    print(f"timing {len(subset)} workloads x {len(ENGINES)} engines, "
          f"best of {reps} rep{'s' if reps != 1 else ''} ...")
    report = measure_subset(reps=reps, subset=subset, progress=print)
    for engine in ENGINES:
        print(f"aggregate {engine:<10} {report.aggregate_cps(engine):,.0f} "
              f"cycles/sec (normalized "
              f"{report.aggregate_cps(engine, normalized=True):,.0f})")
    print(f"vector speedup: {report.vector_speedup:.2f}x")
    print(f"superblock speedup: {report.superblock_speedup:.2f}x")

    out = args.out
    if out is None and not args.quick and not args.check:
        out = DEFAULT_REPORT_NAME
    if out is not None:
        Path(out).write_text(report.to_json())
        print(f"wrote {out}")
    if args.table is not None:
        Path(args.table).write_text(speedup_table(report))
        print(f"wrote {args.table}")

    if args.check:
        gate = compare_reports(report, BenchReport.load(baseline_path))
        for message in gate.messages:
            print(message)
        if not gate.ok:
            print("bench: throughput regression gate FAILED", file=sys.stderr)
            return 1
        print("bench: throughput regression gate passed")
    return 0


def _cmd_cache_verify(args) -> int:
    from repro.harness.runner import cache_dir, verify_cache_dir

    base = args.dir or cache_dir()
    if base is None:
        print("cache verify: no cache directory (set REPRO_CACHE_DIR or "
              "pass --dir)", file=sys.stderr)
        return 2
    report = verify_cache_dir(base, prune=args.prune)
    print(f"{base}: {report.total} entries — {report.ok} ok, "
          f"{report.corrupt} corrupt, {report.version_mismatch} "
          f"older-format, {report.tmp_orphans} orphaned temp file"
          + ("" if report.tmp_orphans == 1 else "s"))
    if report.ckpt_orphans or report.lease_expired:
        print(f"  campaign debris: {report.ckpt_orphans} orphaned "
              f"checkpoint slot" + ("" if report.ckpt_orphans == 1 else "s")
              + f", {report.lease_expired} expired lease file"
              + ("" if report.lease_expired == 1 else "s"))
    if report.ckpt_leased or report.tmp_fresh:
        print(f"  in use (left alone): {report.ckpt_leased} leased "
              f"checkpoint slot" + ("" if report.ckpt_leased == 1 else "s")
              + f", {report.tmp_fresh} fresh temp file"
              + ("" if report.tmp_fresh == 1 else "s"))
    for path in report.corrupt_paths:
        print(f"  corrupt: {path}" + ("  (deleted)" if args.prune else ""))
    if args.prune and report.pruned:
        print(f"pruned {report.pruned} corrupt entr"
              + ("y" if report.pruned == 1 else "ies"))
    if args.prune and report.tmp_pruned:
        print(f"swept {report.tmp_pruned} orphaned temp file"
              + ("" if report.tmp_pruned == 1 else "s"))
    if args.prune and (report.ckpt_pruned or report.lease_pruned):
        print(f"swept {report.ckpt_pruned} spent checkpoint slot"
              + ("" if report.ckpt_pruned == 1 else "s")
              + f" and {report.lease_pruned} expired lease"
              + ("" if report.lease_pruned == 1 else "s"))
    return 1 if report.corrupt and not args.prune else 0


def _cmd_ckpt_save(args) -> int:
    from repro.ckpt import write_checkpoint
    from repro.core.models import model_config
    from repro.sim.gpu import GPU, KernelLaunch
    from repro.workloads import build_workload

    config = model_config(args.model)
    config.num_sms = args.sms
    config.exec_engine = args.engine
    workload = build_workload(args.benchmark, scale=args.scale, seed=args.seed)
    launch = KernelLaunch(workload.program, workload.grid, workload.block,
                          workload.image)
    gpu = GPU(config)
    gpu.checkpoint_meta_extra = {
        "workload": {"abbr": args.benchmark, "scale": args.scale,
                     "seed": args.seed},
    }
    status, payload = gpu.run_to_cycle(launch, args.cycle)
    if status == "done":
        print(f"ckpt save: {args.benchmark} completed at cycle "
              f"{payload.cycles}, before the requested cycle {args.cycle}; "
              "nothing to checkpoint", file=sys.stderr)
        return 1
    write_checkpoint(Path(args.out), payload,
                     meta=gpu.checkpoint_meta(launch))
    print(f"wrote {args.out}: {args.benchmark}/{args.model} "
          f"({args.engine} engine) paused at cycle {payload['cycle']}, "
          f"{payload['next_block_index']}/{launch.total_blocks} blocks "
          "dispatched")
    return 0


def _cmd_ckpt_resume(args) -> int:
    from repro.ckpt import CheckpointError, read_checkpoint
    from repro.sim.config import GPUConfig
    from repro.sim.gpu import GPU, KernelLaunch
    from repro.stats import dataclass_from_dict
    from repro.workloads import build_workload

    try:
        ckpt = read_checkpoint(Path(args.path))
    except CheckpointError as err:
        print(f"ckpt resume: {args.path}: {err}", file=sys.stderr)
        return 1
    meta = ckpt["meta"]
    workload_meta = meta.get("workload")
    if not workload_meta:
        print("ckpt resume: checkpoint meta carries no workload identity "
              "(written by an external tool?)", file=sys.stderr)
        return 1
    config = dataclass_from_dict(GPUConfig, meta["config"])
    workload = build_workload(workload_meta["abbr"],
                              scale=workload_meta["scale"],
                              seed=workload_meta["seed"])
    launch = KernelLaunch(workload.program, workload.grid, workload.block,
                          workload.image)
    result = GPU(config).run(launch, resume=ckpt["state"])
    workload.verify()
    print(f"resumed {workload_meta['abbr']} from cycle "
          f"{ckpt['state']['cycle']} and completed at cycle {result.cycles} "
          f"({result.issued_instructions} instructions issued; "
          "workload output verified)")
    if args.json:
        _write_json(result.to_json(indent=2), args.json)
    return 0


def _cmd_ckpt_inspect(args) -> int:
    from repro.ckpt import CheckpointError, inspect_checkpoint

    try:
        info = inspect_checkpoint(Path(args.path))
    except CheckpointError as err:
        print(f"ckpt inspect: {args.path}: {err}", file=sys.stderr)
        return 1
    print(json.dumps(info, indent=2, default=str))
    return 0


def _cmd_pipeline_show(args) -> int:
    from repro import MemoryImage, assemble
    from repro.core.models import model_config
    from repro.sim.memory.subsystem import MemorySubsystem
    from repro.sim.smcore import SMCore

    config = model_config(args.model)
    config.exec_engine = args.engine
    # A one-instruction program: stage composition depends only on config.
    sm = SMCore(0, config, assemble("    exit"),
                MemorySubsystem(config, MemoryImage()))
    stages = sm.pipeline.describe()
    if args.json:
        _write_json(json.dumps(stages, indent=2), args.json)
        return 0
    print(f"pipeline for model {args.model} ({args.engine} engine) — "
          f"{len(stages)} stages")
    for desc in stages:
        print(f"\n{desc['name']}  [{desc['binding']}]")
        print(f"  in:    {', '.join(desc['inputs']) or '-'}")
        print(f"  out:   {', '.join(desc['outputs']) or '-'}")
        if desc["state_fields"]:
            print(f"  state: {', '.join(desc['state_fields'])}")
        if desc["stats"]:
            print(f"  stats: {', '.join(desc['stats'])}")
    return 0


def _campaign_base(args) -> Optional[Path]:
    from repro.harness.runner import cache_dir
    base = Path(args.dir) if args.dir else cache_dir()
    if base is None:
        print("campaign: no cache directory (set REPRO_CACHE_DIR or pass "
              "--dir)", file=sys.stderr)
    return base


def _parse_sweeps(pairs: List[str]) -> dict:
    """``--sweep name=v1,v2`` flags into MatrixSpec sweep kwargs."""
    sweeps = {}
    for pair in pairs or []:
        name, _, values = pair.partition("=")
        if not values:
            raise SystemExit(f"campaign: malformed --sweep {pair!r} "
                             "(want name=v1,v2,...)")
        def convert(text):
            for caster in (int, float):
                try:
                    return caster(text)
                except ValueError:
                    continue
            return text
        sweeps[name] = tuple(convert(v) for v in values.split(","))
    return sweeps


def _campaign_matrix(args):
    from repro.campaign import MatrixSpec
    if args.spec:
        return MatrixSpec.from_dict(json.loads(Path(args.spec).read_text()))
    benchmarks = all_abbrs() if args.all else [
        abbr for abbr in (args.benchmarks or "").split(",") if abbr]
    if not benchmarks:
        raise SystemExit("campaign run: name benchmarks with --benchmarks "
                         "A,B,... or pass --all / --spec FILE")
    unknown = [abbr for abbr in benchmarks if abbr not in all_abbrs()]
    if unknown:
        raise SystemExit(f"campaign run: unknown benchmark(s) "
                         f"{', '.join(unknown)} (see 'repro list')")
    return MatrixSpec.make(
        benchmarks,
        models=tuple(args.models.split(",")),
        scales=tuple(int(s) for s in args.scales.split(",")),
        seeds=tuple(int(s) for s in args.seeds.split(",")),
        num_sms=args.sms,
        exec_engine=args.engine,
        **_parse_sweeps(args.sweep))


def _finish_campaign(campaign, args) -> int:
    from repro.campaign import campaign_status, render_status
    status = campaign_status(campaign)
    print(render_status(status))
    if args.json:
        _write_json(json.dumps(status.to_dict(), indent=2, default=str),
                    args.json)
    return 0 if status.complete and not status.counts.get("quarantined") \
        else 1


def _cmd_campaign_run(args) -> int:
    from repro.campaign import (Campaign, RemoteShellBackend, run_campaign)

    base = _campaign_base(args)
    if base is None:
        return 2
    matrix = _campaign_matrix(args)
    campaign = Campaign.create(
        matrix, base=base, checkpoint_every=args.checkpoint_every,
        ttl=args.ttl, max_attempts=args.max_attempts)
    print(f"campaign {campaign.id}: {len(campaign.jobs)} jobs under "
          f"{campaign.root}")
    if args.hosts:
        # Multi-host stub: the lease/journal protocol only needs a shared
        # cache directory, so print the worker command for each host —
        # shell-quoted, so a cache path with spaces survives copy-paste.
        for index, host in enumerate(args.hosts.split(",")):
            backend = RemoteShellBackend(host)
            print(f"start on {host}: "
                  + shlex.join(backend.command_line(campaign, f"r{index}")))
        return 0
    report = run_campaign(campaign, workers=args.workers, chaos=args.chaos,
                          progress=print)
    print(f"converged: {report.done} done, {report.quarantined} "
          f"quarantined of {report.total} "
          f"({report.respawns} worker respawns, {report.worker_kills} "
          "killed)")
    return _finish_campaign(campaign, args)


def _cmd_campaign_resume(args) -> int:
    from repro.campaign import Campaign, run_campaign

    base = _campaign_base(args)
    if base is None:
        return 2
    campaign = Campaign.open(args.id, base=base)
    report = run_campaign(campaign, workers=args.workers, progress=print)
    print(f"converged: {report.done} done, {report.quarantined} "
          f"quarantined of {report.total}")
    return _finish_campaign(campaign, args)


def _cmd_campaign_status(args) -> int:
    from repro.campaign import Campaign, list_campaigns

    base = _campaign_base(args)
    if base is None:
        return 2
    campaign_id = args.id
    if campaign_id is None:
        known = list_campaigns(base)
        if len(known) == 1:
            campaign_id = known[0]
        else:
            print("campaigns under", base / "campaign", ":",
                  ", ".join(known) or "none")
            return 0 if known else 1
    return _finish_campaign(Campaign.open(campaign_id, base=base), args)


def _cmd_campaign_work(args) -> int:
    from repro.campaign import worker_main

    return worker_main(Path(args.dir), args.id, args.worker_id,
                       chaos=args.chaos)


def _cmd_serve(args) -> int:
    from repro.harness.runner import cache_dir
    from repro.serve import ResilienceConfig, serve_forever

    base = Path(args.dir) if args.dir else cache_dir()
    if base is None:
        print("serve: no cache directory (pass --dir or set "
              "REPRO_CACHE_DIR)", file=sys.stderr)
        return 2
    resilience = ResilienceConfig(
        max_concurrent=args.max_concurrent,
        max_pending_jobs=args.max_pending_jobs,
        default_deadline=args.deadline,
        header_timeout=args.header_timeout,
        breaker_failures=args.breaker_failures,
        breaker_cooldown=args.breaker_cooldown,
        drain_deadline=args.drain_deadline,
        shutdown_grace=args.shutdown_grace,
    )
    serve_forever(base, host=args.host, port=args.port,
                  access_log=Path(args.access_log) if args.access_log
                  else None,
                  worker=not args.no_worker,
                  ready=Path(args.ready) if args.ready else None,
                  resilience=resilience)
    return 0


def _query_params(args) -> dict:
    """The CLI flags as the multi-valued mapping ``parse_query`` takes —
    so ``repro query`` validates byte-for-byte like the HTTP endpoint."""
    params = {}
    if args.workload is not None:
        params["workload"] = [args.workload]
    for name in ("model", "scale", "seed", "sms", "engine"):
        value = getattr(args, name)
        if value is not None:
            params[name] = [str(value)]
    return params


def _cmd_query(args) -> int:
    from repro.serve import (QueryError, canonical_json, figure_document,
                             load_via_harness, parse_query)

    if args.dir:
        from repro.harness.runner import set_cache_dir
        set_cache_dir(Path(args.dir))
    try:
        query = parse_query(args.fig, _query_params(args), suite=args.suite)
    except QueryError as err:
        print(f"query: {err}", file=sys.stderr)
        return 2
    print(canonical_json(figure_document(query, load_via_harness(query))))
    return 0


def _cmd_params(_args) -> int:
    params = experiments.table2_parameters()
    print(reporting.format_table(["parameter", "value"], list(params.items()),
                                 title="Table II — simulation parameters"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="WIR (HPCA 2018) reproduction — simulator front door",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="benchmarks and design points").set_defaults(
        func=_cmd_list)
    sub.add_parser("params", help="Table II parameters").set_defaults(
        func=_cmd_params)

    def add_bench_args(p, with_model=True):
        p.add_argument("benchmark", choices=all_abbrs(), metavar="ABBR",
                       help="benchmark abbreviation (see 'repro list')")
        if with_model:
            p.add_argument("--model", default="RLPV", choices=model_names())
        p.add_argument("--sms", type=int, default=2)
        p.add_argument("--scale", type=int, default=1)
        p.add_argument("--seed", type=int, default=7)

    run_parser = sub.add_parser("run", help="simulate one benchmark")
    add_bench_args(run_parser)
    run_parser.add_argument("--json", metavar="OUT", default=None,
                            help="dump the result registry as JSON "
                                 "('-' for stdout)")
    run_parser.set_defaults(func=_cmd_run)

    check_parser = sub.add_parser(
        "check", help="verify benchmarks against the lockstep oracle")
    check_parser.add_argument("benchmarks", nargs="*", metavar="ABBR",
                              help="benchmarks to check (default: use --all)")
    check_parser.add_argument("--all", action="store_true",
                              help="check every benchmark")
    check_parser.add_argument("--model", default="RLPV", choices=model_names())
    check_parser.add_argument("--sms", type=int, default=2)
    check_parser.add_argument("--scale", type=int, default=1)
    check_parser.add_argument("--seed", type=int, default=7)
    check_parser.add_argument("--snapshot", metavar="OUT", default=None,
                              help="on failure, write a JSON divergence "
                                   "snapshot ('-' for stdout)")
    check_parser.set_defaults(func=_cmd_check)

    cache_parser = sub.add_parser("cache", help="on-disk result cache tools")
    cache_sub = cache_parser.add_subparsers(dest="cache_command",
                                            required=True)
    verify_parser = cache_sub.add_parser(
        "verify", help="audit cache entry checksums")
    verify_parser.add_argument("--dir", default=None,
                               help="cache directory (default: "
                                    "REPRO_CACHE_DIR)")
    verify_parser.add_argument("--prune", action="store_true",
                               help="delete corrupt entries")
    verify_parser.set_defaults(func=_cmd_cache_verify)

    ckpt_parser = sub.add_parser(
        "ckpt", help="checkpoint/resume tools (repro.ckpt)")
    ckpt_sub = ckpt_parser.add_subparsers(dest="ckpt_command", required=True)
    ckpt_save = ckpt_sub.add_parser(
        "save", help="run a workload to a cycle and snapshot its state")
    ckpt_save.add_argument("benchmark", choices=all_abbrs(), metavar="ABBR",
                           help="benchmark abbreviation (see 'repro list')")
    ckpt_save.add_argument("--cycle", type=int, required=True,
                           help="pause and snapshot at this cycle")
    ckpt_save.add_argument("--out", metavar="PATH", required=True,
                           help="checkpoint file to write")
    ckpt_save.add_argument("--model", default="RLPV", choices=model_names())
    ckpt_save.add_argument("--sms", type=int, default=2)
    ckpt_save.add_argument("--scale", type=int, default=1)
    ckpt_save.add_argument("--seed", type=int, default=7)
    ckpt_save.add_argument("--engine", default="scalar",
                           choices=("scalar", "vector", "superblock"))
    ckpt_save.set_defaults(func=_cmd_ckpt_save)
    ckpt_resume = ckpt_sub.add_parser(
        "resume", help="finish a checkpointed run in this process")
    ckpt_resume.add_argument("path", metavar="PATH",
                             help="checkpoint file written by 'ckpt save' "
                                  "or a timed-out harness job")
    ckpt_resume.add_argument("--json", metavar="OUT", default=None,
                             help="dump the final result registry as JSON "
                                  "('-' for stdout)")
    ckpt_resume.set_defaults(func=_cmd_ckpt_resume)
    ckpt_inspect = ckpt_sub.add_parser(
        "inspect", help="validate a checkpoint and summarise its contents")
    ckpt_inspect.add_argument("path", metavar="PATH")
    ckpt_inspect.set_defaults(func=_cmd_ckpt_inspect)

    pipeline_parser = sub.add_parser(
        "pipeline", help="stage pipeline tools (repro.pipeline)")
    pipeline_sub = pipeline_parser.add_subparsers(dest="pipeline_command",
                                                  required=True)
    pipeline_show = pipeline_sub.add_parser(
        "show", help="print the composed stage graph for a config")
    pipeline_show.add_argument("--model", default="RLPV",
                               choices=model_names())
    pipeline_show.add_argument("--engine", default="scalar",
                               choices=("scalar", "vector", "superblock"))
    pipeline_show.add_argument("--json", metavar="OUT", default=None,
                               help="dump stage descriptions as JSON "
                                    "('-' for stdout)")
    pipeline_show.set_defaults(func=_cmd_pipeline_show)

    campaign_parser = sub.add_parser(
        "campaign", help="crash-safe experiment campaigns (repro.campaign)")
    campaign_sub = campaign_parser.add_subparsers(dest="campaign_command",
                                                  required=True)

    def add_campaign_common(p):
        p.add_argument("--dir", default=None,
                       help="cache directory (default: REPRO_CACHE_DIR)")
        p.add_argument("--json", metavar="OUT", default=None,
                       help="dump the status report as JSON ('-' for "
                            "stdout)")

    campaign_run = campaign_sub.add_parser(
        "run", help="materialize a matrix and drive it with workers")
    add_campaign_common(campaign_run)
    campaign_run.add_argument("--benchmarks", default=None, metavar="A,B,...",
                              help="benchmark abbreviations")
    campaign_run.add_argument("--all", action="store_true",
                              help="every Table I benchmark")
    campaign_run.add_argument("--spec", metavar="FILE", default=None,
                              help="matrix as JSON (MatrixSpec.to_dict)")
    campaign_run.add_argument("--models", default="Base,RLPV")
    campaign_run.add_argument("--scales", default="1")
    campaign_run.add_argument("--seeds", default="7")
    campaign_run.add_argument("--sms", type=int, default=2)
    campaign_run.add_argument("--engine", default="scalar",
                              choices=("scalar", "vector", "superblock"))
    campaign_run.add_argument("--sweep", action="append", default=[],
                              metavar="NAME=V1,V2",
                              help="WIR config sweep axis (repeatable)")
    campaign_run.add_argument("--workers", type=int, default=2,
                              help="local worker processes (default 2)")
    campaign_run.add_argument("--hosts", default=None, metavar="H1,H2",
                              help="multi-host stub: print the worker "
                                   "command per host (shared cache dir "
                                   "required) instead of running locally")
    campaign_run.add_argument("--ttl", type=float, default=30.0,
                              help="lease lifetime in seconds (default 30)")
    campaign_run.add_argument("--max-attempts", type=int, default=3,
                              help="kills/failures before quarantine")
    campaign_run.add_argument("--checkpoint-every", type=int, default=2000,
                              help="checkpoint cadence in cycles")
    campaign_run.add_argument("--chaos", default=None, metavar="SPEC",
                              help="fault injection for tests/CI, e.g. "
                                   "'window:1.0:7' (SIGKILL workers at "
                                   "first-window checkpoint writes)")
    campaign_run.set_defaults(func=_cmd_campaign_run)

    campaign_resume = campaign_sub.add_parser(
        "resume", help="restart the worker fleet of an existing campaign")
    add_campaign_common(campaign_resume)
    campaign_resume.add_argument("id", metavar="ID")
    campaign_resume.add_argument("--workers", type=int, default=2)
    campaign_resume.set_defaults(func=_cmd_campaign_resume)

    campaign_status_p = campaign_sub.add_parser(
        "status", help="progress, failure history, and ETA of a campaign")
    add_campaign_common(campaign_status_p)
    campaign_status_p.add_argument("id", nargs="?", default=None,
                                   metavar="ID",
                                   help="campaign id (omit to list; "
                                        "auto-selected when only one "
                                        "exists)")
    campaign_status_p.set_defaults(func=_cmd_campaign_status)

    campaign_work = campaign_sub.add_parser(
        "work", help="run one campaign worker process (spawned by 'run')")
    campaign_work.add_argument("--dir", required=True,
                               help="cache directory")
    campaign_work.add_argument("--id", required=True, help="campaign id")
    campaign_work.add_argument("--worker-id", required=True)
    campaign_work.add_argument("--chaos", default=None)
    campaign_work.set_defaults(func=_cmd_campaign_work)

    trace_parser = sub.add_parser(
        "trace", help="stall attribution + Chrome trace for one workload")
    trace_parser.add_argument(
        "benchmark", choices=all_abbrs() + list(DEMO_WORKLOADS),
        metavar="ABBR", help="benchmark abbreviation or demo workload "
                             "(see 'repro list'; demos: "
                             + ", ".join(DEMO_WORKLOADS) + ")")
    trace_parser.add_argument("--model", default="RLPV", choices=model_names())
    trace_parser.add_argument("--sms", type=int, default=2)
    trace_parser.add_argument("--scale", type=int, default=1)
    trace_parser.add_argument("--seed", type=int, default=7)
    trace_parser.add_argument("--stalls", action="store_true",
                              help="print the per-SM stall breakdown table")
    trace_parser.add_argument("--chrome", metavar="OUT", default=None,
                              help="write a Chrome trace_event JSON "
                                   "(load in chrome://tracing or Perfetto)")
    trace_parser.add_argument("--ring-capacity", type=int, default=65536,
                              help="event ring buffer capacity")
    trace_parser.add_argument("--sample-period", type=int, default=0,
                              help="capture-window period in cycles "
                                   "(0 = trace every cycle)")
    trace_parser.add_argument("--sample-window", type=int, default=1024,
                              help="cycles captured per period")
    trace_parser.set_defaults(func=_cmd_trace)

    bench_parser = sub.add_parser(
        "bench",
        help="time the simulator (scalar vs vector vs superblock engine)")
    bench_parser.add_argument("--reps", type=int, default=3,
                              help="repetitions per measurement; the minimum "
                                   "wall time wins (default 3)")
    bench_parser.add_argument("--out", metavar="OUT", default=None,
                              help="report path (default "
                                   "BENCH_sim_throughput.json unless "
                                   "--quick/--check)")
    bench_parser.add_argument("--check", action="store_true",
                              help="gate against the committed baseline; "
                                   "exit 1 on >15%% normalized regression")
    bench_parser.add_argument("--baseline", metavar="PATH", default=None,
                              help="baseline report for --check (default: "
                                   "BENCH_sim_throughput.json)")
    bench_parser.add_argument("--quick", action="store_true",
                              help="reduced scales, one rep (smoke only; "
                                   "not comparable to the baseline)")
    bench_parser.add_argument("--table", metavar="PATH", default=None,
                              help="also write a per-workload speedup table "
                                   "(markdown; the CI bench artifact)")
    bench_parser.set_defaults(func=_cmd_bench)

    compare_parser = sub.add_parser("compare",
                                    help="one benchmark, all design points")
    add_bench_args(compare_parser, with_model=False)
    compare_parser.add_argument("--jobs", type=int, default=1,
                                help="simulate design points in parallel")
    compare_parser.set_defaults(func=_cmd_compare)

    profile_parser = sub.add_parser("profile",
                                    help="repeated-computation profile")
    add_bench_args(profile_parser, with_model=False)
    profile_parser.set_defaults(func=_cmd_profile)

    experiment_parser = sub.add_parser("experiment",
                                       help="run one figure/table driver")
    experiment_parser.add_argument("name", help="fig2..fig22 or table1..3")
    experiment_parser.add_argument("--jobs", type=int, default=1,
                                   help="simulate missing runs in parallel")
    experiment_parser.add_argument("--json", metavar="OUT", default=None,
                                   help="dump the raw experiment data as JSON "
                                        "('-' for stdout)")
    experiment_parser.set_defaults(func=_cmd_experiment)

    serve_parser = sub.add_parser(
        "serve", help="HTTP query API over the result cache (DESIGN.md §15)")
    serve_parser.add_argument("--dir", metavar="DIR", default=None,
                              help="cache directory to serve (default: "
                                   "REPRO_CACHE_DIR)")
    serve_parser.add_argument("--host", default="127.0.0.1",
                              help="bind address (default: 127.0.0.1)")
    serve_parser.add_argument("--port", type=int, default=8753,
                              help="bind port; 0 picks a free one "
                                   "(default: 8753)")
    serve_parser.add_argument("--access-log", metavar="PATH", default=None,
                              help="append one line per request to PATH")
    serve_parser.add_argument("--no-worker", action="store_true",
                              help="answer cache hits only; misses still "
                                   "get 202 + a durable campaign some other "
                                   "worker fleet must drain")
    serve_parser.add_argument("--ready", metavar="PATH", default=None,
                              help="write 'host port' to PATH once bound "
                                   "(for scripts using --port 0)")
    serve_parser.add_argument("--max-concurrent", type=int, default=64,
                              help="admission gate: concurrent requests "
                                   "before shedding 503 (default: 64)")
    serve_parser.add_argument("--max-pending-jobs", type=int, default=16,
                              help="bounded background-job backlog; past "
                                   "it misses defer instead of enqueueing "
                                   "(default: 16)")
    serve_parser.add_argument("--deadline", type=float, default=30.0,
                              help="per-request time budget in seconds; "
                                   "expiry answers 504 (default: 30)")
    serve_parser.add_argument("--header-timeout", type=float, default=5.0,
                              help="seconds to finish sending the request "
                                   "head (slow-loris guard, default: 5)")
    serve_parser.add_argument("--breaker-failures", type=int, default=3,
                              help="consecutive worker failures that trip "
                                   "the enqueue circuit breaker (default: 3)")
    serve_parser.add_argument("--breaker-cooldown", type=float, default=30.0,
                              help="seconds the breaker stays open before "
                                   "a half-open probe (default: 30)")
    serve_parser.add_argument("--drain-deadline", type=float, default=10.0,
                              help="seconds granted to in-flight requests "
                                   "on SIGTERM (default: 10)")
    serve_parser.add_argument("--shutdown-grace", type=float, default=0.0,
                              help="seconds readiness stays flipped before "
                                   "draining starts (default: 0)")
    serve_parser.set_defaults(func=_cmd_serve)

    query_parser = sub.add_parser(
        "query",
        help="compute one served figure document locally (reference for "
             "the HTTP API; simulates on cache miss)")
    query_parser.add_argument("fig", help="fig2, fig12, fig14, fig15, fig17")
    query_parser.add_argument("--workload", default=None,
                              help="benchmark abbreviation (see 'repro "
                                   "list')")
    query_parser.add_argument("--suite", action="store_true",
                              help="span the whole Table I suite instead "
                                   "of one workload")
    query_parser.add_argument("--model", default=None,
                              help="design point (default RLPV)")
    query_parser.add_argument("--scale", type=int, default=None)
    query_parser.add_argument("--seed", type=int, default=None)
    query_parser.add_argument("--sms", type=int, default=None,
                              help="number of SMs")
    query_parser.add_argument("--engine", default=None,
                              help="scalar or vector")
    query_parser.add_argument("--dir", metavar="DIR", default=None,
                              help="result cache directory to read/fill")
    query_parser.set_defaults(func=_cmd_query)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
