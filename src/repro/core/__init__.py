"""WIR: warp instruction reuse and warp register reuse (the paper's core).

The mechanisms here implement Sections IV-VI of the paper:

* :mod:`repro.core.hashing` — H3 hash generation (32-bit signatures of
  1024-bit warp register values).
* :mod:`repro.core.physreg` — dynamically allocated physical warp registers
  with a free pool and utilisation tracking.
* :mod:`repro.core.refcount` — the reference-counting release system.
* :mod:`repro.core.rename` — per-warp rename tables with valid and pin bits.
* :mod:`repro.core.vsb` — the value signature buffer and verify-read logic.
* :mod:`repro.core.reuse_buffer` — the reuse buffer with pending-retry,
  barrier counts, thread-block scoping, and store flags for load reuse.
* :mod:`repro.core.verify_cache` — the small cache absorbing verify-reads.
* :mod:`repro.core.affine` — the Affine comparison model (base+stride).
* :mod:`repro.core.wir_unit` — the per-SM unit wiring the stages together.
* :mod:`repro.core.models` — the evaluated design points (Base, R, RL, RLP,
  RLPV, RPV, RLPVc, NoVSB, Affine, Affine+RLPV).
"""

from repro.core.hashing import H3Hash
from repro.core.models import MODEL_ORDER, model_config, model_names
from repro.core.physreg import PhysicalRegisterFile
from repro.core.refcount import ReferenceCounter
from repro.core.rename import RenameTables
from repro.core.reuse_buffer import ReuseBuffer
from repro.core.vsb import ValueSignatureBuffer
from repro.core.verify_cache import VerifyCache
from repro.core.wir_unit import WIRUnit

__all__ = [
    "H3Hash",
    "MODEL_ORDER",
    "model_config",
    "model_names",
    "PhysicalRegisterFile",
    "ReferenceCounter",
    "RenameTables",
    "ReuseBuffer",
    "ValueSignatureBuffer",
    "VerifyCache",
    "WIRUnit",
]
