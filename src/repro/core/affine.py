"""Affine execution model (the "Affine" comparison GPU of Section VII-A).

A 1024-bit warp register value whose adjacent thread lanes share a common
stride is representable as a 64-bit (base, stride) tuple.  The Affine GPU:

* stores an affine tuple in 1 of the 8 register banks, so an affine register
  access costs 1/8 of the bank energy;
* executes an instruction on 1 functional-unit lane instead of 32 when all
  inputs are affine tuples and the operation is affine-preserving
  (mov, add, sub, mul — scaling/translation of affine sequences).

The tracker keys affine-ness by register ID, which works for both the
physical file (WIR models) and per-warp logical registers (Base+Affine,
where the key is ``(warp_slot << 8) | logical``).
"""

from __future__ import annotations

from typing import Dict, Iterable

import numpy as np

from repro.isa.opcodes import Opcode

#: Operations the affine functional unit can evaluate on (base, stride)
#: tuples directly — the paper's list: "mov, add, sub, mul".  Floating-point
#: and fused ops always execute full-width (affine tuples are integer
#: two's-complement encodings; FP lane values with a constant bit-pattern
#: stride are not closed under FP arithmetic).
AFFINE_PRESERVING_OPS = frozenset({
    Opcode.MOV, Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.SHL,
})


def is_affine_value(values: np.ndarray) -> bool:
    """Whether all adjacent lanes share one stride (includes uniform values).

    The check uses the integer bit patterns: a (base, stride) hardware tuple
    regenerates lanes as ``base + lane * stride`` in 32-bit arithmetic.
    """
    as_int = values.astype(np.int64)
    diffs = (as_int[1:] - as_int[:-1]) & 0xFFFFFFFF
    return bool((diffs == diffs[0]).all())


class AffineTracker:
    """Tracks which registers currently hold affine-encodable values."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._affine: Dict[int, bool] = {}
        self.affine_writes = 0
        self.full_writes = 0

    def record_write(self, key: int, values: np.ndarray, opcode=None) -> bool:
        """Classify a written value; returns its affine-ness.

        A register is stored in tuple form only when the affine unit itself
        produced the value: the producing op must be affine-capable (results
        leaving the full-width pipeline are not re-compressed).  Passing
        ``opcode=None`` skips that restriction (tests / detectors).
        """
        if not self.enabled:
            return False
        affine = is_affine_value(values)
        if opcode is not None and opcode not in AFFINE_PRESERVING_OPS:
            affine = False
        self._affine[key] = affine
        if affine:
            self.affine_writes += 1
        else:
            self.full_writes += 1
        return affine

    def record_partial_write(self, key: int) -> None:
        """A masked (divergent) write: conservatively non-affine."""
        if self.enabled:
            self._affine[key] = False
            self.full_writes += 1

    def state_dict(self) -> Dict:
        return {
            "affine": {str(key): flag for key, flag in self._affine.items()},
            "affine_writes": self.affine_writes,
            "full_writes": self.full_writes,
        }

    def load_state(self, state: Dict) -> None:
        self._affine = {int(key): flag
                        for key, flag in state["affine"].items()}
        self.affine_writes = state["affine_writes"]
        self.full_writes = state["full_writes"]

    def is_affine(self, key: int) -> bool:
        """Affine-ness of a register (unwritten registers hold zero: affine)."""
        if not self.enabled:
            return False
        return self._affine.get(key, True)

    def all_affine(self, keys: Iterable[int]) -> bool:
        return self.enabled and all(self.is_affine(key) for key in keys)

    def forget(self, key: int) -> None:
        self._affine.pop(key, None)
