"""H3 hash generation for warp register values (paper Sections V-A, VII-E).

The register allocation stage reduces each 1024-bit result value to a 32-bit
signature with an H3-class universal hash: every output bit is the XOR of a
fixed random subset of input bits.  We implement H3 as tabulation hashing —
mathematically identical — with one 256-entry table of output words per
input byte; hashing is then a XOR-reduction of 128 table lookups, which maps
directly onto the paper's cascaded-XOR hardware estimate.

H3 is linear over GF(2): ``h(x ^ y) == h(x) ^ h(y)`` and ``h(0) == 0``.
The property-based tests exercise this invariant.
"""

from __future__ import annotations

import numpy as np

#: Bytes in one warp register value (32 lanes x 4 bytes = 1024 bits).
WARP_REGISTER_BYTES = 128


class H3Hash:
    """Deterministic H3 hash from 1024-bit values to ``bits``-wide signatures."""

    def __init__(self, bits: int = 32, seed: int = 0x5EED_C0DE) -> None:
        if not 1 <= bits <= 32:
            raise ValueError("hash width must be between 1 and 32 bits")
        self.bits = bits
        self._mask = (1 << bits) - 1 if bits < 32 else 0xFFFFFFFF
        rng = np.random.default_rng(seed)
        # One table per input byte position; entry 0 must be 0 for GF(2)
        # linearity, which tabulation hashing guarantees by construction:
        # table[i][b] = XOR of the 8 per-bit masks selected by b's set bits.
        bit_masks = rng.integers(
            0, 1 << 32, size=(WARP_REGISTER_BYTES, 8), dtype=np.uint32
        )
        tables = np.zeros((WARP_REGISTER_BYTES, 256), dtype=np.uint32)
        for bit in range(8):
            selected = np.arange(256) & (1 << bit) != 0
            tables[:, selected] ^= bit_masks[:, bit : bit + 1]
        self._tables = tables & np.uint32(self._mask)
        self._positions = np.arange(WARP_REGISTER_BYTES)
        # Signature memo: warp values recur heavily (that redundancy is the
        # whole point of the paper), so identical 128-byte payloads skip the
        # table gather.  The hash is a pure function of the bytes, so the
        # memo cannot change any signature — it is bounded and cleared
        # wholesale to keep worst-case memory flat.
        self._memo: dict = {}
        self._memo_limit = 1 << 16

    def hash_value(self, value: np.ndarray) -> int:
        """Hash one warp register value (32 uint32 lanes) to a signature."""
        data = np.ascontiguousarray(value, dtype=np.uint32).view(np.uint8)
        if data.size != WARP_REGISTER_BYTES:
            raise ValueError(
                f"expected {WARP_REGISTER_BYTES} bytes, got {data.size}"
            )
        key = data.tobytes()
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        words = self._tables[self._positions, data]
        result = int(np.bitwise_xor.reduce(words))
        if len(self._memo) >= self._memo_limit:
            self._memo.clear()
        self._memo[key] = result
        return result

    def hash_bytes(self, data: bytes) -> int:
        """Hash a raw 128-byte buffer (convenience for tests)."""
        return self.hash_value(np.frombuffer(data, dtype=np.uint32))
