"""The evaluated design points (paper Section VII-A).

Optimisations are applied incrementally:

* ``Base`` — the baseline GPU of Section II.
* ``R``    — minimum reuse design: renaming + reuse buffer + VSB.
* ``RL``   — R plus load reuse (VI-A).
* ``RLP``  — RL plus pending-retry (VI-B).
* ``RLPV`` — RLP plus the verify cache (VI-C); the headline design.

Comparison models:

* ``RPV``    — RLPV without load reuse.
* ``RLPVc``  — RLPV with the capped-register policy (V-E).
* ``NoVSB``  — R without the value signature buffer.
* ``Affine`` — the energy-optimised affine-execution GPU.
* ``Affine+RLPV`` — RLPV layered on the Affine GPU.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List

from repro.sim.config import GPUConfig, RegisterPolicy, WIRConfig


def _wir(**kwargs) -> WIRConfig:
    return WIRConfig(enabled=True, **kwargs)


_MODELS: Dict[str, WIRConfig] = {
    "Base": WIRConfig(enabled=False),
    "R": _wir(),
    "RL": _wir(load_reuse=True),
    "RLP": _wir(load_reuse=True, pending_retry=True),
    "RLPV": _wir(load_reuse=True, pending_retry=True, verify_cache_entries=8),
    "RPV": _wir(pending_retry=True, verify_cache_entries=8),
    "RLPVc": _wir(
        load_reuse=True,
        pending_retry=True,
        verify_cache_entries=8,
        register_policy=RegisterPolicy.CAPPED_REGISTER,
    ),
    "NoVSB": _wir(use_vsb=False),
    "Affine": WIRConfig(enabled=False, affine=True),
    "Affine+RLPV": _wir(
        load_reuse=True,
        pending_retry=True,
        verify_cache_entries=8,
        affine=True,
    ),
}

#: Canonical presentation order used across figures.
MODEL_ORDER: List[str] = list(_MODELS)


def model_names() -> List[str]:
    """Names of all available design points."""
    return list(_MODELS)


def model_wir(name: str) -> WIRConfig:
    """The :class:`WIRConfig` of a named design point (a fresh copy)."""
    try:
        return replace(_MODELS[name])
    except KeyError:
        raise ValueError(
            f"unknown model {name!r}; available: {', '.join(_MODELS)}"
        ) from None


def model_config(name: str, base: GPUConfig | None = None, **overrides) -> GPUConfig:
    """A full :class:`GPUConfig` for a named design point.

    ``overrides`` are applied to the WIR config (e.g.
    ``model_config("RLPV", reuse_buffer_entries=512)``).
    """
    wir = model_wir(name)
    if overrides:
        wir = replace(wir, **overrides)
    config = base if base is not None else GPUConfig()
    return config.with_wir(wir)
