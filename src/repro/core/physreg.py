"""Physical warp register file with dynamic allocation (Section V-E).

Physical register 0 is reserved as the *zero register*: every logical
register reads as zero before its first write, so mapping uninitialised
logicals to one shared all-zero physical register is both correct and — in
the spirit of warp register reuse — lets every uninitialised register share
one physical register.  The zero register is never freed.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional

import numpy as np

from repro.ckpt.codec import decode_array, encode_array
from repro.sim.grid import WARP_SIZE

#: The reserved all-zero physical register.
ZERO_REG = 0


class OutOfRegistersError(RuntimeError):
    """Raised when allocation fails even after low-register-mode eviction."""


class PhysicalRegisterFile:
    """Values + free pool for the SM's physical warp registers."""

    def __init__(self, num_registers: int) -> None:
        if num_registers < 2:
            raise ValueError("need at least the zero register plus one")
        self.num_registers = num_registers
        self._values = np.zeros((num_registers, WARP_SIZE), dtype=np.uint32)
        self._free: Deque[int] = deque(range(1, num_registers))
        self._in_use = 1  # the zero register
        self.peak_in_use = 1
        self.allocations = 0
        self.releases = 0
        #: Cumulative (cycles-weighted) utilisation for the Fig 19 average.
        self._util_accum = 0
        self._util_samples = 0

    # --- allocation ---------------------------------------------------------

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def free_count(self) -> int:
        return len(self._free)

    def allocate(self) -> Optional[int]:
        """Take a register from the free pool; ``None`` if the pool is empty."""
        if not self._free:
            return None
        reg = self._free.popleft()
        self._in_use += 1
        self.allocations += 1
        if self._in_use > self.peak_in_use:
            self.peak_in_use = self._in_use
        return reg

    def release(self, reg: int) -> None:
        """Return *reg* to the free pool (called by the reference counter)."""
        if reg == ZERO_REG:
            raise ValueError("the zero register is never released")
        self._free.append(reg)
        self._in_use -= 1
        self.releases += 1

    # --- values -------------------------------------------------------------

    def read(self, reg: int) -> np.ndarray:
        return self._values[reg]

    def write(self, reg: int, values: np.ndarray, mask: Optional[np.ndarray] = None) -> None:
        if reg == ZERO_REG:
            raise ValueError("the zero register is read-only")
        if mask is None:
            self._values[reg] = values.astype(np.uint32)
        else:
            np.copyto(self._values[reg], values.astype(np.uint32), where=mask)

    def copy_lanes(self, src: int, dst: int, mask: np.ndarray) -> None:
        """Dummy-MOV semantics: copy *src* lanes selected by *mask* into *dst*."""
        np.copyto(self._values[dst], self._values[src], where=mask)

    # --- checkpointing -------------------------------------------------------

    def state_dict(self) -> Dict:
        """Values, the free pool *in order* (allocate pops left, release
        appends — the order decides future allocations), and counters."""
        return {
            "values": encode_array(self._values),
            "free": list(self._free),
            "in_use": self._in_use,
            "peak_in_use": self.peak_in_use,
            "allocations": self.allocations,
            "releases": self.releases,
            "util_accum": self._util_accum,
            "util_samples": self._util_samples,
        }

    def load_state(self, state: Dict) -> None:
        self._values[:] = decode_array(state["values"])
        self._free = deque(state["free"])
        self._in_use = state["in_use"]
        self.peak_in_use = state["peak_in_use"]
        self.allocations = state["allocations"]
        self.releases = state["releases"]
        self._util_accum = state["util_accum"]
        self._util_samples = state["util_samples"]

    # --- utilisation sampling (Figure 19) ------------------------------------

    def sample_utilization(self) -> None:
        self._util_accum += self._in_use
        self._util_samples += 1

    @property
    def average_in_use(self) -> float:
        if not self._util_samples:
            return float(self._in_use)
        return self._util_accum / self._util_samples
