"""Register reference counting (Section V-E).

Each physical register's counter records how many references exist across
the rename tables, the reuse buffer, and the value signature buffer.  When a
counter reaches zero the register returns to the free pool.  The hardware
version is a pipelined counter array with a request-merging scheduler; here
the merge/latency behaviour is abstracted (the paper shows the two-cycle
update latency rarely stalls because free registers are plentiful), but the
*energy* cost is tracked as one counter operation per increment/decrement so
Table III accounting is faithful.
"""

from __future__ import annotations

from typing import Callable, List

from repro.core.physreg import ZERO_REG, PhysicalRegisterFile


class ReferenceCounter:
    """Counter array plus release-to-pool logic."""

    def __init__(self, physfile: PhysicalRegisterFile) -> None:
        self._physfile = physfile
        self._counts: List[int] = [0] * physfile.num_registers
        self._counts[ZERO_REG] = 1  # pinned forever
        self.operations = 0

    def count(self, reg: int) -> int:
        return self._counts[reg]

    def incref(self, reg: int) -> None:
        self.operations += 1
        self._counts[reg] += 1

    def decref(self, reg: int) -> None:
        if reg == ZERO_REG:
            self.operations += 1
            return
        count = self._counts[reg]
        if count <= 0:
            raise RuntimeError(f"decref of unreferenced physical register {reg}")
        self.operations += 1
        count -= 1
        self._counts[reg] = count
        if count == 0:
            self._physfile.release(reg)

    def state_dict(self) -> dict:
        return {"counts": list(self._counts), "operations": self.operations}

    def load_state(self, state: dict) -> None:
        # Counts are restored wholesale — never through incref/decref, which
        # would release registers mid-restore.
        self._counts = list(state["counts"])
        self.operations = state["operations"]

    def live_registers(self) -> int:
        """Registers with a non-zero count (invariant-check helper)."""
        return sum(1 for count in self._counts if count > 0)

    def check_conservation(self) -> None:
        """Invariant: live counted registers == physfile in-use registers."""
        live = self.live_registers()
        if live != self._physfile.in_use:
            raise AssertionError(
                f"refcount live={live} but physical file in_use="
                f"{self._physfile.in_use}"
            )
