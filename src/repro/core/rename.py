"""Per-warp rename tables (Section V-B).

Each of the SM's 48 warp slots has a 63-entry table mapping logical warp
registers to physical warp registers.  An entry holds a 10-bit physical ID,
a valid bit, and a pin bit (the divergence mechanism of Section V-D).  All
entries are invalidated at warp initialisation; mappings are written when
instructions retire.  An invalid entry reads as the shared zero register.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.ckpt.codec import decode_array, encode_array
from repro.core.physreg import ZERO_REG
from repro.core.refcount import ReferenceCounter
from repro.isa.instruction import NUM_LOGICAL_REGS


class RenameTables:
    """All rename tables of one SM."""

    def __init__(self, num_warp_slots: int, refcount: ReferenceCounter) -> None:
        self._refcount = refcount
        self.num_warp_slots = num_warp_slots
        self._mapping = np.full((num_warp_slots, NUM_LOGICAL_REGS), -1, dtype=np.int32)
        self._pin = np.zeros((num_warp_slots, NUM_LOGICAL_REGS), dtype=bool)
        self.reads = 0
        self.writes = 0

    def reset_slot(self, slot: int) -> None:
        """Invalidate a slot's table at warp initialisation, dropping refs."""
        for logical in range(NUM_LOGICAL_REGS):
            phys = int(self._mapping[slot, logical])
            if phys >= 0:
                self._refcount.decref(phys)
        self._mapping[slot, :] = -1
        self._pin[slot, :] = False

    def lookup(self, slot: int, logical: int) -> int:
        """Physical register currently holding *logical*'s value.

        Invalid entries resolve to the zero register (uninitialised logical
        registers architecturally read zero).
        """
        self.reads += 1
        phys = int(self._mapping[slot, logical])
        return phys if phys >= 0 else ZERO_REG

    def is_mapped(self, slot: int, logical: int) -> bool:
        return bool(self._mapping[slot, logical] >= 0)

    def remap(self, slot: int, logical: int, phys: int) -> None:
        """Point *logical* at *phys*, transferring reference counts."""
        self.writes += 1
        self._refcount.incref(phys)
        old = int(self._mapping[slot, logical])
        self._mapping[slot, logical] = phys
        if old >= 0:
            self._refcount.decref(old)

    # --- checkpointing -------------------------------------------------------

    def state_dict(self) -> dict:
        return {
            "mapping": encode_array(self._mapping),
            "pin": encode_array(self._pin),
            "reads": self.reads,
            "writes": self.writes,
        }

    def load_state(self, state: dict) -> None:
        # Arrays are restored directly (no remap/decref churn): the matching
        # reference counts are restored wholesale by the ReferenceCounter.
        self._mapping[:] = decode_array(state["mapping"])
        self._pin[:] = decode_array(state["pin"])
        self.reads = state["reads"]
        self.writes = state["writes"]

    # --- pin bits (Section V-D) ----------------------------------------------

    def pin_bit(self, slot: int, logical: int) -> bool:
        return bool(self._pin[slot, logical])

    def set_pin(self, slot: int, logical: int) -> None:
        self._pin[slot, logical] = True

    def clear_pin(self, slot: int, logical: int) -> None:
        self._pin[slot, logical] = False

    def mapped_registers(self, slot: int) -> List[int]:
        """Valid physical IDs mapped in one slot (diagnostics/tests)."""
        return [int(p) for p in self._mapping[slot] if p >= 0]
