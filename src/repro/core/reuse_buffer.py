"""The reuse buffer (Sections V-C, VI-A, VI-B).

A direct-indexed, cache-like table whose tag is
``[opcode, source operand descriptors]`` where each source descriptor is
either a physical warp register ID or an immediate value.  A hit returns the
physical register holding the previously computed result; the hitting
instruction bypasses the backend and simply remaps its logical destination.

Load-reuse support adds three fields per entry (Figure 9):

* ``pending`` — set by the pending-retry mechanism while the reserving
  instruction is still executing; matching instructions wait in a small
  retry queue instead of re-executing (Section VI-B).
* ``barrier_count`` — loads may only reuse results produced after the
  consumer block's latest barrier (Section VI-A).
* ``tbid`` — scratchpad loads may only reuse loads from the same thread
  block, whose scratchpad address space they share; ``NULL_TBID`` for
  arithmetic and non-scratchpad loads.

Entries hold reference-counted pointers to every physical register they
name (sources and result), so a register can never be recycled while a tag
still refers to it.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.check.errors import InvariantViolation
from repro.core.refcount import ReferenceCounter
from repro.stats import StatGroup

#: Source descriptor: ("r", physical id) or ("i", immediate bits).
SrcDesc = Tuple[str, int]
#: Tag: (opcode index, source descriptors).
Tag = Tuple[int, Tuple[SrcDesc, ...]]

#: TBID null value for non-scratchpad entries (paper: 4-bit field, one
#: encoding reserved for null).
NULL_TBID = -1


class ReuseBufferStats(StatGroup):
    """Reuse-buffer event counts.

    ``hits`` are immediately-available results; ``pending_hits`` matched a
    pending entry and queued; ``retry_drops`` matched pending but found the
    retry queue full; ``pending_releases`` counts waiters released by a
    producer retire.
    """

    COUNTERS = ("lookups", "hits", "pending_hits", "retry_drops", "misses",
                "reservations", "updates", "evictions", "load_hits",
                "pending_releases")

    @property
    def total_reuses(self) -> int:
        return self.hits + self.pending_releases


class Waiter:
    """One queued instruction waiting on a pending entry."""

    __slots__ = ("on_result", "descriptor")

    def __init__(self, on_result: Callable[[Optional[int]], None]) -> None:
        #: Called with the result physical register, or ``None`` when the
        #: pending entry was evicted and the waiter must execute after all.
        self.on_result = on_result
        #: Plain-data identity of the waiting instruction, set by the SM
        #: (checkpointing externalizes the queue through it); the buffer
        #: itself never reads it.
        self.descriptor = None


class _Entry:
    __slots__ = ("valid", "tag", "result_reg", "pending", "barrier_count",
                 "tbid", "waiters", "is_load", "token")

    def __init__(self) -> None:
        self.valid = False
        self.tag: Optional[Tag] = None
        self.result_reg = -1
        self.pending = False
        self.barrier_count = 0
        self.tbid = NULL_TBID
        self.waiters: List[Waiter] = []
        self.is_load = False
        #: Reservation token: two reservations of the *same tag* (e.g. by
        #: different thread blocks, where only the TBID field differs) must
        #: not satisfy each other's retire-time fill.
        self.token = -1


def _mix(tag: Tag) -> int:
    """Deterministic FNV-style tag hash used for direct indexing."""
    value = 0x811C9DC5
    value = (value ^ tag[0]) * 0x01000193 & 0xFFFFFFFF
    for kind, operand in tag[1]:
        value = (value ^ (1 if kind == "r" else 2)) * 0x01000193 & 0xFFFFFFFF
        value = (value ^ (operand & 0xFFFFFFFF)) * 0x01000193 & 0xFFFFFFFF
        value = (value ^ (operand >> 16)) * 0x01000193 & 0xFFFFFFFF
    return value


class ReuseBuffer:
    """Reuse buffer with pending-retry support.

    ``associativity=1`` (the paper's default) is direct-indexed; higher
    values organise the entries into LRU sets searched associatively — the
    alternative the paper considered and found marginal (Section V-C).
    """

    def __init__(
        self,
        entries: int,
        refcount: ReferenceCounter,
        retry_queue_entries: int = 16,
        associativity: int = 1,
    ) -> None:
        if entries and entries & (entries - 1):
            raise ValueError("reuse buffer entry count must be a power of two")
        if associativity < 1 or (entries and entries % associativity):
            raise ValueError("associativity must divide the entry count")
        self.num_entries = entries
        self.associativity = associativity if entries else 1
        self._num_sets = entries // self.associativity if entries else 0
        self._refcount = refcount
        self._entries = [_Entry() for _ in range(entries)]
        #: Per-set slot order, least recently used first.
        self._lru = [
            list(range(s * self.associativity, (s + 1) * self.associativity))
            for s in range(self._num_sets)
        ]
        self.retry_queue_entries = retry_queue_entries
        self._retry_queue_used = 0
        self._next_token = 0
        self.stats = ReuseBufferStats("rb")
        #: Observability hook (per-SM ``SMTraceView`` or ``None``).
        self.tracer = None

    # --- helpers -------------------------------------------------------------

    def _set_of(self, tag: Tag) -> int:
        return _mix(tag) & (self._num_sets - 1)

    def index_of(self, tag: Tag) -> int:
        """First slot of the set this tag maps to."""
        return self._set_of(tag) * self.associativity

    def _touch(self, set_index: int, slot: int) -> None:
        # A one-way set's recency order cannot change; skip the list
        # shuffle in the direct-indexed default.
        if self.associativity == 1:
            return
        order = self._lru[set_index]
        order.remove(slot)
        order.append(slot)

    def _detach_entry(self, entry: _Entry) -> List[Waiter]:
        """Release an entry's references; return its orphaned waiters.

        The caller must finish mutating the table and only then notify the
        orphans via :meth:`_notify_failed` — waiter callbacks can re-enter
        the buffer (a failed waiter re-runs the reuse stage), so they must
        never observe a half-updated entry.
        """
        if not entry.valid:
            return []
        self.stats.evictions += 1
        if self.tracer is not None:
            self.tracer.component_event(
                "rb", "rb_evict",
                {"reg": entry.result_reg, "pending": entry.pending,
                 "orphans": len(entry.waiters)})
        for kind, operand in entry.tag[1]:
            if kind == "r":
                self._refcount.decref(operand)
        if entry.result_reg >= 0:
            self._refcount.decref(entry.result_reg)
        waiters = entry.waiters
        entry.waiters = []
        self._retry_queue_used -= len(waiters)
        entry.valid = False
        entry.tag = None
        entry.result_reg = -1
        entry.pending = False
        return waiters

    @staticmethod
    def _notify_failed(waiters: List[Waiter]) -> None:
        for waiter in waiters:
            waiter.on_result(None)

    # --- pipeline operations ---------------------------------------------------

    def lookup(
        self,
        tag: Tag,
        is_load: bool,
        consumer_barrier_count: int,
        consumer_tbid: int,
        pending_retry: bool,
        make_waiter: Optional[Callable[[], Waiter]] = None,
    ) -> Tuple[str, Optional[int], int]:
        """Probe the buffer at the reuse stage.

        Returns ``(outcome, result_reg, index)`` where outcome is:

        * ``"hit"`` — result available; ``result_reg`` holds it.
        * ``"queued"`` — matched a pending entry; the waiter was enqueued.
        * ``"miss"`` — no reusable result; the instruction must execute.
        """
        self.stats.lookups += 1
        if not self.num_entries:
            self.stats.misses += 1
            return "miss", None, 0
        set_index = self._set_of(tag)
        index = set_index * self.associativity
        for slot in list(self._lru[set_index]):
            entry = self._entries[slot]
            match = entry.valid and entry.tag == tag
            if match and is_load:
                # Load scoping rules (Section VI-A).
                if entry.barrier_count != consumer_barrier_count:
                    match = False
                elif entry.tbid != NULL_TBID and entry.tbid != consumer_tbid:
                    match = False
            if not match:
                continue

            if not entry.pending:
                self.stats.hits += 1
                if is_load:
                    self.stats.load_hits += 1
                self._touch(set_index, slot)
                return "hit", entry.result_reg, slot

            if pending_retry and make_waiter is not None:
                if self._retry_queue_used < self.retry_queue_entries:
                    self._retry_queue_used += 1
                    entry.waiters.append(make_waiter())
                    self.stats.pending_hits += 1
                    self._touch(set_index, slot)
                    return "queued", None, slot
                self.stats.retry_drops += 1
            break

        self.stats.misses += 1
        return "miss", None, index

    def reserve(
        self,
        tag: Tag,
        is_load: bool,
        barrier_count: int,
        tbid: int,
        allow_insert: bool = True,
    ) -> Optional[Tuple[int, int]]:
        """Reserve the entry for a missed instruction (pending-retry eager
        reservation, or plain placeholder for the retire-time update).

        Returns ``(index, token)``, or ``None`` when insertion is disabled
        (low-register mode evicts instead of inserting).  The token must be
        presented at :meth:`fill`.
        """
        if not self.num_entries:
            return None
        set_index = self._set_of(tag)
        # Victim selection: a way already holding this tag, else an invalid
        # way, else the set's LRU entry (equivalent to the direct index when
        # associativity is 1).
        victim = None
        for slot in self._lru[set_index]:
            candidate = self._entries[slot]
            if candidate.valid and candidate.tag == tag:
                victim = slot
                break
        if victim is None:
            for slot in self._lru[set_index]:
                if not self._entries[slot].valid:
                    victim = slot
                    break
        if victim is None:
            victim = self._lru[set_index][0]
        index = victim
        entry = self._entries[index]
        orphans = self._detach_entry(entry)
        if not allow_insert:
            self._notify_failed(orphans)
            return None
        for kind, operand in tag[1]:
            if kind == "r":
                self._refcount.incref(operand)
        entry.valid = True
        entry.tag = tag
        entry.pending = True
        entry.result_reg = -1
        entry.barrier_count = barrier_count
        entry.tbid = tbid
        entry.is_load = is_load
        self._next_token += 1
        token = self._next_token
        entry.token = token
        self._touch(set_index, index)
        self.stats.reservations += 1
        # Orphans re-enter the reuse stage only after the entry is coherent;
        # they may evict this very entry again — and allocate further tokens
        # re-entrantly — which is safe because the retire-time fill checks
        # the token *captured here*, not the (possibly advanced) counter.
        self._notify_failed(orphans)
        return index, token

    def fill(self, index: int, token: int, result_reg: int) -> List[Waiter]:
        """Producer retire: record the result and release the waiters.

        Returns the waiters so the caller can schedule their completions.
        If the entry no longer holds the producer's reservation (it was
        evicted and possibly re-reserved — even with an identical tag),
        nothing happens and no waiters are returned.
        """
        if not self.num_entries:
            return []
        entry = self._entries[index]
        if not entry.valid or entry.token != token or not entry.pending:
            return []
        self._refcount.incref(result_reg)
        entry.result_reg = result_reg
        entry.pending = False
        waiters = entry.waiters
        entry.waiters = []
        self._retry_queue_used -= len(waiters)
        self.stats.updates += 1
        self.stats.pending_releases += len(waiters)
        if self.tracer is not None:
            self.tracer.component_event(
                "rb", "rb_fill",
                {"index": index, "reg": result_reg, "waiters": len(waiters)})
        if entry.is_load:
            self.stats.load_hits += len(waiters)
        return waiters

    def evict_index(self, index: int) -> bool:
        """Low-register-mode eviction; ``True`` if an entry was dropped."""
        if not self.num_entries:
            return False
        entry = self._entries[index % self.num_entries]
        if not entry.valid:
            return False
        self._notify_failed(self._detach_entry(entry))
        return True

    def evict_if_source(self, index: int, reg: int) -> bool:
        """Evict the entry at *index* only if its tag names *reg* as a source.

        Used to invalidate tags that alias a pinned register being
        overwritten in place (divergence handling, Section V-D).
        """
        if not self.num_entries:
            return False
        entry = self._entries[index % self.num_entries]
        if not entry.valid:
            return False
        if not any(kind == "r" and operand == reg for kind, operand in entry.tag[1]):
            return False
        self._notify_failed(self._detach_entry(entry))
        return True

    def evict_tbid(self, tbid: int) -> int:
        """Drop all scratchpad entries of a completed thread block.

        The 4-bit TBID field is recycled when a new block is dispatched; a
        stale entry from the finished block would otherwise alias the new
        block's (physically different) scratchpad.  Returns the number of
        entries dropped.
        """
        dropped = 0
        orphans = []
        for entry in self._entries:
            if entry.valid and entry.tbid == tbid:
                orphans.extend(self._detach_entry(entry))
                dropped += 1
        self._notify_failed(orphans)
        return dropped

    # --- checkpointing ---------------------------------------------------------

    def state_dict(self, encode_waiter: Callable[[Waiter], dict]) -> dict:
        """Entries, LRU orders, and queue bookkeeping.

        Waiters hold SM-side callbacks, so the SM supplies *encode_waiter*
        to externalize each one (via ``Waiter.descriptor``) as plain data.
        """
        entries = []
        for entry in self._entries:
            tag = entry.tag
            entries.append({
                "valid": entry.valid,
                "tag": ([tag[0], [list(desc) for desc in tag[1]]]
                        if tag is not None else None),
                "result_reg": entry.result_reg,
                "pending": entry.pending,
                "barrier_count": entry.barrier_count,
                "tbid": entry.tbid,
                "is_load": entry.is_load,
                "token": entry.token,
                "waiters": [encode_waiter(w) for w in entry.waiters],
            })
        return {
            "entries": entries,
            "lru": [list(order) for order in self._lru],
            "retry_queue_used": self._retry_queue_used,
            "next_token": self._next_token,
        }

    def load_state(
        self, state: dict, decode_waiter: Callable[[dict], Waiter]
    ) -> None:
        """Inverse of :meth:`state_dict`.

        Fields are set directly, never through reserve/fill — the matching
        reference counts are restored wholesale by the ReferenceCounter.
        Tags are re-tupled (JSON lists would break ``entry.tag == tag``
        equality and ``_mix``).
        """
        for entry, data in zip(self._entries, state["entries"]):
            entry.valid = data["valid"]
            tag = data["tag"]
            entry.tag = (
                (tag[0], tuple((kind, operand) for kind, operand in tag[1]))
                if tag is not None else None)
            entry.result_reg = data["result_reg"]
            entry.pending = data["pending"]
            entry.barrier_count = data["barrier_count"]
            entry.tbid = data["tbid"]
            entry.is_load = data["is_load"]
            entry.token = data["token"]
            entry.waiters = [decode_waiter(w) for w in data["waiters"]]
        self._lru = [list(order) for order in state["lru"]]
        self._retry_queue_used = state["retry_queue_used"]
        self._next_token = state["next_token"]

    def occupancy(self) -> int:
        return sum(1 for entry in self._entries if entry.valid)

    @property
    def retry_queue_used(self) -> int:
        return self._retry_queue_used

    def check_invariants(self, refcount: ReferenceCounter) -> None:
        """Structure self-check; raises :class:`InvariantViolation`.

        Verified: retry-queue accounting matches the waiters actually held,
        waiters only hang off pending entries, and every register a valid
        entry names (tag sources and the result) is still live.
        """
        waiters = sum(len(entry.waiters) for entry in self._entries)
        if waiters != self._retry_queue_used:
            raise InvariantViolation(
                f"retry-queue accounting off: {waiters} waiters held but "
                f"{self._retry_queue_used} slots accounted", path="wir.rb")
        for index, entry in enumerate(self._entries):
            if not entry.valid:
                continue
            if entry.waiters and not entry.pending:
                raise InvariantViolation(
                    f"entry {index} holds waiters but is not pending",
                    path="wir.rb")
            if not entry.pending:
                if entry.result_reg < 0:
                    raise InvariantViolation(
                        f"entry {index} is filled but names no result "
                        f"register", path="wir.rb")
                if refcount.count(entry.result_reg) <= 0:
                    raise InvariantViolation(
                        f"entry {index} names dead result register "
                        f"{entry.result_reg}", path="wir.rb")
            for kind, operand in entry.tag[1]:
                if kind == "r" and refcount.count(operand) <= 0:
                    raise InvariantViolation(
                        f"entry {index} tag names dead source register "
                        f"{operand}", path="wir.rb")
