"""Verify cache (Section VI-C).

Verify-read operations — reads that check a VSB candidate register's value
against a just-computed result — contend with true operand reads for the
register banks.  The verify cache is a small fully-associative LRU cache
tagged by physical register ID; verify-reads that hit skip the bank access
entirely.  A register write evicts the associated line (the cached value
would be stale).
"""

from __future__ import annotations

from collections import OrderedDict

from repro.stats import StatGroup


class VerifyCacheStats(StatGroup):
    """Verify-cache event counts."""

    COUNTERS = ("accesses", "hits", "misses", "invalidations")

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class VerifyCache:
    """Tiny LRU cache of recently verify-read physical registers."""

    def __init__(self, entries: int) -> None:
        self.num_entries = entries
        self._lines: "OrderedDict[int, None]" = OrderedDict()
        self.stats = VerifyCacheStats("vc")

    @property
    def enabled(self) -> bool:
        return self.num_entries > 0

    def access(self, reg: int) -> bool:
        """Verify-read probe: ``True`` on hit (bank access avoided).

        A miss allocates the line (after the actual bank read fills it).
        """
        if not self.enabled:
            return False
        self.stats.accesses += 1
        if reg in self._lines:
            self.stats.hits += 1
            self._lines.move_to_end(reg)
            return True
        self.stats.misses += 1
        if len(self._lines) >= self.num_entries:
            self._lines.popitem(last=False)
        self._lines[reg] = None
        return False

    def state_dict(self) -> dict:
        """Resident lines in LRU order (first = oldest)."""
        return {"lines": list(self._lines)}

    def load_state(self, state: dict) -> None:
        self._lines = OrderedDict((reg, None) for reg in state["lines"])

    def invalidate(self, reg: int) -> None:
        """A write to *reg* evicts its cached value."""
        if self.enabled and reg in self._lines:
            del self._lines[reg]
            self.stats.invalidations += 1

    def drop_random(self, rng) -> bool:
        """Fault injection: drop one random line; ``True`` if one existed."""
        if not self._lines:
            return False
        lines = list(self._lines)
        reg = lines[int(rng.integers(len(lines)))]
        del self._lines[reg]
        return True
