"""Value signature buffer (Section V-A).

The VSB maps 32-bit value hashes to the physical register already holding
that value.  The paper's default indexes entries directly with the low hash
bits, having found associative search to add only marginal benefit; both
organisations are implemented here (``associativity=1`` is direct-indexed,
higher values use set-associative LRU search) so that trade-off is
reproducible — see ``benchmarks/test_ablation_associativity.py``.

A hit is only a *candidate* — hash collisions make false positives possible
— so the caller must verify with a verify-read of the actual register value
before remapping.

Entries hold references to their physical registers (release goes through
the reference counter), so a register named by a VSB entry can never be
recycled underneath it.
"""

from __future__ import annotations

from typing import List, Optional

from repro.check.errors import InvariantViolation
from repro.core.refcount import ReferenceCounter
from repro.stats import StatGroup


class VSBStats(StatGroup):
    """VSB event counts.  ``hits`` are index + full-hash matches before
    verification; ``false_positives`` are verified mismatches, recorded by
    the caller."""

    COUNTERS = ("lookups", "hits", "misses", "insertions", "evictions",
                "false_positives")


class _Entry:
    __slots__ = ("valid", "hash_value", "reg")

    def __init__(self) -> None:
        self.valid = False
        self.hash_value = 0
        self.reg = -1


class ValueSignatureBuffer:
    """[hash -> physical register] table, direct-indexed or set-associative."""

    def __init__(
        self, entries: int, refcount: ReferenceCounter, associativity: int = 1
    ) -> None:
        if entries and entries & (entries - 1):
            raise ValueError("VSB entry count must be a power of two (or zero)")
        if associativity < 1 or (entries and entries % associativity):
            raise ValueError("associativity must divide the entry count")
        self.num_entries = entries
        self.associativity = associativity if entries else 1
        self._num_sets = entries // self.associativity if entries else 0
        self._refcount = refcount
        self._entries = [_Entry() for _ in range(entries)]
        #: Per-set slot order, least recently used first.
        self._lru: List[List[int]] = [
            list(range(s * self.associativity, (s + 1) * self.associativity))
            for s in range(self._num_sets)
        ]
        self.stats = VSBStats("vsb")
        #: Observability hook (per-SM ``SMTraceView`` or ``None``).
        self.tracer = None

    def _set_of(self, hash_value: int) -> int:
        return hash_value & (self._num_sets - 1)

    def index_of(self, hash_value: int) -> int:
        """First slot of the set this hash maps to (direct index when
        associativity is 1)."""
        return self._set_of(hash_value) * self.associativity

    def _touch(self, set_index: int, slot: int) -> None:
        # A one-way set's recency order cannot change; skip the list
        # shuffle in the direct-indexed default.
        if self.associativity == 1:
            return
        order = self._lru[set_index]
        order.remove(slot)
        order.append(slot)

    def lookup(self, hash_value: int) -> Optional[int]:
        """Candidate physical register for *hash_value*, or ``None``."""
        self.stats.lookups += 1
        if not self.num_entries:
            self.stats.misses += 1
            return None
        set_index = self._set_of(hash_value)
        for slot in self._lru[set_index]:
            entry = self._entries[slot]
            if entry.valid and entry.hash_value == hash_value:
                self.stats.hits += 1
                self._touch(set_index, slot)
                return entry.reg
        self.stats.misses += 1
        return None

    def insert(self, hash_value: int, reg: int) -> None:
        """Register [hash, reg]; evicts the set's LRU entry if it is full."""
        if not self.num_entries:
            return
        set_index = self._set_of(hash_value)
        # Reuse an entry already holding this hash, else an invalid way,
        # else the LRU victim.
        victim = None
        for slot in self._lru[set_index]:
            entry = self._entries[slot]
            if entry.valid and entry.hash_value == hash_value:
                victim = slot
                break
        if victim is None:
            for slot in self._lru[set_index]:
                if not self._entries[slot].valid:
                    victim = slot
                    break
        if victim is None:
            victim = self._lru[set_index][0]
        entry = self._entries[victim]
        if entry.valid:
            self.stats.evictions += 1
            if self.tracer is not None:
                self.tracer.component_event("vsb", "vsb_evict",
                                            {"reg": entry.reg})
            self._refcount.decref(entry.reg)
        self._refcount.incref(reg)
        entry.valid = True
        entry.hash_value = hash_value
        entry.reg = reg
        self._touch(set_index, victim)
        self.stats.insertions += 1
        if self.tracer is not None:
            self.tracer.component_event("vsb", "vsb_insert", {"reg": reg})

    def evict_index(self, index: int) -> bool:
        """Low-register-mode eviction of one slot; True if one was dropped."""
        if not self.num_entries:
            return False
        entry = self._entries[index % self.num_entries]
        if not entry.valid:
            return False
        self.stats.evictions += 1
        if self.tracer is not None:
            self.tracer.component_event("vsb", "vsb_evict", {"reg": entry.reg})
        self._refcount.decref(entry.reg)
        entry.valid = False
        entry.reg = -1
        return True

    def state_dict(self) -> dict:
        """Entries and per-set LRU order (stats live in the SM stats tree)."""
        return {
            "entries": [
                [entry.valid, entry.hash_value, entry.reg]
                for entry in self._entries
            ],
            "lru": [list(order) for order in self._lru],
        }

    def load_state(self, state: dict) -> None:
        # Fields are set directly — no incref/decref, the counter array is
        # restored wholesale elsewhere.
        for entry, (valid, hash_value, reg) in zip(self._entries,
                                                   state["entries"]):
            entry.valid = valid
            entry.hash_value = hash_value
            entry.reg = reg
        self._lru = [list(order) for order in state["lru"]]

    def note_false_positive(self) -> None:
        self.stats.false_positives += 1

    @property
    def hit_rate(self) -> float:
        if not self.stats.lookups:
            return 0.0
        return self.stats.hits / self.stats.lookups

    def occupancy(self) -> int:
        return sum(1 for entry in self._entries if entry.valid)

    def check_invariants(self, refcount: ReferenceCounter) -> None:
        """Every valid entry must name a live physical register."""
        for index, entry in enumerate(self._entries):
            if not entry.valid:
                continue
            if entry.reg < 0:
                raise InvariantViolation(
                    f"entry {index} is valid but names no register",
                    path="wir.vsb")
            if refcount.count(entry.reg) <= 0:
                raise InvariantViolation(
                    f"entry {index} names dead register {entry.reg}",
                    path="wir.vsb")
