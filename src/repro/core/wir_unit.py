"""Per-SM WIR unit: the rename/reuse/allocation *structures* of Sections
V and VI — rename tables, reuse buffer, VSB, verify cache, hasher,
physical register file, and the reference counter that ties them together.

The pipeline *sequencing* over these structures lives in
:mod:`repro.pipeline.stages` (DESIGN.md §13): the rename stage drives
:meth:`plan_of` / :meth:`rename_with_plan`, the reuse-probe stage drives
the buffer lookup/reservation helpers (:meth:`load_may_reuse`,
:meth:`entry_tbid`, :meth:`track_tag_sources`), and the allocate/verify
and writeback/retire stages drive :meth:`allocate_register`,
:meth:`invalidate_stale_tags`, and the rename-table remap.  This class
owns structure lifetime, the capped-register policy, checkpointing, and
the cross-structure invariants.

All reference counting flows through :class:`ReferenceCounter`, so the
conservation invariant (live counted registers == allocated registers) holds
at every cycle boundary; tests assert it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.check.errors import InvariantViolation
from repro.core.affine import AffineTracker
from repro.core.hashing import H3Hash
from repro.core.physreg import OutOfRegistersError, PhysicalRegisterFile
from repro.core.refcount import ReferenceCounter
from repro.core.rename import RenameTables
from repro.core.reuse_buffer import NULL_TBID, ReuseBuffer, Tag, Waiter
from repro.core.verify_cache import VerifyCache
from repro.core.vsb import ValueSignatureBuffer
from repro.isa.instruction import Instruction, OperandKind
from repro.isa.opcodes import MemSpace, Opcode, is_load, is_reuse_candidate
from repro.sim.config import GPUConfig, RegisterPolicy
from repro.sim.regfile import RegisterFileTiming
from repro.sim.warp import Warp
from repro.stats import StatGroup

#: Opcode -> stable integer for reuse-buffer tags.
_OPCODE_INDEX = {op: i for i, op in enumerate(Opcode)}


class _SourcePlan:
    """Static per-instruction rename/tag plan (see ``WIRUnit.plan_of``).

    ``steps`` drives source renaming: ``(True, logical, extra_desc)`` for a
    register/address operand (``extra_desc`` is the interned address-offset
    descriptor, or ``None``), ``(False, desc, None)`` for an interned
    immediate / special-register descriptor.
    """

    __slots__ = ("inst", "steps", "num_reg_reads", "opcode_index",
                 "reuse_candidate", "load", "warp_dependent")

    def __init__(self, inst: Instruction) -> None:
        self.inst = inst
        steps: List[Tuple[bool, object, Optional[Tuple[str, int]]]] = []
        num_reg_reads = 0
        for src in inst.srcs:
            if src.kind in (OperandKind.REG, OperandKind.ADDR):
                num_reg_reads += 1
                extra = None
                if src.kind is OperandKind.ADDR and src.offset:
                    extra = ("i", src.offset & 0xFFFFFFFF)
                steps.append((True, src.value, extra))
            elif src.kind is OperandKind.IMM:
                steps.append((False, ("i", src.value), None))
            elif src.kind is OperandKind.SREG:
                # Special registers are warp-constant; encode the value class
                # into the tag so identical tid patterns match across warps.
                steps.append((False, ("i", 0xFFFF0000 | src.value), None))
        self.steps = tuple(steps)
        self.num_reg_reads = num_reg_reads
        self.opcode_index = _OPCODE_INDEX[inst.opcode]
        self.reuse_candidate = is_reuse_candidate(inst.opcode)
        self.load = is_load(inst.opcode)
        self.warp_dependent = any(
            src.kind is OperandKind.SREG for src in inst.srcs)


class WIRCounters(StatGroup):
    """Event counts for the added structures (Table III energy accounting).

    ``verify_reads`` are performed against real register banks while
    ``verify_cache_filtered`` were absorbed by the verify cache;
    ``writes_avoided`` are register writes removed by VSB sharing.  The
    per-structure groups (``rb``, ``vsb``, ``vc``, ``phys``) are adopted as
    children, so one ``wir`` subtree per SM carries every reuse statistic.
    """

    COUNTERS = ("rename_reads", "rename_writes", "hash_generations",
                "allocator_ops", "dummy_movs", "verify_reads",
                "verify_cache_filtered", "writes_avoided",
                "low_register_mode_entries", "quarantines")


@dataclass
class IssueDecision:
    """Outcome of the rename + reuse stages for one instruction."""

    #: "execute" | "reuse" | "queued" | "bypass"
    action: str
    #: Physical IDs of the renamed source registers (for bank scheduling).
    src_phys: Tuple[int, ...] = ()
    #: Reuse-buffer tag, when the instruction participates in reuse.
    tag: Optional[Tag] = None
    #: Result physical register for an immediate reuse hit.
    result_reg: int = -1
    #: Reserved reuse-buffer index for the retire-time update.
    rb_index: Optional[int] = None
    #: Reservation token presented at the retire-time fill.
    rb_token: int = -1
    #: Whether this instruction reserved a (pending) reuse-buffer entry.
    reserved: bool = False
    #: Divergence state captured at rename (pin bit of the destination).
    divergent: bool = False


class WIRUnit:
    """Rename / reuse / register-allocation machinery for one SM."""

    def __init__(
        self,
        config: GPUConfig,
        regfile: RegisterFileTiming,
        affine: AffineTracker,
    ) -> None:
        self.config = config
        self.wir = config.wir
        self.regfile = regfile
        self.affine = affine

        self.physfile = PhysicalRegisterFile(config.num_physical_registers)
        self.refcount = ReferenceCounter(self.physfile)
        self.rename = RenameTables(config.max_warps_per_sm, self.refcount)
        self.vsb = ValueSignatureBuffer(
            self.wir.vsb_entries if self.wir.use_vsb else 0,
            self.refcount,
            associativity=self.wir.vsb_associativity,
        )
        self.reuse_buffer = ReuseBuffer(
            self.wir.reuse_buffer_entries,
            self.refcount,
            retry_queue_entries=self.wir.retry_queue_entries,
            associativity=self.wir.reuse_buffer_associativity,
        )
        self.verify_cache = VerifyCache(self.wir.verify_cache_entries)
        self.hasher = H3Hash(bits=self.wir.hash_bits)
        #: Optional :class:`repro.check.faults.FaultInjector` (fault runs).
        self.faults = None
        #: This unit's subtree of the run's stats registry; the structure
        #: groups are adopted (shared, not copied) so they stay live.
        self.counters = WIRCounters("wir")
        self.counters.adopt(self.reuse_buffer.stats)
        self.counters.adopt(self.vsb.stats)
        self.counters.adopt(self.verify_cache.stats)

        # Capped-register policy state.
        self._register_cap = config.num_physical_registers
        self._evict_pointer = 0
        #: Reverse map: physical register -> reuse-buffer indices whose tag
        #: names it as a source.  Used to invalidate stale tags when a pinned
        #: register is overwritten in place (see DESIGN.md erratum note).
        self._rb_src_refs: Dict[int, Set[int]] = {}
        #: Per-block barrier counts saturate at 2**barrier_count_bits - 1;
        #: beyond that the block stops reusing loads (Section VI-A).
        self._max_barrier_count = (1 << self.wir.barrier_count_bits) - 1
        #: Interned per-instruction rename/tag plans, keyed by ``id(inst)``
        #: (each plan pins its instruction, keeping the key unique).
        self._plans: Dict[int, _SourcePlan] = {}
        #: Callbacks invoked after :meth:`quarantine_flush` — e.g. the
        #: superblock runtime drops its compiled dispatch state, since a
        #: flush changes what a mid-block reuse probe would have answered.
        self.on_flush: List[Callable[[], None]] = []

    # ------------------------------------------------------------------ setup

    def attach_faults(self, injector) -> None:
        """Arm fault injection; its counters join this unit's subtree."""
        self.faults = injector
        self.counters.adopt(injector.stats)

    def set_register_cap(self, logical_regs_per_warp: int, active_warps: int) -> None:
        """Capped-register policy: budget = logical registers in flight."""
        if self.wir.register_policy is RegisterPolicy.CAPPED_REGISTER:
            cap = max(2, logical_regs_per_warp * active_warps + 1)
            self._register_cap = min(cap, self.config.num_physical_registers)
        else:
            self._register_cap = self.config.num_physical_registers

    def reset_slot(self, slot: int) -> None:
        """Invalidate a warp slot's rename table (warp init / teardown)."""
        self.rename.reset_slot(slot)

    def on_block_complete(self, block_id: int) -> None:
        """Flush scratchpad-scoped reuse entries when their block finishes.

        The 4-bit TBID namespace is recycled across blocks; see
        :meth:`ReuseBuffer.evict_tbid`.
        """
        self.reuse_buffer.evict_tbid(block_id & 0xF)

    # --------------------------------------------------------------- renaming

    def plan_of(self, inst: Instruction) -> "_SourcePlan":
        """Interned per-instruction rename/tag plan.

        Operand-kind dispatch, static immediate descriptors, opcode index,
        and reuse-eligibility predicates depend only on the static
        instruction, so they are computed once per instruction per unit and
        reused on every issue.  The plan pins the instruction object, so the
        ``id`` key stays unique for the unit's lifetime.
        """
        plan = self._plans.get(id(inst))
        if plan is None:
            plan = _SourcePlan(inst)
            self._plans[id(inst)] = plan
        return plan

    def rename_sources(self, warp: Warp, inst: Instruction) -> Tuple[Tuple[int, ...], Tuple]:
        """Rename source registers; returns (phys ids, tag source descriptors)."""
        return self.rename_with_plan(warp, self.plan_of(inst))

    def rename_with_plan(
        self, warp: Warp, plan: "_SourcePlan"
    ) -> Tuple[Tuple[int, ...], Tuple]:
        if plan.num_reg_reads:
            self.counters.rename_reads += plan.num_reg_reads
        slot = warp.warp_slot
        lookup = self.rename.lookup
        phys: List[int] = []
        descs: List[Tuple[str, int]] = []
        for is_reg, payload, extra in plan.steps:
            if is_reg:
                preg = lookup(slot, payload)
                phys.append(preg)
                descs.append(("r", preg))
                if extra is not None:
                    descs.append(extra)
            else:
                descs.append(payload)
        return tuple(phys), tuple(descs)

    def make_tag(self, inst: Instruction, descs: Tuple) -> Tag:
        return (_OPCODE_INDEX[inst.opcode], descs)

    # --------------------------------------------- reuse-eligibility helpers

    def load_may_reuse(self, warp: Warp, inst: Instruction) -> bool:
        """Memory-hazard rules of Section VI-A."""
        if not self.wir.load_reuse:
            return False
        space = inst.space
        if space in (MemSpace.CONST, MemSpace.PARAM):
            return True  # read-only spaces are always safe
        if space is MemSpace.LOCAL:
            return False  # per-thread space; reuse across warps is unsound
        if warp.barrier_count >= self._max_barrier_count:
            return False  # saturated barrier counter (Section VI-A)
        if space is MemSpace.SHARED:
            return not warp.shared_store_flag
        if space is MemSpace.GLOBAL:
            return not warp.global_store_flag
        return False

    def entry_tbid(self, warp: Warp, inst: Instruction) -> int:
        if inst.space is MemSpace.SHARED:
            return warp.block.block_id & 0xF
        return NULL_TBID

    def track_tag_sources(self, tag: Tag, index: int) -> None:
        for kind, operand in tag[1]:
            if kind == "r":
                self._rb_src_refs.setdefault(operand, set()).add(index)

    # ---------------------------------------------------- register management

    def in_low_register_mode(self) -> bool:
        if self.physfile.free_count == 0:
            return True
        return self.physfile.in_use >= self._register_cap

    def allocate_register(self) -> int:
        """Allocate a physical register, evicting buffer entries if needed.

        With fault injection armed, the fresh register may come back full of
        garbage ("stale" contents) — harmless by design, because every
        pipeline path fully writes an allocated register before any reader
        can name it; the oracle proves it.
        """
        reg = self._allocate_register_inner()
        if self.faults is not None:
            self.faults.scramble_allocated(self.physfile, reg)
        return reg

    def _allocate_register_inner(self) -> int:
        self.counters.allocator_ops += 1
        if self.physfile.in_use < self._register_cap:
            reg = self.physfile.allocate()
            if reg is not None:
                return reg
        # Low register mode: walk the buffers evicting entries until a
        # register frees up (Section V-E deadlock avoidance).
        self.counters.low_register_mode_entries += 1
        total = max(1, self.vsb.num_entries) + max(1, self.reuse_buffer.num_entries)
        for _ in range(2 * total):
            self._evict_pointer += 1
            if self.vsb.num_entries:
                self.vsb.evict_index(self._evict_pointer % self.vsb.num_entries)
            if self.reuse_buffer.num_entries:
                self.reuse_buffer.evict_index(
                    self._evict_pointer % self.reuse_buffer.num_entries)
            if self.physfile.free_count and self.physfile.in_use < self._register_cap:
                reg = self.physfile.allocate()
                if reg is not None:
                    return reg
        if self.physfile.free_count:
            reg = self.physfile.allocate()
            if reg is not None:
                return reg
        raise OutOfRegistersError(
            "physical register pool exhausted: rename tables alone hold more "
            "registers than the file provides"
        )

    def invalidate_stale_tags(self, reg: int) -> None:
        """Drop reuse-buffer entries whose tag names *reg* as a source.

        Needed when a pinned register is overwritten in place: a stale tag
        would otherwise alias the old value (see DESIGN.md).
        """
        indices = self._rb_src_refs.pop(reg, None)
        if not indices:
            return
        for index in indices:
            self.reuse_buffer.evict_if_source(index, reg)

    # ---------------------------------------------------------- checkpointing

    def state_dict(self, encode_waiter: Callable[[Waiter], dict]) -> dict:
        """Composite snapshot of every reuse structure.

        Not serialized: the interned ``_plans`` and the hasher memo (pure
        caches, lazily repopulated), ``_max_barrier_count`` (config-derived),
        and ``_register_cap`` (recomputed from the restored warp population
        by ``SMCore._refresh_register_cap``).
        """
        return {
            "physfile": self.physfile.state_dict(),
            "refcount": self.refcount.state_dict(),
            "rename": self.rename.state_dict(),
            "vsb": self.vsb.state_dict(),
            "reuse_buffer": self.reuse_buffer.state_dict(encode_waiter),
            "verify_cache": self.verify_cache.state_dict(),
            "evict_pointer": self._evict_pointer,
            "rb_src_refs": {
                str(reg): sorted(indices)
                for reg, indices in self._rb_src_refs.items() if indices
            },
        }

    def load_state(
        self, state: dict, decode_waiter: Callable[[dict], Waiter]
    ) -> None:
        self.physfile.load_state(state["physfile"])
        self.refcount.load_state(state["refcount"])
        self.rename.load_state(state["rename"])
        self.vsb.load_state(state["vsb"])
        self.reuse_buffer.load_state(state["reuse_buffer"], decode_waiter)
        self.verify_cache.load_state(state["verify_cache"])
        self._evict_pointer = state["evict_pointer"]
        # Sets of ints iterate in value-hash order, which depends only on
        # the contents — restoring from sorted lists reproduces the original
        # eviction walk order in ``invalidate_stale_tags``.
        self._rb_src_refs = {
            int(reg): set(indices)
            for reg, indices in state["rb_src_refs"].items()
        }

    # ------------------------------------------------------------ diagnostics

    def finalize_stats(self) -> WIRCounters:
        """Snapshot end-of-run physical-register metrics into the registry.

        The register file's peak/average utilisation (Figure 19) and the
        reference-counter operation total only have final values when the
        run ends, so they are materialised here rather than counted live.
        """
        phys = self.counters.group("phys")
        phys.add_counter("peak").set(self.physfile.peak_in_use)
        phys.add_counter("avg").set(self.physfile.average_in_use)
        phys.add_counter("allocations").set(self.physfile.allocations)
        phys.add_counter("refcount_ops").set(self.refcount.operations)
        return self.counters

    def check_invariants(self) -> None:
        """Cross-structure self-check; raises :class:`InvariantViolation`.

        Validates reference-count conservation plus the reuse buffer's and
        the VSB's own invariants.  Safe to call at any cycle boundary (the
        transient states inside one pipeline-stage call all resolve before
        the stage returns); the SM core calls it periodically when
        ``config.wir.invariant_check_interval`` is set.
        """
        try:
            self.refcount.check_conservation()
        except AssertionError as err:
            raise InvariantViolation(str(err), path="wir.phys") from None
        self.reuse_buffer.check_invariants(self.refcount)
        self.vsb.check_invariants(self.refcount)

    def quarantine_flush(self) -> None:
        """Drop every reuse-buffer entry on quarantine.

        Waiters queued on pending entries are notified with ``None`` so
        they re-enter the (now reuse-less) issue path and execute.  VSB and
        rename state is left in place — a quarantined unit stops *offering*
        reuse, and the registers its tables still name are never read
        again, so tearing them down buys nothing.
        """
        for index in range(self.reuse_buffer.num_entries):
            self.reuse_buffer.evict_index(index)
        for hook in self.on_flush:
            hook()
