"""Event-based energy model (GPUWattch-style, with Table III components).

The simulator counts events (instructions, register-bank accesses,
functional-unit lane activations, cache/scratchpad/DRAM accesses, WIR
structure operations); this package turns those counts into SM-level and
GPU-level energy breakdowns, mirroring the paper's Figures 14 and 16.
"""

from repro.energy.accounting import EnergyReport, compute_energy
from repro.energy.components import TABLE_III, EnergyParams, TableIIIRow
from repro.energy.sram import SRAMEstimate, estimate_sram, wir_storage_budget

__all__ = [
    "EnergyParams",
    "EnergyReport",
    "compute_energy",
    "TABLE_III",
    "TableIIIRow",
    "SRAMEstimate",
    "estimate_sram",
    "wir_storage_budget",
]
