"""Turn a :class:`~repro.sim.gpu.RunResult` into energy breakdowns.

Two views are produced, mirroring the paper's figures:

* **SM energy** (Figure 16): instruction supply, register file, functional
  units, SM-local memories, WIR overhead, and SM leakage.
* **GPU energy** (Figure 14): the SM total plus NoC, L2, DRAM, and chip
  static energy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.energy.components import EnergyParams
from repro.sim.gpu import RunResult


@dataclass
class EnergyReport:
    """Energy in picojoules, broken down by component."""

    sm_breakdown: Dict[str, float]
    gpu_breakdown: Dict[str, float]

    @property
    def sm_total(self) -> float:
        return sum(self.sm_breakdown.values())

    @property
    def gpu_total(self) -> float:
        return sum(self.gpu_breakdown.values())

    def sm_fraction(self, component: str) -> float:
        return self.sm_breakdown.get(component, 0.0) / self.sm_total

    def normalised_gpu(self, baseline: "EnergyReport") -> Dict[str, float]:
        """GPU breakdown normalised to another report's total (Figure 14)."""
        scale = baseline.gpu_total
        return {k: v / scale for k, v in self.gpu_breakdown.items()}


def compute_energy(result: RunResult, params: Optional[EnergyParams] = None) -> EnergyReport:
    """Compute the energy report for one run."""
    p = params if params is not None else EnergyParams()

    issued = result.total("issued")
    backend = result.total("backend_insts")
    fu_sp_lanes = result.total("fu_sp_lanes")
    fu_sfu_lanes = result.total("fu_sfu_lanes")
    fu_insts = result.total("fu_sp_insts") + result.total("fu_sfu_insts")
    mem_insts = result.total("mem_insts")

    bank_reads = result.regfile_total("bank_reads")
    bank_writes = result.regfile_total("bank_writes")

    l1_accesses = result.l1d_stats["accesses"] + result.l1c_stats["accesses"]
    l1_misses = result.l1d_stats["misses"] + result.l1c_stats["misses"]
    scratchpad = result.scratchpad_accesses

    sm: Dict[str, float] = {
        "instruction supply": issued * (p.frontend_per_inst + p.scoreboard_per_inst),
        "register file": (bank_reads + bank_writes) * p.rf_bank_access
        + backend * p.operand_collection,
        "functional units": fu_sp_lanes * p.fu_sp_lane
        + fu_sfu_lanes * p.fu_sfu_lane
        + (fu_insts + mem_insts) * p.fu_control,
        "scratchpad": scratchpad * p.scratchpad_access,
        "L1 caches": l1_accesses * p.l1_access + l1_misses * p.l1_miss_overhead,
        "SM static": _total_sm_cycles(result) * p.sm_static_per_cycle,
        "reuse overhead": _wir_overhead(result, p),
    }

    gpu = dict(sm)
    gpu["NoC"] = result.noc_flits * p.noc_flit
    gpu["L2 cache"] = result.l2_stats.get("accesses", 0) * p.l2_access
    gpu["DRAM"] = result.dram_accesses * p.dram_access
    gpu["chip static"] = result.cycles * p.chip_static_per_cycle

    return EnergyReport(sm_breakdown=sm, gpu_breakdown=gpu)


def _total_sm_cycles(result: RunResult) -> int:
    """Leakage accrues on every SM for the whole run duration."""
    return result.cycles * len(result.sm_counters)


def _wir_overhead(result: RunResult, p: EnergyParams) -> float:
    """Energy of the added WIR structures (Table III costs x event counts)."""
    stats = result.wir_stats
    if not stats:
        return 0.0
    rename_ops = stats.get("rename_reads", 0) + stats.get("rename_writes", 0)
    rb_ops = (
        stats.get("rb_lookups", 0)
        + stats.get("rb_reservations", 0)
        + stats.get("rb_updates", 0)
    )
    vsb_ops = stats.get("vsb_lookups", 0) + stats.get("vsb_insertions", 0)
    vc_ops = stats.get("vc_accesses", 0)
    return (
        rename_ops * p.rename_table_op
        + rb_ops * p.reuse_buffer_op
        + stats.get("hash_generations", 0) * p.hash_generation
        + vsb_ops * p.vsb_op
        + stats.get("allocator_ops", 0) * p.register_allocator_op
        + stats.get("refcount_ops", 0) * p.refcount_op
        + vc_ops * p.verify_cache_op
    )
