"""Turn a :class:`~repro.sim.gpu.RunResult` into energy breakdowns.

Two views are produced, mirroring the paper's figures:

* **SM energy** (Figure 16): instruction supply, register file, functional
  units, SM-local memories, WIR overhead, and SM leakage.
* **GPU energy** (Figure 14): the SM total plus NoC, L2, DRAM, and chip
  static energy.

All event counts are pulled from the run's hierarchical stats registry by
dotted path — ``sm{N}.core.*`` / ``sm{N}.regfile.*`` / ``sm{N}.l1d.*`` /
``sm{N}.wir.*`` summed across SMs via :meth:`RunResult.sm_stat`, plus the
chip-level ``memory.*`` subtree — so the accounting works identically on
live results and on results rehydrated from JSON (the parallel runner and
the on-disk cache).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.energy.components import EnergyParams
from repro.sim.gpu import RunResult


@dataclass
class EnergyReport:
    """Energy in picojoules, broken down by component."""

    sm_breakdown: Dict[str, float]
    gpu_breakdown: Dict[str, float]

    @property
    def sm_total(self) -> float:
        return sum(self.sm_breakdown.values())

    @property
    def gpu_total(self) -> float:
        return sum(self.gpu_breakdown.values())

    def sm_fraction(self, component: str) -> float:
        return self.sm_breakdown.get(component, 0.0) / self.sm_total

    def normalised_gpu(self, baseline: "EnergyReport") -> Dict[str, float]:
        """GPU breakdown normalised to another report's total (Figure 14)."""
        scale = baseline.gpu_total
        return {k: v / scale for k, v in self.gpu_breakdown.items()}


def compute_energy(result: RunResult, params: Optional[EnergyParams] = None) -> EnergyReport:
    """Compute the energy report for one run (registry events x unit costs)."""
    p = params if params is not None else EnergyParams()
    s = result.sm_stat  # per-SM dotted path, summed across SMs

    issued = s("core.issued")
    backend = s("core.backend_insts")
    fu_sp_lanes = s("core.fu_sp_lanes")
    fu_sfu_lanes = s("core.fu_sfu_lanes")
    fu_insts = s("core.fu_sp_insts") + s("core.fu_sfu_insts")
    mem_insts = s("core.mem_insts")

    bank_reads = s("regfile.bank_reads")
    bank_writes = s("regfile.bank_writes")

    l1_accesses = s("l1d.accesses") + s("l1c.accesses")
    l1_misses = s("l1d.misses") + s("l1c.misses")
    scratchpad = s("port.scratchpad_accesses")

    sm: Dict[str, float] = {
        "instruction supply": issued * (p.frontend_per_inst + p.scoreboard_per_inst),
        "register file": (bank_reads + bank_writes) * p.rf_bank_access
        + backend * p.operand_collection,
        "functional units": fu_sp_lanes * p.fu_sp_lane
        + fu_sfu_lanes * p.fu_sfu_lane
        + (fu_insts + mem_insts) * p.fu_control,
        "scratchpad": scratchpad * p.scratchpad_access,
        "L1 caches": l1_accesses * p.l1_access + l1_misses * p.l1_miss_overhead,
        "SM static": _total_sm_cycles(result) * p.sm_static_per_cycle,
        "reuse overhead": _wir_overhead(result, p),
    }

    gpu = dict(sm)
    gpu["NoC"] = result.stat("memory.noc.flits") * p.noc_flit
    gpu["L2 cache"] = result.stat("memory.l2.accesses") * p.l2_access
    gpu["DRAM"] = result.stat("memory.dram.accesses") * p.dram_access
    gpu["chip static"] = result.cycles * p.chip_static_per_cycle

    return EnergyReport(sm_breakdown=sm, gpu_breakdown=gpu)


def _total_sm_cycles(result: RunResult) -> int:
    """Leakage accrues on every SM for the whole run duration."""
    return result.cycles * len(result.sm_groups)


def _wir_overhead(result: RunResult, p: EnergyParams) -> float:
    """Energy of the added WIR structures (Table III costs x event counts)."""
    sm_groups = result.sm_groups
    if not sm_groups or "wir" not in sm_groups[0].children:
        return 0.0
    s = result.sm_stat
    rename_ops = s("wir.rename_reads") + s("wir.rename_writes")
    rb_ops = s("wir.rb.lookups") + s("wir.rb.reservations") + s("wir.rb.updates")
    vsb_ops = s("wir.vsb.lookups") + s("wir.vsb.insertions")
    return (
        rename_ops * p.rename_table_op
        + rb_ops * p.reuse_buffer_op
        + s("wir.hash_generations") * p.hash_generation
        + vsb_ops * p.vsb_op
        + s("wir.allocator_ops") * p.register_allocator_op
        + s("wir.phys.refcount_ops") * p.refcount_op
        + s("wir.vc.accesses") * p.verify_cache_op
    )
