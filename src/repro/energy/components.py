"""Per-event energy constants and the paper's Table III component costs.

Baseline per-event energies are GPUWattch-flavoured 45 nm estimates chosen
so the SM energy breakdown has realistic proportions (register file and
functional units dominate the backend; instruction supply and leakage make
up the rest).  The WIR structure costs are taken directly from the paper's
Table III.  Absolute joules are not the point — the evaluation compares
models on identical workloads, so only the *relative* event costs shape the
results; see EXPERIMENTS.md for the calibration notes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass(frozen=True)
class TableIIIRow:
    """One row of the paper's Table III."""

    energy_pj: float
    latency_ns: float
    io_ports: str
    io_bits: str
    max_ops_per_inst: str


#: The paper's Table III, verbatim.
TABLE_III: Dict[str, TableIIIRow] = {
    "Rename table": TableIIIRow(3.50, 0.33, "4r 1w", "(6, 12)", "4r 1w"),
    "Reuse buffer table": TableIIIRow(4.71, 0.31, "2r 2w", "(59, 59)", "1r 1w"),
    "Hash generation": TableIIIRow(4.85, 0.95, "1i 1o", "(1024, 32)", "1"),
    "Val. sig. buf. table": TableIIIRow(4.96, 0.32, "2r 2w", "(32, 43)", "1r 1w"),
    "Register allocator": TableIIIRow(1.35, 0.24, "1r 1w", "(10, 10)", "1r 1w"),
    "Reference count": TableIIIRow(0.32, 2.33, "24i 2o", "(10, 10)", "6x+1 6x-1"),
    "Verify cache": TableIIIRow(2.93, 0.19, "2r 2w", "(10, 1024)", "1r 1w"),
}


@dataclass
class EnergyParams:
    """All per-event energies in picojoules (and static power per cycle).

    SM-local events feed the Figure 16 breakdown; chip-level events (NoC,
    L2, DRAM) additionally feed the Figure 14 GPU breakdown.
    """

    # --- instruction supply (fetch / decode / ibuffer / scheduler) ---
    frontend_per_inst: float = 30.0
    scoreboard_per_inst: float = 5.0

    # --- register file ---
    #: One 128-bit bank access; a full warp register access activates 8.
    rf_bank_access: float = 14.0
    #: Operand collection, result bus, and writeback control per backend
    #: instruction (wiring energy the reuse bypass saves in full).
    operand_collection: float = 120.0

    # --- functional units (per active lane) ---
    fu_sp_lane: float = 16.0
    fu_sfu_lane: float = 50.0
    #: Pipeline-control overhead per executed (non-bypassed) instruction.
    fu_control: float = 50.0

    # --- SM-local memory ---
    scratchpad_access: float = 100.0
    l1_access: float = 160.0
    l1_miss_overhead: float = 60.0

    # --- chip-level memory ---
    noc_flit: float = 120.0
    l2_access: float = 200.0
    dram_access: float = 1600.0

    # --- static / constant power, per cycle ---
    sm_static_per_cycle: float = 40.0
    chip_static_per_cycle: float = 250.0

    # --- WIR structures (Table III, per operation) ---
    rename_table_op: float = TABLE_III["Rename table"].energy_pj
    reuse_buffer_op: float = TABLE_III["Reuse buffer table"].energy_pj
    hash_generation: float = TABLE_III["Hash generation"].energy_pj
    vsb_op: float = TABLE_III["Val. sig. buf. table"].energy_pj
    register_allocator_op: float = TABLE_III["Register allocator"].energy_pj
    refcount_op: float = TABLE_III["Reference count"].energy_pj
    verify_cache_op: float = TABLE_III["Verify cache"].energy_pj

    def scaled(self, **overrides: float) -> "EnergyParams":
        """A copy with some constants replaced (sensitivity studies)."""
        from dataclasses import replace

        return replace(self, **overrides)
