"""CACTI-flavoured analytic SRAM estimator and the WIR storage budget.

The paper sizes its added structures with CACTI 4.0 and a 45 nm synthesis
library (Table III) and reports a total storage cost of about 9.9 KB per SM
(Section VII-E).  This module provides:

* :func:`estimate_sram` — a small analytic model giving energy/op and access
  latency from (entries, bits/entry, ports).  The coefficients are fitted so
  the paper's seven structures come out within a few tens of percent of
  Table III, which is all a first-order sizing model is good for.
* :func:`wir_storage_budget` — the storage inventory of Section VII-E,
  computed from a configuration rather than hard-coded.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.sim.config import GPUConfig


@dataclass(frozen=True)
class SRAMEstimate:
    """First-order SRAM cost estimate."""

    entries: int
    bits_per_entry: int
    read_ports: int
    write_ports: int
    energy_per_op_pj: float
    latency_ns: float
    storage_bytes: int


def estimate_sram(
    entries: int,
    bits_per_entry: int,
    read_ports: int = 1,
    write_ports: int = 1,
) -> SRAMEstimate:
    """Estimate energy/op and latency of a small SRAM table at 45 nm.

    The model is the usual first-order decomposition: energy scales with the
    accessed row width and with sqrt(rows) for the shared array overheads
    (decoder, wordline, sense); latency scales with log2(rows) for the
    decoder plus a wire term growing with sqrt(total bits).  Multi-ported
    cells grow linearly in area per port, adding capacitance.
    """
    if entries <= 0 or bits_per_entry <= 0:
        raise ValueError("entries and bits_per_entry must be positive")
    ports = read_ports + write_ports
    rows = max(entries, 2)
    total_bits = entries * bits_per_entry

    port_factor = 1.0 + 0.35 * (ports - 2) if ports > 2 else 1.0
    energy = (
        0.55                                  # decoder / control floor
        + 0.028 * bits_per_entry              # bitline + sense per accessed bit
        + 0.05 * math.sqrt(rows)              # wordline / array overhead
    ) * port_factor
    latency = (
        0.10
        + 0.022 * math.log2(rows)
        + 0.0028 * math.sqrt(total_bits)
    ) * (1.0 + 0.1 * max(0, ports - 2))

    return SRAMEstimate(
        entries=entries,
        bits_per_entry=bits_per_entry,
        read_ports=read_ports,
        write_ports=write_ports,
        energy_per_op_pj=round(energy, 2),
        latency_ns=round(latency, 2),
        storage_bytes=(total_bits + 7) // 8,
    )


#: Bits per entry of each structure (Section VII-E).
RENAME_ENTRY_BITS = 12        # 10-bit phys ID + valid + pin
REUSE_BUFFER_ENTRY_BITS = 59  # opcode + 2 src IDs + imm + result + flags
VSB_ENTRY_BITS = 43           # 32-bit hash + 10-bit reg + valid
VERIFY_CACHE_ENTRY_BITS = 1035  # 10-bit tag + valid + 1024-bit value
REFCOUNT_BITS = 10


def wir_storage_budget(config: GPUConfig) -> Dict[str, int]:
    """Per-SM storage (bytes) of every added structure, Section VII-E style.

    With the paper's defaults this reproduces: rename tables 4.42 KB, reuse
    buffer 1.84 KB, VSB 1.34 KB, verify cache 1.01 KB, reference counters
    1.25 KB — about 9.9 KB in total.
    """
    wir = config.wir
    logical_regs = 63
    budget = {
        "rename tables": config.max_warps_per_sm * logical_regs
        * RENAME_ENTRY_BITS // 8,
        "reuse buffer": wir.reuse_buffer_entries * REUSE_BUFFER_ENTRY_BITS // 8,
        "value signature buffer": wir.vsb_entries * VSB_ENTRY_BITS // 8,
        "verify cache": wir.verify_cache_entries * VERIFY_CACHE_ENTRY_BITS // 8,
        "reference counters": config.num_physical_registers * REFCOUNT_BITS // 8,
    }
    budget["total"] = sum(budget.values())
    return budget
