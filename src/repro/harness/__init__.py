"""Experiment harness: benchmark runners and per-figure drivers."""

from repro.harness.runner import BenchmarkRun, clear_cache, run_benchmark, run_suite
from repro.harness import experiments, reporting

__all__ = [
    "BenchmarkRun",
    "run_benchmark",
    "run_suite",
    "clear_cache",
    "experiments",
    "reporting",
]
