"""One driver per table/figure of the paper's evaluation (Section VII).

Each ``fig*``/``table*`` function runs the required simulations (memoised,
disk-cached, and optionally parallel via :mod:`repro.harness.runner`) and
returns plain data structures; the benchmark harness and
``repro.harness.reporting`` render them.  Docstrings quote the paper's
headline numbers so measured-vs-paper comparisons live next to the code
that produces them.

Every driver takes ``jobs=N``: the full set of runs it needs is declared up
front as :class:`~repro.harness.runner.RunSpec` values and prefetched
through the worker pool, after which assembly reads from the memo.  Results
are identical for any ``jobs`` value.

Measurements are read from the run's stats registry by dotted path:
``core.*`` (issue/backend counters), ``regfile.*`` (bank traffic and
retries), ``l1d.*``/``l1c.*`` (cache counters), ``port.*`` (scratchpad),
and ``wir.*`` with its ``rb``/``vsb``/``vc``/``phys`` subtrees — summed
across SMs with :meth:`RunResult.sm_stat`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.models import model_config
from repro.energy import TABLE_III, estimate_sram, wir_storage_budget
from repro.energy.sram import (
    REUSE_BUFFER_ENTRY_BITS,
    RENAME_ENTRY_BITS,
    VERIFY_CACHE_ENTRY_BITS,
    VSB_ENTRY_BITS,
    REFCOUNT_BITS,
)
from repro.harness.runner import RunSpec, prefetch, run_benchmark
from repro.workloads import WORKLOADS, all_abbrs, get_workload

#: Benchmarks the paper highlights in Figure 15 / the load-reuse discussion.
LOAD_REUSE_BENCHMARKS = ["SF", "BT", "HS", "S2", "LK", "KM"]

#: Benchmarks the paper highlights for verify-cache pressure (Figure 18).
VERIFY_PRESSURE_BENCHMARKS = ["GA", "BO", "BF"]


def _suite(abbrs: Optional[Sequence[str]]) -> List[str]:
    return list(abbrs) if abbrs is not None else all_abbrs()


def _prefetch(specs: Iterable[RunSpec], jobs: int) -> None:
    """Fan the drivers' declared runs out to workers when ``jobs > 1``."""
    if jobs > 1:
        prefetch(specs, jobs=jobs)


# ---------------------------------------------------------------- Figure 2

def fig2_repeated_computations(
    abbrs: Optional[Sequence[str]] = None, scale: int = 1, jobs: int = 1,
) -> Dict[str, Dict[str, float]]:
    """% of warp computations repeated in 1K-instruction windows.

    Paper: 31.4% average across 34 benchmarks; 16.0% repeated >10 times.
    """
    suite = _suite(abbrs)
    _prefetch(
        (RunSpec.make(a, "Base", scale=scale, profile=True) for a in suite),
        jobs)
    out = {}
    for abbr in suite:
        run = run_benchmark(abbr, "Base", scale=scale, profile=True)
        out[abbr] = {
            "repeated": run.profile.repeat_fraction,
            "repeated_gt10": run.profile.high_repeat_fraction,
        }
    out["AVG"] = {
        key: sum(v[key] for a, v in out.items() if a != "AVG") / len(out)
        for key in ("repeated", "repeated_gt10")
    }
    return out


# --------------------------------------------------------------- Figure 12

def fig12_backend_instructions(
    abbrs: Optional[Sequence[str]] = None, model: str = "RLPV", jobs: int = 1,
) -> Dict[str, Dict[str, float]]:
    """Backend-processed instructions of RLPV relative to Base.

    Paper: 18.7% of warp instructions bypass backend execution; dummy MOVs
    add 1.6% on average.
    """
    suite = _suite(abbrs)
    _prefetch((RunSpec.make(a, m) for a in suite for m in ("Base", model)),
              jobs)
    out = {}
    for abbr in suite:
        base = run_benchmark(abbr, "Base")
        reuse = run_benchmark(abbr, model)
        base_backend = base.result.backend_instructions
        dummy = reuse.result.sm_stat("wir.dummy_movs")
        out[abbr] = {
            "relative_backend": (reuse.result.backend_instructions + dummy)
            / max(1, base_backend),
            "reuse_fraction": reuse.result.reuse_fraction,
            "dummy_mov_fraction": dummy / max(1, reuse.result.issued_instructions),
        }
    n = len(out)
    out["AVG"] = {
        key: sum(v[key] for v in out.values()) / n
        for key in ("relative_backend", "reuse_fraction", "dummy_mov_fraction")
    }
    return out


# --------------------------------------------------------------- Figure 13

BACKEND_OP_KINDS = ("register reads", "register writes", "SP/SFU ops", "memory ops")


def fig13_backend_operations(
    abbrs: Optional[Sequence[str]] = None,
    models: Sequence[str] = ("NoVSB", "Affine", "RPV", "RLPV", "RLPVc"),
    jobs: int = 1,
) -> Dict[str, Dict[str, float]]:
    """Relative backend operation counts vs Base (averaged over the suite).

    Paper: NoVSB bypasses <2% of instructions; RLPV cuts memory-pipeline
    activations up to 32.4% vs RPV; RLPVc is only slightly below RLPV.
    """
    suite = _suite(abbrs)
    _prefetch(
        (RunSpec.make(a, m)
         for a in suite for m in ("Base", *models)), jobs)

    def op_counts(model: str) -> Dict[str, float]:
        totals = {kind: 0.0 for kind in BACKEND_OP_KINDS}
        for abbr in suite:
            run = run_benchmark(abbr, model)
            stats = run.result
            totals["register reads"] += stats.sm_stat("regfile.read_requests")
            totals["register writes"] += stats.sm_stat("regfile.write_requests")
            totals["SP/SFU ops"] += (stats.sm_stat("core.fu_sp_insts")
                                     + stats.sm_stat("core.fu_sfu_insts"))
            totals["memory ops"] += stats.sm_stat("core.mem_insts")
        return totals

    base = op_counts("Base")
    out = {"Base": {kind: 1.0 for kind in BACKEND_OP_KINDS}}
    for model in models:
        counts = op_counts(model)
        out[model] = {
            kind: counts[kind] / max(1.0, base[kind]) for kind in BACKEND_OP_KINDS
        }
    return out


# --------------------------------------------------------------- Figure 14

def fig14_gpu_energy(
    abbrs: Optional[Sequence[str]] = None,
    models: Sequence[str] = ("Base", "RPV", "RLPV"),
    jobs: int = 1,
) -> Dict[str, Dict[str, float]]:
    """GPU energy relative to Base, per benchmark and averaged.

    Paper: RLPV reduces GPU energy by 10.7% on average (RPV: 7.6%); the
    more-reusable top half of the suite saves substantially more than the
    bottom half.
    """
    suite = _suite(abbrs)
    _prefetch(
        (RunSpec.make(a, m)
         for a in suite for m in {"Base", *models}), jobs)
    out: Dict[str, Dict[str, float]] = {}
    for abbr in suite:
        base_total = run_benchmark(abbr, "Base").energy.gpu_total
        out[abbr] = {
            model: run_benchmark(abbr, model).energy.gpu_total / base_total
            for model in models
        }
    out["AVG"] = {
        model: sum(v[model] for a, v in out.items() if a != "AVG") / len(suite)
        for model in models
    }
    half = len(suite) // 2
    for label, group in (("TOP-HALF", suite[:half]), ("BOTTOM-HALF", suite[half:])):
        out[label] = {
            model: sum(out[a][model] for a in group) / len(group)
            for model in models
        }
    return out


def fig14_breakdown(
    abbr: str, models: Sequence[str] = ("Base", "RPV", "RLPV"), jobs: int = 1,
) -> Dict[str, Dict[str, float]]:
    """Per-component GPU energy breakdown normalised to Base's total."""
    _prefetch((RunSpec.make(abbr, m) for m in {"Base", *models}), jobs)
    base = run_benchmark(abbr, "Base").energy
    return {
        model: run_benchmark(abbr, model).energy.normalised_gpu(base)
        for model in models
    }


# --------------------------------------------------------------- Figure 15

def fig15_l1_accesses(
    abbrs: Sequence[str] = tuple(LOAD_REUSE_BENCHMARKS),
    model: str = "RLPV",
    jobs: int = 1,
) -> Dict[str, Dict[str, float]]:
    """L1D accesses and misses, Base vs the load-reuse design.

    Paper: accesses and misses drop substantially in SF, BT, HS, S2, LK
    (LK misses -61.5%); KM can get *worse* (cache contention reordering).
    """
    full = _suite(None)
    _prefetch((RunSpec.make(a, m) for a in full for m in ("Base", model)),
              jobs)
    out = {}
    totals = {"base_accesses": 0, "base_misses": 0, "accesses": 0, "misses": 0}
    for abbr in full:
        base = run_benchmark(abbr, "Base").result
        reuse = run_benchmark(abbr, model).result
        if abbr in abbrs:
            out[abbr] = {
                "relative_accesses": reuse.sm_stat("l1d.accesses")
                / max(1, base.sm_stat("l1d.accesses")),
                "relative_misses": reuse.sm_stat("l1d.misses")
                / max(1, base.sm_stat("l1d.misses")),
            }
        totals["base_accesses"] += base.sm_stat("l1d.accesses")
        totals["base_misses"] += base.sm_stat("l1d.misses")
        totals["accesses"] += reuse.sm_stat("l1d.accesses")
        totals["misses"] += reuse.sm_stat("l1d.misses")
    out["AVG"] = {
        "relative_accesses": totals["accesses"] / max(1, totals["base_accesses"]),
        "relative_misses": totals["misses"] / max(1, totals["base_misses"]),
    }
    return out


# --------------------------------------------------------------- Figure 16

def fig16_sm_energy(
    abbrs: Optional[Sequence[str]] = None,
    models: Sequence[str] = ("NoVSB", "Affine", "RPV", "RLPV", "RLPVc", "Affine+RLPV"),
    jobs: int = 1,
) -> Dict[str, float]:
    """SM energy relative to Base, averaged over the suite.

    Paper: RLPV -20.5%, Affine -13.6%, Affine+RLPV -27.9% (best).
    """
    suite = _suite(abbrs)
    _prefetch(
        (RunSpec.make(a, m) for a in suite for m in ("Base", *models)), jobs)
    out = {"Base": 1.0}
    base_totals = {a: run_benchmark(a, "Base").energy.sm_total for a in suite}
    for model in models:
        ratio = sum(
            run_benchmark(a, model).energy.sm_total / base_totals[a] for a in suite
        ) / len(suite)
        out[model] = ratio
    return out


# --------------------------------------------------------------- Figure 17

def fig17_speedup(
    abbrs: Optional[Sequence[str]] = None,
    models: Sequence[str] = ("R", "RL", "RLP", "RLPV"),
    jobs: int = 1,
) -> Dict[str, Dict[str, float]]:
    """Speedup vs Base for the four incremental reuse designs.

    Paper: most benchmarks within +-10%; LK exceeds 2x with load reuse;
    GA/BO/BF degrade under RLP and recover with the verify cache (RLPV).
    """
    suite = _suite(abbrs)
    _prefetch(
        (RunSpec.make(a, m) for a in suite for m in ("Base", *models)), jobs)
    out = {}
    for abbr in suite:
        base_cycles = run_benchmark(abbr, "Base").cycles
        out[abbr] = {
            model: base_cycles / run_benchmark(abbr, model).cycles
            for model in models
        }
    out["GMEAN"] = {}
    for model in models:
        product = 1.0
        count = 0
        for abbr, row in out.items():
            if abbr == "GMEAN":
                continue
            product *= row[model]
            count += 1
        out["GMEAN"][model] = product ** (1.0 / count)
    return out


# --------------------------------------------------------------- Figure 18

def fig18_verify_cache(
    abbrs: Sequence[str] = tuple(VERIFY_PRESSURE_BENCHMARKS),
    entry_counts: Sequence[int] = (4, 8, 16),
    jobs: int = 1,
) -> Dict[str, Dict[str, float]]:
    """Verify-cache effect on the register file.

    (a) access mix: verify-reads replace ~half the writes in RLP;
    (b) bank retries per request: RLP adds conflicts, an 8-entry verify
    cache removes ~half of the increase, 16 entries add little.
    """
    suite = list(abbrs)
    configs = {"Base": ("Base", {}), "RLP": ("RLP", {})}
    for entries in entry_counts:
        configs[f"RLPV{entries}"] = ("RLPV", {"verify_cache_entries": entries})
    _prefetch(
        (RunSpec.make(a, model, **overrides)
         for a in suite for model, overrides in configs.values()), jobs)

    out: Dict[str, Dict[str, float]] = {}
    for label, (model, overrides) in configs.items():
        reads = writes = verify = retries = requests = 0
        for abbr in suite:
            run = run_benchmark(abbr, model, **overrides)
            stats = run.result
            reads += stats.sm_stat("regfile.read_requests")
            writes += stats.sm_stat("regfile.write_requests")
            verify += stats.sm_stat("regfile.verify_read_requests")
            retries += (stats.sm_stat("regfile.read_retries")
                        + stats.sm_stat("regfile.write_retries"))
            requests += (stats.sm_stat("regfile.read_requests")
                         + stats.sm_stat("regfile.write_requests"))
        out[label] = {
            "true_reads": reads - verify,
            "verify_reads": verify,
            "writes": writes,
            "retries_per_request": retries / max(1, requests),
        }
    base_ops = out["Base"]["true_reads"] + out["Base"]["writes"]
    for label, row in out.items():
        total = row["true_reads"] + row["verify_reads"] + row["writes"]
        row["relative_accesses"] = total / max(1, base_ops)
    return out


# --------------------------------------------------------------- Figure 19

def fig19_register_utilization(
    abbrs: Optional[Sequence[str]] = None,
    models: Sequence[str] = ("RLPV", "RLPVc"),
    jobs: int = 1,
) -> Dict[str, Dict[str, float]]:
    """Physical warp registers in use (average and peak of 1,024).

    Paper: even Base does not fill the file; RLPV averages *below* Base
    because logical registers share physical registers.
    """
    suite = _suite(abbrs)
    _prefetch(
        (RunSpec.make(a, m) for a in suite for m in ("Base", *models)), jobs)
    out: Dict[str, Dict[str, float]] = {}

    base_avg = base_peak = 0.0
    for abbr in suite:
        run = run_benchmark(abbr, "Base")
        # Base maps logicals one-to-one: utilisation = resident warps x the
        # kernel's register count (sampled via warps completed per cycle
        # approximation: use the launch's resident maximum).
        nregs = run.workload.program.num_logical_registers
        config = run.result.config
        warps_per_block = run.workload.block.count // 32
        resident_blocks = min(
            config.max_blocks_per_sm,
            config.max_warps_per_sm // warps_per_block,
            max(1, run.workload.grid.count // config.num_sms),
        )
        peak = min(config.num_physical_registers,
                   resident_blocks * warps_per_block * nregs)
        base_peak += peak
        base_avg += peak * 0.8  # blocks drain towards the end of the run
    out["Base"] = {"average": base_avg / len(suite), "peak": base_peak / len(suite)}

    for model in models:
        avg = peak = 0.0
        for abbr in suite:
            result = run_benchmark(abbr, model).result
            num_sms = len(result.sm_groups)
            avg += result.sm_stat("wir.phys.avg") / num_sms
            peak += result.sm_stat("wir.phys.peak") / num_sms
        out[model] = {"average": avg / len(suite), "peak": peak / len(suite)}
    return out


# --------------------------------------------------------------- Figure 20

def fig20_vsb_sweep(
    abbrs: Optional[Sequence[str]] = None,
    entry_counts: Sequence[int] = (16, 32, 64, 128, 256, 512),
    model: str = "RLPV",
    jobs: int = 1,
) -> Dict[int, float]:
    """VSB entries vs hit rate. Paper: >50% hits at 128; saturates ~256."""
    suite = _suite(abbrs)
    _prefetch(
        (RunSpec.make(a, model, vsb_entries=entries)
         for a in suite for entries in entry_counts), jobs)
    out = {}
    for entries in entry_counts:
        rates = []
        for abbr in suite:
            result = run_benchmark(abbr, model, vsb_entries=entries).result
            rates.append(result.sm_stat("wir.vsb.hits")
                         / max(1, result.sm_stat("wir.vsb.lookups")))
        out[entries] = sum(rates) / len(rates)
    return out


# --------------------------------------------------------------- Figure 21

def fig21_reuse_buffer_sweep(
    abbrs: Optional[Sequence[str]] = None,
    entry_counts: Sequence[int] = (32, 64, 128, 256, 512),
    model: str = "RLPV",
    jobs: int = 1,
) -> Dict[int, Dict[str, float]]:
    """Reuse-buffer entries vs reused-instruction fraction.

    Paper: 18.7% at 256 entries, >20% at 512; pending-retry hits are worth
    roughly a doubling of the buffer.
    """
    suite = _suite(abbrs)
    _prefetch(
        (RunSpec.make(a, model, reuse_buffer_entries=entries)
         for a in suite for entries in entry_counts), jobs)
    out = {}
    for entries in entry_counts:
        fractions = []
        pending_fractions = []
        for abbr in suite:
            run = run_benchmark(abbr, model, reuse_buffer_entries=entries)
            issued = max(1, run.result.issued_instructions)
            fractions.append(run.result.reused_instructions / issued)
            pending_fractions.append(
                run.result.sm_stat("wir.rb.pending_releases") / issued)
        out[entries] = {
            "reuse_fraction": sum(fractions) / len(fractions),
            "pending_retry_fraction": sum(pending_fractions) / len(pending_fractions),
        }
    return out


# --------------------------------------------------------------- Figure 22

def fig22_delay_sweep(
    abbrs: Optional[Sequence[str]] = None,
    delays: Sequence[int] = (3, 4, 5, 6, 7),
    model: str = "RLPV",
    jobs: int = 1,
) -> Dict[str, float]:
    """Backend pipeline delay (D3..D7) vs mean speedup.

    Paper: performance degrades gently with added latency and crosses
    below Base around 7 cycles.
    """
    suite = _suite(abbrs)
    specs = [RunSpec.make(a, "Base") for a in suite]
    specs += [RunSpec.make(a, model, extra_pipeline_latency=delay)
              for a in suite for delay in delays]
    _prefetch(specs, jobs)
    out = {}
    for delay in delays:
        product = 1.0
        for abbr in suite:
            base_cycles = run_benchmark(abbr, "Base").cycles
            cycles = run_benchmark(
                abbr, model, extra_pipeline_latency=delay
            ).cycles
            product *= base_cycles / cycles
        out[f"D{delay}"] = product ** (1.0 / len(suite))
    return out


# ------------------------------------------------------------------ Tables

def table1_benchmarks() -> List[Dict[str, object]]:
    """Table I: the benchmark suite."""
    return [
        {
            "abbr": info.abbr,
            "name": info.name,
            "suite": info.suite,
            "fp_fraction": info.fp_fraction,
        }
        for info in WORKLOADS.values()
    ]


def table2_parameters() -> Dict[str, str]:
    """Table II: simulation parameters (from the default config)."""
    config = model_config("RLPV")
    return {
        "SM parameters": f"{config.core_clock_mhz} MHz, {config.num_sms} SMs, "
                         f"{config.num_schedulers} schedulers/SM, "
                         f"{config.scheduler_policy.value.upper()} scheduling",
        "Resource limits/SM": f"{config.num_physical_registers} warp registers "
                              f"({config.num_physical_registers * 32} thread registers), "
                              f"{config.max_warps_per_sm} warps, "
                              f"{config.max_blocks_per_sm} thread blocks",
        "Register file": f"{config.register_file_bytes // 1024} KB",
        "Scratchpad memory": f"{config.scratchpad_bytes // 1024} KB",
        "L1 caches": f"D$: {config.l1d.size_bytes // 1024} KB, "
                     f"{config.l1d.ways}-way, {config.l1d.mshr_entries} MSHR; "
                     f"C$: {config.l1c.size_bytes // 1024} KB",
        "NoC": f"fully connected, {config.noc_bytes_per_cycle} B/direction/cycle",
        "L2 cache": f"{config.l2_partitions} partitions, "
                    f"{config.l2_partition_config.size_bytes // 1024} KB "
                    f"{config.l2_partition_config.ways}-way, "
                    f"{config.l2_latency} cycles latency",
        "DRAM": f"{config.dram_queue_entries} entry scheduling queue, "
                f"{config.dram_latency} cycles latency",
        "Reuse buffer": f"{config.wir.reuse_buffer_entries} entries",
        "Value signature buffer": f"{config.wir.vsb_entries} entries",
        "Verify cache": f"{config.wir.verify_cache_entries} entries",
    }


def table3_hardware_costs() -> Dict[str, Dict[str, object]]:
    """Table III: estimated energy/latency of the added components.

    Pairs our analytic SRAM model's estimate with the paper's reported
    numbers; also reproduces the ~9.9 KB/SM storage budget of Section VII-E.
    """
    config = model_config("RLPV")
    structures = {
        "Rename table": estimate_sram(24 * 63, RENAME_ENTRY_BITS, 4, 1),
        "Reuse buffer table": estimate_sram(
            config.wir.reuse_buffer_entries, REUSE_BUFFER_ENTRY_BITS, 2, 2),
        "Val. sig. buf. table": estimate_sram(
            config.wir.vsb_entries, VSB_ENTRY_BITS, 2, 2),
        "Register allocator": estimate_sram(
            config.num_physical_registers, 10, 1, 1),
        "Reference count": estimate_sram(
            config.num_physical_registers, REFCOUNT_BITS, 1, 1),
        "Verify cache": estimate_sram(
            max(1, config.wir.verify_cache_entries), VERIFY_CACHE_ENTRY_BITS, 2, 2),
    }
    out = {}
    for name, estimate in structures.items():
        paper = TABLE_III[name]
        out[name] = {
            "model_energy_pj": estimate.energy_per_op_pj,
            "paper_energy_pj": paper.energy_pj,
            "model_latency_ns": estimate.latency_ns,
            "paper_latency_ns": paper.latency_ns,
            "storage_bytes": estimate.storage_bytes,
        }
    out["Hash generation"] = {
        "model_energy_pj": None,
        "paper_energy_pj": TABLE_III["Hash generation"].energy_pj,
        "model_latency_ns": None,
        "paper_latency_ns": TABLE_III["Hash generation"].latency_ns,
        "storage_bytes": 0,
    }
    out["storage_budget"] = wir_storage_budget(config)
    return out
