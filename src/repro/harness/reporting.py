"""Plain-text rendering of experiment results (the figures as tables)."""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render a fixed-width text table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if cell is None:
        return "-"
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def render_per_benchmark(
    data: Mapping[str, Mapping[str, float]],
    title: str,
    percent: bool = False,
) -> str:
    """Render {benchmark: {column: value}} mappings."""
    first = next(iter(data.values()))
    columns = list(first)
    rows = []
    for abbr, values in data.items():
        row: List[object] = [abbr]
        for col in columns:
            value = values.get(col)
            if percent and isinstance(value, float):
                row.append(f"{value * 100:.1f}%")
            else:
                row.append(value)
        rows.append(row)
    return format_table(["benchmark"] + columns, rows, title=title)


def render_stall_table(
    breakdown: Mapping[str, Mapping[str, int]],
    title: str = "Stall attribution",
) -> str:
    """Render a per-SM stall breakdown (``RunResult.stall_breakdown()``).

    One row per reason plus the ``resident_warp_cycles`` conservation row;
    one column per SM plus a chip total and its share of all resident warp
    cycles.
    """
    sms = list(breakdown)
    reasons = [r for r in next(iter(breakdown.values()))
               if r != "resident_warp_cycles"]
    grand_total = sum(breakdown[sm]["resident_warp_cycles"] for sm in sms)
    rows: List[List[object]] = []
    for reason in reasons:
        counts = [breakdown[sm][reason] for sm in sms]
        total = sum(counts)
        share = f"{total / grand_total * 100:.1f}%" if grand_total else "-"
        rows.append([reason] + counts + [total, share])
    rows.append(
        ["resident_warp_cycles"]
        + [breakdown[sm]["resident_warp_cycles"] for sm in sms]
        + [grand_total, "100.0%" if grand_total else "-"])
    return format_table(["reason"] + sms + ["total", "share"], rows,
                        title=title)


def suite_stall_fractions(
    breakdowns: Mapping[str, Mapping[str, Mapping[str, int]]],
) -> Dict[str, Dict[str, float]]:
    """Collapse {workload: per-SM breakdown} into {workload: {reason:
    fraction of resident warp cycles}} for :func:`render_per_benchmark`."""
    fractions: Dict[str, Dict[str, float]] = {}
    for abbr, breakdown in breakdowns.items():
        merged: Dict[str, int] = {}
        for per_sm in breakdown.values():
            for reason, count in per_sm.items():
                merged[reason] = merged.get(reason, 0) + count
        total = merged.pop("resident_warp_cycles", 0)
        fractions[abbr] = {
            reason: (count / total if total else 0.0)
            for reason, count in merged.items()
        }
    return fractions


def render_series(
    data: Mapping[object, object], x_label: str, y_label: str, title: str,
) -> str:
    """Render a 1D sweep {x: y} (y may be a scalar or a dict)."""
    first = next(iter(data.values()))
    if isinstance(first, Mapping):
        columns = list(first)
        rows = [[x] + [row[c] for c in columns] for x, row in data.items()]
        return format_table([x_label] + columns, rows, title=title)
    rows = [[x, y] for x, y in data.items()]
    return format_table([x_label, y_label], rows, title=title)
