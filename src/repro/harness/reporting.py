"""Plain-text rendering of experiment results (the figures as tables)."""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render a fixed-width text table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if cell is None:
        return "-"
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def render_per_benchmark(
    data: Mapping[str, Mapping[str, float]],
    title: str,
    percent: bool = False,
) -> str:
    """Render {benchmark: {column: value}} mappings."""
    first = next(iter(data.values()))
    columns = list(first)
    rows = []
    for abbr, values in data.items():
        row: List[object] = [abbr]
        for col in columns:
            value = values.get(col)
            if percent and isinstance(value, float):
                row.append(f"{value * 100:.1f}%")
            else:
                row.append(value)
        rows.append(row)
    return format_table(["benchmark"] + columns, rows, title=title)


def render_series(
    data: Mapping[object, object], x_label: str, y_label: str, title: str,
) -> str:
    """Render a 1D sweep {x: y} (y may be a scalar or a dict)."""
    first = next(iter(data.values()))
    if isinstance(first, Mapping):
        columns = list(first)
        rows = [[x] + [row[c] for c in columns] for x, row in data.items()]
        return format_table([x_label] + columns, rows, title=title)
    rows = [[x, y] for x, y in data.items()]
    return format_table([x_label, y_label], rows, title=title)
