"""Run benchmarks against design points, with in-process result caching.

Experiments repeatedly need the same (benchmark, model) run — e.g. Base
appears as the normalisation baseline in most figures — so completed runs
are memoised on their full parameterisation.

The experiment default of 2 SMs (instead of Table II's 15) keeps full-suite
sweeps laptop-fast and raises per-SM occupancy at our small grid sizes
(latency hiding depends on resident warps per SM, not on the SM count); per-SM statistics and all model-relative comparisons
are unaffected by the SM count, and it can be overridden per run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.models import model_config
from repro.energy import EnergyParams, EnergyReport, compute_energy
from repro.profiling import RedundancyProfile, RedundancyProfiler
from repro.sim.config import GPUConfig
from repro.sim.gpu import GPU, KernelLaunch, RunResult
from repro.workloads import BuiltWorkload, build_workload

#: SM count used by the experiment drivers (see module docstring).
EXPERIMENT_SMS = 2


@dataclass
class BenchmarkRun:
    """One completed (benchmark, model) simulation."""

    abbr: str
    model: str
    workload: BuiltWorkload
    result: RunResult
    energy: EnergyReport
    profile: Optional[RedundancyProfile] = None

    @property
    def cycles(self) -> int:
        return self.result.cycles

    @property
    def reuse_fraction(self) -> float:
        return self.result.reuse_fraction


_CACHE: Dict[Tuple, BenchmarkRun] = {}


def clear_cache() -> None:
    _CACHE.clear()


def run_benchmark(
    abbr: str,
    model: str = "Base",
    scale: int = 1,
    seed: int = 7,
    num_sms: int = EXPERIMENT_SMS,
    profile: bool = False,
    energy_params: Optional[EnergyParams] = None,
    **wir_overrides,
) -> BenchmarkRun:
    """Simulate one benchmark under one design point (memoised).

    ``wir_overrides`` tweak the model's WIR config, e.g.
    ``run_benchmark("SF", "RLPV", reuse_buffer_entries=512)``.
    """
    key = (abbr, model, scale, seed, num_sms, profile,
           tuple(sorted(wir_overrides.items())))
    cached = _CACHE.get(key)
    if cached is not None:
        return cached

    config = model_config(model, **wir_overrides)
    config.num_sms = num_sms
    workload = build_workload(abbr, scale=scale, seed=seed)

    profilers: List[RedundancyProfiler] = []
    factory = None
    if profile:
        def factory():  # noqa: E306 - small closure
            p = RedundancyProfiler()
            profilers.append(p)
            return p

    launch = KernelLaunch(workload.program, workload.grid, workload.block,
                          workload.image)
    result = GPU(config, profiler_factory=factory).run(launch)
    workload.verify()

    merged: Optional[RedundancyProfile] = None
    if profilers:
        merged = profilers[0].profile
        for p in profilers[1:]:
            merged = merged.merge(p.profile)

    run = BenchmarkRun(
        abbr=abbr,
        model=model,
        workload=workload,
        result=result,
        energy=compute_energy(result, energy_params),
        profile=merged,
    )
    _CACHE[key] = run
    return run


def run_suite(
    abbrs: List[str],
    model: str = "Base",
    **kwargs,
) -> Dict[str, BenchmarkRun]:
    """Run a list of benchmarks under one design point."""
    return {abbr: run_benchmark(abbr, model, **kwargs) for abbr in abbrs}
