"""Run benchmarks against design points: memoised, parallel, and disk-cached.

Experiments repeatedly need the same (benchmark, model) run — e.g. Base
appears as the normalisation baseline in most figures — so completed runs
are cached at three levels:

* an in-process **result memo** keyed by the full simulation
  parameterisation (:class:`RunSpec`);
* an in-process **run memo** additionally keyed by the energy parameters,
  so two calls differing only in :class:`EnergyParams` share the simulation
  but never an :class:`EnergyReport`;
* an optional **on-disk cache** of serialized results, content-addressed by
  the SHA-256 digest of the complete parameterisation (spec + energy
  parameters + cache format version), enabled by setting
  ``REPRO_CACHE_DIR`` or calling :func:`set_cache_dir`.  A warm cache lets
  repeated figure sweeps and pytest benches skip simulation entirely.

:func:`run_suite` (and :func:`prefetch`) accept ``jobs=N`` to farm missing
simulations out to a ``multiprocessing`` pool; workers return serialized
results, so parallel sweeps are bit-identical to serial ones.

The experiment default of 2 SMs (instead of Table II's 15) keeps full-suite
sweeps laptop-fast and raises per-SM occupancy at our small grid sizes
(latency hiding depends on resident warps per SM, not on the SM count);
per-SM statistics and all model-relative comparisons are unaffected by the
SM count, and it can be overridden per run.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import multiprocessing
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.models import model_config
from repro.energy import EnergyParams, EnergyReport, compute_energy
from repro.profiling import RedundancyProfile, RedundancyProfiler
from repro.sim.gpu import GPU, KernelLaunch, RunResult
from repro.stats import dataclass_to_dict
from repro.workloads import BuiltWorkload, build_workload

#: SM count used by the experiment drivers (see module docstring).
EXPERIMENT_SMS = 2

#: Bump when the serialized result layout or simulator behaviour changes in
#: a way that invalidates previously cached runs.
CACHE_FORMAT = 1


# --------------------------------------------------------------------- specs

@dataclass(frozen=True)
class RunSpec:
    """The complete parameterisation of one simulation."""

    abbr: str
    model: str = "Base"
    scale: int = 1
    seed: int = 7
    num_sms: int = EXPERIMENT_SMS
    profile: bool = False
    #: Sorted (name, value) pairs of WIR config overrides.
    wir_overrides: Tuple[Tuple[str, object], ...] = ()

    @classmethod
    def make(
        cls,
        abbr: str,
        model: str = "Base",
        scale: int = 1,
        seed: int = 7,
        num_sms: int = EXPERIMENT_SMS,
        profile: bool = False,
        **wir_overrides,
    ) -> "RunSpec":
        return cls(abbr, model, scale, seed, num_sms, profile,
                   tuple(sorted(wir_overrides.items())))

    def to_dict(self) -> Dict[str, object]:
        return {
            "abbr": self.abbr,
            "model": self.model,
            "scale": self.scale,
            "seed": self.seed,
            "num_sms": self.num_sms,
            "profile": self.profile,
            "wir_overrides": [
                [name, dataclass_to_dict(value)]
                for name, value in self.wir_overrides
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RunSpec":
        return cls(
            abbr=data["abbr"],
            model=data["model"],
            scale=data["scale"],
            seed=data["seed"],
            num_sms=data["num_sms"],
            profile=data["profile"],
            wir_overrides=tuple(
                (name, value) for name, value in data["wir_overrides"]
            ),
        )

    def digest(self, energy_params: Optional[EnergyParams] = None) -> str:
        """Content address of this run (plus the energy parameterisation)."""
        payload = {
            "format": CACHE_FORMAT,
            "spec": self.to_dict(),
            "energy": _energy_key(energy_params),
        }
        canonical = json.dumps(payload, sort_keys=True)
        return hashlib.sha256(canonical.encode()).hexdigest()


def _energy_key(params: Optional[EnergyParams]) -> Tuple:
    """Hashable identity of an energy parameterisation."""
    p = params if params is not None else EnergyParams()
    return tuple(sorted(dataclass_to_dict(p).items()))


# ---------------------------------------------------------------- run object

@dataclass
class BenchmarkRun:
    """One completed (benchmark, model) simulation."""

    abbr: str
    model: str
    workload: BuiltWorkload
    result: RunResult
    energy: EnergyReport
    profile: Optional[RedundancyProfile] = None

    @property
    def cycles(self) -> int:
        return self.result.cycles

    @property
    def reuse_fraction(self) -> float:
        return self.result.reuse_fraction


# ------------------------------------------------------------------- caching

#: spec -> (result, profile, workload-or-None).  The workload is the live,
#: verified post-run instance for in-process simulations and ``None`` for
#: results rehydrated from a worker or the disk cache.
_RESULT_CACHE: Dict[RunSpec, Tuple[RunResult, Optional[RedundancyProfile],
                                   Optional[BuiltWorkload]]] = {}

#: (spec, energy key) -> BenchmarkRun.  Keyed by the energy parameters too:
#: a second call with different ``EnergyParams`` must never see the first
#: call's ``EnergyReport``.
_RUN_CACHE: Dict[Tuple[RunSpec, Tuple], BenchmarkRun] = {}

#: Observable effort counters (tests and the CLI read these).
COUNTS = {"simulations": 0, "memo_hits": 0, "disk_hits": 0, "disk_writes": 0}

_cache_dir: Optional[Path] = None
_cache_dir_from_env = False


def set_cache_dir(path: Optional[os.PathLike]) -> None:
    """Point the on-disk result cache at *path* (``None`` reverts to
    whatever ``REPRO_CACHE_DIR`` says, i.e. usually off)."""
    global _cache_dir, _cache_dir_from_env
    _cache_dir = Path(path) if path is not None else None
    _cache_dir_from_env = False


def cache_dir() -> Optional[Path]:
    """The active on-disk cache directory (``REPRO_CACHE_DIR`` by default)."""
    global _cache_dir, _cache_dir_from_env
    env = os.environ.get("REPRO_CACHE_DIR")
    if _cache_dir is None or _cache_dir_from_env:
        _cache_dir = Path(env) if env else None
        _cache_dir_from_env = True
    return _cache_dir


def clear_cache() -> None:
    """Drop the in-process memos (the on-disk cache is left alone)."""
    _RESULT_CACHE.clear()
    _RUN_CACHE.clear()


def _cache_path(digest: str) -> Optional[Path]:
    base = cache_dir()
    if base is None:
        return None
    return base / digest[:2] / f"{digest}.json"


def _payload_from(spec: RunSpec, result: RunResult,
                  profile: Optional[RedundancyProfile]) -> Dict[str, object]:
    return {
        "format": CACHE_FORMAT,
        "spec": spec.to_dict(),
        "result": result.to_dict(),
        "profile": dataclasses.asdict(profile) if profile is not None else None,
    }


def _rehydrate(payload: Dict[str, object]) -> Tuple[RunResult,
                                                    Optional[RedundancyProfile]]:
    result = RunResult.from_dict(payload["result"])
    profile = (RedundancyProfile(**payload["profile"])
               if payload.get("profile") is not None else None)
    return result, profile


def _disk_load(spec: RunSpec,
               energy_params: Optional[EnergyParams]) -> Optional[Dict[str, object]]:
    path = _cache_path(spec.digest(energy_params))
    if path is None or not path.exists():
        return None
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    if payload.get("format") != CACHE_FORMAT:
        return None
    COUNTS["disk_hits"] += 1
    return payload


def _disk_store(spec: RunSpec, energy_params: Optional[EnergyParams],
                payload: Dict[str, object]) -> None:
    path = _cache_path(spec.digest(energy_params))
    if path is None:
        return
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(".tmp")
    tmp.write_text(json.dumps(payload, sort_keys=True))
    tmp.replace(path)
    COUNTS["disk_writes"] += 1


# ---------------------------------------------------------------- simulation

def _simulate(spec: RunSpec) -> Tuple[RunResult, Optional[RedundancyProfile],
                                      BuiltWorkload]:
    """Run one simulation in this process (no caching)."""
    COUNTS["simulations"] += 1
    config = model_config(spec.model, **dict(spec.wir_overrides))
    config.num_sms = spec.num_sms
    workload = build_workload(spec.abbr, scale=spec.scale, seed=spec.seed)

    profilers: List[RedundancyProfiler] = []
    factory = None
    if spec.profile:
        def factory():  # noqa: E306 - small closure
            p = RedundancyProfiler()
            profilers.append(p)
            return p

    launch = KernelLaunch(workload.program, workload.grid, workload.block,
                          workload.image)
    result = GPU(config, profiler_factory=factory).run(launch)
    workload.verify()

    merged: Optional[RedundancyProfile] = None
    if profilers:
        merged = profilers[0].profile
        for p in profilers[1:]:
            merged = merged.merge(p.profile)
    return result, merged, workload


def _worker(spec_data: Dict[str, object]) -> Dict[str, object]:
    """Pool worker: simulate one spec and return the serialized payload."""
    spec = RunSpec.from_dict(spec_data)
    result, profile, _ = _simulate(spec)
    return _payload_from(spec, result, profile)


def _obtain_result(
    spec: RunSpec, energy_params: Optional[EnergyParams]
) -> Tuple[RunResult, Optional[RedundancyProfile], Optional[BuiltWorkload]]:
    """Result memo -> disk cache -> fresh simulation, in that order."""
    cached = _RESULT_CACHE.get(spec)
    if cached is not None:
        COUNTS["memo_hits"] += 1
        return cached

    payload = _disk_load(spec, energy_params)
    if payload is not None:
        result, profile = _rehydrate(payload)
        entry = (result, profile, None)
    else:
        result, profile, workload = _simulate(spec)
        _disk_store(spec, energy_params, _payload_from(spec, result, profile))
        entry = (result, profile, workload)
    _RESULT_CACHE[spec] = entry
    return entry


# ------------------------------------------------------------------ frontend

def run_benchmark(
    abbr: str,
    model: str = "Base",
    scale: int = 1,
    seed: int = 7,
    num_sms: int = EXPERIMENT_SMS,
    profile: bool = False,
    energy_params: Optional[EnergyParams] = None,
    **wir_overrides,
) -> BenchmarkRun:
    """Simulate one benchmark under one design point (memoised).

    ``wir_overrides`` tweak the model's WIR config, e.g.
    ``run_benchmark("SF", "RLPV", reuse_buffer_entries=512)``.
    """
    spec = RunSpec.make(abbr, model, scale=scale, seed=seed, num_sms=num_sms,
                        profile=profile, **wir_overrides)
    run_key = (spec, _energy_key(energy_params))
    run = _RUN_CACHE.get(run_key)
    if run is not None:
        return run

    result, merged_profile, workload = _obtain_result(spec, energy_params)
    if workload is None:
        # Rehydrated result: rebuild the (pre-run) workload so callers can
        # still reach the program and launch geometry.
        workload = build_workload(abbr, scale=scale, seed=seed)

    run = BenchmarkRun(
        abbr=abbr,
        model=model,
        workload=workload,
        result=result,
        energy=compute_energy(result, energy_params),
        profile=merged_profile,
    )
    _RUN_CACHE[run_key] = run
    return run


def prefetch(
    specs: Iterable[RunSpec],
    jobs: int = 1,
    energy_params: Optional[EnergyParams] = None,
) -> int:
    """Ensure every spec's result is available, simulating missing ones with
    a worker pool.  Returns the number of simulations actually run.

    Workers return *serialized* results, so a parallel sweep is bit-identical
    to a serial one; completed payloads land in the disk cache (when enabled)
    and the in-process memo.
    """
    missing: List[RunSpec] = []
    seen = set()
    for spec in specs:
        if spec in _RESULT_CACHE or spec in seen:
            continue
        payload = _disk_load(spec, energy_params)
        if payload is not None:
            result, profile = _rehydrate(payload)
            _RESULT_CACHE[spec] = (result, profile, None)
            continue
        seen.add(spec)
        missing.append(spec)

    if not missing:
        return 0

    if jobs <= 1 or len(missing) == 1:
        for spec in missing:
            _obtain_result(spec, energy_params)
        return len(missing)

    methods = multiprocessing.get_all_start_methods()
    context = multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")
    with context.Pool(processes=min(jobs, len(missing))) as pool:
        payloads = pool.map(_worker, [spec.to_dict() for spec in missing])
    for spec, payload in zip(missing, payloads):
        result, profile = _rehydrate(payload)
        _disk_store(spec, energy_params, payload)
        _RESULT_CACHE[spec] = (result, profile, None)
    return len(missing)


def run_suite(
    abbrs: Sequence[str],
    model: str = "Base",
    jobs: int = 1,
    energy_params: Optional[EnergyParams] = None,
    **kwargs,
) -> Dict[str, BenchmarkRun]:
    """Run a list of benchmarks under one design point.

    ``jobs > 1`` simulates cache-missing benchmarks in parallel; results are
    identical to a serial run.
    """
    specs = [RunSpec.make(abbr, model, **kwargs) for abbr in abbrs]
    if jobs > 1:
        prefetch(specs, jobs=jobs, energy_params=energy_params)
    return {
        abbr: run_benchmark(abbr, model, energy_params=energy_params, **kwargs)
        for abbr in abbrs
    }
