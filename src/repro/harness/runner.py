"""Run benchmarks against design points: memoised, parallel, and disk-cached.

Experiments repeatedly need the same (benchmark, model) run — e.g. Base
appears as the normalisation baseline in most figures — so completed runs
are cached at three levels:

* an in-process **result memo** keyed by the full simulation
  parameterisation (:class:`RunSpec`);
* an in-process **run memo** additionally keyed by the energy parameters,
  so two calls differing only in :class:`EnergyParams` share the simulation
  but never an :class:`EnergyReport`;
* an optional **on-disk cache** of serialized results, content-addressed by
  the SHA-256 digest of the complete parameterisation (spec + energy
  parameters + cache format version), enabled by setting
  ``REPRO_CACHE_DIR`` or calling :func:`set_cache_dir`.  A warm cache lets
  repeated figure sweeps and pytest benches skip simulation entirely.

:func:`run_suite` (and :func:`prefetch`) accept ``jobs=N`` to farm missing
simulations out to a ``multiprocessing`` pool; workers return serialized
results, so parallel sweeps are bit-identical to serial ones.

The harness is crash-proof: a worker that raises, or hangs past the
per-job ``timeout``, is recorded as a :class:`JobFailure` naming the
failing :class:`RunSpec` (a poison-pill job can never wedge the pool or
poison the suite), optionally retried with exponential backoff, and the
rest of the suite completes.  Disk-cache payloads carry a format version
and a content checksum, so truncated or bit-rotted entries are detected,
deleted, and transparently re-simulated; :func:`verify_cache_dir` audits
(and optionally prunes) a cache directory wholesale.

The experiment default of 2 SMs (instead of Table II's 15) keeps full-suite
sweeps laptop-fast and raises per-SM occupancy at our small grid sizes
(latency hiding depends on resident warps per SM, not on the SM count);
per-SM statistics and all model-relative comparisons are unaffected by the
SM count, and it can be overridden per run.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import multiprocessing
import os
import random
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import (Callable, Dict, Iterable, List, Optional, Sequence,
                    Tuple)

from repro.ckpt import CheckpointError, atomic_write_text, read_checkpoint
from repro.core.models import model_config
from repro.energy import EnergyParams, EnergyReport, compute_energy
from repro.profiling import RedundancyProfile, RedundancyProfiler
from repro.sim.gpu import GPU, KernelLaunch, RunResult
from repro.stats import dataclass_to_dict
from repro.workloads import BuiltWorkload, build_workload

#: SM count used by the experiment drivers (see module docstring).
EXPERIMENT_SMS = 2

#: Bump when the serialized result layout or simulator behaviour changes in
#: a way that invalidates previously cached runs.  Format 2 added the
#: payload checksum and the ``checked`` spec field.
CACHE_FORMAT = 2

#: Version of the ``result`` dictionary layout inside a payload; bump when
#: :meth:`RunResult.to_dict` changes shape without invalidating old runs.
RESULT_SCHEMA = 1

#: Test seam: when set, called with the :class:`RunSpec` at the top of
#: every simulation — including inside forked pool workers, which inherit
#: it.  The harness failure tests install crashing / hanging behaviours.
_TEST_HOOK: Optional[Callable[["RunSpec"], None]] = None


# --------------------------------------------------------------------- specs

@dataclass(frozen=True)
class RunSpec:
    """The complete parameterisation of one simulation."""

    abbr: str
    model: str = "Base"
    scale: int = 1
    seed: int = 7
    num_sms: int = EXPERIMENT_SMS
    profile: bool = False
    #: Sorted (name, value) pairs of WIR config overrides.
    wir_overrides: Tuple[Tuple[str, object], ...] = ()
    #: Run under the lockstep golden-model oracle (``repro.check``).
    checked: bool = False
    #: Collect per-cycle stall attribution (``sm*.stall.*``; ``repro.trace``).
    trace_stalls: bool = False
    #: Execution engine (``"scalar"`` | ``"vector"``).  Both are bit-identical
    #: (see ``tests/test_exec_differential.py``); scalar stays the default so
    #: cached experiment digests are unchanged.
    exec_engine: str = "scalar"
    #: Snapshot simulator state every N cycles so a killed or timed-out job
    #: resumes from its checkpoint on retry (``repro.ckpt``; needs an
    #: on-disk cache dir).  ``None`` (default) leaves runs byte-identical
    #: to pre-checkpoint behaviour.
    checkpoint_every: Optional[int] = None

    @classmethod
    def make(
        cls,
        abbr: str,
        model: str = "Base",
        scale: int = 1,
        seed: int = 7,
        num_sms: int = EXPERIMENT_SMS,
        profile: bool = False,
        checked: bool = False,
        trace_stalls: bool = False,
        exec_engine: str = "scalar",
        checkpoint_every: Optional[int] = None,
        **wir_overrides,
    ) -> "RunSpec":
        return cls(abbr, model, scale, seed, num_sms, profile,
                   tuple(sorted(wir_overrides.items())), checked=checked,
                   trace_stalls=trace_stalls, exec_engine=exec_engine,
                   checkpoint_every=checkpoint_every)

    def to_dict(self) -> Dict[str, object]:
        data = {
            "abbr": self.abbr,
            "model": self.model,
            "scale": self.scale,
            "seed": self.seed,
            "num_sms": self.num_sms,
            "profile": self.profile,
            "wir_overrides": [
                [name, dataclass_to_dict(value)]
                for name, value in self.wir_overrides
            ],
            "checked": self.checked,
            "trace_stalls": self.trace_stalls,
        }
        if self.exec_engine != "scalar":
            # Omitted at the default so pre-existing cache digests (and
            # payloads) for scalar runs remain valid.
            data["exec_engine"] = self.exec_engine
        if self.checkpoint_every is not None:
            # Same digest-stability rule as exec_engine.
            data["checkpoint_every"] = self.checkpoint_every
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RunSpec":
        return cls(
            abbr=data["abbr"],
            model=data["model"],
            scale=data["scale"],
            seed=data["seed"],
            num_sms=data["num_sms"],
            profile=data["profile"],
            wir_overrides=tuple(
                (name, value) for name, value in data["wir_overrides"]
            ),
            checked=data.get("checked", False),
            trace_stalls=data.get("trace_stalls", False),
            exec_engine=data.get("exec_engine", "scalar"),
            checkpoint_every=data.get("checkpoint_every"),
        )

    def digest(self, energy_params: Optional[EnergyParams] = None) -> str:
        """Content address of this run (plus the energy parameterisation)."""
        payload = {
            "format": CACHE_FORMAT,
            "spec": self.to_dict(),
            "energy": _energy_key(energy_params),
        }
        canonical = json.dumps(payload, sort_keys=True)
        return hashlib.sha256(canonical.encode()).hexdigest()


def _energy_key(params: Optional[EnergyParams]) -> Tuple:
    """Hashable identity of an energy parameterisation."""
    p = params if params is not None else EnergyParams()
    return tuple(sorted(dataclass_to_dict(p).items()))


# ---------------------------------------------------------------- run object

@dataclass
class BenchmarkRun:
    """One completed (benchmark, model) simulation."""

    abbr: str
    model: str
    workload: BuiltWorkload
    result: RunResult
    energy: EnergyReport
    profile: Optional[RedundancyProfile] = None

    @property
    def cycles(self) -> int:
        return self.result.cycles

    @property
    def reuse_fraction(self) -> float:
        return self.result.reuse_fraction


# ------------------------------------------------------------------- caching

#: spec -> (result, profile, workload-or-None).  The workload is the live,
#: verified post-run instance for in-process simulations and ``None`` for
#: results rehydrated from a worker or the disk cache.
_RESULT_CACHE: Dict[RunSpec, Tuple[RunResult, Optional[RedundancyProfile],
                                   Optional[BuiltWorkload]]] = {}

#: (spec, energy key) -> BenchmarkRun.  Keyed by the energy parameters too:
#: a second call with different ``EnergyParams`` must never see the first
#: call's ``EnergyReport``.
_RUN_CACHE: Dict[Tuple[RunSpec, Tuple], BenchmarkRun] = {}

#: Observable effort counters (tests and the CLI read these).
COUNTS = {"simulations": 0, "memo_hits": 0, "disk_hits": 0, "disk_writes": 0,
          "disk_corrupt": 0}


@dataclass(frozen=True)
class JobFailure:
    """One simulation job that failed permanently (after any retries).

    ``kind`` is ``"error"`` (the worker raised) or ``"timeout"`` (no result
    within the per-job deadline — which also covers a worker process that
    died without reporting back).  ``digest`` names the on-disk cache slot
    the result would have filled, so a failed job is fully identifiable
    from logs alone.
    """

    spec: RunSpec
    digest: str
    kind: str
    error: str
    attempts: int

    def __str__(self) -> str:
        return (f"{self.spec.abbr}/{self.spec.model} [{self.kind} after "
                f"{self.attempts} attempt(s), digest {self.digest[:12]}]: "
                f"{self.error}")

    def to_dict(self) -> Dict[str, object]:
        """JSON form for durable failure records (the campaign journal
        persists these so failure history survives the observing process)."""
        return {"spec": self.spec.to_dict(), "digest": self.digest,
                "kind": self.kind, "error": self.error,
                "attempts": self.attempts}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "JobFailure":
        return cls(spec=RunSpec.from_dict(data["spec"]),
                   digest=data["digest"], kind=data["kind"],
                   error=data["error"], attempts=data["attempts"])


class SuiteError(RuntimeError):
    """One or more suite jobs failed; carries the :class:`JobFailure` list."""

    def __init__(self, failures: Sequence[JobFailure]) -> None:
        super().__init__(
            f"{len(failures)} suite job(s) failed:\n"
            + "\n".join(f"  - {failure}" for failure in failures))
        self.failures = list(failures)

#: Cross-process single-flight guard (``repro.campaign.lease.SingleFlight``
#: or anything with its ``flight(digest, reload)`` context manager).
#: Campaign workers install one so that a disk-cache miss is simulated by
#: exactly one live worker; the others wait on the winner's publish.
_JOB_GUARD = None


def set_job_guard(guard) -> None:
    """Install (or with ``None`` remove) the cross-process simulation
    guard.  See :class:`repro.campaign.lease.SingleFlight`."""
    global _JOB_GUARD
    _JOB_GUARD = guard


_cache_dir: Optional[Path] = None
_cache_dir_from_env = False


def set_cache_dir(path: Optional[os.PathLike]) -> None:
    """Point the on-disk result cache at *path* (``None`` reverts to
    whatever ``REPRO_CACHE_DIR`` says, i.e. usually off)."""
    global _cache_dir, _cache_dir_from_env
    _cache_dir = Path(path) if path is not None else None
    _cache_dir_from_env = False


def cache_dir() -> Optional[Path]:
    """The active on-disk cache directory (``REPRO_CACHE_DIR`` by default)."""
    global _cache_dir, _cache_dir_from_env
    env = os.environ.get("REPRO_CACHE_DIR")
    if _cache_dir is None or _cache_dir_from_env:
        _cache_dir = Path(env) if env else None
        _cache_dir_from_env = True
    return _cache_dir


def clear_cache() -> None:
    """Drop the in-process memos (the on-disk cache is left alone)."""
    _RESULT_CACHE.clear()
    _RUN_CACHE.clear()


def _cache_path(digest: str) -> Optional[Path]:
    base = cache_dir()
    if base is None:
        return None
    return base / digest[:2] / f"{digest}.json"


def _payload_checksum(payload: Dict[str, object]) -> str:
    """Content checksum over the canonical payload (minus the checksum)."""
    body = {key: value for key, value in payload.items() if key != "checksum"}
    canonical = json.dumps(body, sort_keys=True)
    return hashlib.sha256(canonical.encode()).hexdigest()


def _payload_from(spec: RunSpec, result: RunResult,
                  profile: Optional[RedundancyProfile]) -> Dict[str, object]:
    payload = {
        "format": CACHE_FORMAT,
        "schema": RESULT_SCHEMA,
        "spec": spec.to_dict(),
        "result": result.to_dict(),
        "profile": dataclasses.asdict(profile) if profile is not None else None,
    }
    payload["checksum"] = _payload_checksum(payload)
    return payload


def _rehydrate(payload: Dict[str, object]) -> Tuple[RunResult,
                                                    Optional[RedundancyProfile]]:
    result = RunResult.from_dict(payload["result"])
    profile = (RedundancyProfile(**payload["profile"])
               if payload.get("profile") is not None else None)
    return result, profile


def _read_payload(path: Path) -> Tuple[str, Optional[Dict[str, object]]]:
    """Classify one cache file: ``("ok", payload)``, ``("version", None)``
    for a format we no longer speak (left alone), or ``("corrupt", None)``
    for truncated / bit-rotted / checksum-mismatched content."""
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError):
        return "corrupt", None
    if not isinstance(payload, dict):
        return "corrupt", None
    if payload.get("format") != CACHE_FORMAT:
        return "version", None
    if payload.get("checksum") != _payload_checksum(payload):
        return "corrupt", None
    return "ok", payload


def _disk_load(spec: RunSpec,
               energy_params: Optional[EnergyParams]) -> Optional[Dict[str, object]]:
    path = _cache_path(spec.digest(energy_params))
    if path is None or not path.exists():
        return None
    status, payload = _read_payload(path)
    if status == "ok":
        COUNTS["disk_hits"] += 1
        return payload
    if status == "corrupt":
        # A damaged entry must never masquerade as a result: drop it and
        # let the caller re-simulate into a fresh slot.
        COUNTS["disk_corrupt"] += 1
        try:
            path.unlink()
        except OSError:
            pass
    return None


def lookup_result(spec: RunSpec,
                  energy_params: Optional[EnergyParams] = None
                  ) -> Optional[Tuple[RunResult,
                                      Optional[RedundancyProfile]]]:
    """Answer *spec* from the memo or the disk cache — never simulate.

    This is the read-only entry point the serve API answers cache hits
    through: a ``None`` return means "someone must simulate", which the
    caller turns into a 202 + background job rather than blocking an
    event loop on a simulation.  Hits are memoised like any other load.
    """
    cached = _RESULT_CACHE.get(spec)
    if cached is not None:
        COUNTS["memo_hits"] += 1
        return cached[0], cached[1]
    payload = _disk_load(spec, energy_params)
    if payload is None:
        return None
    result, profile = _rehydrate(payload)
    _RESULT_CACHE[spec] = (result, profile, None)
    return result, profile


def _disk_store(spec: RunSpec, energy_params: Optional[EnergyParams],
                payload: Dict[str, object]) -> None:
    path = _cache_path(spec.digest(energy_params))
    if path is None:
        return
    # Unique per-process temp name: two workers (or a worker and a retry of
    # the same spec) racing on one slot must never interleave writes into a
    # shared ".tmp" file; each publishes atomically via os.replace.
    atomic_write_text(path, json.dumps(payload, sort_keys=True))
    COUNTS["disk_writes"] += 1


def _ckpt_path(spec: RunSpec) -> Optional[Path]:
    """Checkpoint slot for one run, next to the result cache."""
    base = cache_dir()
    if base is None:
        return None
    return base / "ckpt" / f"{spec.digest()}.ckpt.json"


#: ``*.tmp`` files younger than this are presumed to belong to a live
#: writer and are never treated as orphans by :func:`verify_cache_dir`.
TMP_GRACE_SECONDS = 60.0


@dataclass
class CacheReport:
    """Outcome of a :func:`verify_cache_dir` audit."""

    total: int = 0
    ok: int = 0
    corrupt: int = 0
    version_mismatch: int = 0
    pruned: int = 0
    corrupt_paths: List[str] = field(default_factory=list)
    #: Orphaned ``*.tmp`` files (killed mid-write) found under the cache.
    tmp_orphans: int = 0
    tmp_pruned: int = 0
    #: ``*.tmp`` files younger than :data:`TMP_GRACE_SECONDS` — presumed
    #: to belong to a live writer (e.g. a serving process mid-publish),
    #: so never counted as orphans or pruned.
    tmp_fresh: int = 0
    #: Checkpoint slots whose run already completed (result present) or
    #: whose container no longer verifies — dead weight either way.
    ckpt_orphans: int = 0
    ckpt_pruned: int = 0
    #: Checkpoint slots skipped because a live campaign lease proves some
    #: worker is (or may be) using them right now.
    ckpt_leased: int = 0
    #: Expired (or undecodable) campaign lease files; their workers are
    #: gone and any claimant would break them anyway.
    lease_expired: int = 0
    lease_pruned: int = 0


def verify_cache_dir(base: Optional[os.PathLike] = None,
                     prune: bool = False) -> CacheReport:
    """Audit every entry of an on-disk result cache.

    Checks each ``*.json`` payload's parseability, format version, and
    content checksum.  With ``prune=True`` corrupt entries are deleted
    (version-mismatched entries are always left alone — an older tool may
    still want them).  Also swept: orphaned ``*.tmp`` files (half-written
    payloads, checkpoints, or lease tombstones abandoned by killed
    workers), checkpoint slots under ``<cache>/ckpt/`` whose result
    already exists or whose container fails verification, and expired
    campaign lease files under ``<cache>/campaign/*/leases/`` — all
    counted always, deleted under ``prune=True``.  Defaults to the active
    :func:`cache_dir`.
    """
    root = Path(base) if base is not None else cache_dir()
    report = CacheReport()
    if root is None or not root.exists():
        return report
    now = time.time()
    for path in sorted(root.glob("*/*.json")):
        if path.parent.name in ("ckpt", "campaign"):
            continue  # not result entries; audited separately below
        report.total += 1
        status, _ = _read_payload(path)
        if status == "ok":
            report.ok += 1
        elif status == "version":
            report.version_mismatch += 1
        else:
            report.corrupt += 1
            report.corrupt_paths.append(str(path))
            if prune:
                try:
                    path.unlink()
                    report.pruned += 1
                except OSError:
                    pass
    for path in sorted(root.rglob("*.tmp")):
        # A young temp file may be a live writer mid-publish (a serving
        # process, a campaign worker): deleting it would race the final
        # os.replace.  Only debris older than the grace window is swept.
        try:
            age = now - path.stat().st_mtime
        except OSError:
            continue  # vanished: its writer just published
        if age < TMP_GRACE_SECONDS:
            report.tmp_fresh += 1
            continue
        report.tmp_orphans += 1
        if prune:
            try:
                path.unlink()
                report.tmp_pruned += 1
            except OSError:
                pass
    _sweep_ckpt_slots(root, report, prune, now)
    _sweep_leases(root, report, prune, now)
    return report


def _live_lease_jobs(root: Path, now: float) -> set:
    """Job digests currently held by a live (unexpired) campaign lease."""
    live = set()
    for path in root.glob("campaign/*/leases/*.json"):
        try:
            lease = json.loads(path.read_text())
            if float(lease["expires"]) > now:
                live.add(str(lease["job"]))
        except (OSError, ValueError, KeyError, TypeError):
            continue  # undecodable: not provably live
    return live


def _sweep_ckpt_slots(root: Path, report: CacheReport, prune: bool,
                      now: float) -> None:
    """Count (and optionally delete) checkpoint slots that can never help:
    the run already has a verified result, or the container is damaged.
    Slots whose digest is held by a live campaign lease are off-limits —
    the leaseholder may be about to read or rewrite them."""
    from repro.ckpt import CheckpointError, read_checkpoint

    leased = _live_lease_jobs(root, now)
    for path in sorted((root / "ckpt").glob("*.ckpt.json")):
        digest = path.name[: -len(".ckpt.json")]
        if digest in leased:
            report.ckpt_leased += 1
            continue
        result_path = root / digest[:2] / f"{digest}.json"
        orphaned = False
        if result_path.exists() and _read_payload(result_path)[0] == "ok":
            orphaned = True  # run finished; the slot is spent
        else:
            try:
                read_checkpoint(path)
            except CheckpointError:
                orphaned = True  # unreadable: worth nothing on resume
        if orphaned:
            report.ckpt_orphans += 1
            if prune:
                try:
                    path.unlink()
                    report.ckpt_pruned += 1
                except OSError:
                    pass


def _sweep_leases(root: Path, report: CacheReport, prune: bool,
                  now: float) -> None:
    """Count (and optionally delete) expired or undecodable lease files."""
    for path in sorted(root.glob("campaign/*/leases/*.json")):
        try:
            lease = json.loads(path.read_text())
            expired = float(lease["expires"]) <= now
        except (OSError, ValueError, KeyError, TypeError):
            expired = True  # cannot prove liveness: safe to break
        if expired:
            report.lease_expired += 1
            if prune:
                try:
                    path.unlink()
                    report.lease_pruned += 1
                except OSError:
                    pass


# ---------------------------------------------------------------- simulation

def _simulate(spec: RunSpec) -> Tuple[RunResult, Optional[RedundancyProfile],
                                      BuiltWorkload]:
    """Run one simulation in this process (no caching)."""
    if _TEST_HOOK is not None:
        _TEST_HOOK(spec)
    COUNTS["simulations"] += 1
    config = model_config(spec.model, **dict(spec.wir_overrides))
    config.num_sms = spec.num_sms
    config.trace.stalls = spec.trace_stalls
    config.exec_engine = spec.exec_engine
    config.checkpoint_every = spec.checkpoint_every
    workload = build_workload(spec.abbr, scale=spec.scale, seed=spec.seed)

    profilers: List[RedundancyProfiler] = []
    factory = None
    if spec.profile:
        def factory():  # noqa: E306 - small closure
            p = RedundancyProfiler()
            profilers.append(p)
            return p

    launch = KernelLaunch(workload.program, workload.grid, workload.block,
                          workload.image)
    if spec.checked:
        from repro.check.oracle import CheckedGPU
        gpu = CheckedGPU(config, profiler_factory=factory,
                         benchmark=spec.abbr)
    else:
        gpu = GPU(config, profiler_factory=factory)

    ckpt_path = (_ckpt_path(spec)
                 if spec.checkpoint_every is not None else None)
    resume = None
    if ckpt_path is not None:
        gpu.checkpoint_path = ckpt_path
        gpu.checkpoint_meta_extra = {
            "workload": {"abbr": spec.abbr, "scale": spec.scale,
                         "seed": spec.seed},
        }
        if ckpt_path.exists():
            try:
                ckpt = read_checkpoint(ckpt_path)
            except CheckpointError:
                # A damaged checkpoint is worth exactly nothing: drop it
                # and restart from cycle 0.
                ckpt = None
                try:
                    ckpt_path.unlink()
                except OSError:
                    pass
            if ckpt is not None and ckpt["meta"] == gpu.checkpoint_meta(launch):
                resume = ckpt["state"]

    result = gpu.run(launch, resume=resume)
    workload.verify()
    if ckpt_path is not None:
        # The run completed; its checkpoint slot is spent.
        try:
            ckpt_path.unlink()
        except OSError:
            pass

    merged: Optional[RedundancyProfile] = None
    if profilers:
        merged = profilers[0].profile
        for p in profilers[1:]:
            merged = merged.merge(p.profile)
    return result, merged, workload


def _worker(spec_data: Dict[str, object]) -> Dict[str, object]:
    """Pool worker: simulate one spec and return the serialized payload."""
    spec = RunSpec.from_dict(spec_data)
    result, profile, _ = _simulate(spec)
    return _payload_from(spec, result, profile)


def _obtain_result(
    spec: RunSpec, energy_params: Optional[EnergyParams]
) -> Tuple[RunResult, Optional[RedundancyProfile], Optional[BuiltWorkload]]:
    """Result memo -> disk cache -> fresh simulation, in that order."""
    cached = _RESULT_CACHE.get(spec)
    if cached is not None:
        COUNTS["memo_hits"] += 1
        return cached

    payload = _disk_load(spec, energy_params)
    if payload is None and _JOB_GUARD is not None:
        # Single-flight across worker processes: either we win the job's
        # lease (and simulate below, holding it), or a live sibling is
        # already simulating this digest and we adopt its payload.
        with _JOB_GUARD.flight(
                spec.digest(energy_params),
                lambda: _disk_load(spec, energy_params)) as found:
            if found is not None:
                payload = found
            else:
                result, profile, workload = _simulate(spec)
                _disk_store(spec, energy_params,
                            _payload_from(spec, result, profile))
                entry = (result, profile, workload)
                _RESULT_CACHE[spec] = entry
                return entry
    if payload is not None:
        result, profile = _rehydrate(payload)
        entry = (result, profile, None)
    else:
        result, profile, workload = _simulate(spec)
        _disk_store(spec, energy_params, _payload_from(spec, result, profile))
        entry = (result, profile, workload)
    _RESULT_CACHE[spec] = entry
    return entry


# ------------------------------------------------------------------ frontend

def run_benchmark(
    abbr: str,
    model: str = "Base",
    scale: int = 1,
    seed: int = 7,
    num_sms: int = EXPERIMENT_SMS,
    profile: bool = False,
    checked: bool = False,
    trace_stalls: bool = False,
    exec_engine: str = "scalar",
    energy_params: Optional[EnergyParams] = None,
    **wir_overrides,
) -> BenchmarkRun:
    """Simulate one benchmark under one design point (memoised).

    ``wir_overrides`` tweak the model's WIR config, e.g.
    ``run_benchmark("SF", "RLPV", reuse_buffer_entries=512)``.
    ``checked=True`` referees the run against the lockstep golden model
    (raising :class:`repro.check.DivergenceError` on any disagreement).
    """
    spec = RunSpec.make(abbr, model, scale=scale, seed=seed, num_sms=num_sms,
                        profile=profile, checked=checked,
                        trace_stalls=trace_stalls, exec_engine=exec_engine,
                        **wir_overrides)
    run_key = (spec, _energy_key(energy_params))
    run = _RUN_CACHE.get(run_key)
    if run is not None:
        return run

    result, merged_profile, workload = _obtain_result(spec, energy_params)
    if workload is None:
        # Rehydrated result: rebuild the (pre-run) workload so callers can
        # still reach the program and launch geometry.
        workload = build_workload(abbr, scale=scale, seed=seed)

    run = BenchmarkRun(
        abbr=abbr,
        model=model,
        workload=workload,
        result=result,
        energy=compute_energy(result, energy_params),
        profile=merged_profile,
    )
    _RUN_CACHE[run_key] = run
    return run


def _failure(spec: RunSpec, energy_params: Optional[EnergyParams],
             kind: str, error: str, attempts: int) -> JobFailure:
    return JobFailure(spec=spec, digest=spec.digest(energy_params),
                      kind=kind, error=error, attempts=attempts)


#: Ceiling on a single retry sleep, whatever the attempt count.
MAX_RETRY_WAIT = 30.0


def _retry_wait(backoff: float, attempt: int,
                rng: "random.Random" = random) -> None:
    """Sleep before a retry: exponential backoff with **full jitter**.

    The wait is drawn uniformly from ``[0, backoff * 2**attempt]`` (capped
    at :data:`MAX_RETRY_WAIT`) instead of being the deterministic
    ``backoff * 2**attempt``: a batch of workers that all failed at the
    same moment (shared cache blip, campaign worker wave) would otherwise
    retry in lockstep and hammer the cache directory again together.
    """
    if backoff > 0:
        time.sleep(rng.uniform(0.0, min(backoff * (2 ** attempt),
                                        MAX_RETRY_WAIT)))


def _serial_simulate(
    missing: Sequence[RunSpec],
    energy_params: Optional[EnergyParams],
    retries: int,
    backoff: float,
) -> List[JobFailure]:
    """In-process fallback path (no per-job timeout is possible here)."""
    failures: List[JobFailure] = []
    for spec in missing:
        for attempt in range(retries + 1):
            try:
                _obtain_result(spec, energy_params)
                break
            except Exception as err:  # noqa: BLE001 - recorded per spec
                if attempt < retries:
                    _retry_wait(backoff, attempt)
                    continue
                failures.append(_failure(
                    spec, energy_params, "error",
                    f"{type(err).__name__}: {err}", attempt + 1))
    return failures


def _parallel_simulate(
    missing: Sequence[RunSpec],
    energy_params: Optional[EnergyParams],
    jobs: int,
    timeout: Optional[float],
    retries: int,
    backoff: float,
) -> List[JobFailure]:
    """Simulate *missing* specs in worker waves with per-job deadlines.

    Each wave gets a pool of exactly as many processes as jobs, so every
    job starts immediately and ``timeout`` bounds each job's wall clock
    from the wave start.  A worker that raises surfaces as an ``"error"``
    failure; one that hangs (or dies without reporting) as a ``"timeout"``
    — the wave's pool is torn down either way, so a poison-pill spec can
    never wedge the suite.  Failed specs are re-queued into later waves up
    to *retries* times with exponential backoff.
    """
    methods = multiprocessing.get_all_start_methods()
    context = multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")
    failures: List[JobFailure] = []
    queue = deque((spec, 0) for spec in missing)
    while queue:
        wave = [queue.popleft() for _ in range(min(jobs, len(queue)))]
        retry: List[Tuple[RunSpec, int]] = []
        with context.Pool(processes=len(wave)) as pool:
            handles = [
                (spec, attempt, pool.apply_async(_worker, (spec.to_dict(),)))
                for spec, attempt in wave
            ]
            deadline = (time.monotonic() + timeout
                        if timeout is not None else None)
            for spec, attempt, handle in handles:
                remaining = (max(0.0, deadline - time.monotonic())
                             if deadline is not None else None)
                try:
                    payload = handle.get(remaining)
                except multiprocessing.TimeoutError:
                    if attempt < retries:
                        retry.append((spec, attempt + 1))
                    else:
                        failures.append(_failure(
                            spec, energy_params, "timeout",
                            f"no result within {timeout:g}s", attempt + 1))
                except Exception as err:  # noqa: BLE001 - recorded per spec
                    if attempt < retries:
                        retry.append((spec, attempt + 1))
                    else:
                        failures.append(_failure(
                            spec, energy_params, "error",
                            f"{type(err).__name__}: {err}", attempt + 1))
                else:
                    result, profile = _rehydrate(payload)
                    _disk_store(spec, energy_params, payload)
                    _RESULT_CACHE[spec] = (result, profile, None)
            # Pool.__exit__ terminates the workers, killing any hung ones.
        if retry:
            _retry_wait(backoff, retry[0][1] - 1)
            queue.extend(retry)
    return failures


def prefetch(
    specs: Iterable[RunSpec],
    jobs: int = 1,
    energy_params: Optional[EnergyParams] = None,
    timeout: Optional[float] = None,
    retries: int = 0,
    backoff: float = 0.25,
    strict: bool = True,
    failures_out: Optional[List[JobFailure]] = None,
) -> int:
    """Ensure every spec's result is available, simulating missing ones with
    a worker pool.  Returns the number of simulations attempted.

    Workers return *serialized* results, so a parallel sweep is bit-identical
    to a serial one; completed payloads land in the disk cache (when enabled)
    and the in-process memo.

    ``timeout`` bounds each parallel job's wall-clock seconds (hung or
    silently dying workers are reaped; ignored when ``jobs <= 1``);
    ``retries`` re-runs a failed job that many extra times with
    exponential ``backoff``.  Failures are appended to ``failures_out``
    (when given) and raised as one :class:`SuiteError` unless
    ``strict=False``.
    """
    missing: List[RunSpec] = []
    seen = set()
    for spec in specs:
        if spec in _RESULT_CACHE or spec in seen:
            continue
        payload = _disk_load(spec, energy_params)
        if payload is not None:
            result, profile = _rehydrate(payload)
            _RESULT_CACHE[spec] = (result, profile, None)
            continue
        seen.add(spec)
        missing.append(spec)

    if not missing:
        return 0

    if jobs <= 1 or len(missing) == 1:
        failures = _serial_simulate(missing, energy_params, retries, backoff)
    else:
        failures = _parallel_simulate(missing, energy_params, jobs, timeout,
                                      retries, backoff)
    if failures_out is not None:
        failures_out.extend(failures)
    if failures and strict:
        raise SuiteError(failures)
    return len(missing)


def run_suite(
    abbrs: Sequence[str],
    model: str = "Base",
    jobs: int = 1,
    energy_params: Optional[EnergyParams] = None,
    timeout: Optional[float] = None,
    retries: int = 0,
    backoff: float = 0.25,
    strict: bool = True,
    failures_out: Optional[List[JobFailure]] = None,
    **kwargs,
) -> Dict[str, BenchmarkRun]:
    """Run a list of benchmarks under one design point.

    ``jobs > 1`` simulates cache-missing benchmarks in parallel; results
    are identical to a serial run.  A benchmark whose job fails (raises,
    or exceeds the per-job ``timeout`` under ``jobs > 1``) is omitted from
    the returned mapping and recorded as a :class:`JobFailure` in
    ``failures_out``; with ``strict=True`` (the default) the suite then
    raises :class:`SuiteError` *after* every other benchmark completed.
    """
    specs = [RunSpec.make(abbr, model, **kwargs) for abbr in abbrs]
    failures: List[JobFailure] = []
    if jobs > 1:
        prefetch(specs, jobs=jobs, energy_params=energy_params,
                 timeout=timeout, retries=retries, backoff=backoff,
                 strict=False, failures_out=failures)
    failed = {failure.spec for failure in failures}
    runs: Dict[str, BenchmarkRun] = {}
    for abbr, spec in zip(abbrs, specs):
        if spec in failed:
            continue
        try:
            runs[abbr] = run_benchmark(abbr, model,
                                       energy_params=energy_params, **kwargs)
        except Exception as err:  # noqa: BLE001 - recorded per spec
            failures.append(_failure(spec, energy_params, "error",
                                     f"{type(err).__name__}: {err}", 1))
    if failures_out is not None:
        failures_out.extend(failures)
    if failures and strict:
        raise SuiteError(failures)
    return runs
