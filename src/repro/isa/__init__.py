"""Compact PTX-like instruction set for the simulated GPU.

The ISA is deliberately small but covers everything the WIR paper's
mechanisms touch: integer and floating-point arithmetic on 32-wide warps,
special-function operations, predication, divergent control flow, barriers,
and loads/stores against the global / shared / constant / parameter address
spaces.

Public entry points:

* :class:`repro.isa.opcodes.Opcode` — opcode enumeration.
* :class:`repro.isa.instruction.Instruction` — a decoded warp instruction.
* :class:`repro.isa.program.Program` — an assembled kernel with CFG and
  reconvergence metadata.
* :func:`repro.isa.assembler.assemble` — text assembly to :class:`Program`.
"""

from repro.isa.assembler import AssemblyError, assemble
from repro.isa.builder import KernelBuilder, Reg
from repro.isa.instruction import Instruction, Operand, OperandKind, PredicateGuard
from repro.isa.opcodes import CmpOp, MemSpace, Opcode, OpClass
from repro.isa.program import Program

__all__ = [
    "AssemblyError",
    "assemble",
    "KernelBuilder",
    "Reg",
    "CmpOp",
    "Instruction",
    "MemSpace",
    "Opcode",
    "OpClass",
    "Operand",
    "OperandKind",
    "PredicateGuard",
    "Program",
]
