"""Two-pass text assembler for the simulator's PTX-like ISA.

Syntax (one instruction per line, ``//`` or ``#`` comments)::

    loop:
        mov     r0, %tid.x
        add     r1, r0, 4            // immediate source
        fmul    r2, r1, 0f1.5        // float immediate
        setp.lt p0, r1, r3
        ld.global r4, [r2+16]
        st.shared -, [r5], r4
        selp    r6, r1, r2, p0
    @p0 bra     loop
        bar.sync
        exit

Register operands are ``r0..r62``; predicates ``p0..p7``; special registers
``%tid.x`` etc.; integer immediates are decimal or ``0x`` hex; float
immediates use the ``0fVALUE`` prefix; address operands are ``[rN]`` or
``[rN+imm]`` / ``[rN-imm]``.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.isa.instruction import (
    Instruction,
    Operand,
    OperandKind,
    PredicateGuard,
    SPECIAL_REGISTERS,
)
from repro.isa.opcodes import CmpOp, MNEMONICS, Opcode, OpClass, op_class, source_arity
from repro.isa.program import Program


class AssemblyError(ValueError):
    """Raised on malformed assembly input."""

    def __init__(self, message: str, line_no: Optional[int] = None) -> None:
        if line_no is not None:
            message = f"line {line_no}: {message}"
        super().__init__(message)


_LABEL_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_.$]*):$")
_GUARD_RE = re.compile(r"^@(!?)p(\d+)$")
_REG_RE = re.compile(r"^r(\d+)$")
_PRED_RE = re.compile(r"^p(\d+)$")
_ADDR_RE = re.compile(r"^\[r(\d+)(?:([+-])(0x[0-9a-fA-F]+|\d+))?\]$")
_FIMM_RE = re.compile(r"^0f([-+0-9.eE]+)$")
_IMM_RE = re.compile(r"^-?(0x[0-9a-fA-F]+|\d+)$")


def _strip_comment(line: str) -> str:
    for marker in ("//", "#"):
        idx = line.find(marker)
        if idx >= 0:
            line = line[:idx]
    return line.strip()


def _parse_operand(token: str, line_no: int) -> Operand:
    token = token.strip()
    try:
        return _parse_operand_inner(token, line_no)
    except ValueError as exc:
        if isinstance(exc, AssemblyError):
            raise
        raise AssemblyError(f"cannot parse operand {token!r}: {exc}", line_no)


def _parse_operand_inner(token: str, line_no: int) -> Operand:
    match = _REG_RE.match(token)
    if match:
        return Operand.reg(int(match.group(1)))
    match = _PRED_RE.match(token)
    if match:
        return Operand.pred(int(match.group(1)))
    match = _ADDR_RE.match(token)
    if match:
        offset = 0
        if match.group(3) is not None:
            offset = int(match.group(3), 0)
            if match.group(2) == "-":
                offset = -offset
        return Operand.addr(int(match.group(1)), offset)
    if token in SPECIAL_REGISTERS:
        return Operand.sreg(token)
    match = _FIMM_RE.match(token)
    if match:
        return Operand.fimm(float(match.group(1)))
    match = _IMM_RE.match(token)
    if match:
        return Operand.imm(int(token, 0))
    raise AssemblyError(f"cannot parse operand {token!r}", line_no)


def _split_operands(text: str) -> List[str]:
    return [t.strip() for t in text.split(",") if t.strip()] if text.strip() else []


def _parse_mnemonic(token: str, line_no: int) -> Tuple[Opcode, Optional[CmpOp]]:
    if token in MNEMONICS:
        return MNEMONICS[token], None
    # setp.lt / fsetp.ge style
    if "." in token:
        head, _, tail = token.rpartition(".")
        if head in ("setp", "fsetp"):
            try:
                return MNEMONICS[head], CmpOp(tail)
            except ValueError:
                raise AssemblyError(f"unknown comparison {tail!r}", line_no)
    raise AssemblyError(f"unknown mnemonic {token!r}", line_no)


def assemble(source: str, name: str = "kernel") -> Program:
    """Assemble *source* text into a :class:`Program`."""
    # Pass 1: collect labels and raw instruction lines.
    labels: Dict[str, int] = {}
    raw: List[Tuple[int, str]] = []  # (line_no, text)
    for line_no, line in enumerate(source.splitlines(), start=1):
        text = _strip_comment(line)
        if not text:
            continue
        match = _LABEL_RE.match(text)
        if match:
            label = match.group(1)
            if label in labels:
                raise AssemblyError(f"duplicate label {label!r}", line_no)
            labels[label] = len(raw)
            continue
        raw.append((line_no, text))

    # Pass 2: parse instructions.
    instructions: List[Instruction] = []
    for pc, (line_no, text) in enumerate(raw):
        guard = None
        tokens = text.split(None, 1)
        match = _GUARD_RE.match(tokens[0])
        if match:
            guard = PredicateGuard(int(match.group(2)), negated=bool(match.group(1)))
            if len(tokens) < 2:
                raise AssemblyError("guard without instruction", line_no)
            text = tokens[1]
            tokens = text.split(None, 1)

        opcode, cmp = _parse_mnemonic(tokens[0], line_no)
        operand_text = tokens[1] if len(tokens) > 1 else ""
        operands = _split_operands(operand_text)
        inst = _build_instruction(
            opcode, cmp, guard, operands, labels, pc, line_no
        )
        instructions.append(inst)

    # Resolve branch targets (labels were recorded in pass 1 but forward
    # references were stored symbolically via a placeholder in target slot).
    return Program(name=name, instructions=instructions, labels=dict(labels))


def _build_instruction(
    opcode: Opcode,
    cmp: Optional[CmpOp],
    guard: Optional[PredicateGuard],
    operands: List[str],
    labels: Dict[str, int],
    pc: int,
    line_no: int,
) -> Instruction:
    cls = op_class(opcode)

    if opcode is Opcode.BRA:
        if len(operands) != 1:
            raise AssemblyError("bra expects exactly one label operand", line_no)
        label = operands[0]
        if label not in labels:
            raise AssemblyError(f"undefined label {label!r}", line_no)
        return Instruction(opcode=opcode, guard=guard, target=labels[label], pc=pc)

    if cls in (OpClass.CONTROL, OpClass.SYNC, OpClass.NOP):
        if operands:
            raise AssemblyError(f"{opcode.value} takes no operands", line_no)
        return Instruction(opcode=opcode, guard=guard, pc=pc)

    if cls is OpClass.STORE and operands and operands[0] == "-":
        operands = operands[1:]  # "st.space -, [addr], src": drop the dash
    parsed = [_parse_operand(tok, line_no) for tok in operands]

    if cls is OpClass.STORE:
        if len(parsed) != 2 or parsed[0].kind is not OperandKind.ADDR:
            raise AssemblyError(
                f"{opcode.value} expects '-, [addr], src' operands", line_no
            )
        return Instruction(opcode=opcode, srcs=tuple(parsed), guard=guard, pc=pc)

    if cls is OpClass.LOAD:
        if len(parsed) != 2 or parsed[1].kind is not OperandKind.ADDR:
            raise AssemblyError(
                f"{opcode.value} expects 'dst, [addr]' operands", line_no
            )
        dst, addr = parsed
        if dst.kind is not OperandKind.REG:
            raise AssemblyError("load destination must be a register", line_no)
        return Instruction(opcode=opcode, dst=dst, srcs=(addr,), guard=guard, pc=pc)

    if cls is OpClass.PRED:
        if cmp is None:
            raise AssemblyError(f"{opcode.value} requires a comparison suffix", line_no)
        if len(parsed) != 3 or parsed[0].kind is not OperandKind.PRED:
            raise AssemblyError(
                f"{opcode.value} expects 'pN, a, b' operands", line_no
            )
        return Instruction(
            opcode=opcode, dst=parsed[0], srcs=tuple(parsed[1:]),
            guard=guard, cmp=cmp, pc=pc,
        )

    if opcode is Opcode.SELP:
        if (
            len(parsed) != 4
            or parsed[0].kind is not OperandKind.REG
            or parsed[3].kind is not OperandKind.PRED
        ):
            raise AssemblyError("selp expects 'dst, a, b, pN' operands", line_no)
        return Instruction(
            opcode=opcode, dst=parsed[0], srcs=tuple(parsed[1:3]),
            guard=guard, pred_src=parsed[3].value, pc=pc,
        )

    # Plain arithmetic / SFU / mov.
    arity = source_arity(opcode)
    if len(parsed) != arity + 1:
        raise AssemblyError(
            f"{opcode.value} expects {arity + 1} operands, got {len(parsed)}",
            line_no,
        )
    dst = parsed[0]
    if dst.kind is not OperandKind.REG:
        raise AssemblyError(f"{opcode.value} destination must be a register", line_no)
    for src in parsed[1:]:
        if src.kind is OperandKind.ADDR:
            raise AssemblyError(
                f"{opcode.value} cannot take address operands", line_no
            )
    return Instruction(
        opcode=opcode, dst=dst, srcs=tuple(parsed[1:]), guard=guard, pc=pc
    )
