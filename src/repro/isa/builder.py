"""Programmatic kernel construction: a thin builder over the assembler.

Writing kernels as raw assembly strings is fine for fixed workloads, but
generated kernels (parameter sweeps, fuzzers, loop unrollers) are easier to
express programmatically.  :class:`KernelBuilder` provides register
allocation by name, structured ``loop``/``if_then`` blocks that emit the
labels and predicates for you, and produces a normal
:class:`~repro.isa.program.Program` through the assembler, so everything the
assembler validates is validated here too.

Example::

    k = KernelBuilder("vec_scale")
    tid = k.gtid()
    addr = k.reg("addr")
    value = k.reg("value")
    k.emit("shl", addr, tid, 2)
    k.emit("add", addr, addr, 4096)
    k.load("global", value, addr)
    k.emit("mul", value, value, 3)
    with k.loop(times=4) as i:
        k.emit("add", value, value, i)
    k.store("global", addr, value, offset=1 << 20)
    program = k.build()
"""

from __future__ import annotations

import contextlib
from typing import Iterator, List, Optional, Union

from repro.isa.assembler import assemble
from repro.isa.instruction import NUM_LOGICAL_REGS, NUM_PRED_REGS
from repro.isa.program import Program


class Reg:
    """A named logical register handle."""

    __slots__ = ("index", "name")

    def __init__(self, index: int, name: str) -> None:
        self.index = index
        self.name = name

    def __str__(self) -> str:
        return f"r{self.index}"

    def __repr__(self) -> str:
        return f"Reg({self.name}=r{self.index})"


Operandish = Union[Reg, int, float, str]


class KernelBuilder:
    """Builds assembly text with named registers and structured blocks."""

    def __init__(self, name: str = "kernel") -> None:
        self.name = name
        self._lines: List[str] = []
        self._next_reg = 0
        self._next_pred = 0
        self._next_label = 0
        self._built = False

    # ------------------------------------------------------------ resources

    def reg(self, name: Optional[str] = None) -> Reg:
        """Allocate a fresh logical register."""
        if self._next_reg >= NUM_LOGICAL_REGS:
            raise ValueError("out of logical registers (63 per warp)")
        reg = Reg(self._next_reg, name or f"r{self._next_reg}")
        self._next_reg += 1
        return reg

    def _pred(self) -> int:
        index = self._next_pred % NUM_PRED_REGS
        self._next_pred += 1
        return index

    def _label(self, stem: str) -> str:
        self._next_label += 1
        return f"{stem}_{self._next_label}"

    @staticmethod
    def _operand(value: Operandish) -> str:
        if isinstance(value, Reg):
            return str(value)
        if isinstance(value, bool):
            raise TypeError("bool operands are ambiguous; use 0/1")
        if isinstance(value, int):
            return str(value)
        if isinstance(value, float):
            return f"0f{value!r}"
        if isinstance(value, str):  # special registers like "%tid.x"
            return value
        raise TypeError(f"cannot use {value!r} as an operand")

    # ----------------------------------------------------------- raw emits

    def raw(self, line: str) -> None:
        self._lines.append(f"    {line}")

    def emit(self, op: str, dst: Reg, *srcs: Operandish,
             guard: Optional[str] = None) -> Reg:
        """Emit ``op dst, srcs...``; returns *dst* for chaining."""
        operands = ", ".join([str(dst)] + [self._operand(s) for s in srcs])
        prefix = f"{guard} " if guard else ""
        self._lines.append(f"{prefix}    {op} {operands}")
        return dst

    def mov(self, dst: Reg, value: Operandish) -> Reg:
        return self.emit("mov", dst, value)

    # -------------------------------------------------------- common idioms

    def tid(self) -> Reg:
        reg = self.reg("tid")
        return self.mov(reg, "%tid.x")

    def gtid(self) -> Reg:
        """threadIdx.x + blockIdx.x * blockDim.x."""
        tid = self.tid()
        ctaid = self.mov(self.reg("ctaid"), "%ctaid.x")
        ntid = self.mov(self.reg("ntid"), "%ntid.x")
        gtid = self.reg("gtid")
        self.emit("mad", gtid, ctaid, ntid, tid)
        return gtid

    def load(self, space: str, dst: Reg, addr: Reg, offset: int = 0) -> Reg:
        suffix = f"+{offset}" if offset > 0 else (str(offset) if offset else "")
        self._lines.append(f"    ld.{space} {dst}, [{addr}{suffix}]")
        return dst

    def store(self, space: str, addr: Reg, value: Reg, offset: int = 0) -> None:
        suffix = f"+{offset}" if offset > 0 else (str(offset) if offset else "")
        self._lines.append(f"    st.{space} -, [{addr}{suffix}], {value}")

    def barrier(self) -> None:
        self._lines.append("    bar.sync")

    def exit(self) -> None:
        self._lines.append("    exit")

    # ------------------------------------------------------------ structure

    @contextlib.contextmanager
    def loop(self, times: int, counter: Optional[Reg] = None) -> Iterator[Reg]:
        """``for i in range(times)``: yields the counter register."""
        if times < 1:
            raise ValueError("loop body must run at least once")
        i = counter if counter is not None else self.reg("i")
        self.mov(i, 0)
        top = self._label("loop")
        self._lines.append(f"{top}:")
        yield i
        pred = self._pred()
        self.emit("add", i, i, 1)
        self._lines.append(f"    setp.lt p{pred}, {i}, {times}")
        self._lines.append(f"@p{pred} bra {top}")

    @contextlib.contextmanager
    def if_then(self, cmp: str, a: Operandish, b: Operandish) -> Iterator[None]:
        """Predicate the enclosed instructions on ``a <cmp> b``.

        Emits a guard per enclosed instruction (predication, not a branch),
        which is exactly the divergence pattern the pin-bit machinery
        handles.
        """
        pred = self._pred()
        self._lines.append(
            f"    setp.{cmp} p{pred}, {self._operand(a)}, {self._operand(b)}")
        start = len(self._lines)
        yield
        for idx in range(start, len(self._lines)):
            line = self._lines[idx]
            if line.strip() and not line.rstrip().endswith(":"):
                self._lines[idx] = f"@p{pred}{line}"

    # --------------------------------------------------------------- output

    def source(self) -> str:
        return "\n".join(self._lines) + "\n"

    def build(self, auto_exit: bool = True) -> Program:
        """Assemble into a :class:`Program` (appends ``exit`` if missing)."""
        if auto_exit and (not self._lines
                          or self._lines[-1].strip() != "exit"):
            self.exit()
        return assemble(self.source(), name=self.name)
