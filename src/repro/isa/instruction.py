"""Decoded warp instruction representation.

An :class:`Instruction` is immutable after assembly.  Register operands refer
to *logical* warp registers ``r0..r62``; predicate operands to ``p0..p7``;
special registers (``%tid.x`` etc.) are read-only per-thread values resolved
at execution time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.isa.opcodes import CmpOp, MemSpace, Opcode, OpClass, mem_space, op_class

#: Logical warp registers per warp (rename tables have one entry each).
NUM_LOGICAL_REGS = 63
#: Predicate registers per warp.
NUM_PRED_REGS = 8

#: Recognised special registers and their component index.
SPECIAL_REGISTERS = (
    "%tid.x", "%tid.y", "%tid.z",
    "%ntid.x", "%ntid.y", "%ntid.z",
    "%ctaid.x", "%ctaid.y", "%ctaid.z",
    "%nctaid.x", "%nctaid.y", "%nctaid.z",
    "%laneid", "%warpid", "%smid",
)


class OperandKind(enum.Enum):
    REG = "reg"        # logical warp register rN
    PRED = "pred"      # predicate register pN
    IMM = "imm"        # 32-bit immediate (stored as unsigned bit pattern)
    SREG = "sreg"      # special register such as %tid.x
    ADDR = "addr"      # memory address operand [rN+imm]


@dataclass(frozen=True)
class Operand:
    """A single instruction operand."""

    kind: OperandKind
    #: Register index for REG/PRED/ADDR, unsigned 32-bit pattern for IMM,
    #: index into :data:`SPECIAL_REGISTERS` for SREG.
    value: int
    #: Byte offset for ADDR operands; unused otherwise.
    offset: int = 0

    @staticmethod
    def reg(index: int) -> "Operand":
        if not 0 <= index < NUM_LOGICAL_REGS:
            raise ValueError(f"register index out of range: r{index}")
        return Operand(OperandKind.REG, index)

    @staticmethod
    def pred(index: int) -> "Operand":
        if not 0 <= index < NUM_PRED_REGS:
            raise ValueError(f"predicate index out of range: p{index}")
        return Operand(OperandKind.PRED, index)

    @staticmethod
    def imm(value: int) -> "Operand":
        return Operand(OperandKind.IMM, value & 0xFFFFFFFF)

    @staticmethod
    def fimm(value: float) -> "Operand":
        import struct

        bits = struct.unpack("<I", struct.pack("<f", value))[0]
        return Operand(OperandKind.IMM, bits)

    @staticmethod
    def sreg(name: str) -> "Operand":
        return Operand(OperandKind.SREG, SPECIAL_REGISTERS.index(name))

    @staticmethod
    def addr(base_reg: int, offset: int = 0) -> "Operand":
        if not 0 <= base_reg < NUM_LOGICAL_REGS:
            raise ValueError(f"register index out of range: r{base_reg}")
        return Operand(OperandKind.ADDR, base_reg, offset)

    @property
    def sreg_name(self) -> str:
        if self.kind is not OperandKind.SREG:
            raise ValueError("not a special register operand")
        return SPECIAL_REGISTERS[self.value]

    def __str__(self) -> str:
        if self.kind is OperandKind.REG:
            return f"r{self.value}"
        if self.kind is OperandKind.PRED:
            return f"p{self.value}"
        if self.kind is OperandKind.IMM:
            return f"0x{self.value:08x}"
        if self.kind is OperandKind.SREG:
            return self.sreg_name
        if self.offset:
            # Emit a sign the assembler can re-parse ([r3-4], not [r3+-4]).
            sign = "+" if self.offset >= 0 else "-"
            return f"[r{self.value}{sign}{abs(self.offset)}]"
        return f"[r{self.value}]"


@dataclass(frozen=True)
class PredicateGuard:
    """``@pN`` / ``@!pN`` guard in front of an instruction."""

    index: int
    negated: bool = False

    def __str__(self) -> str:
        return f"@{'!' if self.negated else ''}p{self.index}"


@dataclass(frozen=True)
class Instruction:
    """One decoded warp instruction.

    Attributes:
        opcode: the operation.
        dst: destination operand (REG for arithmetic/loads, PRED for setp,
            ``None`` for stores/control/sync).
        srcs: value source operands in order.
        guard: optional predicate guard controlling the active mask.
        cmp: comparison operator for setp/fsetp.
        target: branch-target pc (filled by the assembler for ``bra``).
        pc: position in the program's instruction list.
    """

    opcode: Opcode
    dst: Optional[Operand] = None
    srcs: Tuple[Operand, ...] = ()
    guard: Optional[PredicateGuard] = None
    cmp: Optional[CmpOp] = None
    target: int = -1
    pc: int = -1
    #: selp reads an extra predicate source; setp writes this predicate.
    pred_src: Optional[int] = None

    # Decoded metadata below is derived purely from the fields above and
    # cached once at construction: the issue loop queries it every cycle for
    # every resident warp, and recomputing (frozenset-membership chains,
    # tuple rebuilds) dominated scheduler-scan profiles.  The cache slots
    # are plain instance attributes set with ``object.__setattr__`` (the
    # dataclass is frozen); they carry no class-level annotation on purpose
    # so dataclass-generated ``__eq__``/``__hash__`` ignore them.

    def __post_init__(self) -> None:
        setattr_ = object.__setattr__
        setattr_(self, "op_class", op_class(self.opcode))
        setattr_(self, "space", mem_space(self.opcode))
        setattr_(self, "is_branch", self.opcode is Opcode.BRA)
        setattr_(self, "is_barrier", self.opcode is Opcode.BAR)
        setattr_(self, "is_exit", self.opcode is Opcode.EXIT)
        writes_register = self.dst is not None and self.dst.kind is OperandKind.REG
        writes_predicate = self.dst is not None and self.dst.kind is OperandKind.PRED
        setattr_(self, "writes_register", writes_register)
        setattr_(self, "writes_predicate", writes_predicate)
        regs = tuple(
            src.value for src in self.srcs
            if src.kind in (OperandKind.REG, OperandKind.ADDR)
        )
        preds = []
        if self.guard is not None:
            preds.append(self.guard.index)
        if self.pred_src is not None and self.opcode is Opcode.SELP:
            preds.append(self.pred_src)
        for src in self.srcs:
            if src.kind is OperandKind.PRED:
                preds.append(src.value)
        setattr_(self, "_source_registers", regs)
        setattr_(self, "_source_predicates", tuple(preds))
        # Scoreboard probe sets: everything this instruction reads plus the
        # register/predicate it writes (WAW ordering), precomputed so the
        # per-cycle hazard check reduces to two ``isdisjoint`` calls.
        sb_regs = regs + (self.dst.value,) if writes_register else regs
        sb_preds = self._source_predicates
        if writes_predicate:
            sb_preds = sb_preds + (self.dst.value,)
        setattr_(self, "sb_regs", sb_regs)
        setattr_(self, "sb_preds", sb_preds)
        # Distinct source registers in ascending order: the operand-collect
        # stage reads one bank per distinct register.
        setattr_(self, "bank_regs", tuple(sorted(set(regs))))

    def source_registers(self) -> Tuple[int, ...]:
        """Logical register indices read by this instruction (incl. address bases)."""
        return self._source_registers

    def source_predicates(self) -> Tuple[int, ...]:
        return self._source_predicates

    def __str__(self) -> str:
        parts = []
        if self.guard is not None:
            parts.append(str(self.guard))
        mnemonic = self.opcode.value
        if self.cmp is not None:
            mnemonic = f"{mnemonic}.{self.cmp.value}"
        parts.append(mnemonic)
        operands = []
        if self.dst is not None:
            operands.append(str(self.dst))
        operands.extend(str(s) for s in self.srcs)
        if self.opcode is Opcode.SELP and self.pred_src is not None:
            operands.append(f"p{self.pred_src}")
        if self.opcode is Opcode.BRA:
            operands.append(f"@{self.target}")
        text = parts[0] if len(parts) == 1 else " ".join(parts)
        if operands:
            text = f"{text} " + ", ".join(operands)
        return text
