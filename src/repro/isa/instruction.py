"""Decoded warp instruction representation.

An :class:`Instruction` is immutable after assembly.  Register operands refer
to *logical* warp registers ``r0..r62``; predicate operands to ``p0..p7``;
special registers (``%tid.x`` etc.) are read-only per-thread values resolved
at execution time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.isa.opcodes import CmpOp, MemSpace, Opcode, OpClass, mem_space, op_class

#: Logical warp registers per warp (rename tables have one entry each).
NUM_LOGICAL_REGS = 63
#: Predicate registers per warp.
NUM_PRED_REGS = 8

#: Recognised special registers and their component index.
SPECIAL_REGISTERS = (
    "%tid.x", "%tid.y", "%tid.z",
    "%ntid.x", "%ntid.y", "%ntid.z",
    "%ctaid.x", "%ctaid.y", "%ctaid.z",
    "%nctaid.x", "%nctaid.y", "%nctaid.z",
    "%laneid", "%warpid", "%smid",
)


class OperandKind(enum.Enum):
    REG = "reg"        # logical warp register rN
    PRED = "pred"      # predicate register pN
    IMM = "imm"        # 32-bit immediate (stored as unsigned bit pattern)
    SREG = "sreg"      # special register such as %tid.x
    ADDR = "addr"      # memory address operand [rN+imm]


@dataclass(frozen=True)
class Operand:
    """A single instruction operand."""

    kind: OperandKind
    #: Register index for REG/PRED/ADDR, unsigned 32-bit pattern for IMM,
    #: index into :data:`SPECIAL_REGISTERS` for SREG.
    value: int
    #: Byte offset for ADDR operands; unused otherwise.
    offset: int = 0

    @staticmethod
    def reg(index: int) -> "Operand":
        if not 0 <= index < NUM_LOGICAL_REGS:
            raise ValueError(f"register index out of range: r{index}")
        return Operand(OperandKind.REG, index)

    @staticmethod
    def pred(index: int) -> "Operand":
        if not 0 <= index < NUM_PRED_REGS:
            raise ValueError(f"predicate index out of range: p{index}")
        return Operand(OperandKind.PRED, index)

    @staticmethod
    def imm(value: int) -> "Operand":
        return Operand(OperandKind.IMM, value & 0xFFFFFFFF)

    @staticmethod
    def fimm(value: float) -> "Operand":
        import struct

        bits = struct.unpack("<I", struct.pack("<f", value))[0]
        return Operand(OperandKind.IMM, bits)

    @staticmethod
    def sreg(name: str) -> "Operand":
        return Operand(OperandKind.SREG, SPECIAL_REGISTERS.index(name))

    @staticmethod
    def addr(base_reg: int, offset: int = 0) -> "Operand":
        if not 0 <= base_reg < NUM_LOGICAL_REGS:
            raise ValueError(f"register index out of range: r{base_reg}")
        return Operand(OperandKind.ADDR, base_reg, offset)

    @property
    def sreg_name(self) -> str:
        if self.kind is not OperandKind.SREG:
            raise ValueError("not a special register operand")
        return SPECIAL_REGISTERS[self.value]

    def __str__(self) -> str:
        if self.kind is OperandKind.REG:
            return f"r{self.value}"
        if self.kind is OperandKind.PRED:
            return f"p{self.value}"
        if self.kind is OperandKind.IMM:
            return f"0x{self.value:08x}"
        if self.kind is OperandKind.SREG:
            return self.sreg_name
        if self.offset:
            return f"[r{self.value}+{self.offset}]"
        return f"[r{self.value}]"


@dataclass(frozen=True)
class PredicateGuard:
    """``@pN`` / ``@!pN`` guard in front of an instruction."""

    index: int
    negated: bool = False

    def __str__(self) -> str:
        return f"@{'!' if self.negated else ''}p{self.index}"


@dataclass(frozen=True)
class Instruction:
    """One decoded warp instruction.

    Attributes:
        opcode: the operation.
        dst: destination operand (REG for arithmetic/loads, PRED for setp,
            ``None`` for stores/control/sync).
        srcs: value source operands in order.
        guard: optional predicate guard controlling the active mask.
        cmp: comparison operator for setp/fsetp.
        target: branch-target pc (filled by the assembler for ``bra``).
        pc: position in the program's instruction list.
    """

    opcode: Opcode
    dst: Optional[Operand] = None
    srcs: Tuple[Operand, ...] = ()
    guard: Optional[PredicateGuard] = None
    cmp: Optional[CmpOp] = None
    target: int = -1
    pc: int = -1
    #: selp reads an extra predicate source; setp writes this predicate.
    pred_src: Optional[int] = None

    @property
    def op_class(self) -> OpClass:
        return op_class(self.opcode)

    @property
    def space(self) -> Optional[MemSpace]:
        return mem_space(self.opcode)

    @property
    def is_branch(self) -> bool:
        return self.opcode is Opcode.BRA

    @property
    def is_barrier(self) -> bool:
        return self.opcode is Opcode.BAR

    @property
    def is_exit(self) -> bool:
        return self.opcode is Opcode.EXIT

    @property
    def writes_register(self) -> bool:
        return self.dst is not None and self.dst.kind is OperandKind.REG

    @property
    def writes_predicate(self) -> bool:
        return self.dst is not None and self.dst.kind is OperandKind.PRED

    def source_registers(self) -> Tuple[int, ...]:
        """Logical register indices read by this instruction (incl. address bases)."""
        regs = []
        for src in self.srcs:
            if src.kind in (OperandKind.REG, OperandKind.ADDR):
                regs.append(src.value)
        return tuple(regs)

    def source_predicates(self) -> Tuple[int, ...]:
        preds = []
        if self.guard is not None:
            preds.append(self.guard.index)
        if self.pred_src is not None and self.opcode is Opcode.SELP:
            preds.append(self.pred_src)
        for src in self.srcs:
            if src.kind is OperandKind.PRED:
                preds.append(src.value)
        return tuple(preds)

    def __str__(self) -> str:
        parts = []
        if self.guard is not None:
            parts.append(str(self.guard))
        mnemonic = self.opcode.value
        if self.cmp is not None:
            mnemonic = f"{mnemonic}.{self.cmp.value}"
        parts.append(mnemonic)
        operands = []
        if self.dst is not None:
            operands.append(str(self.dst))
        operands.extend(str(s) for s in self.srcs)
        if self.opcode is Opcode.SELP and self.pred_src is not None:
            operands.append(f"p{self.pred_src}")
        if self.opcode is Opcode.BRA:
            operands.append(f"@{self.target}")
        text = parts[0] if len(parts) == 1 else " ".join(parts)
        if operands:
            text = f"{text} " + ", ".join(operands)
        return text
