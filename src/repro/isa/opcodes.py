"""Opcode, operation-class, comparison, and memory-space enumerations.

The opcode set mirrors the subset of PTXplus the WIR paper's evaluation
exercises.  Every opcode carries a functional class that determines which
execution pipeline processes it (two SP pipelines, one SFU pipeline, one
memory pipeline) and whether the WIR reuse machinery may consider it.
"""

from __future__ import annotations

import enum


class OpClass(enum.Enum):
    """Functional classes used for pipeline selection and energy accounting."""

    INT = "int"          # integer ALU, SP pipeline
    FP = "fp"            # single-precision ALU, SP pipeline
    SFU = "sfu"          # special function unit pipeline
    LOAD = "load"        # memory pipeline, register destination
    STORE = "store"      # memory pipeline, no register destination
    CONTROL = "control"  # branches, exit
    SYNC = "sync"        # barriers / fences
    PRED = "pred"        # predicate-producing compares
    NOP = "nop"


class MemSpace(enum.Enum):
    """Address spaces of the simulated memory system."""

    GLOBAL = "global"
    SHARED = "shared"
    CONST = "const"
    PARAM = "param"
    LOCAL = "local"

    @property
    def writable(self) -> bool:
        """Whether stores are architecturally allowed in this space."""
        return self in (MemSpace.GLOBAL, MemSpace.SHARED, MemSpace.LOCAL)


class CmpOp(enum.Enum):
    """Comparison operators accepted by ``setp``."""

    EQ = "eq"
    NE = "ne"
    LT = "lt"
    LE = "le"
    GT = "gt"
    GE = "ge"


class Opcode(enum.Enum):
    """All warp instruction opcodes understood by the simulator.

    The enum value is the assembly mnemonic (memory opcodes are written with
    a space suffix in assembly, e.g. ``ld.global``; the space is part of the
    mnemonic string here).
    """

    # --- integer arithmetic (SP pipeline) ---
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    MULHI = "mulhi"
    MAD = "mad"
    DIV = "div"
    REM = "rem"
    MIN = "min"
    MAX = "max"
    ABS = "abs"
    NEG = "neg"
    AND = "and"
    OR = "or"
    XOR = "xor"
    NOT = "not"
    SHL = "shl"
    SHR = "shr"
    MOV = "mov"
    SELP = "selp"
    CVT_F2I = "cvt.f2i"
    CVT_I2F = "cvt.i2f"

    # --- floating point (SP pipeline) ---
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FMAD = "fmad"
    FMIN = "fmin"
    FMAX = "fmax"
    FABS = "fabs"
    FNEG = "fneg"

    # --- special function unit ---
    RCP = "rcp"
    FDIV = "fdiv"
    SQRT = "sqrt"
    RSQRT = "rsqrt"
    SIN = "sin"
    COS = "cos"
    EX2 = "ex2"
    LG2 = "lg2"

    # --- predicates ---
    SETP = "setp"
    FSETP = "fsetp"

    # --- memory ---
    LD_GLOBAL = "ld.global"
    LD_SHARED = "ld.shared"
    LD_CONST = "ld.const"
    LD_PARAM = "ld.param"
    LD_LOCAL = "ld.local"
    ST_GLOBAL = "st.global"
    ST_SHARED = "st.shared"
    ST_LOCAL = "st.local"

    # --- control ---
    BRA = "bra"
    EXIT = "exit"
    BAR = "bar.sync"
    MEMBAR = "membar"
    NOP = "nop"


_INT_OPS = frozenset({
    Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.MULHI, Opcode.MAD, Opcode.DIV,
    Opcode.REM, Opcode.MIN, Opcode.MAX, Opcode.ABS, Opcode.NEG, Opcode.AND,
    Opcode.OR, Opcode.XOR, Opcode.NOT, Opcode.SHL, Opcode.SHR, Opcode.MOV,
    Opcode.SELP, Opcode.CVT_F2I, Opcode.CVT_I2F,
})
_FP_OPS = frozenset({
    Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FMAD, Opcode.FMIN,
    Opcode.FMAX, Opcode.FABS, Opcode.FNEG,
})
_SFU_OPS = frozenset({
    Opcode.RCP, Opcode.FDIV, Opcode.SQRT, Opcode.RSQRT, Opcode.SIN,
    Opcode.COS, Opcode.EX2, Opcode.LG2,
})
_LOAD_OPS = frozenset({
    Opcode.LD_GLOBAL, Opcode.LD_SHARED, Opcode.LD_CONST, Opcode.LD_PARAM,
    Opcode.LD_LOCAL,
})
_STORE_OPS = frozenset({Opcode.ST_GLOBAL, Opcode.ST_SHARED, Opcode.ST_LOCAL})
_PRED_OPS = frozenset({Opcode.SETP, Opcode.FSETP})
_CONTROL_OPS = frozenset({Opcode.BRA, Opcode.EXIT})
_SYNC_OPS = frozenset({Opcode.BAR, Opcode.MEMBAR})

_MEM_SPACE = {
    Opcode.LD_GLOBAL: MemSpace.GLOBAL,
    Opcode.LD_SHARED: MemSpace.SHARED,
    Opcode.LD_CONST: MemSpace.CONST,
    Opcode.LD_PARAM: MemSpace.PARAM,
    Opcode.LD_LOCAL: MemSpace.LOCAL,
    Opcode.ST_GLOBAL: MemSpace.GLOBAL,
    Opcode.ST_SHARED: MemSpace.SHARED,
    Opcode.ST_LOCAL: MemSpace.LOCAL,
}

# Number of register source operands (excluding address operands which are
# register+immediate pairs, and excluding the selp predicate source).
_ARITY = {
    Opcode.ADD: 2, Opcode.SUB: 2, Opcode.MUL: 2, Opcode.MULHI: 2,
    Opcode.MAD: 3, Opcode.DIV: 2, Opcode.REM: 2, Opcode.MIN: 2,
    Opcode.MAX: 2, Opcode.ABS: 1, Opcode.NEG: 1, Opcode.AND: 2,
    Opcode.OR: 2, Opcode.XOR: 2, Opcode.NOT: 1, Opcode.SHL: 2,
    Opcode.SHR: 2, Opcode.MOV: 1, Opcode.SELP: 2, Opcode.CVT_F2I: 1,
    Opcode.CVT_I2F: 1,
    Opcode.FADD: 2, Opcode.FSUB: 2, Opcode.FMUL: 2, Opcode.FMAD: 3,
    Opcode.FMIN: 2, Opcode.FMAX: 2, Opcode.FABS: 1, Opcode.FNEG: 1,
    Opcode.RCP: 1, Opcode.FDIV: 2, Opcode.SQRT: 1, Opcode.RSQRT: 1,
    Opcode.SIN: 1, Opcode.COS: 1, Opcode.EX2: 1, Opcode.LG2: 1,
    Opcode.SETP: 2, Opcode.FSETP: 2,
    Opcode.LD_GLOBAL: 0, Opcode.LD_SHARED: 0, Opcode.LD_CONST: 0,
    Opcode.LD_PARAM: 0, Opcode.LD_LOCAL: 0,
    Opcode.ST_GLOBAL: 1, Opcode.ST_SHARED: 1, Opcode.ST_LOCAL: 1,
    Opcode.BRA: 0, Opcode.EXIT: 0, Opcode.BAR: 0, Opcode.MEMBAR: 0,
    Opcode.NOP: 0,
}


def op_class(opcode: Opcode) -> OpClass:
    """Return the functional class of *opcode*."""
    if opcode in _INT_OPS:
        return OpClass.INT
    if opcode in _FP_OPS:
        return OpClass.FP
    if opcode in _SFU_OPS:
        return OpClass.SFU
    if opcode in _LOAD_OPS:
        return OpClass.LOAD
    if opcode in _STORE_OPS:
        return OpClass.STORE
    if opcode in _PRED_OPS:
        return OpClass.PRED
    if opcode in _CONTROL_OPS:
        return OpClass.CONTROL
    if opcode in _SYNC_OPS:
        return OpClass.SYNC
    return OpClass.NOP


def mem_space(opcode: Opcode) -> MemSpace | None:
    """Return the address space a memory opcode targets, else ``None``."""
    return _MEM_SPACE.get(opcode)


def source_arity(opcode: Opcode) -> int:
    """Number of value source operands the opcode expects."""
    return _ARITY[opcode]


def is_load(opcode: Opcode) -> bool:
    return opcode in _LOAD_OPS


def is_store(opcode: Opcode) -> bool:
    return opcode in _STORE_OPS


def is_reuse_candidate(opcode: Opcode) -> bool:
    """Whether the WIR reuse machinery may consider this opcode.

    Per the paper, control-flow instructions, barriers, stores, and
    predicate-producing compares never reuse; arithmetic, SFU, and load
    instructions with a warp-register destination may.  ``selp`` is excluded
    because its result depends on a predicate register that the reuse-buffer
    tag does not capture.
    """
    if opcode is Opcode.SELP:
        return False
    cls = op_class(opcode)
    return cls in (OpClass.INT, OpClass.FP, OpClass.SFU, OpClass.LOAD)


# Mnemonic -> Opcode lookup used by the assembler.
MNEMONICS = {op.value: op for op in Opcode}
