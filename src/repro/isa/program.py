"""Assembled kernel programs: instruction list, CFG, reconvergence points.

Reconvergence for divergent branches follows the classic immediate
post-dominator (PDOM) scheme used by GPGPU-Sim: the assembler builds the
control-flow graph over basic blocks and computes, for every branch, the pc
of its immediate post-dominator.  The SIMT stack reconverges diverged warp
fragments at that pc.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode


#: Sentinel pc used as the reconvergence point of the whole kernel.
EXIT_PC = -1


@dataclass
class Program:
    """A fully assembled kernel.

    Attributes:
        name: kernel name (used in reports).
        instructions: the instruction list; ``instructions[i].pc == i``.
        labels: label name -> pc mapping retained for debugging.
        reconvergence: branch pc -> immediate post-dominator pc.
    """

    name: str
    instructions: List[Instruction]
    labels: Dict[str, int] = field(default_factory=dict)
    reconvergence: Dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.reconvergence:
            self.reconvergence = compute_reconvergence(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def __getitem__(self, pc: int) -> Instruction:
        return self.instructions[pc]

    @property
    def num_logical_registers(self) -> int:
        """Highest logical register index used, plus one."""
        highest = -1
        for inst in self.instructions:
            if inst.writes_register:
                highest = max(highest, inst.dst.value)
            for reg in inst.source_registers():
                highest = max(highest, reg)
        return highest + 1

    def reconvergence_pc(self, branch_pc: int) -> int:
        """Reconvergence pc for the branch at *branch_pc*."""
        return self.reconvergence[branch_pc]

    def disassemble(self) -> str:
        """Reassemblable source text (inverse of :func:`assemble`).

        ``Instruction.__str__`` renders branches with their resolved pc
        (``bra @5``), which the assembler rejects — it only accepts labels.
        Disassembly synthesises a ``L<pc>`` label at every branch-target pc
        (including the one-past-the-end target of a branch to program end)
        and emits the label form.  Reassembling the text yields a program
        whose instruction list compares equal to this one; only the label
        *names* may differ from the original source.
        """
        targets = {inst.target for inst in self.instructions if inst.is_branch}
        label_of = {pc: f"L{pc}" for pc in sorted(targets)}
        lines = [f"// {self.name} (disassembly)"]
        for inst in self.instructions:
            if inst.pc in label_of:
                lines.append(f"{label_of[inst.pc]}:")
            text = str(inst)
            if inst.is_branch:
                head, _, _ = text.rpartition(" ")
                text = f"{head} {label_of[inst.target]}"
            lines.append(f"    {text}")
        end_pc = len(self.instructions)
        if end_pc in label_of:
            lines.append(f"{label_of[end_pc]}:")
        return "\n".join(lines) + "\n"

    def listing(self) -> str:
        """Human-readable disassembly with pcs and reconvergence annotations."""
        pc_to_label = {pc: name for name, pc in self.labels.items()}
        lines = [f"// kernel {self.name}"]
        for inst in self.instructions:
            if inst.pc in pc_to_label:
                lines.append(f"{pc_to_label[inst.pc]}:")
            note = ""
            if inst.is_branch:
                rpc = self.reconvergence.get(inst.pc, EXIT_PC)
                note = f"    // reconverge @{rpc}"
            lines.append(f"  {inst.pc:4d}: {inst}{note}")
        return "\n".join(lines)


def basic_blocks(instructions: List[Instruction]) -> List[Tuple[int, int]]:
    """Partition *instructions* into basic blocks.

    Returns a list of ``(start_pc, end_pc_exclusive)`` tuples in program
    order.  Block leaders are: pc 0, branch targets, and instructions
    following a branch or exit.
    """
    n = len(instructions)
    leaders = {0}
    for inst in instructions:
        if inst.is_branch:
            leaders.add(inst.target)
            if inst.pc + 1 < n:
                leaders.add(inst.pc + 1)
        elif inst.is_exit and inst.pc + 1 < n:
            leaders.add(inst.pc + 1)
    ordered = sorted(pc for pc in leaders if 0 <= pc < n)
    blocks = []
    for i, start in enumerate(ordered):
        end = ordered[i + 1] if i + 1 < len(ordered) else n
        blocks.append((start, end))
    return blocks


def compute_reconvergence(instructions: List[Instruction]) -> Dict[int, int]:
    """Compute the immediate post-dominator pc for every branch.

    Builds the CFG over basic blocks, adds a virtual exit node, and runs
    :func:`networkx.immediate_dominators` on the reversed graph.  The
    reconvergence point of a branch is the first pc of the immediate
    post-dominator block of the block ending with that branch; branches whose
    post-dominator is the virtual exit reconverge at :data:`EXIT_PC`.
    """
    if not instructions:
        return {}
    blocks = basic_blocks(instructions)
    start_of_block = {}
    block_of_pc = {}
    for idx, (start, end) in enumerate(blocks):
        start_of_block[idx] = start
        for pc in range(start, end):
            block_of_pc[pc] = idx

    virtual_exit = len(blocks)
    graph = nx.DiGraph()
    graph.add_nodes_from(range(len(blocks) + 1))
    for idx, (start, end) in enumerate(blocks):
        last = instructions[end - 1]
        if last.is_branch:
            graph.add_edge(idx, block_of_pc[last.target])
            if last.guard is not None and end < len(instructions):
                # Predicated branch: fall-through successor exists.
                graph.add_edge(idx, block_of_pc[end])
            elif last.guard is None:
                pass  # unconditional branch has only the target edge
        elif last.is_exit:
            graph.add_edge(idx, virtual_exit)
        elif end < len(instructions):
            graph.add_edge(idx, block_of_pc[end])
        else:
            graph.add_edge(idx, virtual_exit)
        # A predicated exit also falls through.
        if last.is_exit and last.guard is not None and end < len(instructions):
            graph.add_edge(idx, block_of_pc[end])

    # Any block with no path to exit (malformed program) gets an edge so the
    # dominator computation stays well-defined.
    for idx in range(len(blocks)):
        if not nx.has_path(graph, idx, virtual_exit):
            graph.add_edge(idx, virtual_exit)

    ipdom = nx.immediate_dominators(graph.reverse(copy=False), virtual_exit)

    reconv: Dict[int, int] = {}
    for idx, (start, end) in enumerate(blocks):
        last = instructions[end - 1]
        if not last.is_branch:
            continue
        pd = ipdom.get(idx, virtual_exit)
        if pd == idx:
            pd = virtual_exit
        reconv[last.pc] = EXIT_PC if pd == virtual_exit else start_of_block[pd]
    return reconv
