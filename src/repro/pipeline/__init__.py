"""Declarative WIR pipeline stages shared by both execution engines.

The paper's microarchitecture is a fixed pipeline — select → rename →
reuse probe → operand read → execute → allocate/verify →
writeback/retire — and this package is its single home (DESIGN.md §13).
Each stage is a :class:`~repro.pipeline.base.Stage` subclass with declared
inputs/outputs, inherited checkpoint hooks, and stat/tracer hooks;
:func:`~repro.pipeline.spec.build_pipeline` composes them into the
:class:`~repro.pipeline.spec.PipelineSpec` both executors consume.
"""

from repro.pipeline.base import STAGE_REGISTRY, Stage, register_stage

# Importing the stage modules populates STAGE_REGISTRY in pipeline order:
# frontend declares the select stage, stages the six backend stages.
from repro.pipeline import frontend as _frontend  # noqa: F401
from repro.pipeline import stages as _stages  # noqa: F401

from repro.pipeline.spec import (
    EXTERNAL_INPUTS,
    PipelineSpec,
    PipelineWiringError,
    build_pipeline,
)

__all__ = [
    "EXTERNAL_INPUTS",
    "PipelineSpec",
    "PipelineWiringError",
    "STAGE_REGISTRY",
    "Stage",
    "build_pipeline",
    "register_stage",
]
