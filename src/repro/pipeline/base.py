"""Typed pipeline-stage contract shared by both execution engines.

A :class:`Stage` is one step of the WIR pipeline — rename, reuse probe,
operand read, execute, allocate/verify, writeback/retire — expressed as a
small class with a *declared* dataflow interface:

* ``inputs`` / ``outputs`` name the values the stage consumes and produces.
  :meth:`repro.pipeline.spec.PipelineSpec.validate` checks at composition
  time that every input is produced by an earlier stage (or is an external
  input of the pipeline), so a mis-ordered or mis-wired variant fails fast
  instead of silently computing garbage.
* ``STATE_FIELDS`` names the attributes that constitute the stage's
  architectural state.  The base class derives :meth:`state_dict` /
  :meth:`load_state` from the declaration, so no stage hand-writes
  checkpoint plumbing — and list-valued fields are restored *in place*,
  because sibling stages cache direct references to them (DESIGN.md §12).
* Stat hooks: :meth:`counter` registers a stage-owned counter under the
  SM's ``stage.<name>.*`` namespace and returns the raw
  :class:`~repro.stats.registry.Counter` handle (preloaded access — the
  one-helper replacement for the per-callsite ``_stats`` lookups the
  vector fast path used to open-code).  ``stat_paths`` additionally lists
  pre-existing SM stats the stage updates, for ``repro pipeline show``.
* Tracer hooks: :meth:`attach_tracer` installs the per-SM trace view;
  stages must treat ``self.tracer is None`` as "observability off" and
  emit nothing (observer purity — a traced run is bit-identical to an
  untraced one; the conformance suite enforces this).

Stages are constructed against a live :class:`~repro.sim.smcore.SMCore`
and may cache references to core structures (register file, scoreboard,
stat counters) — that caching is exactly how the vector engine's fused
implementations keep their speed while sharing one decision path with the
scalar oracle.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Type

from repro.stats import StatGroup
from repro.stats.registry import Counter

#: Registered stage classes in pipeline order (declaration order of the
#: ``@register_stage`` decorators; :func:`repro.pipeline.spec.build_pipeline`
#: instantiates them in this order).
STAGE_REGISTRY: Dict[str, Type["Stage"]] = {}


def register_stage(cls: Type["Stage"]) -> Type["Stage"]:
    """Class decorator adding a concrete stage to :data:`STAGE_REGISTRY`.

    Validates the declaration eagerly (unique name, tuple-typed dataflow
    declarations) so a malformed stage is an import error, not a latent
    composition bug.
    """
    if not cls.name or cls.name == Stage.name:
        raise TypeError(f"{cls.__name__} must declare a unique 'name'")
    if cls.name in STAGE_REGISTRY:
        raise TypeError(f"duplicate stage name {cls.name!r}")
    for attr in ("inputs", "outputs", "STATE_FIELDS", "stat_paths"):
        if not isinstance(getattr(cls, attr), tuple):
            raise TypeError(f"{cls.__name__}.{attr} must be a tuple")
    STAGE_REGISTRY[cls.name] = cls
    return cls


class Stage:
    """Base class for one pipeline stage (see module docstring)."""

    #: Unique stage name; also the stat namespace (``sm*.stage.<name>.*``).
    name: str = "stage"
    #: Dataflow values consumed; each must be an external input or an
    #: output of an earlier stage.
    inputs: Tuple[str, ...] = ()
    #: Dataflow values produced.
    outputs: Tuple[str, ...] = ()
    #: Attribute names serialized by the inherited ``state_dict``.
    STATE_FIELDS: Tuple[str, ...] = ()
    #: Pre-existing SM stat paths this stage updates (documentation for
    #: ``repro pipeline show``; stage-owned counters are discovered live).
    stat_paths: Tuple[str, ...] = ()

    def __init__(self, core, stats_root: StatGroup) -> None:
        self.core = core
        self.config = core.config
        self.unit = core.unit
        #: Per-SM trace view; ``None`` keeps the stage observer-silent.
        self.tracer = None
        #: This stage's subtree of the SM's ``stage`` stats group.
        self.stats = stats_root.group(self.name)

    # ------------------------------------------------------------- composition

    def bind(self, spec) -> None:
        """Resolve cross-stage references after every stage is built.

        Called once by :func:`~repro.pipeline.spec.build_pipeline` with the
        composed :class:`~repro.pipeline.spec.PipelineSpec`; stages override
        it to cache bound methods of sibling stages (the execute stage binds
        the operand-read stage's bank-key plan, the select stage binds the
        execute stage's pipeline-availability probe, ...).
        """

    # -------------------------------------------------------------- stat hooks

    def counter(self, name: str) -> Counter:
        """Register (or fetch) a stage-owned counter and return the raw
        handle.  The counter lives at ``sm*.stage.<stage-name>.<name>`` in
        the run's stats registry; updating ``handle.value`` directly is the
        supported hot-path idiom for both engines."""
        return self.stats.add_counter(name)

    # ------------------------------------------------------------ tracer hooks

    def attach_tracer(self, view) -> None:
        """Install the SM's trace view (observer only; never timing)."""
        self.tracer = view

    # ---------------------------------------------------------- checkpointing

    def state_dict(self) -> dict:
        """Snapshot of the declared ``STATE_FIELDS`` (plain data)."""
        state = {}
        for field in self.STATE_FIELDS:
            value = getattr(self, field)
            state[field] = list(value) if isinstance(value, list) else value
        return state

    def load_state(self, state: dict) -> None:
        """Restore :meth:`state_dict` output.

        List-valued fields are written in place — sibling stages and the
        SM core hold direct references to them (e.g. the select stage reads
        the execute stage's ``sp_free`` every pick), so a restore must
        mutate, never replace.
        """
        for field in self.STATE_FIELDS:
            value = state[field]
            current = getattr(self, field)
            if isinstance(current, list):
                current[:] = value
            else:
                setattr(self, field, value)

    # ------------------------------------------------------------- description

    def binding(self) -> str:
        """How the two executors drive this stage (for ``pipeline show``)."""
        return "shared"

    def describe(self) -> dict:
        """Plain-data description of the composed stage (CLI / tests)."""
        own = sorted(f"stage.{self.name}.{stat}" for stat in self.stats.stats)
        return {
            "name": self.name,
            "inputs": list(self.inputs),
            "outputs": list(self.outputs),
            "state_fields": list(self.STATE_FIELDS),
            "stats": own + list(self.stat_paths),
            "binding": self.binding(),
        }

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return (f"{type(self).__name__}({self.name!r}, "
                f"in={list(self.inputs)}, out={list(self.outputs)})")
