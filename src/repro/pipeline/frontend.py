"""Warp-select stage: scheduler arbitration and the ready predicate.

This is the stage the two executors bind most differently (DESIGN.md §8,
§13): the scalar oracle walks :meth:`SelectStage.ready` through
``WarpScheduler.pick`` — boring, layered, obviously correct — while the
vector engine binds :meth:`SelectStage.ready_fast` (inlined hazard scan
against cached instruction metadata plus the ``sb_wait`` scoreboard memo)
and, under GTO, :meth:`SelectStage.fast_pick`, which fuses pick + ready
into one min-age loop.  All three are decision-identical; the differential
matrix in ``tests/test_exec_differential.py`` proves it.

The stage caches direct references to the core's slot-state lists at
construction; ``SMCore.load_state`` therefore restores those lists in
place, never replacing them.
"""

from __future__ import annotations

from typing import Optional

from repro.isa.opcodes import OpClass
from repro.pipeline.base import Stage, register_stage
from repro.sim.scheduler import WarpScheduler

#: Wake-memo sentinel: every blocked slot waits on an *event* (scoreboard
#: release, retry wakeup, barrier, dispatch), each of which resets the memo.
_NEVER = 1 << 62


@register_stage
class SelectStage(Stage):
    """Pick the issuing warp slot per scheduler (GTO/LRR arbitration)."""

    name = "select"
    inputs = ("warps", "scoreboard")
    outputs = ("slot",)
    stat_paths = ("core.issued",)

    def __init__(self, core, stats_root) -> None:
        super().__init__(core, stats_root)
        self._instructions = core.program.instructions
        self._warps = core.warps
        self._waiting = core._warp_waiting
        self._blocked_until = core._warp_blocked_until
        self._sb_wait = core._sb_wait
        self._sched_of_slot = core._sched_of_slot
        self._scoreboard = core.scoreboard
        #: Chosen per engine by the core: ``ready_fast`` (vector) or
        #: ``ready`` (scalar); ``fast_pick`` additionally replaces
        #: ``scheduler.pick`` under vector + GTO.
        self.ready_impl = self.ready_fast if core._fast_path else self.ready

    def bind(self, spec) -> None:
        self._execute = spec.execute
        self._sp_free = spec.execute.sp_free

    def binding(self) -> str:
        return ("fused fast_pick/ready_fast" if self.core._fast_path
                else "scheduler.pick(ready)")

    # ----------------------------------------------------------- ready probes

    def ready(self, slot: int) -> bool:
        """Scalar-oracle issue gate (layered, one check per line)."""
        core = self.core
        warp = self._warps[slot]
        if warp is None or warp.exited or warp.at_barrier or self._waiting[slot]:
            return False
        if self._blocked_until[slot] > core.cycle:
            return False
        inst = warp.next_instruction()
        if inst is None:
            return False
        if not self._scoreboard.can_issue(slot, inst):
            return False
        return self._execute.available(inst.op_class, core.cycle)

    def ready_fast(self, slot: int) -> bool:
        """Vector-engine variant of :meth:`ready` — same decision, fewer
        Python hops.

        The scheduler scan calls this for every candidate slot every cycle
        (it dominates scalar profiles), so the property/method chain of
        ``Warp.next_instruction`` and the per-call hazard loops are inlined
        against the cached instruction metadata.  A non-exited warp's pc is
        always in range (every pc change runs ``Warp._reconverge``), so the
        direct instruction-list index is safe.
        """
        warp = self._warps[slot]
        if (warp is None or warp.exited or warp.at_barrier
                or self._waiting[slot] or self._sb_wait[slot]):
            return False
        cycle = self.core.cycle
        if self._blocked_until[slot] > cycle:
            return False
        inst = self._instructions[warp.stack[-1].pc]
        regs = self._scoreboard._pending_regs[slot]
        if regs and not regs.isdisjoint(inst.sb_regs):
            self._sb_wait[slot] = True
            self._sched_of_slot[slot].scannable -= 1
            return False
        preds = self._scoreboard._pending_preds[slot]
        if preds and not preds.isdisjoint(inst.sb_preds):
            self._sb_wait[slot] = True
            self._sched_of_slot[slot].scannable -= 1
            return False
        cls = inst.op_class
        if cls is OpClass.INT or cls is OpClass.FP or cls is OpClass.PRED:
            return min(self._sp_free) <= cycle
        if cls is OpClass.SFU:
            return self._execute.sfu_free <= cycle
        if cls is OpClass.LOAD or cls is OpClass.STORE:
            return self._execute.mem_free <= cycle
        return True

    # ------------------------------------------------------------ arbitration

    def fast_pick(self, scheduler: WarpScheduler) -> Optional[int]:
        """Fused GTO arbitration (vector engine): ``scheduler.pick`` with
        the :meth:`ready_fast` body inlined into the min-age scan.

        Decision-identical to ``scheduler.pick(self.ready_fast)``: the
        greedy probe of the last-issued slot runs first, then the oldest
        ready resident slot wins — ``scheduler._resident`` is kept
        age-ascending (see ``note_dispatch``), so the scan returns the
        *first* ready slot it meets instead of tracking a min-age best.
        Pipeline availability is hoisted out of the loop —
        ``sp_free``/``sfu_free``/``mem_free`` only move when an issue
        executes, i.e. after this pick returns.

        A failed scan records ``scheduler.wake_memo``: the earliest cycle a
        blocked slot can become ready by time alone (control-hazard expiry
        or a pipeline going free).  Slots blocked on *events* (scoreboard,
        pending retry, barrier, empty slot) contribute no candidate — each
        such event resets the memo to 0 at its source.  ``SMCore.tick``
        skips the scan entirely below the memo, which is safe because a
        wake that is merely *early* re-runs the scan and re-memoizes.
        """
        if scheduler.scannable == 0:
            # Every resident slot is scoreboard-blocked; nothing to scan.
            scheduler.wake_memo = _NEVER
            return None
        last = scheduler._last_issued
        if (last is not None and not self._sb_wait[last]
                and self.ready_fast(last)):
            if scheduler.on_pick is not None:
                scheduler.on_pick(scheduler.scheduler_id, last)
            return last

        cycle = self.core.cycle
        warps = self._warps
        waiting = self._waiting
        blocked_until = self._blocked_until
        sb_wait = self._sb_wait
        pend_regs = self._scoreboard._pending_regs
        pend_preds = self._scoreboard._pending_preds
        instructions = self._instructions
        execute = self._execute
        sp_min = min(self._sp_free)
        sp_ok = sp_min <= cycle
        sfu_free = execute.sfu_free
        sfu_ok = sfu_free <= cycle
        mem_free = execute.mem_free
        mem_ok = mem_free <= cycle

        wake = _NEVER
        for slot in scheduler._resident:  # age-ascending: first ready wins
            if sb_wait[slot] or waiting[slot]:
                continue
            warp = warps[slot]
            if warp is None or warp.exited or warp.at_barrier:
                continue
            blocked = blocked_until[slot]
            if blocked > cycle:
                if blocked < wake:
                    wake = blocked
                continue
            inst = instructions[warp.stack[-1].pc]
            regs = pend_regs[slot]
            if regs and not regs.isdisjoint(inst.sb_regs):
                sb_wait[slot] = True
                scheduler.scannable -= 1
                continue
            preds = pend_preds[slot]
            if preds and not preds.isdisjoint(inst.sb_preds):
                sb_wait[slot] = True
                scheduler.scannable -= 1
                continue
            cls = inst.op_class
            if cls is OpClass.INT or cls is OpClass.FP or cls is OpClass.PRED:
                if not sp_ok:
                    if sp_min < wake:
                        wake = sp_min
                    continue
            elif cls is OpClass.SFU:
                if not sfu_ok:
                    if sfu_free < wake:
                        wake = sfu_free
                    continue
            elif cls is OpClass.LOAD or cls is OpClass.STORE:
                if not mem_ok:
                    if mem_free < wake:
                        wake = mem_free
                    continue
            scheduler._last_issued = slot
            if scheduler.on_pick is not None:
                scheduler.on_pick(scheduler.scheduler_id, slot)
            return slot
        scheduler.wake_memo = wake
        return None
