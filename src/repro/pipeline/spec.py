"""Pipeline composition: wire registered stages into one validated spec.

:func:`build_pipeline` instantiates every class in
:data:`~repro.pipeline.base.STAGE_REGISTRY` (in registration order — the
paper's pipeline order), runs the two-phase bind (construct all, then
resolve cross-stage references), and validates the declared dataflow.  Both
executors consume the result: the scalar oracle walks the stages through
``SMCore``'s event loop, the vector engine calls the same stage objects
through bound-method references cached at SM construction (DESIGN.md §13).
"""

from __future__ import annotations

from typing import Iterable, List

from repro.pipeline.base import STAGE_REGISTRY, Stage
from repro.stats import StatGroup

#: Dataflow values produced outside the stage pipeline: the fetch/decode
#: front end supplies the instruction stream and the architectural warp
#: contexts; the event loop supplies time.
EXTERNAL_INPUTS = frozenset({"warps", "scoreboard", "inst", "cycle"})


class PipelineWiringError(Exception):
    """A stage consumes a value no earlier stage (or external input) produces."""


class PipelineSpec:
    """An ordered, validated composition of constructed stages.

    Stages are reachable by attribute (``spec.reuse_probe``) and by
    iteration; :meth:`state_dict` / :meth:`load_state` aggregate the
    stages' inherited checkpoint hooks, so the SM core serializes the whole
    pipeline as one sub-document.
    """

    def __init__(self, stages: Iterable[Stage], stats: StatGroup) -> None:
        self.stages: List[Stage] = list(stages)
        #: The shared ``stage`` stats subtree (adopted into the SM's tree).
        self.stats = stats
        self.by_name = {}
        for stage in self.stages:
            self.by_name[stage.name] = stage
            setattr(self, stage.name, stage)

    def validate(self) -> None:
        """Check every declared input is produced upstream (fail fast)."""
        produced = set(EXTERNAL_INPUTS)
        for stage in self.stages:
            missing = [name for name in stage.inputs if name not in produced]
            if missing:
                raise PipelineWiringError(
                    f"stage {stage.name!r} consumes {missing} but only "
                    f"{sorted(produced)} are produced upstream")
            produced.update(stage.outputs)

    def attach_tracer(self, view) -> None:
        """Install the SM's trace view on every stage (observer only)."""
        for stage in self.stages:
            stage.attach_tracer(view)

    # ---------------------------------------------------------- checkpointing

    def state_dict(self) -> dict:
        """Per-stage snapshots (stages without state are omitted)."""
        return {stage.name: stage.state_dict()
                for stage in self.stages if stage.STATE_FIELDS}

    def load_state(self, state: dict) -> None:
        for stage in self.stages:
            if stage.STATE_FIELDS:
                stage.load_state(state[stage.name])

    # ------------------------------------------------------------- description

    def describe(self) -> List[dict]:
        """Stage descriptions in pipeline order (``repro pipeline show``)."""
        return [stage.describe() for stage in self.stages]


def build_pipeline(core) -> PipelineSpec:
    """Construct, bind, and validate the stage pipeline for one SM core."""
    stats = StatGroup("stage")
    stages = [cls(core, stats) for cls in STAGE_REGISTRY.values()]
    spec = PipelineSpec(stages, stats)
    for stage in stages:
        stage.bind(spec)
    spec.validate()
    return spec
