"""Concrete WIR pipeline stages (rename → reuse → execute → allocate →
writeback), shared by the scalar oracle and the vector engine.

Each stage owns one step of the paper's pipeline and is bound to a live
:class:`~repro.sim.smcore.SMCore`.  The *decision* logic exists only here —
the SM core routes events and the execution engines supply functional
values, so neither can drift from the other (the PR-4 differential matrix
pins both engines to this one implementation).

Operation order inside each method is load-bearing: reference-count
traffic, register-file scheduling, and event scheduling must happen in
exactly the historical order for cycle-level bit-identity with the seed
simulator.  Treat reorderings as behavioural changes, not cleanups.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.check.errors import ReuseCorruptionError
from repro.core.affine import AFFINE_PRESERVING_OPS, is_affine_value
from repro.core.reuse_buffer import Waiter
from repro.core.wir_unit import IssueDecision
from repro.isa.instruction import Instruction, OperandKind
from repro.isa.opcodes import OpClass, is_load
from repro.pipeline.base import Stage, register_stage
from repro.sim.exec_engine import ExecResult, make_engine
from repro.sim.serde import EV_REUSE_COMMIT, EV_RETIRE, EV_WIR_COMMIT, EV_WRITEBACK
from repro.sim.superblock import SuperblockRuntime
from repro.sim.warp import Warp


def _front_delay(core) -> int:
    """Extra front-of-backend latency from the rename + reuse stages."""
    extra = core.config.wir.extra_pipeline_latency
    return max(1, extra - 2) if core.unit is not None else 1


@register_stage
class RenameStage(Stage):
    """Rename source operands to physical IDs and capture divergence.

    Thin orchestration over the :class:`~repro.core.wir_unit.WIRUnit`
    rename tables: the unit owns the structures (and their checkpoint
    state); this stage owns the per-issue sequencing — fault ticks, the
    interned rename plan, the tracer event, and the Section V-D divergence
    capture that decides the destination's pin-bit treatment downstream.
    """

    name = "rename"
    inputs = ("slot", "inst")
    outputs = ("plan", "src_phys", "tag_descs", "divergent")
    stat_paths = ("wir.rename_reads",)

    def run(
        self, warp: Warp, inst: Instruction, exec_result: ExecResult
    ) -> Tuple[object, Tuple[int, ...], Tuple, bool]:
        unit = self.unit
        if unit.faults is not None:
            unit.faults.tick_structures(unit)
        plan = unit.plan_of(inst)
        src_phys, descs = unit.rename_with_plan(warp, plan)
        if self.tracer is not None and src_phys:
            self.tracer.wir_event(warp.warp_slot, "rename",
                                  {"pc": inst.pc, "srcs": len(src_phys)})
        # Divergent = any of the 32 lanes inactive for this instruction.
        divergent = not bool(exec_result.mask.all())
        return plan, src_phys, descs, divergent


@register_stage
class ReuseProbeStage(Stage):
    """Probe the reuse buffer and act on the outcome.

    :meth:`issue` produces the :class:`IssueDecision` (execute / reuse /
    queued / bypass) for one instruction; :meth:`apply_hit` commits an
    immediate hit, :meth:`make_waiter` parks a warp on a pending entry
    (Section VI-B), and :meth:`wake_queued` finishes the instruction when
    the producer's result lands.  ``stage.reuse_probe.retry_wakeups``
    counts pending-retry wakeups (a subset of ``core.reused``).
    """

    name = "reuse_probe"
    inputs = ("plan", "src_phys", "tag_descs", "divergent")
    outputs = ("decision",)
    stat_paths = ("core.reused", "core.reused_loads", "wir.rb.*")

    def __init__(self, core, stats_root) -> None:
        super().__init__(core, stats_root)
        self._waiting = core._warp_waiting
        self._schedule = core._schedule
        self.front_delay = _front_delay(core)
        counters = core.counters
        self._c_reused = counters.handle("reused")
        self._c_reused_loads = counters.handle("reused_loads")
        self._c_retry_wakeups = self.counter("retry_wakeups")

    def bind(self, spec) -> None:
        self._rename = spec.rename
        self._execute = spec.execute

    # ------------------------------------------------------------ issue probe

    def issue(
        self, warp: Warp, inst: Instruction, exec_result: ExecResult
    ) -> IssueDecision:
        """Rename sources and probe the reuse buffer (both WIR front
        stages; also the re-entry point for pending-retry wakeups)."""
        unit = self.unit
        plan, src_phys, descs, divergent = self._rename.run(warp, inst,
                                                            exec_result)
        if not inst.writes_register:
            return IssueDecision(action="bypass", src_phys=src_phys,
                                 divergent=divergent)
        if not plan.reuse_candidate:
            # Writes a register but never participates in reuse (e.g. selp):
            # it still goes through register allocation at writeback.
            return IssueDecision(action="execute", src_phys=src_phys,
                                 divergent=divergent)

        # Divergent instructions bypass the reuse buffer entirely (V-D).
        if divergent:
            return IssueDecision(action="execute", src_phys=src_phys,
                                 divergent=True)

        load = plan.load
        if load and not unit.load_may_reuse(warp, inst):
            return IssueDecision(action="execute", src_phys=src_phys)

        # Instructions reading special registers must not reuse: %tid et al.
        # are per-warp value vectors that the register-ID tag cannot proxy
        # (two warps share the tag but not the values).  Their *results* are
        # still shared through the VSB, so downstream threadIdx-derived
        # arithmetic — the paper's motivating pattern — reuses normally.
        if plan.warp_dependent:
            return IssueDecision(action="execute", src_phys=src_phys)
        tag = (plan.opcode_index, descs)

        barrier_count = warp.barrier_count
        tbid = unit.entry_tbid(warp, inst)
        outcome, result_reg, index = unit.reuse_buffer.lookup(
            tag,
            is_load=load,
            consumer_barrier_count=barrier_count,
            consumer_tbid=warp.block.block_id & 0xF,
            pending_retry=unit.wir.pending_retry,
            make_waiter=lambda: self.make_waiter(warp, inst, exec_result),
        )
        if outcome == "hit":
            # Transit reference: the result register must survive until this
            # instruction's retire even if the entry is evicted meanwhile.
            unit.refcount.incref(result_reg)
            if self.tracer is not None:
                self.tracer.wir_event(warp.warp_slot, "reuse_hit",
                                      {"pc": inst.pc, "reg": result_reg})
            return IssueDecision(action="reuse", src_phys=src_phys, tag=tag,
                                 result_reg=result_reg, rb_index=index)
        if outcome == "queued":
            if self.tracer is not None:
                self.tracer.wir_event(warp.warp_slot, "reuse_queue",
                                      {"pc": inst.pc, "index": index})
            return IssueDecision(action="queued", src_phys=src_phys, tag=tag,
                                 rb_index=index)

        # Miss: optionally reserve the entry eagerly (pending-retry), else
        # remember the index for the retire-time update.
        reserved = False
        token = -1
        if unit.wir.pending_retry:
            allow = not unit.in_low_register_mode()
            reservation = unit.reuse_buffer.reserve(
                tag, is_load=load, barrier_count=barrier_count, tbid=tbid,
                allow_insert=allow,
            )
            if reservation is not None:
                index, token = reservation
                unit.track_tag_sources(tag, index)
                reserved = True
        if not reserved:
            # The retire-time buffer update will register the source IDs;
            # transit references keep them live until then (the hardware
            # analogue: in-flight instructions count as references).
            for reg in src_phys:
                unit.refcount.incref(reg)
        return IssueDecision(action="execute", src_phys=src_phys, tag=tag,
                             rb_index=index, rb_token=token, reserved=reserved)

    # ------------------------------------------------------------- hit commit

    def apply_hit(
        self, warp: Warp, inst: Instruction, exec_result: ExecResult,
        decision: IssueDecision,
    ) -> None:
        """Immediate reuse hit: bypass the whole backend."""
        core = self.core
        self._c_reused.value += 1
        if inst.op_class is OpClass.LOAD:
            self._c_reused_loads.value += 1
            values = self.unit.physfile.read(decision.result_reg)
            warp.write_reg(inst.dst.value, values, exec_result.mask)
        else:
            # Arithmetic reuse must be value-exact; check against the
            # functionally computed result (a genuine invariant of the design).
            reused = self.unit.physfile.read(decision.result_reg)
            if not np.array_equal(reused, exec_result.result):
                self.reuse_corrupted(
                    warp, inst, exec_result, decision.result_reg,
                    f"arithmetic reuse returned a wrong value for {inst} "
                    f"(pc={inst.pc}, warp slot {warp.warp_slot})",
                )
                return
            warp.write_reg(inst.dst.value, reused, exec_result.mask)
        retire_cycle = core.cycle + self.front_delay + 1
        self._schedule(retire_cycle, EV_REUSE_COMMIT,
                       (warp, inst, decision.result_reg))

    # ---------------------------------------------------------- pending retry

    def make_waiter(
        self, warp: Warp, inst: Instruction, exec_result: ExecResult
    ) -> Waiter:
        """Waiter for the pending-retry queue (Section VI-B)."""
        core = self.core
        self._waiting[warp.warp_slot] = True

        def on_result(result_reg: Optional[int]) -> None:
            self._waiting[warp.warp_slot] = False
            core._sched_of_slot[warp.warp_slot].wake_memo = 0
            if result_reg is not None and not core.wir_quarantined:
                self.wake_queued(warp, inst, exec_result, result_reg)
                core._checker_commit(warp, inst)
                return
            if core.wir_quarantined:
                # Quarantine flushed the queue: take the baseline path.
                self._execute.run(warp, inst, exec_result, None, core.cycle)
                core._checker_commit(warp, inst)
                return
            # The pending entry was evicted before the producer retired:
            # re-enter the reuse stage (it may hit a newer entry, queue
            # again, or finally execute).
            decision = self.issue(warp, inst, exec_result)
            if decision.action == "reuse":
                self.apply_hit(warp, inst, exec_result, decision)
                core._checker_commit(warp, inst)
            elif decision.action != "queued":
                self._execute.run(warp, inst, exec_result, decision,
                                  core.cycle)
                core._checker_commit(warp, inst)

        waiter = Waiter(on_result)
        # Plain-data identity of the waiting instruction, so a checkpoint
        # can externalize the queue entry and a restore can rebuild an
        # equivalent waiter via ``make_waiter`` (DESIGN.md §12).
        waiter.descriptor = (warp, inst, exec_result)
        return waiter

    def wake_queued(
        self, warp: Warp, inst: Instruction, exec_result: ExecResult,
        result_reg: int,
    ) -> None:
        core = self.core
        self._c_reused.value += 1
        self._c_retry_wakeups.value += 1
        if inst.op_class is OpClass.LOAD:
            self._c_reused_loads.value += 1
        # Transit reference until the reuse commit (the entry that woke us
        # could be evicted before our retire fires).
        self.unit.refcount.incref(result_reg)
        values = self.unit.physfile.read(result_reg)
        if inst.op_class is not OpClass.LOAD and not np.array_equal(
            values, exec_result.result
        ):
            self.reuse_corrupted(
                warp, inst, exec_result, result_reg,
                f"pending-retry reuse returned a wrong value for {inst} "
                f"(pc={inst.pc}, warp slot {warp.warp_slot})",
            )
            return
        warp.write_reg(inst.dst.value, values, exec_result.mask)
        # Queued instructions re-probe the buffer and retire a cycle after
        # the producer's result lands.
        self._schedule(core.cycle + 1, EV_REUSE_COMMIT,
                       (warp, inst, result_reg))

    def reuse_corrupted(
        self, warp: Warp, inst: Instruction, exec_result: ExecResult,
        result_reg: int, reason: str,
    ) -> None:
        """A reuse hit delivered a wrong value (impossible without faults).

        Without quarantine enabled this is fatal; with it, the unit is
        quarantined and the instruction falls back to the baseline execute
        path, so the kernel still completes with correct results.
        """
        core = self.core
        err = ReuseCorruptionError(reason)
        if not self.config.wir.quarantine:
            raise err
        # Undo the reuse bookkeeping done before the value check: the reuse
        # count and the transit reference taken at the hit / wakeup.
        self._c_reused.value -= 1
        self.unit.refcount.decref(result_reg)
        core.quarantine_wir(reason)
        self._execute.run(warp, inst, exec_result, None, core.cycle)


@register_stage
class OperandReadStage(Stage):
    """Operand collection: one bank read per distinct register source."""

    name = "operand_read"
    inputs = ("decision", "src_phys")
    outputs = ("read_ready",)
    stat_paths = ("regfile.read_requests", "regfile.read_retries")

    def __init__(self, core, stats_root) -> None:
        super().__init__(core, stats_root)
        self._regfile = core.regfile
        self._affine = core.affine
        self.front_delay = _front_delay(core)

    def source_bank_keys(
        self, warp: Warp, inst: Instruction, decision: Optional[IssueDecision]
    ) -> List[int]:
        """Register-bank keys of the distinct register sources."""
        if decision is not None:
            return sorted(set(decision.src_phys))
        base = warp.warp_slot << 8
        # ``bank_regs`` is the cached sorted distinct source-register tuple;
        # or-ing a constant high part preserves the order.
        return [base | reg for reg in inst.bank_regs]

    def schedule_reads(
        self, warp: Warp, inst: Instruction,
        decision: Optional[IssueDecision], cycle: int,
    ) -> int:
        """Schedule the bank reads; returns the operands-ready cycle."""
        start = cycle + self.front_delay
        read_ready = start
        reg_keys = self.source_bank_keys(warp, inst, decision)
        affine = self._affine
        regfile = self._regfile
        if affine.enabled:
            for key in reg_keys:
                read_ready = max(
                    read_ready,
                    regfile.schedule_read(key, start,
                                          affine=affine.is_affine(key)),
                )
        else:
            for key in reg_keys:
                read_ready = max(read_ready, regfile.schedule_read(key, start))
        return read_ready


@register_stage
class ExecuteStage(Stage):
    """Functional-unit / memory timing plus the functional value source.

    Owns the execution engine (the scalar interpreter or the vector
    engine's compiled kernel closures — DESIGN.md §8) and the backend
    pipeline occupancy counters, which are this stage's checkpoint state.
    :meth:`run` drives one instruction through operand read, FU or memory
    timing, and schedules its writeback event.
    """

    name = "execute"
    inputs = ("inst", "slot", "read_ready")
    outputs = ("exec_result", "exec_ready")
    STATE_FIELDS = ("sp_free", "sfu_free", "mem_free")
    stat_paths = ("core.backend_insts", "core.fu_sp_insts", "core.fu_sp_lanes",
                  "core.fu_sfu_insts", "core.fu_sfu_lanes", "core.mem_insts",
                  "core.store_insts", "core.affine_fu_insts")

    def __init__(self, core, stats_root) -> None:
        super().__init__(core, stats_root)
        config = core.config
        #: Execution engine; ``execute(inst, warp)`` is the functional half
        #: of this stage, bound once (it runs per instruction).
        self.engine = make_engine(config.exec_engine, core.program)
        self.functional = self.engine.execute
        # Backend pipelines: initiation-interval-limited (1 warp inst/cycle).
        self.sp_free = [0] * config.num_sp_pipelines
        self.sfu_free = 0
        self.mem_free = 0
        self._sp_latency = config.sp_latency
        self._sfu_latency = config.sfu_latency
        self._regfile = core.regfile
        self._port = core.port
        self._affine = core.affine
        self._schedule = core._schedule
        self._stall = core.stall
        counters = core.counters
        self._c_backend = counters.handle("backend_insts")
        self._c_fu_sp_insts = counters.handle("fu_sp_insts")
        self._c_fu_sp_lanes = counters.handle("fu_sp_lanes")
        self._c_fu_sfu_insts = counters.handle("fu_sfu_insts")
        self._c_fu_sfu_lanes = counters.handle("fu_sfu_lanes")
        self._c_affine_fu = counters.handle("affine_fu_insts")
        self._c_mem_insts = counters.handle("mem_insts")
        self._c_store_insts = counters.handle("store_insts")
        #: Superblock trace-compilation runtime (DESIGN.md §16), created in
        #: :meth:`bind` (it needs the operand-read stage's front delay).
        self.superblock = None

    def bind(self, spec) -> None:
        self._operand_read = spec.operand_read
        if self.config.exec_engine == "superblock":
            self.superblock = SuperblockRuntime(
                self.core, self, spec.operand_read.front_delay)

    def binding(self) -> str:
        return f"{self.config.exec_engine} engine kernels"

    def available(self, cls: OpClass, cycle: int) -> bool:
        """Is the pipeline for *cls* free at *cycle*? (issue gate)"""
        if cls in (OpClass.INT, OpClass.FP, OpClass.PRED):
            return min(self.sp_free) <= cycle
        if cls is OpClass.SFU:
            return self.sfu_free <= cycle
        if cls in (OpClass.LOAD, OpClass.STORE):
            return self.mem_free <= cycle
        return True

    def wake_candidates(self, cycle: int) -> List[int]:
        """Future cycles at which a busy pipeline frees (``next_wake``)."""
        return [free for free in (*self.sp_free, self.sfu_free, self.mem_free)
                if free > cycle]

    # ---------------------------------------------------------------- backend

    def run(
        self,
        warp: Warp,
        inst: Instruction,
        exec_result: ExecResult,
        decision: Optional[IssueDecision],
        cycle: int,
    ) -> None:
        """Send one instruction down the backend (reads, FU/memory timing)
        and schedule its writeback event."""
        self._c_backend.value += 1
        cls = inst.op_class
        if self._stall is not None:
            self._stall.note_backend(warp.warp_slot, inst,
                                     "mem" if cls is OpClass.LOAD else "exec")

        # Functional commit (loads commit below with the memory access).
        if cls is not OpClass.LOAD:
            if exec_result.result is not None:
                warp.write_reg(inst.dst.value, exec_result.result,
                               exec_result.mask)
            if exec_result.pred_result is not None:
                warp.write_pred(inst.dst.value, exec_result.pred_result,
                                exec_result.mask)

        read_ready = self._operand_read.schedule_reads(warp, inst, decision,
                                                       cycle)
        if cls in (OpClass.LOAD, OpClass.STORE):
            exec_ready = self._memory_timing(warp, inst, exec_result,
                                             read_ready)
        else:
            exec_ready = self._alu_timing(warp, inst, exec_result, read_ready,
                                          decision)

        self._schedule(exec_ready, EV_WRITEBACK,
                       (warp, inst, exec_result, decision, exec_ready))

    def _alu_timing(
        self,
        warp: Warp,
        inst: Instruction,
        exec_result: ExecResult,
        ready: int,
        decision: Optional[IssueDecision],
    ) -> int:
        cls = inst.op_class
        lanes = int(np.count_nonzero(exec_result.mask))
        # With the Affine model off, affine_execution is a constant False
        # (its first check); skip the call.
        affine_exec = (self._affine.enabled and
                       self.affine_execution(warp, inst, exec_result,
                                             decision))
        lane_cost = 1 if affine_exec else max(lanes, 1)
        if affine_exec:
            self._c_affine_fu.value += 1

        if cls is OpClass.SFU:
            start = max(ready, self.sfu_free)
            self.sfu_free = start + 1
            self._c_fu_sfu_insts.value += 1
            self._c_fu_sfu_lanes.value += lane_cost
            return start + self._sfu_latency

        sp_free = self.sp_free
        pipe = 0
        free = sp_free[0]
        for i in range(1, len(sp_free)):
            if sp_free[i] < free:
                pipe, free = i, sp_free[i]
        start = max(ready, free)
        sp_free[pipe] = start + 1
        self._c_fu_sp_insts.value += 1
        self._c_fu_sp_lanes.value += lane_cost
        return start + self._sp_latency

    def affine_execution(
        self,
        warp: Warp,
        inst: Instruction,
        exec_result: ExecResult,
        decision: Optional[IssueDecision],
    ) -> bool:
        """Affine model: 1-lane execution when inputs and output are affine."""
        affine = self._affine
        if not affine.enabled or inst.opcode not in AFFINE_PRESERVING_OPS:
            return False
        if exec_result.result is None or not exec_result.mask.all():
            return False
        # Register inputs must be tracked-affine; immediates are affine by
        # construction; special registers are checked by value.
        for src, values in zip(inst.srcs, exec_result.sources):
            if src.kind is OperandKind.SREG and not is_affine_value(values):
                return False
        keys = self._operand_read.source_bank_keys(warp, inst, decision)
        if not affine.all_affine(keys):
            return False
        return is_affine_value(exec_result.result)

    def _memory_timing(
        self, warp: Warp, inst: Instruction, exec_result: ExecResult,
        ready: int,
    ) -> int:
        start = max(ready, self.mem_free)
        self.mem_free = start + 1
        self._c_mem_insts.value += 1
        if inst.op_class is OpClass.STORE:
            self._c_store_insts.value += 1
        result = self._port.access(
            inst.space,
            warp.block.block_id,
            exec_result.addresses,
            exec_result.mask,
            start,
            is_store=inst.op_class is OpClass.STORE,
            store_values=exec_result.store_values,
        )
        if inst.op_class is OpClass.LOAD:
            warp.write_reg(inst.dst.value, result.values, exec_result.mask)
        return result.ready_cycle


@register_stage
class AllocateVerifyStage(Stage):
    """Register allocation + VSB verify for an executed result.

    Runs on the writeback event: hashes the result, probes the value
    signature buffer, performs the verify-read or register write
    (arbitrating real register banks), applies the Section V-D pin-bit
    rules, and schedules the commit.  With the WIR unit absent or
    quarantined it degrades to the Base GPU's plain register write.
    """

    name = "allocate_verify"
    inputs = ("exec_result", "decision", "exec_ready")
    outputs = ("dest_phys", "writeback_ready")
    stat_paths = ("wir.hash_generations", "wir.verify_reads",
                  "wir.verify_cache_filtered", "wir.writes_avoided",
                  "wir.dummy_movs", "wir.vsb.*", "wir.vc.*")

    def __init__(self, core, stats_root) -> None:
        super().__init__(core, stats_root)
        self._regfile = core.regfile
        self._affine = core.affine
        self._schedule = core._schedule
        unit = core.unit
        self._stall_probe = (core.stall.note_verify
                             if core.stall is not None and unit is not None
                             else None)
        if unit is not None:
            counters = unit.counters
            self._c_hashes = counters.handle("hash_generations")
            self._c_verify_reads = counters.handle("verify_reads")
            self._c_verify_filtered = counters.handle("verify_cache_filtered")
            self._c_writes_avoided = counters.handle("writes_avoided")
            self._c_dummy_movs = counters.handle("dummy_movs")

    def run(
        self,
        warp: Warp,
        inst: Instruction,
        exec_result: ExecResult,
        decision: Optional[IssueDecision],
        cycle: int,
    ) -> None:
        """Writeback-event entry: allocate/verify (WIR) or plain register
        write (Base / quarantined), then schedule the commit event."""
        core = self.core
        if not inst.writes_register:
            self._schedule(cycle, EV_RETIRE, (warp, inst))
            return

        if self.unit is not None and not core.wir_quarantined:
            ready, dest = self.allocate(warp, inst, exec_result, decision,
                                        cycle)
            self._schedule(ready, EV_WIR_COMMIT, (warp, inst, decision, dest))
            return

        # Base GPU: plain register write.
        key = (warp.warp_slot << 8) | inst.dst.value
        affine_tracker = self._affine
        if not affine_tracker.enabled:
            # record_write / record_partial_write are no-ops returning
            # False with tracking disabled; skip them and the mask check.
            affine = False
        elif exec_result.mask.all():
            affine = affine_tracker.record_write(
                key, warp.read_reg(inst.dst.value), opcode=inst.opcode)
        else:
            affine_tracker.record_partial_write(key)
            affine = False
        ready = self._regfile.schedule_write(key, cycle, affine=affine)
        self._schedule(ready, EV_RETIRE, (warp, inst))

    # -------------------------------------------------------- WIR allocation

    def allocate(
        self,
        warp: Warp,
        inst: Instruction,
        exec_result: ExecResult,
        decision: IssueDecision,
        cycle: int,
    ) -> Tuple[int, int]:
        """Register allocation for an executed instruction's result.

        Returns ``(ready_cycle, dest_phys)``; the caller schedules the
        commit at ``ready_cycle``.  A transit reference is taken on the
        returned register (released by the writeback/retire stage) so
        buffer evictions between writeback and retire cannot recycle it.
        """
        ready, dest = self._allocate_inner(warp, inst, exec_result, decision,
                                           cycle)
        self.unit.refcount.incref(dest)
        return ready, dest

    def _allocate_inner(
        self,
        warp: Warp,
        inst: Instruction,
        exec_result: ExecResult,
        decision: IssueDecision,
        cycle: int,
    ) -> Tuple[int, int]:
        assert inst.writes_register
        unit = self.unit
        logical = inst.dst.value
        slot = warp.warp_slot
        result = warp.read_reg(logical)  # value already committed functionally

        if decision.divergent:
            return self._allocate_divergent(warp, inst, exec_result, cycle,
                                            logical, slot, result)

        # Convergent redefinition clears the pin bit (Section V-D).
        if unit.rename.pin_bit(slot, logical):
            unit.rename.clear_pin(slot, logical)

        if not unit.wir.use_vsb:
            # NoVSB: a fresh register for every convergent write.
            dest = unit.allocate_register()
            unit.physfile.write(dest, result)
            ready = self._regfile.schedule_write(
                dest, cycle, affine=self._write_affine(dest, result, inst))
            return ready, dest

        self._c_hashes.value += 1
        signature = unit.hasher.hash_value(result)
        if unit.faults is not None:
            signature = unit.faults.mutate_signature(signature)
        candidate = unit.vsb.lookup(signature)
        hash_cycle = cycle + 2  # hash generation + VSB table access

        if candidate is not None:
            # Verify-read (possibly filtered by the verify cache).
            if unit.verify_cache.access(candidate):
                self._c_verify_filtered.value += 1
                if self.tracer is not None:
                    self.tracer.wir_event(slot, "verify_filtered",
                                          {"candidate": candidate})
                ready = hash_cycle + 1
            else:
                self._c_verify_reads.value += 1
                if self._stall_probe is not None:
                    self._stall_probe(slot, logical)
                if self.tracer is not None:
                    self.tracer.wir_event(slot, "verify_read",
                                          {"candidate": candidate})
                ready = self._regfile.schedule_read(
                    candidate, hash_cycle,
                    affine=self._affine.is_affine(candidate), verify=True)
            if np.array_equal(unit.physfile.read(candidate), result):
                self._c_writes_avoided.value += 1
                if self.tracer is not None:
                    self.tracer.wir_event(slot, "vsb_share",
                                          {"reg": candidate})
                return ready, candidate
            # False positive: allocate + write (Figure 7).
            unit.vsb.note_false_positive()
            dest = unit.allocate_register()
            unit.physfile.write(dest, result)
            unit.vsb.insert(signature, dest)
            ready = self._regfile.schedule_write(
                dest, ready, affine=self._write_affine(dest, result, inst))
            return ready, dest

        # VSB miss: new register, write, register the signature.
        if unit.in_low_register_mode():
            unit.vsb.evict_index(
                unit.vsb.index_of(signature) if unit.vsb.num_entries else 0)
            dest = unit.allocate_register()
            unit.physfile.write(dest, result)
        else:
            dest = unit.allocate_register()
            unit.physfile.write(dest, result)
            unit.vsb.insert(signature, dest)
        ready = self._regfile.schedule_write(
            dest, hash_cycle, affine=self._write_affine(dest, result, inst))
        return ready, dest

    def _allocate_divergent(
        self,
        warp: Warp,
        inst: Instruction,
        exec_result: ExecResult,
        cycle: int,
        logical: int,
        slot: int,
        result: np.ndarray,
    ) -> Tuple[int, int]:
        """Pin-bit rules for divergent destinations (Section V-D)."""
        unit = self.unit
        mask = exec_result.mask
        if unit.rename.pin_bit(slot, logical) and unit.rename.is_mapped(
                slot, logical):
            # Dedicated register: overwrite active lanes in place.
            dest = unit.rename.lookup(slot, logical)
            unit.invalidate_stale_tags(dest)
            unit.verify_cache.invalidate(dest)
            unit.physfile.write(dest, result, mask=mask)
            self._affine.record_partial_write(dest)
            ready = self._regfile.schedule_write(dest, cycle)
            return ready, dest

        # First divergent write: dedicated register + dummy MOV for the
        # inactive lanes (copied from the current physical register).
        current = unit.rename.lookup(slot, logical)
        dest = unit.allocate_register()
        unit.rename.set_pin(slot, logical)
        unit.physfile.copy_lanes(current, dest, ~mask)
        unit.physfile.write(dest, result, mask=mask)
        self._affine.record_partial_write(dest)
        self._c_dummy_movs.value += 1
        # Dummy MOV costs: one register read + one register write.
        read_ready = self._regfile.schedule_read(
            current, cycle, affine=self._affine.is_affine(current))
        ready = self._regfile.schedule_write(dest, read_ready)
        ready = self._regfile.schedule_write(dest, ready)  # the result write
        return ready, dest

    def _write_affine(self, dest: int, result: np.ndarray,
                      inst: Instruction) -> bool:
        return self._affine.record_write(dest, result, opcode=inst.opcode)


@register_stage
class WritebackRetireStage(Stage):
    """Commit and retire: rename-table remap, reuse-buffer fill, scoreboard
    release, and pending-retry wakeups."""

    name = "writeback_retire"
    inputs = ("dest_phys", "decision", "writeback_ready")
    outputs = ("retired",)
    stat_paths = ("core.retired", "wir.rename_writes")

    def __init__(self, core, stats_root) -> None:
        super().__init__(core, stats_root)
        self._scoreboard = core.scoreboard
        self._pending_regs = core.scoreboard._pending_regs
        self._pending_preds = core.scoreboard._pending_preds
        self._sb_wait = core._sb_wait
        self._sched_of_slot = core._sched_of_slot
        self._instructions = core.program.instructions
        self._stall = core.stall
        self._c_retired = core.counters.handle("retired")
        if core.unit is not None:
            self._c_rename_writes = core.unit.counters.handle("rename_writes")

    def retire(self, warp: Warp, inst: Instruction) -> None:
        """Final pipeline step for every backend instruction."""
        slot = warp.warp_slot
        if self._stall is not None:
            self._stall.note_retire(slot, inst)
        if self.tracer is not None:
            self.tracer.end_inst(slot, inst)
        # Scoreboard release, inlined — this is the hottest event handler
        # of a superblock run (every backend instruction retires).
        if inst.writes_register:
            self._pending_regs[slot].discard(inst.dst.value)
        elif inst.writes_predicate:
            self._pending_preds[slot].discard(inst.dst.value)
        if self._sb_wait[slot]:
            # Unblock the slot only when this release actually cleared its
            # next instruction's hazards — a ``sb_wait`` slot is never
            # exited, so its pc is valid.  Keeping the flag (and the wake
            # memo) when other sources are still pending skips a scheduler
            # scan that would just re-block the slot.
            nxt = self._instructions[warp.stack[-1].pc]
            regs = self._pending_regs[slot]
            preds = self._pending_preds[slot]
            if ((not regs or regs.isdisjoint(nxt.sb_regs))
                    and (not preds or preds.isdisjoint(nxt.sb_preds))):
                self._sb_wait[slot] = False
                sched = self._sched_of_slot[slot]
                sched.scannable += 1
                sched.wake_memo = 0
        warp.inflight -= 1
        self._c_retired.value += 1
        if warp.exited:
            self.core._finish_if_exited(warp)

    def commit(
        self, warp: Warp, inst: Instruction, decision: IssueDecision,
        dest_phys: int,
    ) -> None:
        """Retire an executed WIR instruction: remap the logical
        destination, update the reuse buffer, and wake released
        pending-retry waiters."""
        unit = self.unit
        slot = warp.warp_slot
        logical = inst.dst.value
        if unit.faults is not None:
            # Post-verify corruption: by the commit stage every value check
            # (verify-read, VSB) has already passed — only the lockstep
            # oracle or the reuse recomputation check can catch this.
            unit.faults.maybe_corrupt_result(unit.physfile, dest_phys,
                                             is_load(inst.opcode))
        self._c_rename_writes.value += 1
        unit.rename.remap(slot, logical, dest_phys)
        unit.refcount.decref(dest_phys)  # release the allocate-stage transit ref

        waiters: List[Waiter] = []
        if not (decision.divergent or decision.tag is None):
            if decision.reserved and decision.rb_index is not None:
                waiters = unit.reuse_buffer.fill(decision.rb_index,
                                                 decision.rb_token, dest_phys)
            else:
                # Non-pending-retry designs update the buffer at retire;
                # release the issue-stage transit references on the tag
                # sources afterwards.
                if not unit.in_low_register_mode():
                    reservation = unit.reuse_buffer.reserve(
                        decision.tag,
                        is_load=is_load(inst.opcode),
                        barrier_count=warp.barrier_count,
                        tbid=unit.entry_tbid(warp, inst),
                    )
                    if reservation is not None:
                        index, token = reservation
                        unit.track_tag_sources(decision.tag, index)
                        waiters = unit.reuse_buffer.fill(index, token,
                                                         dest_phys)
                elif decision.rb_index is not None:
                    unit.reuse_buffer.evict_index(decision.rb_index)
                for reg in decision.src_phys:
                    unit.refcount.decref(reg)
        self.retire(warp, inst)
        for waiter in waiters:
            waiter.on_result(dest_phys)

    def commit_reuse(self, warp: Warp, inst: Instruction,
                     result_reg: int) -> None:
        """Retire a reused instruction: only the rename table changes.

        The hit / wakeup took a transit reference on *result_reg*; it is
        released here.
        """
        unit = self.unit
        slot = warp.warp_slot
        logical = inst.dst.value
        self._c_rename_writes.value += 1
        # A reuse is a convergent redefinition: it must clear the pin bit,
        # or a later divergent write would overwrite the now-*shared*
        # result register in place (Section V-D's dedicated-register
        # invariant would be violated).
        if unit.rename.pin_bit(slot, logical):
            unit.rename.clear_pin(slot, logical)
        unit.rename.remap(slot, logical, result_reg)
        unit.refcount.decref(result_reg)
        self.retire(warp, inst)
