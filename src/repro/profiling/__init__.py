"""Workload characterisation tools (the paper's Section III)."""

from repro.profiling.redundancy import RedundancyProfile, RedundancyProfiler

__all__ = ["RedundancyProfiler", "RedundancyProfile"]
