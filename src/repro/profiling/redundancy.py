"""Repeated-warp-computation profiler (paper Section III-A, Figure 2).

A *warp computation* is the combination of opcode, immediates, input values,
and result values of one dynamic warp instruction.  The profiler samples the
instruction stream in windows of 1K dynamic warp instructions and counts, in
each window, how many instructions repeat a computation already performed
earlier in that window.

Denominator semantics (pinned by the Figure 2 regression tests): the repeat
fractions are taken over *all* dynamic warp instructions.  Control-flow
instructions, barriers, stores, and nops are excluded from matching — they
can never be counted repeated — but they still occupy window slots and are
still counted in :attr:`RedundancyProfile.instructions`.  This matches the
paper, which reports repeats as a percentage of total dynamic warp
instructions, not of reuse-eligible ones.

The profiler attaches to an SM via the ``profiler`` hook and observes every
issued instruction; results from the per-SM profilers are merged by
:meth:`RedundancyProfile.merge`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.isa.instruction import Instruction, OperandKind
from repro.isa.opcodes import OpClass
from repro.sim.exec_engine import ExecResult

#: Window length (dynamic warp instructions), as in the paper.
WINDOW = 1024

#: How many repeats qualify as "highly repeated" (the paper reports the
#: fraction of computations appearing more than 10 times).
HIGH_REPEAT_THRESHOLD = 10


@dataclass
class RedundancyProfile:
    """Aggregated profiling outcome."""

    windows: int = 0
    instructions: int = 0
    repeated: int = 0
    highly_repeated: int = 0  # instructions whose computation occurs > 10x

    @property
    def repeat_fraction(self) -> float:
        """Fraction of dynamic instructions repeating a recent computation.

        The denominator is every observed instruction, including the
        excluded classes (control/sync/store/nop) that can never repeat.
        """
        return self.repeated / self.instructions if self.instructions else 0.0

    @property
    def high_repeat_fraction(self) -> float:
        return self.highly_repeated / self.instructions if self.instructions else 0.0

    def merge(self, other: "RedundancyProfile") -> "RedundancyProfile":
        return RedundancyProfile(
            windows=self.windows + other.windows,
            instructions=self.instructions + other.instructions,
            repeated=self.repeated + other.repeated,
            highly_repeated=self.highly_repeated + other.highly_repeated,
        )


class RedundancyProfiler:
    """Per-SM observer computing windowed repeat statistics."""

    def __init__(self, window: int = WINDOW) -> None:
        self.window = window
        self.profile = RedundancyProfile()
        self._hashes: List[Optional[int]] = []
        self._counts: Dict[int, int] = {}

    def observe(self, inst: Instruction, exec_result: ExecResult) -> None:
        """Record one dynamic warp instruction.

        Every instruction advances the window and the denominator; excluded
        classes (``_computation_key`` returns None) just never match.
        """
        key = self._computation_key(inst, exec_result)
        self.profile.instructions += 1
        if key is not None:
            count = self._counts.get(key, 0)
            if count:
                self.profile.repeated += 1
            if count >= HIGH_REPEAT_THRESHOLD:
                self.profile.highly_repeated += 1
            self._counts[key] = count + 1
        self._hashes.append(key)
        if len(self._hashes) >= self.window:
            self._roll_window()

    def _roll_window(self) -> None:
        self.profile.windows += 1
        self._hashes.clear()
        self._counts.clear()

    def _computation_key(
        self, inst: Instruction, exec_result: ExecResult
    ) -> Optional[int]:
        """Hashable descriptor of the warp computation, or None if excluded."""
        cls = inst.op_class
        if cls in (OpClass.CONTROL, OpClass.SYNC, OpClass.STORE, OpClass.NOP):
            return None
        parts = [inst.opcode.value]
        for src, values in zip(inst.srcs, exec_result.sources):
            if src.kind is OperandKind.IMM:
                parts.append(src.value)
            else:
                parts.append(values.tobytes())
        if exec_result.result is not None:
            parts.append(exec_result.result.tobytes())
        elif exec_result.pred_result is not None:
            parts.append(exec_result.pred_result.tobytes())
        parts.append(exec_result.mask.tobytes())
        return hash(tuple(parts))
