"""Results-as-a-service: an async HTTP query API over the result store.

``repro serve`` exposes the content-addressed result cache over HTTP
(DESIGN.md §15): figure-level queries are answered straight from the
checksummed disk cache with digest-derived ETags, and misses become
durable background jobs on the PR-7 campaign runner behind two stacked
single-flight layers (in-process async + cross-worker leases).
"""

from repro.serve.app import (DEFAULT_PORT, ResultService, build_router,
                             serve_forever)
from repro.serve.etag import (document_etag, matches, parse_if_none_match,
                              result_etag, stale_etag)
from repro.serve.figures import (FIGURES, SERVE_SCHEMA, FigureDef, LoadedRun,
                                 canonical_json, figure_document,
                                 load_cached, load_via_harness)
from repro.serve.http import (AccessLog, Request, Response, Router,
                              error_response)
from repro.serve.jobs import Job, JobManager, JobQueueFull
from repro.serve.query import (QueryError, QuerySpec, flat_specs,
                               known_workloads, parse_query, required_specs,
                               role_spec)
from repro.serve.resilience import (AdmissionGate, CircuitBreaker,
                                    ResilienceConfig, StaleDocCache,
                                    clamp_deadline)
from repro.serve.singleflight import AsyncSingleFlight, FlightCancelled

__all__ = [
    "AccessLog", "AdmissionGate", "AsyncSingleFlight", "CircuitBreaker",
    "DEFAULT_PORT", "FIGURES", "FigureDef", "FlightCancelled", "Job",
    "JobManager", "JobQueueFull", "LoadedRun", "QueryError", "QuerySpec",
    "Request", "ResilienceConfig", "Response", "ResultService", "Router",
    "SERVE_SCHEMA", "StaleDocCache", "build_router", "canonical_json",
    "clamp_deadline", "document_etag", "error_response", "figure_document",
    "flat_specs", "known_workloads", "load_cached", "load_via_harness",
    "matches", "parse_if_none_match", "parse_query", "required_specs",
    "result_etag", "role_spec", "serve_forever", "stale_etag",
]
