"""Results-as-a-service: the HTTP endpoints over the result store.

Endpoint map (all GET/HEAD, JSON bodies):

========================  ==================================================
``/`` , ``/v1``           service index: endpoints, figures, known knobs
``/v1/healthz``           liveness + effort counters (never shed)
``/v1/readyz``            readiness: 200 serving, 503 once draining begins
``/v1/figure/{fig}``      one figure for one workload (``?workload=KM&...``)
``/v1/suite/{fig}``       one figure across the whole Table I suite
``/v1/result/{digest}``   one raw result payload, byte-exact from the cache
``/v1/jobs/{id}``         background job state (folded from the journal)
========================  ==================================================

The cache-hit path never simulates: runs are answered via
:func:`~repro.harness.runner.lookup_result` and figure documents are
ETagged by their RunSpec digests (``If-None-Match`` revalidates to 304).
A miss returns **202 Accepted** with a job handle after enqueueing the
missing specs on the campaign runner — through the in-process
:class:`~repro.serve.singleflight.AsyncSingleFlight`, so a storm of
identical cold queries costs one enqueue, and under that the campaign
workers' lease-based single-flight, so even many server replicas cost
one simulation.

Every request additionally climbs the overload ladder (DESIGN.md §17):
admission gate (503 + ``Retry-After`` past the high-water mark), a
per-request deadline (504 envelope on expiry), and — on the miss path —
a circuit breaker around campaign enqueue that degrades to explicitly
stale-marked cached documents while the compute backend is failing.
``SIGTERM`` flips ``/v1/readyz``, drains in-flight requests under a
deadline, and stops the JobManager checkpoint-safely.
"""

from __future__ import annotations

import asyncio
import signal
import time
from math import ceil
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.harness import runner
from repro.harness.runner import RunSpec, _read_payload
from repro.serve.etag import document_etag, matches, result_etag, stale_etag
from repro.serve.figures import (FIGURES, canonical_json, figure_document,
                                 load_cached)
from repro.serve.http import (AccessLog, HttpServer, Request, Response,
                              Router, error_response)
from repro.serve.jobs import JobManager, JobQueueFull
from repro.serve.query import (MAX_SCALE, MAX_SMS, QueryError, QuerySpec,
                               known_workloads, parse_query, required_specs)
from repro.serve.resilience import (DEADLINE_HEADER, AdmissionGate,
                                    CircuitBreaker, ResilienceConfig,
                                    StaleDocCache, clamp_deadline)
from repro.serve.singleflight import AsyncSingleFlight, FlightCancelled

DEFAULT_PORT = 8753


def _is_digest(text: str) -> bool:
    return len(text) == 64 and all(c in "0123456789abcdef" for c in text)


def _retry_after(seconds: float) -> str:
    """``Retry-After`` header value: whole seconds, never below 1."""
    return str(max(1, ceil(seconds)))


class ResultService:
    """One serving process: router + cache reads + background jobs."""

    def __init__(self, base: Path, access_log: Optional[Path] = None,
                 worker: bool = True,
                 resilience: Optional[ResilienceConfig] = None) -> None:
        self.base = Path(base)
        self.base.mkdir(parents=True, exist_ok=True)
        runner.set_cache_dir(self.base)
        self.config = resilience or ResilienceConfig()
        self.gate = AdmissionGate(self.config.max_concurrent)
        self.breaker = CircuitBreaker(threshold=self.config.breaker_failures,
                                      cooldown=self.config.breaker_cooldown)
        self.stale = StaleDocCache(keep=self.config.stale_keep)
        self.jobs = JobManager(self.base,
                               max_pending=self.config.max_pending_jobs,
                               on_outcome=self._job_outcome)
        self.flights = AsyncSingleFlight()
        self.access_log = AccessLog(access_log)
        self.worker = worker
        #: Flipped false the instant shutdown begins; /v1/readyz reads it.
        self.ready = True
        #: Observable effort counters (tests and /v1/healthz read these).
        self.counts = {"requests": 0, "hits": 0, "misses": 0,
                       "not_modified": 0, "timeouts": 0, "stale_served": 0}
        self.router = build_router()
        self.server = HttpServer(
            self.router, self._dispatch, self.access_log,
            keepalive_timeout=self.config.keepalive_timeout,
            header_timeout=self.config.header_timeout)
        self._watchdog: Optional[asyncio.Task] = None

    # -- lifecycle ---------------------------------------------------------

    async def start(self, host: str = "127.0.0.1",
                    port: int = 0) -> Tuple[str, int]:
        if self.worker:
            self.jobs.start()
            self._watchdog = asyncio.get_running_loop().create_task(
                self._watch_worker())
        return await self.server.start(host, port)

    async def close(self) -> None:
        """Abrupt teardown (tests); production exits via :meth:`shutdown`."""
        if self._watchdog is not None:
            self._watchdog.cancel()
            self._watchdog = None
        await self.server.close()
        self.jobs.stop()

    def begin_shutdown(self) -> None:
        """Synchronous first step of shutdown, safe in a signal handler:
        readiness flips *immediately*, before any draining starts."""
        self.ready = False

    async def shutdown(self) -> bool:
        """Graceful sequence: unready → grace → stop accepting → drain →
        stop the JobManager at a job boundary.  True = fully clean."""
        self.begin_shutdown()
        if self.config.shutdown_grace > 0:
            # Let load balancers observe the readyz flip and stop routing.
            await asyncio.sleep(self.config.shutdown_grace)
        if self._watchdog is not None:
            self._watchdog.cancel()
            self._watchdog = None
        self.server.stop_accepting()
        clean = await self.server.drain(self.config.drain_deadline)
        await self.server.close()
        # Checkpoint-safe by construction: the stop event winds run_worker
        # down at a job boundary, and anything cut off lives durably in
        # its campaign directory (journal, leases, checkpoint slots).
        self.jobs.stop()
        return clean

    def _job_outcome(self, ok: bool) -> None:
        """Background-drain outcome (from the worker thread) → breaker."""
        if ok:
            self.breaker.record_success()
        else:
            self.breaker.record_failure()

    async def _watch_worker(self) -> None:
        """Restart a crashed drain thread; counts surface in healthz."""
        while True:
            await asyncio.sleep(self.config.watchdog_interval)
            self.jobs.ensure_worker()

    # -- the overload ladder ----------------------------------------------

    async def _dispatch(self, handler, request: Request,
                        captures: Dict[str, str]) -> Response:
        self.counts["requests"] += 1
        # Probes are exempt: liveness/readiness must answer even (indeed,
        # especially) when the service is saturated or draining.
        if handler in (handle_health, handle_ready):
            return await handler(self, request, **captures)
        if not self.gate.try_acquire():
            response = error_response(
                503, "overloaded",
                f"{self.gate.limit} requests already in flight; retry "
                "shortly")
            response.headers.append(
                ("Retry-After", _retry_after(self.config.shed_retry_after)))
            response.outcome = "shed"
            return response
        budget = clamp_deadline(request.header(DEADLINE_HEADER), self.config)
        try:
            return await asyncio.wait_for(
                handler(self, request, **captures), budget)
        except asyncio.TimeoutError:
            self.counts["timeouts"] += 1
            response = error_response(
                504, "deadline-exceeded",
                f"request exceeded its {budget:.2f}s budget")
            response.outcome = "timeout"
            return response
        finally:
            self.gate.release()

    # -- shared hit/miss machinery ----------------------------------------

    def collect(self, query: QuerySpec
                ) -> Tuple[Dict[str, Dict[str, object]], List[RunSpec]]:
        """Load what the cache has; list the specs it is missing."""
        loaded: Dict[str, Dict[str, object]] = {}
        missing: List[RunSpec] = []
        for abbr, by_role in required_specs(query).items():
            loaded[abbr] = {}
            for role, spec in by_role.items():
                run = load_cached(spec)
                if run is None:
                    missing.append(spec)
                else:
                    loaded[abbr][role] = run
        return loaded, missing

    async def answer(self, request: Request, query: QuerySpec) -> Response:
        key = canonical_json(query.to_dict())
        loaded, missing = self.collect(query)
        if not missing:
            self.counts["hits"] += 1
            doc = figure_document(query, loaded)
            etag = document_etag(query.fig, doc["runs"])
            # Deposit the fresh answer for stale-serving while the
            # breaker is open; the doc dict is never mutated afterwards
            # (degrade() serves a copy), so sharing it here is safe.
            self.stale.put(key, doc, etag)
            return self.conditional(request, etag,
                                    canonical_json(doc).encode())
        if not self.breaker.allow():
            return self.degrade(request, key)
        return await self.accept(missing)

    def degrade(self, request: Request, key: str) -> Response:
        """Breaker open: a stale-marked cached document, or a 503."""
        entry = self.stale.get(key)
        if entry is None:
            response = error_response(
                503, "breaker-open",
                "the compute backend is failing and no cached document "
                "exists for this query; retry after the cooldown")
            response.headers.append(
                ("Retry-After", str(self.breaker.retry_after())))
            response.outcome = "breaker"
            return response
        self.counts["stale_served"] += 1
        doc = dict(entry.doc)
        doc["stale"] = True
        response = self.conditional(request, stale_etag(entry.etag),
                                    canonical_json(doc).encode())
        response.headers.append(("Warning", '110 - "Response is Stale"'))
        response.outcome = "stale"
        return response

    async def accept(self, missing: List[RunSpec]) -> Response:
        """202: enqueue *missing* (once, however many callers race here)."""
        self.counts["misses"] += 1
        digests = sorted(spec.digest() for spec in missing)
        key = "+".join(digests)

        async def submit():
            # Yield once before touching storage: every request already
            # parked at this flight's key in the current scheduler tick
            # joins the leader instead of re-running the (idempotent)
            # submission after it resolves.
            await asyncio.sleep(0)
            return self.jobs.submit(missing)

        try:
            job = await self.flights.run(key, submit)
        except JobQueueFull as err:
            # Bounded backlog: acknowledge the work exists but enqueue
            # nothing — the client's retry re-submits the identical set.
            response = Response.json(202, {
                "status": "deferred",
                "missing": digests,
                "detail": str(err),
            }, headers=[("Retry-After",
                         _retry_after(self.config.deferred_retry_after))])
            response.outcome = "deferred"
            return response
        except FlightCancelled:
            # The enqueue leader hit its deadline mid-submit; joiners get
            # a clean retry signal instead of a 500.
            response = error_response(
                503, "enqueue-cancelled",
                "the request leading this enqueue was cancelled; retry")
            response.headers.append(("Retry-After", "1"))
            response.outcome = "breaker"
            return response
        return Response.json(202, {
            "status": "pending",
            "job": job.id,
            "missing": digests,
            "poll": f"/v1/jobs/{job.id}",
        }, headers=[("Retry-After", "1"),
                    ("Location", f"/v1/jobs/{job.id}")])

    def conditional(self, request: Request, etag: str,
                    body: bytes) -> Response:
        """200 with ETag, or 304 when ``If-None-Match`` revalidates."""
        if matches(etag, request.header("if-none-match")):
            self.counts["not_modified"] += 1
            return Response(304, body, headers=[("ETag", etag)])
        return Response(200, body, headers=[("ETag", etag)])


# ----------------------------------------------------------------- handlers

async def handle_index(service: ResultService, request: Request) -> Response:
    return Response.json(200, {
        "service": "repro-serve",
        "endpoints": [
            "/v1/figure/{fig}?workload=KM&model=RLPV&scale=1&seed=7"
            "&sms=N&engine=scalar",
            "/v1/suite/{fig}",
            "/v1/result/{digest}",
            "/v1/jobs/{id}",
            "/v1/healthz",
            "/v1/readyz",
        ],
        "figures": {name: {"roles": list(figure.roles), "doc": figure.doc}
                    for name, figure in FIGURES.items()},
        "workloads": known_workloads(),
        "limits": {"scale": MAX_SCALE, "sms": MAX_SMS},
    })


async def handle_health(service: ResultService, request: Request) -> Response:
    return Response.json(200, {
        "ok": True,
        "ready": service.ready,
        "requests": service.counts,
        "admission": {"in_flight": service.gate.in_flight,
                      "limit": service.gate.limit,
                      **service.gate.counts},
        "breaker": service.breaker.snapshot(),
        "stale_docs": len(service.stale),
        "statuses": {str(status): count for status, count
                     in sorted(service.access_log.status_counts.items())},
        "outcomes": dict(service.access_log.outcome_counts),
        "flights": {"open": len(service.flights),
                    **service.flights.counts},
        "jobs": {"known": len(service.jobs),
                 "worker_alive": service.jobs.worker_alive,
                 **service.jobs.counts},
        "harness": dict(runner.COUNTS),
    })


async def handle_ready(service: ResultService, request: Request) -> Response:
    """Readiness (routing), distinct from /v1/healthz (liveness): flips
    503 the instant shutdown begins, while liveness keeps answering 200
    so orchestrators drain instead of killing."""
    if service.ready:
        return Response.json(200, {"ready": True})
    return Response.json(503, {"ready": False, "draining": True},
                         headers=[("Retry-After", "5")])


async def handle_figure(service: ResultService, request: Request,
                        fig: str) -> Response:
    try:
        query = parse_query(fig, request.query, suite=False)
    except QueryError as err:
        return error_response(400, "bad-query", str(err), param=err.param)
    return await service.answer(request, query)


async def handle_suite(service: ResultService, request: Request,
                       fig: str) -> Response:
    try:
        query = parse_query(fig, request.query, suite=True)
    except QueryError as err:
        return error_response(400, "bad-query", str(err), param=err.param)
    return await service.answer(request, query)


async def handle_result(service: ResultService, request: Request,
                        digest: str) -> Response:
    if not _is_digest(digest):
        return error_response(
            400, "bad-digest",
            "result digests are 64 lowercase hex characters",
            param="digest")
    path = service.base / digest[:2] / f"{digest}.json"
    if not path.exists():
        return error_response(404, "not-found",
                              f"no result for digest {digest[:12]}…")
    status, _ = _read_payload(path)
    if status != "ok":
        return error_response(
            404, "unusable-entry",
            f"the entry for {digest[:12]}… is {status}-damaged or from "
            "another cache format")
    # Byte-exact file contents: the payload is already canonical JSON.
    return service.conditional(request, result_etag(digest),
                               path.read_bytes())


async def handle_job(service: ResultService, request: Request,
                     id: str) -> Response:
    job = service.jobs.get(id)
    if job is None:
        return error_response(404, "not-found", f"no such job: {id}")
    return Response.json(200, service.jobs.status(job))


def build_router() -> Router:
    router = Router()
    router.get("/", handle_index)
    router.get("/v1", handle_index)
    router.get("/v1/healthz", handle_health)
    router.get("/v1/readyz", handle_ready)
    router.get("/v1/figure/{fig}", handle_figure)
    router.get("/v1/suite/{fig}", handle_suite)
    router.get("/v1/result/{digest}", handle_result)
    router.get("/v1/jobs/{id}", handle_job)
    return router


# ---------------------------------------------------------------- CLI entry

def serve_forever(base: Path, host: str = "127.0.0.1",
                  port: int = DEFAULT_PORT,
                  access_log: Optional[Path] = None,
                  worker: bool = True,
                  ready: Optional[Path] = None,
                  resilience: Optional[ResilienceConfig] = None) -> None:
    """Run the service until SIGTERM/SIGINT (the ``repro serve`` verb).

    *ready*, if given, is written with ``host port`` once the socket is
    bound — scripts starting a server on port 0 read the real port back.

    Termination is graceful: the signal handler flips readiness
    synchronously (so ``/v1/readyz`` answers 503 before anything else
    happens), then the main coroutine drains in-flight requests under the
    configured deadline, stops the JobManager at a job boundary, and the
    process exits 0.
    """

    async def main() -> None:
        service = ResultService(base, access_log=access_log, worker=worker,
                                resilience=resilience)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()

        def _on_signal() -> None:
            service.begin_shutdown()  # readyz flips before draining starts
            stop.set()

        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, _on_signal)
            except (NotImplementedError, RuntimeError):
                pass  # non-POSIX loops fall back to KeyboardInterrupt
        bound_host, bound_port = await service.start(host, port)
        print(f"serving results from {service.base} on "
              f"http://{bound_host}:{bound_port}", flush=True)
        if ready is not None:
            ready.write_text(f"{bound_host} {bound_port}\n")
        await stop.wait()
        print("serve: draining...", flush=True)
        started = time.monotonic()
        clean = await service.shutdown()
        print(f"serve: drained {'cleanly' if clean else 'with stragglers'} "
              f"in {time.monotonic() - started:.2f}s", flush=True)

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        print("serve: interrupted, shutting down")
