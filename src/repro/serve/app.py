"""Results-as-a-service: the HTTP endpoints over the result store.

Endpoint map (all GET/HEAD, JSON bodies):

========================  ==================================================
``/`` , ``/v1``           service index: endpoints, figures, known knobs
``/v1/healthz``           liveness + effort counters
``/v1/figure/{fig}``      one figure for one workload (``?workload=KM&...``)
``/v1/suite/{fig}``       one figure across the whole Table I suite
``/v1/result/{digest}``   one raw result payload, byte-exact from the cache
``/v1/jobs/{id}``         background job state (folded from the journal)
========================  ==================================================

The cache-hit path never simulates: runs are answered via
:func:`~repro.harness.runner.lookup_result` and figure documents are
ETagged by their RunSpec digests (``If-None-Match`` revalidates to 304).
A miss returns **202 Accepted** with a job handle after enqueueing the
missing specs on the campaign runner — through the in-process
:class:`~repro.serve.singleflight.AsyncSingleFlight`, so a storm of
identical cold queries costs one enqueue, and under that the campaign
workers' lease-based single-flight, so even many server replicas cost
one simulation.
"""

from __future__ import annotations

import asyncio
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.harness import runner
from repro.harness.runner import RunSpec, _read_payload
from repro.serve.etag import document_etag, matches, result_etag
from repro.serve.figures import (FIGURES, canonical_json, figure_document,
                                 load_cached)
from repro.serve.http import (AccessLog, HttpServer, Request, Response,
                              Router, error_response)
from repro.serve.jobs import JobManager
from repro.serve.query import (MAX_SCALE, MAX_SMS, QueryError, QuerySpec,
                               known_workloads, parse_query, required_specs)
from repro.serve.singleflight import AsyncSingleFlight

DEFAULT_PORT = 8753


def _is_digest(text: str) -> bool:
    return len(text) == 64 and all(c in "0123456789abcdef" for c in text)


class ResultService:
    """One serving process: router + cache reads + background jobs."""

    def __init__(self, base: Path, access_log: Optional[Path] = None,
                 worker: bool = True) -> None:
        self.base = Path(base)
        self.base.mkdir(parents=True, exist_ok=True)
        runner.set_cache_dir(self.base)
        self.jobs = JobManager(self.base)
        self.flights = AsyncSingleFlight()
        self.access_log = AccessLog(access_log)
        self.worker = worker
        #: Observable effort counters (tests and /v1/healthz read these).
        self.counts = {"requests": 0, "hits": 0, "misses": 0,
                       "not_modified": 0}
        self.router = build_router()
        self.server = HttpServer(self.router, self._dispatch,
                                 self.access_log)

    async def start(self, host: str = "127.0.0.1",
                    port: int = 0) -> Tuple[str, int]:
        if self.worker:
            self.jobs.start()
        return await self.server.start(host, port)

    async def close(self) -> None:
        await self.server.close()
        self.jobs.stop()

    async def _dispatch(self, handler, request: Request,
                        captures: Dict[str, str]) -> Response:
        self.counts["requests"] += 1
        return await handler(self, request, **captures)

    # -- shared hit/miss machinery ----------------------------------------

    def collect(self, query: QuerySpec
                ) -> Tuple[Dict[str, Dict[str, object]], List[RunSpec]]:
        """Load what the cache has; list the specs it is missing."""
        loaded: Dict[str, Dict[str, object]] = {}
        missing: List[RunSpec] = []
        for abbr, by_role in required_specs(query).items():
            loaded[abbr] = {}
            for role, spec in by_role.items():
                run = load_cached(spec)
                if run is None:
                    missing.append(spec)
                else:
                    loaded[abbr][role] = run
        return loaded, missing

    async def answer(self, request: Request, query: QuerySpec) -> Response:
        loaded, missing = self.collect(query)
        if missing:
            return await self.accept(missing)
        self.counts["hits"] += 1
        doc = figure_document(query, loaded)
        etag = document_etag(query.fig, doc["runs"])
        return self.conditional(request, etag,
                                canonical_json(doc).encode())

    async def accept(self, missing: List[RunSpec]) -> Response:
        """202: enqueue *missing* (once, however many callers race here)."""
        self.counts["misses"] += 1
        digests = sorted(spec.digest() for spec in missing)
        key = "+".join(digests)

        async def submit():
            # Yield once before touching storage: every request already
            # parked at this flight's key in the current scheduler tick
            # joins the leader instead of re-running the (idempotent)
            # submission after it resolves.
            await asyncio.sleep(0)
            return self.jobs.submit(missing)

        job = await self.flights.run(key, submit)
        return Response.json(202, {
            "status": "pending",
            "job": job.id,
            "missing": digests,
            "poll": f"/v1/jobs/{job.id}",
        }, headers=[("Retry-After", "1"),
                    ("Location", f"/v1/jobs/{job.id}")])

    def conditional(self, request: Request, etag: str,
                    body: bytes) -> Response:
        """200 with ETag, or 304 when ``If-None-Match`` revalidates."""
        if matches(etag, request.header("if-none-match")):
            self.counts["not_modified"] += 1
            return Response(304, body, headers=[("ETag", etag)])
        return Response(200, body, headers=[("ETag", etag)])


# ----------------------------------------------------------------- handlers

async def handle_index(service: ResultService, request: Request) -> Response:
    return Response.json(200, {
        "service": "repro-serve",
        "endpoints": [
            "/v1/figure/{fig}?workload=KM&model=RLPV&scale=1&seed=7"
            "&sms=N&engine=scalar",
            "/v1/suite/{fig}",
            "/v1/result/{digest}",
            "/v1/jobs/{id}",
            "/v1/healthz",
        ],
        "figures": {name: {"roles": list(figure.roles), "doc": figure.doc}
                    for name, figure in FIGURES.items()},
        "workloads": known_workloads(),
        "limits": {"scale": MAX_SCALE, "sms": MAX_SMS},
    })


async def handle_health(service: ResultService, request: Request) -> Response:
    return Response.json(200, {
        "ok": True,
        "requests": service.counts,
        "flights": {"open": len(service.flights),
                    **service.flights.counts},
        "jobs": {"known": len(service.jobs), **service.jobs.counts},
        "harness": dict(runner.COUNTS),
    })


async def handle_figure(service: ResultService, request: Request,
                        fig: str) -> Response:
    try:
        query = parse_query(fig, request.query, suite=False)
    except QueryError as err:
        return error_response(400, "bad-query", str(err), param=err.param)
    return await service.answer(request, query)


async def handle_suite(service: ResultService, request: Request,
                       fig: str) -> Response:
    try:
        query = parse_query(fig, request.query, suite=True)
    except QueryError as err:
        return error_response(400, "bad-query", str(err), param=err.param)
    return await service.answer(request, query)


async def handle_result(service: ResultService, request: Request,
                        digest: str) -> Response:
    if not _is_digest(digest):
        return error_response(
            400, "bad-digest",
            "result digests are 64 lowercase hex characters",
            param="digest")
    path = service.base / digest[:2] / f"{digest}.json"
    if not path.exists():
        return error_response(404, "not-found",
                              f"no result for digest {digest[:12]}…")
    status, _ = _read_payload(path)
    if status != "ok":
        return error_response(
            404, "unusable-entry",
            f"the entry for {digest[:12]}… is {status}-damaged or from "
            "another cache format")
    # Byte-exact file contents: the payload is already canonical JSON.
    return service.conditional(request, result_etag(digest),
                               path.read_bytes())


async def handle_job(service: ResultService, request: Request,
                     id: str) -> Response:
    job = service.jobs.get(id)
    if job is None:
        return error_response(404, "not-found", f"no such job: {id}")
    return Response.json(200, service.jobs.status(job))


def build_router() -> Router:
    router = Router()
    router.get("/", handle_index)
    router.get("/v1", handle_index)
    router.get("/v1/healthz", handle_health)
    router.get("/v1/figure/{fig}", handle_figure)
    router.get("/v1/suite/{fig}", handle_suite)
    router.get("/v1/result/{digest}", handle_result)
    router.get("/v1/jobs/{id}", handle_job)
    return router


# ---------------------------------------------------------------- CLI entry

def serve_forever(base: Path, host: str = "127.0.0.1",
                  port: int = DEFAULT_PORT,
                  access_log: Optional[Path] = None,
                  worker: bool = True,
                  ready: Optional[Path] = None) -> None:
    """Run the service until interrupted (the ``repro serve`` verb).

    *ready*, if given, is written with ``host port`` once the socket is
    bound — scripts starting a server on port 0 read the real port back.
    """

    async def main() -> None:
        service = ResultService(base, access_log=access_log, worker=worker)
        bound_host, bound_port = await service.start(host, port)
        print(f"serving results from {service.base} on "
              f"http://{bound_host}:{bound_port}", flush=True)
        if ready is not None:
            ready.write_text(f"{bound_host} {bound_port}\n")
        try:
            await asyncio.Event().wait()
        finally:
            await service.close()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        print("serve: interrupted, shutting down")
