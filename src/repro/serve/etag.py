"""ETags derived from RunSpec digests — stable across server restarts.

A served document is a pure function of (figure schema, figure name, the
content addresses of the runs it was computed from).  Hashing exactly
those inputs gives a *strong* validator that costs nothing to recompute
on a cache hit, never needs to be stored, and is identical on every
server instance sharing the cache — so ``If-None-Match`` revalidation
keeps working across restarts and across replicas.

Raw result endpoints use the RunSpec digest itself (quoted) as the ETag;
figure/suite endpoints hash the sorted role→digest mapping together with
the figure name and :data:`~repro.serve.figures.SERVE_SCHEMA`.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List

from repro.serve.figures import SERVE_SCHEMA


def quote(tag: str) -> str:
    """An opaque validator in HTTP quoted form."""
    return f'"{tag}"'


def result_etag(digest: str) -> str:
    """ETag of a raw result payload: its content address, quoted."""
    return quote(digest)


def document_etag(figure: str, digests: Dict[str, Dict[str, str]]) -> str:
    """ETag of a figure/suite document computed from *digests*
    (``{abbr: {role: RunSpec digest}}``)."""
    payload = {"schema": SERVE_SCHEMA, "figure": figure, "runs": digests}
    canonical = json.dumps(payload, sort_keys=True)
    return quote("doc-" + hashlib.sha256(canonical.encode()).hexdigest()[:40])


def stale_etag(etag: str) -> str:
    """The validator of the *stale-marked* rendering of a document.

    A stale degraded response (circuit breaker open, DESIGN.md §17) has a
    different body than the fresh one — it carries ``"stale": true`` — so
    it must carry a different strong validator, or a client that cached
    the stale body would 304-revalidate against the fresh document
    forever.  Deriving it from the fresh ETag keeps it stable across
    servers and restarts for the same underlying runs.
    """
    return quote("stale-" + etag.strip('"'))


def parse_if_none_match(header: str) -> List[str]:
    """The validators of an ``If-None-Match`` header (``*`` included).

    Weak prefixes (``W/``) are stripped: for 304 revalidation weak
    comparison is allowed, and our validators are all strong anyway.
    """
    tags = []
    for part in header.split(","):
        part = part.strip()
        if not part:
            continue
        if part.startswith("W/"):
            part = part[2:]
        tags.append(part)
    return tags


def matches(etag: str, if_none_match: str) -> bool:
    """Would a conditional GET with *if_none_match* revalidate *etag*?"""
    tags = parse_if_none_match(if_none_match)
    return "*" in tags or etag in tags
