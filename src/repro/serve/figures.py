"""Figure-level metrics, computed identically for HTTP and CLI callers.

Every figure the service knows is one :class:`FigureDef`: which run
*roles* it needs per benchmark (``Base`` baseline, the query's ``MODEL``,
or a ``PROFILE`` run with the redundancy profiler armed) and a pure
``compute`` from those loaded runs to plain metric values.  The HTTP
handlers load the runs from the disk cache and the ``repro query`` CLI
verb loads them through :func:`~repro.harness.runner.run_benchmark` — but
both feed the same compute functions and serialize through
:func:`canonical_json`, so a served figure body is byte-identical to the
CLI output for the same query (the end-to-end test asserts exactly that).

Metrics mirror the experiment drivers in
:mod:`repro.harness.experiments`, reduced to one benchmark (single-figure
queries) or re-aggregated over the whole suite via the stats registry's
``StatGroup.merged`` (suite queries).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.energy import EnergyReport, compute_energy
from repro.harness.runner import RunSpec, lookup_result, run_benchmark
from repro.profiling import RedundancyProfile
from repro.serve.query import QuerySpec, required_specs
from repro.sim.gpu import RunResult
from repro.stats import StatGroup

#: Bump when the figure document layout changes incompatibly; part of the
#: ETag derivation, so a schema change invalidates client caches.
SERVE_SCHEMA = 1


@dataclass
class LoadedRun:
    """One run's everything the figure computations read."""

    spec: RunSpec
    digest: str
    result: RunResult
    energy: EnergyReport
    profile: Optional[RedundancyProfile] = None


@dataclass(frozen=True)
class FigureDef:
    """What one figure needs and how its metrics fall out of the runs."""

    name: str
    #: Run roles per benchmark: "Base", "MODEL", and/or "PROFILE".
    roles: Tuple[str, ...]
    #: ``compute(query, {role: LoadedRun}) -> {metric: value}``.
    compute: Callable[[QuerySpec, Dict[str, LoadedRun]], Dict[str, float]]
    #: One-line description for the index endpoint and docs.
    doc: str = ""


def _fig2(_query: QuerySpec, runs: Dict[str, LoadedRun]) -> Dict[str, float]:
    profile = runs["PROFILE"].profile
    return {
        "repeated": profile.repeat_fraction,
        "repeated_gt10": profile.high_repeat_fraction,
    }


def _wir_stat(result: RunResult, path: str) -> float:
    """A ``wir.*`` per-SM total, or 0 for designs without a WIR unit."""
    groups = result.sm_groups
    if not groups or "wir" not in groups[0].children:
        return 0
    return result.sm_stat(path)


def _fig12(_query: QuerySpec, runs: Dict[str, LoadedRun]) -> Dict[str, float]:
    base, reuse = runs["Base"].result, runs["MODEL"].result
    dummy = _wir_stat(reuse, "wir.dummy_movs")
    return {
        "relative_backend": (reuse.backend_instructions + dummy)
        / max(1, base.backend_instructions),
        "reuse_fraction": reuse.reuse_fraction,
        "dummy_mov_fraction": dummy / max(1, reuse.issued_instructions),
    }


def _fig14(_query: QuerySpec, runs: Dict[str, LoadedRun]) -> Dict[str, float]:
    base, reuse = runs["Base"].energy, runs["MODEL"].energy
    return {
        "relative_gpu_energy": reuse.gpu_total / base.gpu_total,
        "relative_sm_energy": reuse.sm_total / base.sm_total,
    }


def _fig15(_query: QuerySpec, runs: Dict[str, LoadedRun]) -> Dict[str, float]:
    base, reuse = runs["Base"].result, runs["MODEL"].result
    return {
        "relative_accesses": reuse.sm_stat("l1d.accesses")
        / max(1, base.sm_stat("l1d.accesses")),
        "relative_misses": reuse.sm_stat("l1d.misses")
        / max(1, base.sm_stat("l1d.misses")),
    }


def _fig17(_query: QuerySpec, runs: Dict[str, LoadedRun]) -> Dict[str, float]:
    base, reuse = runs["Base"].result, runs["MODEL"].result
    return {"speedup": base.cycles / reuse.cycles}


FIGURES: Dict[str, FigureDef] = {
    figure.name: figure
    for figure in (
        FigureDef("fig2", ("PROFILE",), _fig2,
                  "repeated warp computations in 1K-instruction windows"),
        FigureDef("fig12", ("Base", "MODEL"), _fig12,
                  "backend instructions relative to Base"),
        FigureDef("fig14", ("Base", "MODEL"), _fig14,
                  "GPU/SM energy relative to Base"),
        FigureDef("fig15", ("Base", "MODEL"), _fig15,
                  "L1D accesses and misses relative to Base"),
        FigureDef("fig17", ("Base", "MODEL"), _fig17,
                  "speedup over Base"),
    )
}


# ------------------------------------------------------------- documents

def canonical_json(doc: Dict) -> str:
    """The one serialization both HTTP bodies and CLI output use."""
    return json.dumps(doc, sort_keys=True)


def figure_document(query: QuerySpec,
                    loaded: Dict[str, Dict[str, LoadedRun]]) -> Dict:
    """The served figure JSON: query echo, metric data, run digests.

    For suite queries ``data`` holds per-benchmark rows plus a
    ``summary`` re-aggregated from the merged stats registries; for
    single-workload queries it holds that workload's metrics directly.
    """
    figure = FIGURES[query.fig]
    doc: Dict = {
        "schema": SERVE_SCHEMA,
        "figure": query.fig,
        "query": query.to_dict(),
        "runs": {
            abbr: {role: run.digest for role, run in by_role.items()}
            for abbr, by_role in loaded.items()
        },
    }
    if query.suite:
        doc["rows"] = {abbr: figure.compute(query, by_role)
                       for abbr, by_role in loaded.items()}
        doc["summary"] = suite_summary(loaded)
    else:
        doc["data"] = figure.compute(query, loaded[query.workload])
    return doc


def suite_summary(loaded: Dict[str, Dict[str, LoadedRun]]) -> Dict:
    """Whole-suite aggregates from one merged stats registry.

    The per-benchmark registries of the query's MODEL runs (falling back
    to the PROFILE role for profile-only figures) are merged into a
    single tree with :meth:`StatGroup.merged`, and the headline totals
    are read back out of the merged tree — the same cross-SM/cross-run
    aggregation path ``repro campaign status`` uses.
    """
    runs = [by_role.get("MODEL") or by_role.get("PROFILE")
            or next(iter(by_role.values()))
            for by_role in loaded.values()]
    merged = StatGroup.merged((run.result.stats for run in runs),
                              name="suite")
    sm_groups = [merged.children[name] for name in sorted(
        (n for n in merged.children if n.startswith("sm")),
        key=lambda n: int(n[2:]))]

    def total(path: str) -> int:
        return sum(group.lookup(path) for group in sm_groups)

    issued = total("core.issued")
    return {
        "workloads": len(runs),
        "cycles": sum(run.result.cycles for run in runs),
        "issued_instructions": issued,
        "backend_instructions": total("core.backend_insts"),
        "reused_instructions": total("core.reused"),
        "reuse_fraction": total("core.reused") / max(1, issued),
        "dram_accesses": int(merged.lookup("memory.dram.accesses")),
    }


# --------------------------------------------------------------- loaders

def load_via_harness(query: QuerySpec) -> Dict[str, Dict[str, LoadedRun]]:
    """Obtain every required run through the CLI harness (simulating on
    miss) — the reference path ``repro query`` uses."""
    loaded: Dict[str, Dict[str, LoadedRun]] = {}
    for abbr, by_role in required_specs(query).items():
        loaded[abbr] = {}
        for role, spec in by_role.items():
            run = run_benchmark(
                spec.abbr, spec.model, scale=spec.scale, seed=spec.seed,
                num_sms=spec.num_sms, profile=spec.profile,
                exec_engine=spec.exec_engine,
                **dict(spec.wir_overrides))
            loaded[abbr][role] = LoadedRun(
                spec=spec, digest=spec.digest(), result=run.result,
                energy=run.energy, profile=run.profile)
    return loaded


def load_cached(spec: RunSpec) -> Optional[LoadedRun]:
    """One run from the memo/disk cache, or ``None`` (never simulates)."""
    found = lookup_result(spec)
    if found is None:
        return None
    result, profile = found
    return LoadedRun(spec=spec, digest=spec.digest(), result=result,
                     energy=compute_energy(result), profile=profile)
