"""A small, strict HTTP/1.1 server on raw asyncio streams.

The serve API needs exactly: GET/HEAD, query strings, a handful of
headers (``If-None-Match`` in, ``ETag``/``Retry-After`` out), keep-alive,
and JSON bodies — all comfortably within ``asyncio.start_server`` plus a
hand-rolled request parser, so the service stays stdlib-only like the
rest of the repo.  The parser is deliberately strict (bounded line and
header sizes, malformed requests get a 400 and the connection closed);
the protocol battery in ``tests/test_serve_protocol.py`` pins the
behaviour.

Errors travel as one envelope shape everywhere::

    {"error": {"code": "<kebab-slug>", "message": "...", ["param": "..."]}}
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import (Awaitable, Callable, Dict, List, Optional, Sequence,
                    Tuple)
from urllib.parse import parse_qs, unquote, urlsplit

#: Parser hard limits; beyond them the request is refused outright.
MAX_REQUEST_LINE = 8192
MAX_HEADER_LINE = 8192
MAX_HEADERS = 100

#: Seconds an idle keep-alive connection may sit between requests.
KEEPALIVE_TIMEOUT = 30.0

JSON_TYPE = "application/json; charset=utf-8"


class BadRequest(Exception):
    """The bytes on the wire do not form an acceptable HTTP request."""


@dataclass
class Request:
    method: str
    path: str
    query: Dict[str, List[str]]
    headers: Dict[str, str]
    version: str
    remote: str = "-"

    def header(self, name: str, default: str = "") -> str:
        return self.headers.get(name.lower(), default)

    @property
    def wants_close(self) -> bool:
        connection = self.header("connection").lower()
        if self.version == "HTTP/1.0":
            return "keep-alive" not in connection
        return "close" in connection


@dataclass
class Response:
    status: int
    body: bytes = b""
    content_type: str = JSON_TYPE
    headers: List[Tuple[str, str]] = field(default_factory=list)

    @classmethod
    def json(cls, status: int, doc, *,
             headers: Sequence[Tuple[str, str]] = ()) -> "Response":
        body = json.dumps(doc, sort_keys=True).encode()
        return cls(status, body, JSON_TYPE, list(headers))

    @classmethod
    def text(cls, status: int, body: str) -> "Response":
        return cls(status, body.encode(), "text/plain; charset=utf-8")


def error_response(status: int, code: str, message: str,
                   param: str = "") -> Response:
    envelope = {"error": {"code": code, "message": message}}
    if param:
        envelope["error"]["param"] = param
    return Response.json(status, envelope)


REASONS = {200: "OK", 202: "Accepted", 304: "Not Modified",
           400: "Bad Request", 404: "Not Found",
           405: "Method Not Allowed", 408: "Request Timeout",
           500: "Internal Server Error"}

#: ``handler(service, request, **path_params) -> Response`` (awaitable).
Handler = Callable[..., Awaitable[Response]]


class Router:
    """Literal-segment routing with ``{name}`` captures (no regexes)."""

    def __init__(self) -> None:
        self._routes: List[Tuple[str, List[str], Handler]] = []

    def get(self, pattern: str, handler: Handler) -> None:
        self._routes.append(("GET", pattern.strip("/").split("/"), handler))

    def resolve(self, method: str, path: str
                ) -> Tuple[Handler, Dict[str, str]]:
        """The handler and captures for *path*, or an error Response
        raised as :class:`RoutingError`."""
        segments = [unquote(part) for part in path.strip("/").split("/")]
        matched_path = False
        for verb, parts, handler in self._routes:
            captures = self._match(parts, segments)
            if captures is None:
                continue
            matched_path = True
            # HEAD is GET without the body; the server strips it.
            if method in (verb, "HEAD"):
                return handler, captures
        if matched_path:
            raise RoutingError(error_response(
                405, "method-not-allowed",
                f"{method} is not supported here (use GET)"))
        raise RoutingError(error_response(
            404, "not-found", f"no such endpoint: {path}"))

    @staticmethod
    def _match(parts: List[str], segments: List[str]
               ) -> Optional[Dict[str, str]]:
        if len(parts) != len(segments):
            return None
        captures: Dict[str, str] = {}
        for part, segment in zip(parts, segments):
            if part.startswith("{") and part.endswith("}"):
                if not segment:
                    return None
                captures[part[1:-1]] = segment
            elif part != segment:
                return None
        return captures


class RoutingError(Exception):
    """Carries the error Response routing decided on."""

    def __init__(self, response: Response) -> None:
        super().__init__(response.status)
        self.response = response


class AccessLog:
    """Combined-ish access log: in-memory ring plus an optional file."""

    def __init__(self, path: Optional[Path] = None, keep: int = 1000) -> None:
        self.path = Path(path) if path is not None else None
        self.keep = keep
        self.lines: List[str] = []

    def record(self, request: Optional[Request], status: int, nbytes: int,
               elapsed: float) -> None:
        stamp = time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime())
        if request is not None:
            what = f'"{request.method} {request.path}"'
            remote = request.remote
        else:
            what, remote = '"<malformed>"', "-"
        line = (f"{stamp} {remote} {what} {status} {nbytes} "
                f"{elapsed * 1000:.1f}ms")
        self.lines.append(line)
        del self.lines[:-self.keep]
        if self.path is not None:
            with open(self.path, "a") as fh:
                fh.write(line + "\n")


# ------------------------------------------------------------- wire parsing

async def read_request(reader: asyncio.StreamReader,
                       remote: str) -> Optional[Request]:
    """One request off the wire; ``None`` on clean EOF before a request."""
    try:
        line = await asyncio.wait_for(reader.readline(), KEEPALIVE_TIMEOUT)
    except asyncio.TimeoutError:
        return None
    if not line:
        return None
    if len(line) > MAX_REQUEST_LINE:
        raise BadRequest("request line too long")
    try:
        method, target, version = line.decode("ascii").split()
    except ValueError:
        raise BadRequest(f"malformed request line: {line!r}") from None
    if version not in ("HTTP/1.0", "HTTP/1.1"):
        raise BadRequest(f"unsupported protocol {version}")

    headers: Dict[str, str] = {}
    for _ in range(MAX_HEADERS + 1):
        line = await reader.readline()
        if line in (b"\r\n", b"\n"):
            break
        if not line:
            raise BadRequest("connection closed mid-headers")
        if len(line) > MAX_HEADER_LINE:
            raise BadRequest("header line too long")
        if len(headers) >= MAX_HEADERS:
            raise BadRequest("too many headers")
        try:
            name, _, value = line.decode("latin-1").partition(":")
        except UnicodeDecodeError:
            raise BadRequest("undecodable header") from None
        if not _ or not name or name != name.strip():
            raise BadRequest(f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()

    if headers.get("content-length", "0") not in ("", "0"):
        raise BadRequest("request bodies are not accepted")
    split = urlsplit(target)
    return Request(method=method.upper(), path=split.path or "/",
                   query=parse_qs(split.query, keep_blank_values=True),
                   headers=headers, version=version, remote=remote)


def render_response(request: Optional[Request],
                    response: Response) -> bytes:
    head_only = request is not None and request.method == "HEAD"
    body = b"" if (head_only or response.status == 304) else response.body
    close = request is None or request.wants_close
    reason = REASONS.get(response.status, "Unknown")
    lines = [f"HTTP/1.1 {response.status} {reason}"]
    if response.status != 304:
        lines.append(f"Content-Type: {response.content_type}")
    # 304/HEAD: advertise the length the GET would have (RFC 9110 §8.6).
    lines.append(f"Content-Length: {len(response.body)}")
    lines.extend(f"{name}: {value}" for name, value in response.headers)
    lines.append(f"Connection: {'close' if close else 'keep-alive'}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + body


# --------------------------------------------------------------- the server

class HttpServer:
    """Bind, accept, parse, dispatch; the service supplies the handlers."""

    def __init__(self, router: Router, dispatch: Handler,
                 access_log: AccessLog) -> None:
        self.router = router
        self.dispatch = dispatch
        self.access_log = access_log
        self._server: Optional[asyncio.base_events.Server] = None

    async def start(self, host: str, port: int) -> Tuple[str, int]:
        self._server = await asyncio.start_server(self._client, host, port)
        bound = self._server.sockets[0].getsockname()
        return bound[0], bound[1]

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _client(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        peer = writer.get_extra_info("peername")
        remote = peer[0] if isinstance(peer, tuple) else "-"
        try:
            while True:
                started = time.monotonic()
                request: Optional[Request] = None
                try:
                    request = await read_request(reader, remote)
                    if request is None:
                        return
                    response = await self._respond(request)
                except BadRequest as err:
                    response = error_response(400, "bad-request", str(err))
                payload = render_response(request, response)
                writer.write(payload)
                await writer.drain()
                self.access_log.record(request, response.status,
                                       len(payload),
                                       time.monotonic() - started)
                if request is None or request.wants_close:
                    return
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _respond(self, request: Request) -> Response:
        try:
            handler, captures = self.router.resolve(request.method,
                                                    request.path)
        except RoutingError as err:
            return err.response
        try:
            return await self.dispatch(handler, request, captures)
        except Exception as err:  # noqa: BLE001 - boundary: never drop conn
            return error_response(
                500, "internal-error", f"{type(err).__name__}: {err}")
