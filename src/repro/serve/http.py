"""A small, strict HTTP/1.1 server on raw asyncio streams.

The serve API needs exactly: GET/HEAD, query strings, a handful of
headers (``If-None-Match`` in, ``ETag``/``Retry-After`` out), keep-alive,
and JSON bodies — all comfortably within ``asyncio.start_server`` plus a
hand-rolled request parser, so the service stays stdlib-only like the
rest of the repo.  The parser is deliberately strict (bounded line and
header sizes, malformed requests get a 400 and the connection closed);
the protocol battery in ``tests/test_serve_protocol.py`` pins the
behaviour.

Errors travel as one envelope shape everywhere::

    {"error": {"code": "<kebab-slug>", "message": "...", ["param": "..."]}}
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import (Awaitable, Callable, Dict, List, Optional, Sequence,
                    Tuple)
from urllib.parse import parse_qs, unquote, urlsplit

#: Parser hard limits; beyond them the request is refused outright.
MAX_REQUEST_LINE = 8192
MAX_HEADER_LINE = 8192
MAX_HEADERS = 100

#: Seconds an idle keep-alive connection may sit between requests.
KEEPALIVE_TIMEOUT = 30.0

#: Seconds a client gets to finish sending the request head once the
#: request line has arrived — the slow-loris guard: a client dripping
#: header bytes can pin a connection for at most this long.
HEADER_TIMEOUT = 5.0

JSON_TYPE = "application/json; charset=utf-8"


class BadRequest(Exception):
    """The bytes on the wire do not form an acceptable HTTP request."""


class SlowClient(BadRequest):
    """The client started a request head but never finished it in time
    (slow-loris); answered with 408 and the connection closed."""


@dataclass
class Request:
    method: str
    path: str
    query: Dict[str, List[str]]
    headers: Dict[str, str]
    version: str
    remote: str = "-"

    def header(self, name: str, default: str = "") -> str:
        return self.headers.get(name.lower(), default)

    @property
    def wants_close(self) -> bool:
        connection = self.header("connection").lower()
        if self.version == "HTTP/1.0":
            return "keep-alive" not in connection
        return "close" in connection


@dataclass
class Response:
    status: int
    body: bytes = b""
    content_type: str = JSON_TYPE
    headers: List[Tuple[str, str]] = field(default_factory=list)
    #: Resilience outcome tag for the access log: ``-`` (normal), or
    #: ``shed`` / ``timeout`` / ``stale`` / ``breaker`` / ``deferred``.
    outcome: str = "-"

    @classmethod
    def json(cls, status: int, doc, *,
             headers: Sequence[Tuple[str, str]] = ()) -> "Response":
        body = json.dumps(doc, sort_keys=True).encode()
        return cls(status, body, JSON_TYPE, list(headers))

    @classmethod
    def text(cls, status: int, body: str) -> "Response":
        return cls(status, body.encode(), "text/plain; charset=utf-8")


def error_response(status: int, code: str, message: str,
                   param: str = "") -> Response:
    envelope = {"error": {"code": code, "message": message}}
    if param:
        envelope["error"]["param"] = param
    return Response.json(status, envelope)


REASONS = {200: "OK", 202: "Accepted", 304: "Not Modified",
           400: "Bad Request", 404: "Not Found",
           405: "Method Not Allowed", 408: "Request Timeout",
           500: "Internal Server Error", 503: "Service Unavailable",
           504: "Gateway Timeout"}

#: ``handler(service, request, **path_params) -> Response`` (awaitable).
Handler = Callable[..., Awaitable[Response]]


class Router:
    """Literal-segment routing with ``{name}`` captures (no regexes)."""

    def __init__(self) -> None:
        self._routes: List[Tuple[str, List[str], Handler]] = []

    def get(self, pattern: str, handler: Handler) -> None:
        self._routes.append(("GET", pattern.strip("/").split("/"), handler))

    def resolve(self, method: str, path: str
                ) -> Tuple[Handler, Dict[str, str]]:
        """The handler and captures for *path*, or an error Response
        raised as :class:`RoutingError`."""
        segments = [unquote(part) for part in path.strip("/").split("/")]
        matched_path = False
        for verb, parts, handler in self._routes:
            captures = self._match(parts, segments)
            if captures is None:
                continue
            matched_path = True
            # HEAD is GET without the body; the server strips it.
            if method in (verb, "HEAD"):
                return handler, captures
        if matched_path:
            raise RoutingError(error_response(
                405, "method-not-allowed",
                f"{method} is not supported here (use GET)"))
        raise RoutingError(error_response(
            404, "not-found", f"no such endpoint: {path}"))

    @staticmethod
    def _match(parts: List[str], segments: List[str]
               ) -> Optional[Dict[str, str]]:
        if len(parts) != len(segments):
            return None
        captures: Dict[str, str] = {}
        for part, segment in zip(parts, segments):
            if part.startswith("{") and part.endswith("}"):
                if not segment:
                    return None
                captures[part[1:-1]] = segment
            elif part != segment:
                return None
        return captures


class RoutingError(Exception):
    """Carries the error Response routing decided on."""

    def __init__(self, response: Response) -> None:
        super().__init__(response.status)
        self.response = response


class AccessLog:
    """Combined-ish access log: in-memory ring plus an optional file."""

    def __init__(self, path: Optional[Path] = None, keep: int = 1000) -> None:
        self.path = Path(path) if path is not None else None
        self.keep = keep
        self.lines: List[str] = []
        #: Aggregate tallies over everything ever logged (not just the
        #: ring): response status classes and resilience outcomes.
        self.status_counts: Dict[int, int] = {}
        self.outcome_counts: Dict[str, int] = {}

    def record(self, request: Optional[Request], status: int, nbytes: int,
               elapsed: float, outcome: str = "-") -> None:
        stamp = time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime())
        if request is not None:
            what = f'"{request.method} {request.path}"'
            remote = request.remote
        else:
            what, remote = '"<malformed>"', "-"
        line = (f"{stamp} {remote} {what} {status} {nbytes} "
                f"{elapsed * 1000:.1f}ms {outcome}")
        self.lines.append(line)
        del self.lines[:-self.keep]
        self.status_counts[status] = self.status_counts.get(status, 0) + 1
        if outcome != "-":
            self.outcome_counts[outcome] = \
                self.outcome_counts.get(outcome, 0) + 1
        if self.path is not None:
            with open(self.path, "a") as fh:
                fh.write(line + "\n")


# ------------------------------------------------------------- wire parsing

async def read_request(reader: asyncio.StreamReader, remote: str,
                       keepalive_timeout: float = KEEPALIVE_TIMEOUT,
                       header_timeout: float = HEADER_TIMEOUT
                       ) -> Optional[Request]:
    """One request off the wire; ``None`` on clean EOF before a request.

    Two distinct wire budgets: *keepalive_timeout* bounds the idle wait
    for the request line (quietly closing a connection that never speaks
    again), while *header_timeout* bounds finishing the header block once
    the request line arrived — exceeding it raises :class:`SlowClient`
    (408, connection closed) so a slow-loris client cannot pin the
    connection by dripping header bytes forever.
    """
    try:
        line = await asyncio.wait_for(reader.readline(), keepalive_timeout)
    except asyncio.TimeoutError:
        return None
    if not line:
        return None
    if len(line) > MAX_REQUEST_LINE:
        raise BadRequest("request line too long")
    try:
        method, target, version = line.decode("ascii").split()
    except ValueError:
        raise BadRequest(f"malformed request line: {line!r}") from None
    if version not in ("HTTP/1.0", "HTTP/1.1"):
        raise BadRequest(f"unsupported protocol {version}")

    try:
        headers = await asyncio.wait_for(_read_headers(reader),
                                         header_timeout)
    except asyncio.TimeoutError:
        raise SlowClient(
            f"request head not completed within {header_timeout:.1f}s"
        ) from None

    if headers.get("content-length", "0") not in ("", "0"):
        raise BadRequest("request bodies are not accepted")
    split = urlsplit(target)
    return Request(method=method.upper(), path=split.path or "/",
                   query=parse_qs(split.query, keep_blank_values=True),
                   headers=headers, version=version, remote=remote)


async def _read_headers(reader: asyncio.StreamReader) -> Dict[str, str]:
    headers: Dict[str, str] = {}
    for _ in range(MAX_HEADERS + 1):
        line = await reader.readline()
        if line in (b"\r\n", b"\n"):
            break
        if not line:
            raise BadRequest("connection closed mid-headers")
        if len(line) > MAX_HEADER_LINE:
            raise BadRequest("header line too long")
        if len(headers) >= MAX_HEADERS:
            raise BadRequest("too many headers")
        try:
            name, _, value = line.decode("latin-1").partition(":")
        except UnicodeDecodeError:
            raise BadRequest("undecodable header") from None
        if not _ or not name or name != name.strip():
            raise BadRequest(f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    return headers


def render_response(request: Optional[Request], response: Response,
                    force_close: bool = False) -> bytes:
    head_only = request is not None and request.method == "HEAD"
    body = b"" if (head_only or response.status == 304) else response.body
    close = force_close or request is None or request.wants_close
    reason = REASONS.get(response.status, "Unknown")
    lines = [f"HTTP/1.1 {response.status} {reason}"]
    if response.status != 304:
        lines.append(f"Content-Type: {response.content_type}")
    # 304/HEAD: advertise the length the GET would have (RFC 9110 §8.6).
    lines.append(f"Content-Length: {len(response.body)}")
    lines.extend(f"{name}: {value}" for name, value in response.headers)
    lines.append(f"Connection: {'close' if close else 'keep-alive'}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + body


# --------------------------------------------------------------- the server

class HttpServer:
    """Bind, accept, parse, dispatch; the service supplies the handlers.

    Every connection task is tracked, and tasks currently *handling a
    request* (past the parser, before the response is written) are
    tracked separately — graceful shutdown cancels idle connections
    immediately but lets busy ones finish under :meth:`drain`'s deadline.
    """

    def __init__(self, router: Router, dispatch: Handler,
                 access_log: AccessLog,
                 keepalive_timeout: float = KEEPALIVE_TIMEOUT,
                 header_timeout: float = HEADER_TIMEOUT) -> None:
        self.router = router
        self.dispatch = dispatch
        self.access_log = access_log
        self.keepalive_timeout = keepalive_timeout
        self.header_timeout = header_timeout
        self._server: Optional[asyncio.base_events.Server] = None
        self._conns: set = set()
        self._busy: set = set()
        self._draining = False

    @property
    def connections(self) -> int:
        return len(self._conns)

    async def start(self, host: str, port: int) -> Tuple[str, int]:
        self._server = await asyncio.start_server(self._client, host, port)
        bound = self._server.sockets[0].getsockname()
        return bound[0], bound[1]

    def stop_accepting(self) -> None:
        """Close the listening socket; existing connections live on."""
        if self._server is not None:
            self._server.close()

    async def drain(self, deadline: float) -> bool:
        """Stop keep-alive reuse, cancel idle connections, and wait up to
        *deadline* seconds for busy ones; True when everything finished
        (False: stragglers were cancelled at the deadline)."""
        self._draining = True
        for task in list(self._conns - self._busy):
            task.cancel()
        pending = {task for task in self._conns if not task.done()}
        clean = True
        if pending:
            _, late = await asyncio.wait(pending, timeout=deadline)
            if late:
                clean = False
                for task in late:
                    task.cancel()
                await asyncio.wait(late, timeout=1.0)
        return clean

    async def close(self) -> None:
        if self._server is not None:
            self.stop_accepting()
            try:
                await asyncio.wait_for(self._server.wait_closed(), 5.0)
            except asyncio.TimeoutError:
                pass
            self._server = None

    async def _client(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        peer = writer.get_extra_info("peername")
        remote = peer[0] if isinstance(peer, tuple) else "-"
        task = asyncio.current_task()
        self._conns.add(task)
        try:
            while True:
                started = time.monotonic()
                request: Optional[Request] = None
                close_after = self._draining
                try:
                    request = await read_request(
                        reader, remote,
                        keepalive_timeout=self.keepalive_timeout,
                        header_timeout=self.header_timeout)
                    if request is None:
                        return
                    self._busy.add(task)
                    response = await self._respond(request)
                except SlowClient as err:
                    response = error_response(408, "request-timeout",
                                              str(err))
                    response.outcome = "slow-client"
                    close_after = True
                except BadRequest as err:
                    response = error_response(400, "bad-request", str(err))
                payload = render_response(request, response,
                                          force_close=close_after)
                writer.write(payload)
                await writer.drain()
                self._busy.discard(task)
                self.access_log.record(request, response.status,
                                       len(payload),
                                       time.monotonic() - started,
                                       outcome=response.outcome)
                if (close_after or self._draining or request is None
                        or request.wants_close):
                    return
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            self._busy.discard(task)
            self._conns.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _respond(self, request: Request) -> Response:
        try:
            handler, captures = self.router.resolve(request.method,
                                                    request.path)
        except RoutingError as err:
            return err.response
        try:
            return await self.dispatch(handler, request, captures)
        except Exception as err:  # noqa: BLE001 - boundary: never drop conn
            return error_response(
                500, "internal-error", f"{type(err).__name__}: {err}")
