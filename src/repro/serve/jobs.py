"""Background job management: cache misses become campaign jobs.

A query that cannot be answered from the disk cache is turned into an
*ad-hoc* campaign (:meth:`Campaign.create_from_specs` — the missing
RunSpecs verbatim, no matrix, no checkpoint stamping) and handed to a
single daemon worker thread that drains campaigns one at a time through
:func:`~repro.campaign.engine.run_worker`.  That reuses the whole PR-7
fault-tolerance stack for free: leases, the append-only journal,
quarantine for poison specs, and — critically — the cross-worker
lease-based ``SingleFlight`` guard ``run_worker`` installs, which is the
second dedup layer under the serve API (the in-process
:class:`~repro.serve.singleflight.AsyncSingleFlight` being the first).

Job identity is the ad-hoc campaign id, itself derived from the sorted
spec digests: submitting the same missing set twice — from this process,
another replica, or after a restart — converges on one durable campaign
directory.  Job *state* is never stored; it is folded on demand from the
campaign journal and live leases, exactly like ``repro campaign status``.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.campaign.engine import (DEFAULT_MAX_ATTEMPTS, DEFAULT_TTL,
                                   Campaign, fold_journal, job_state,
                                   run_worker)
from repro.campaign.journal import read_journal
from repro.harness.runner import RunSpec


@dataclass
class Job:
    """One submitted unit of background work (== one ad-hoc campaign)."""

    id: str
    digests: List[str]
    created: float
    campaign: Campaign = field(repr=False)
    #: Set if the worker thread itself crashed while draining this job
    #: (job-level simulation failures live in the journal instead).
    worker_error: Optional[str] = None


class JobManager:
    """Submit RunSpec sets; a daemon thread simulates them durably."""

    def __init__(self, base: Path, ttl: float = DEFAULT_TTL,
                 max_attempts: int = DEFAULT_MAX_ATTEMPTS,
                 worker_id: str = "serve-worker") -> None:
        self.base = Path(base)
        self.ttl = ttl
        self.max_attempts = max_attempts
        self.worker_id = worker_id
        self._jobs: Dict[str, Job] = {}
        self._lock = threading.Lock()
        self._queue: "queue.Queue[Optional[Job]]" = queue.Queue()
        self._thread: Optional[threading.Thread] = None
        #: Observable effort counters (tests and /v1/healthz read these).
        self.counts = {"submitted": 0, "resubmitted": 0, "drained": 0}

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        if self._thread is not None and self._thread.is_alive():
            return
        self._thread = threading.Thread(target=self._drain, daemon=True,
                                        name=self.worker_id)
        self._thread.start()

    def stop(self, timeout: float = 10.0) -> None:
        if self._thread is None:
            return
        self._queue.put(None)
        self._thread.join(timeout=timeout)
        self._thread = None

    # -- submission and lookup --------------------------------------------

    def submit(self, specs: Sequence[RunSpec]) -> Job:
        """Enqueue *specs*; idempotent per distinct spec set.

        Re-submitting a set already known to this manager returns the
        existing job without queueing a duplicate drain (the campaign
        directory is durable either way, so even a restarted server
        resumes rather than redoing finished work).
        """
        campaign = Campaign.create_from_specs(
            specs, base=self.base, ttl=self.ttl,
            max_attempts=self.max_attempts)
        with self._lock:
            existing = self._jobs.get(campaign.id)
            if existing is not None:
                self.counts["resubmitted"] += 1
                return existing
            job = Job(id=campaign.id, digests=sorted(campaign.jobs),
                      created=time.time(), campaign=campaign)
            self._jobs[job.id] = job
            self.counts["submitted"] += 1
        self._queue.put(job)
        return job

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def __len__(self) -> int:
        with self._lock:
            return len(self._jobs)

    def status(self, job: Job) -> Dict:
        """The job's state document, folded live from campaign storage."""
        campaign = job.campaign
        logs = fold_journal(read_journal(campaign.journal_path).records)
        live = {lease.job for lease in campaign.lease_manager().live()}
        states = {digest: job_state(logs.get(digest), digest in live)
                  for digest in job.digests}
        return {
            "id": job.id,
            "state": self._overall(job, states),
            "created": job.created,
            "jobs": states,
            "counts": {
                "total": len(states),
                "done": sum(1 for s in states.values() if s == "done"),
                "running": sum(1 for s in states.values() if s == "running"),
                "pending": sum(1 for s in states.values() if s == "pending"),
                "quarantined": sum(1 for s in states.values()
                                   if s == "quarantined"),
            },
            **({"error": job.worker_error} if job.worker_error else {}),
        }

    @staticmethod
    def _overall(job: Job, states: Dict[str, str]) -> str:
        if all(state == "done" for state in states.values()):
            return "done"
        if job.worker_error or any(state == "quarantined"
                                   for state in states.values()):
            return "failed"
        if any(state == "running" for state in states.values()):
            return "running"
        return "queued"

    # -- the worker thread -------------------------------------------------

    def _drain(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                return
            try:
                run_worker(job.campaign, self.worker_id)
            except Exception as err:  # noqa: BLE001 - surfaced via status
                job.worker_error = f"{type(err).__name__}: {err}"
            finally:
                self.counts["drained"] += 1
