"""Background job management: cache misses become campaign jobs.

A query that cannot be answered from the disk cache is turned into an
*ad-hoc* campaign (:meth:`Campaign.create_from_specs` — the missing
RunSpecs verbatim, no matrix, no checkpoint stamping) and handed to a
single daemon worker thread that drains campaigns one at a time through
:func:`~repro.campaign.engine.run_worker`.  That reuses the whole PR-7
fault-tolerance stack for free: leases, the append-only journal,
quarantine for poison specs, and — critically — the cross-worker
lease-based ``SingleFlight`` guard ``run_worker`` installs, which is the
second dedup layer under the serve API (the in-process
:class:`~repro.serve.singleflight.AsyncSingleFlight` being the first).

Job identity is the ad-hoc campaign id, itself derived from the sorted
spec digests: submitting the same missing set twice — from this process,
another replica, or after a restart — converges on one durable campaign
directory.  Job *state* is never stored; it is folded on demand from the
campaign journal and live leases, exactly like ``repro campaign status``.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from repro.campaign.engine import (DEFAULT_MAX_ATTEMPTS, DEFAULT_TTL,
                                   Campaign, fold_journal, job_state,
                                   run_worker)
from repro.campaign.journal import read_journal
from repro.harness.runner import RunSpec

#: Test seam: called at the top of every drain-loop iteration (before the
#: queue get).  Chaos tests monkeypatch it to raise and kill the drain
#: thread mid-service, proving the watchdog restart path.
_TEST_DRAIN_HOOK: Optional[Callable[[], None]] = None


class JobQueueFull(Exception):
    """The pending-job queue is at its bound; nothing was enqueued."""


@dataclass
class Job:
    """One submitted unit of background work (== one ad-hoc campaign)."""

    id: str
    digests: List[str]
    created: float
    campaign: Campaign = field(repr=False)
    #: Set if the worker thread itself crashed while draining this job
    #: (job-level simulation failures live in the journal instead).
    worker_error: Optional[str] = None


class JobManager:
    """Submit RunSpec sets; a daemon thread simulates them durably.

    Resilience contract (DESIGN.md §17): the pending queue is **bounded**
    (past ``max_pending`` a submit raises :class:`JobQueueFull` and the
    service answers 202-deferred instead of queueing unboundedly), every
    drain outcome is reported through ``on_outcome`` (feeding the serve
    circuit breaker), :meth:`stop` winds the worker down cooperatively at
    a job boundary, and :meth:`ensure_worker` is the watchdog that detects
    a *crashed* drain thread and restarts it — requeueing whatever job it
    was holding, which is safe because campaigns are durable and resume.
    """

    def __init__(self, base: Path, ttl: float = DEFAULT_TTL,
                 max_attempts: int = DEFAULT_MAX_ATTEMPTS,
                 worker_id: str = "serve-worker",
                 max_pending: int = 0,
                 on_outcome: Optional[Callable[[bool], None]] = None) -> None:
        self.base = Path(base)
        self.ttl = ttl
        self.max_attempts = max_attempts
        self.worker_id = worker_id
        self.max_pending = int(max_pending)  # 0 = unbounded (legacy tests)
        self.on_outcome = on_outcome
        self._jobs: Dict[str, Job] = {}
        self._lock = threading.Lock()
        self._queue: "queue.Queue[Optional[Job]]" = queue.Queue()
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        #: The job the drain thread is currently simulating (for watchdog
        #: requeue after a thread crash).
        self._current: Optional[Job] = None
        #: Observable effort counters (tests and /v1/healthz read these).
        self.counts = {"submitted": 0, "resubmitted": 0, "drained": 0,
                       "rejected": 0, "watchdog_restarts": 0}

    # -- lifecycle ---------------------------------------------------------

    @property
    def worker_alive(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> None:
        if self.worker_alive:
            return
        self._stop.clear()
        self._thread = threading.Thread(target=self._drain, daemon=True,
                                        name=self.worker_id)
        self._thread.start()

    def stop(self, timeout: float = 10.0) -> None:
        """Wind the worker down at a job boundary (checkpoint-safe).

        The stop event makes the in-flight ``run_worker`` return at its
        next between-jobs check; anything unfinished stays durable in its
        campaign directory (leases expire, journal is append-only), so a
        later start — this process or any other — resumes it.  A worker
        mid-*simulation* past the timeout is abandoned as a daemon
        thread, which is the same crash-safety story campaign workers
        already honour.
        """
        if self._thread is None:
            return
        self._stop.set()
        self._queue.put(None)
        self._thread.join(timeout=timeout)
        self._thread = None

    def ensure_worker(self) -> bool:
        """Watchdog: restart the drain thread if it crashed; True = restarted.

        A healthy thread, or one we stopped on purpose, is left alone.
        After a crash the job it was draining is requeued — the campaign
        directory still holds every completed unit, so the redo costs
        only the unfinished remainder.
        """
        if self._stop.is_set() or self.worker_alive:
            return False
        if self._thread is None:
            return False  # never started (worker=False services)
        self.counts["watchdog_restarts"] += 1
        crashed_on = self._current
        self._current = None
        if crashed_on is not None:
            self._queue.put(crashed_on)
        self._thread = threading.Thread(target=self._drain, daemon=True,
                                        name=self.worker_id)
        self._thread.start()
        return True

    # -- submission and lookup --------------------------------------------

    def submit(self, specs: Sequence[RunSpec]) -> Job:
        """Enqueue *specs*; idempotent per distinct spec set.

        Re-submitting a set already known to this manager returns the
        existing job without queueing a duplicate drain (the campaign
        directory is durable either way, so even a restarted server
        resumes rather than redoing finished work).  A *new* set past the
        ``max_pending`` bound raises :class:`JobQueueFull` **before** the
        campaign directory is materialized: deferred work leaves no
        debris, and the client's retry re-submits the identical set.
        """
        digests = sorted({spec.digest() for spec in specs})
        campaign_id = Campaign.adhoc_id(digests)
        with self._lock:
            existing = self._jobs.get(campaign_id)
            if existing is not None:
                self.counts["resubmitted"] += 1
                return existing
            if self.max_pending and self._queue.qsize() >= self.max_pending:
                self.counts["rejected"] += 1
                raise JobQueueFull(
                    f"{self._queue.qsize()} jobs already pending "
                    f"(bound {self.max_pending})")
        campaign = Campaign.create_from_specs(
            specs, base=self.base, ttl=self.ttl,
            max_attempts=self.max_attempts)
        with self._lock:
            existing = self._jobs.get(campaign.id)
            if existing is not None:
                self.counts["resubmitted"] += 1
                return existing
            job = Job(id=campaign.id, digests=sorted(campaign.jobs),
                      created=time.time(), campaign=campaign)
            self._jobs[job.id] = job
            self.counts["submitted"] += 1
        self._queue.put(job)
        return job

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def __len__(self) -> int:
        with self._lock:
            return len(self._jobs)

    def status(self, job: Job) -> Dict:
        """The job's state document, folded live from campaign storage."""
        campaign = job.campaign
        logs = fold_journal(read_journal(campaign.journal_path).records)
        live = {lease.job for lease in campaign.lease_manager().live()}
        states = {digest: job_state(logs.get(digest), digest in live)
                  for digest in job.digests}
        return {
            "id": job.id,
            "state": self._overall(job, states),
            "created": job.created,
            "jobs": states,
            "counts": {
                "total": len(states),
                "done": sum(1 for s in states.values() if s == "done"),
                "running": sum(1 for s in states.values() if s == "running"),
                "pending": sum(1 for s in states.values() if s == "pending"),
                "quarantined": sum(1 for s in states.values()
                                   if s == "quarantined"),
            },
            **({"error": job.worker_error} if job.worker_error else {}),
        }

    @staticmethod
    def _overall(job: Job, states: Dict[str, str]) -> str:
        if all(state == "done" for state in states.values()):
            return "done"
        if job.worker_error or any(state == "quarantined"
                                   for state in states.values()):
            return "failed"
        if any(state == "running" for state in states.values()):
            return "running"
        return "queued"

    # -- the worker thread -------------------------------------------------

    def _drain(self) -> None:
        while True:
            if _TEST_DRAIN_HOOK is not None:
                _TEST_DRAIN_HOOK()  # outside the try: crashes kill the thread
            job = self._queue.get()
            if job is None or self._stop.is_set():
                return
            self._current = job
            ok = False
            try:
                summary = run_worker(job.campaign, self.worker_id,
                                     should_stop=self._stop.is_set)
                ok = summary.quarantined == 0
            except Exception as err:  # noqa: BLE001 - surfaced via status
                job.worker_error = f"{type(err).__name__}: {err}"
            finally:
                self._current = None
                self.counts["drained"] += 1
                # A stop-interrupted drain proves nothing about backend
                # health either way; don't feed it to the breaker.
                if self.on_outcome is not None and not self._stop.is_set():
                    self.on_outcome(ok)
