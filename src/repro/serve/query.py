"""Query parsing: URL parameters in, validated :class:`QuerySpec` out.

The serve layer answers *figure-level* questions ("Fig. 17 speedup for KM
at scale 5 under RLPV"), and every such question is ultimately a set of
simulations.  :class:`QuerySpec` is the validated middle form: it names
the figure and the simulation parameterisation, and
:func:`required_specs` expands it into the exact
:class:`~repro.harness.runner.RunSpec` values the CLI harness would build
for the same request.  That equality is load-bearing — the content
address (``RunSpec.digest()``) is both the cache key *and* the HTTP ETag,
so any serve-only drift would silently split the cache into an HTTP half
and a CLI half.  ``tests/test_serve_query.py`` holds a hypothesis
property pinning the two together.

Parsing is strict: unknown figures, workloads, models, engines, unknown
parameter names, repeated parameters, and out-of-range integers all raise
:class:`QueryError`, which handlers turn into ``400`` error envelopes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence

from repro.core.models import model_names
from repro.harness.runner import EXPERIMENT_SMS, RunSpec
from repro.workloads import DEMO_WORKLOADS, all_abbrs

#: Hard ceilings on the numeric query axes: the service refuses to
#: enqueue arbitrarily large simulations on behalf of anonymous clients.
MAX_SCALE = 8
MAX_SMS = 16
MAX_SEED = 2**31 - 1


class QueryError(ValueError):
    """A malformed or out-of-range query parameter (HTTP 400)."""

    def __init__(self, message: str, param: str = "") -> None:
        super().__init__(message)
        self.param = param


@dataclass(frozen=True)
class QuerySpec:
    """One validated figure-level query (single workload or whole suite)."""

    fig: str
    #: Benchmark abbreviation, or ``"*"`` for a whole-suite query.
    workload: str
    model: str = "RLPV"
    scale: int = 1
    seed: int = 7
    num_sms: int = EXPERIMENT_SMS
    exec_engine: str = "scalar"

    @property
    def suite(self) -> bool:
        return self.workload == "*"

    def workloads(self) -> List[str]:
        """The concrete benchmark list this query spans."""
        return all_abbrs() if self.suite else [self.workload]

    def to_dict(self) -> Dict[str, object]:
        return {
            "fig": self.fig,
            "workload": self.workload,
            "model": self.model,
            "scale": self.scale,
            "seed": self.seed,
            "num_sms": self.num_sms,
            "exec_engine": self.exec_engine,
        }


def known_workloads() -> List[str]:
    """Every benchmark the service will simulate (Table I + demos)."""
    return all_abbrs() + list(DEMO_WORKLOADS)


def _one(params: Mapping[str, Sequence[str]], name: str, default: str) -> str:
    values = params.get(name)
    if values is None:
        return default
    if len(values) != 1:
        raise QueryError(f"parameter {name!r} given {len(values)} times",
                         param=name)
    return values[0]


def _int(params: Mapping[str, Sequence[str]], name: str, default: int,
         low: int, high: int) -> int:
    raw = _one(params, name, str(default))
    try:
        value = int(raw)
    except ValueError:
        raise QueryError(f"parameter {name!r} must be an integer, "
                         f"got {raw!r}", param=name) from None
    if not low <= value <= high:
        raise QueryError(f"parameter {name!r} must be in [{low}, {high}], "
                         f"got {value}", param=name)
    return value


def parse_query(fig: str, params: Mapping[str, Sequence[str]],
                suite: bool = False) -> QuerySpec:
    """Validate raw (multi-valued) query parameters into a QuerySpec.

    *params* is the mapping ``urllib.parse.parse_qs`` produces.  With
    ``suite=True`` the ``workload`` parameter is forbidden (the query
    spans the whole Table I suite); otherwise it is required.
    """
    from repro.serve.figures import FIGURES  # circular-free at call time

    if fig not in FIGURES:
        raise QueryError(
            f"unknown figure {fig!r}; available: {', '.join(FIGURES)}",
            param="fig")
    allowed = {"workload", "model", "scale", "seed", "sms", "engine"}
    unknown = sorted(set(params) - allowed)
    if unknown:
        raise QueryError(f"unknown parameter(s) {', '.join(unknown)}",
                         param=unknown[0])

    if suite:
        if "workload" in params:
            raise QueryError("suite queries span every benchmark; drop the "
                             "'workload' parameter", param="workload")
        workload = "*"
    else:
        workload = _one(params, "workload", "")
        if not workload:
            raise QueryError("missing required parameter 'workload'",
                             param="workload")
        if workload not in known_workloads():
            raise QueryError(f"unknown workload {workload!r} "
                             "(see 'repro list')", param="workload")

    model = _one(params, "model", "RLPV")
    if model not in model_names():
        raise QueryError(f"unknown model {model!r}; available: "
                         f"{', '.join(model_names())}", param="model")
    engine = _one(params, "engine", "scalar")
    if engine not in ("scalar", "vector"):
        raise QueryError(f"unknown engine {engine!r} "
                         "(scalar or vector)", param="engine")
    return QuerySpec(
        fig=fig,
        workload=workload,
        model=model,
        scale=_int(params, "scale", 1, 1, MAX_SCALE),
        seed=_int(params, "seed", 7, 0, MAX_SEED),
        num_sms=_int(params, "sms", EXPERIMENT_SMS, 1, MAX_SMS),
        exec_engine=engine,
    )


def role_spec(query: QuerySpec, role: str, abbr: str) -> RunSpec:
    """The RunSpec one figure *role* resolves to for one benchmark.

    Roles come from the figure table: ``"Base"`` pins the baseline design
    point, ``"MODEL"`` is the query's model axis, and ``"PROFILE"`` is a
    Base run with the redundancy profiler armed (Figure 2).  Everything
    else about the spec — scale, seed, SM count, engine — comes straight
    from the query, through the *same* ``RunSpec.make`` the CLI harness
    uses, so serve digests and CLI digests can never drift apart.
    """
    profile = role == "PROFILE"
    model = query.model if role == "MODEL" else "Base"
    return RunSpec.make(abbr, model, scale=query.scale, seed=query.seed,
                        num_sms=query.num_sms, profile=profile,
                        exec_engine=query.exec_engine)


def required_specs(query: QuerySpec) -> Dict[str, Dict[str, RunSpec]]:
    """Every simulation the query needs: ``{abbr: {role: RunSpec}}``."""
    from repro.serve.figures import FIGURES

    roles = FIGURES[query.fig].roles
    return {abbr: {role: role_spec(query, role, abbr) for role in roles}
            for abbr in query.workloads()}


def flat_specs(query: QuerySpec) -> List[RunSpec]:
    """The deduplicated spec list of :func:`required_specs`, in a
    deterministic (abbr-major, role-minor) order."""
    seen = []
    for by_role in required_specs(query).values():
        for spec in by_role.values():
            if spec not in seen:
                seen.append(spec)
    return seen
