"""Overload-safe serving primitives: admission, deadlines, circuit breaking.

The serve layer's promise under load (DESIGN.md §17) is *predictable
degradation*: every response is either correct-and-fresh, correct but
explicitly stale, or a well-formed shed/timeout envelope — never a hang,
never unbounded queueing, never a wrong byte.  This module holds the
small, independently-testable mechanisms the service composes to keep
that promise:

* :class:`AdmissionGate` — a bounded in-flight counter on request
  handling; past the high-water mark, requests shed with ``503`` +
  ``Retry-After`` instead of queueing behind a saturated event loop.
* deadline helpers — every request runs under a server-side time budget
  (config default, optionally lowered by the ``X-Repro-Deadline``
  header, clamped either way); handler work past it is cancelled and
  answered with a structured ``504`` envelope.
* :class:`CircuitBreaker` — a closed → open → half-open state machine
  around campaign enqueue.  Consecutive background-worker failures trip
  it; while open, misses are answered from :class:`StaleDocCache`
  (explicitly stale-marked) or shed, and timed half-open probes test
  recovery.  The clock is injected so every transition is unit-testable
  without sleeping.
* :class:`StaleDocCache` — a bounded memory of the last fresh figure
  documents served, keyed by canonical query; the graceful-degradation
  source while the breaker is open.

Everything here is policy-free mechanism: thresholds and budgets live in
:class:`ResilienceConfig`, which ``repro serve`` exposes as flags.
"""

from __future__ import annotations

import math
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, NamedTuple, Optional

#: Request header that lowers (never raises) the server deadline, seconds.
DEADLINE_HEADER = "x-repro-deadline"

#: Floor for any effective deadline: a client cannot ask for "0" and turn
#: every response into a 504.
MIN_DEADLINE = 0.05


@dataclass
class ResilienceConfig:
    """Every knob of the overload ladder, with serving-safe defaults."""

    #: Admission high-water mark: concurrent requests being handled.
    max_concurrent: int = 64
    #: ``Retry-After`` seconds advertised on an admission shed.
    shed_retry_after: float = 1.0
    #: Bounded pending-job queue in the JobManager; past it, misses are
    #: deferred (202 + Retry-After, nothing enqueued).
    max_pending_jobs: int = 16
    #: ``Retry-After`` seconds advertised on a deferred miss.
    deferred_retry_after: float = 2.0
    #: Server-side time budget per request (seconds).
    default_deadline: float = 30.0
    #: Ceiling the deadline header is clamped to.
    max_deadline: float = 120.0
    #: Wire budget for finishing the request head once it starts arriving
    #: (the slow-loris guard); idle keep-alive wait is separate.
    header_timeout: float = 5.0
    #: Seconds an idle keep-alive connection may sit between requests.
    keepalive_timeout: float = 30.0
    #: Consecutive background-worker failures that trip the breaker.
    breaker_failures: int = 3
    #: Seconds the breaker stays open before a half-open probe.
    breaker_cooldown: float = 30.0
    #: Fresh figure documents remembered for stale-serving.
    stale_keep: int = 64
    #: Seconds granted to in-flight requests during graceful shutdown.
    drain_deadline: float = 10.0
    #: Seconds readiness stays observably flipped before the listener
    #: closes (lets load balancers stop routing before the drain).
    shutdown_grace: float = 0.0
    #: Cadence of the drain-thread watchdog.
    watchdog_interval: float = 0.5


def clamp_deadline(header_value: str, config: ResilienceConfig) -> float:
    """The effective time budget for one request.

    The header may *lower* the server default (a client that only cares
    about fresh-enough answers can say so); it is clamped to
    ``[MIN_DEADLINE, max_deadline]`` and ignored when malformed, so no
    header value can disable the budget or extend it past the ceiling.
    """
    budget = config.default_deadline
    if header_value:
        try:
            budget = float(header_value)
        except ValueError:
            budget = config.default_deadline
    return max(MIN_DEADLINE, min(budget, config.max_deadline))


class Overloaded(Exception):
    """The admission gate refused a request (HTTP 503 + Retry-After)."""


class AdmissionGate:
    """Bounded concurrency on request handling (event-loop-local).

    Non-queueing by design: once ``limit`` requests are in flight the
    next one sheds immediately.  Queueing admissions would just move the
    overload into an invisible line; shedding keeps latency for admitted
    requests flat and tells the client exactly when to come back.
    """

    def __init__(self, limit: int) -> None:
        self.limit = max(1, int(limit))
        self.in_flight = 0
        #: Observable effort counters (tests and /v1/healthz read these).
        self.counts = {"admitted": 0, "shed": 0}

    def try_acquire(self) -> bool:
        if self.in_flight >= self.limit:
            self.counts["shed"] += 1
            return False
        self.in_flight += 1
        self.counts["admitted"] += 1
        return True

    def release(self) -> None:
        self.in_flight -= 1
        assert self.in_flight >= 0, "admission gate released below zero"


class CircuitBreaker:
    """Closed → open → half-open breaker with an injected clock.

    State machine (DESIGN.md §17)::

                   consecutive failures >= threshold
        CLOSED ────────────────────────────────────► OPEN
          ▲                                           │ cooldown
          │ probe succeeds                            ▼ elapsed
          └──────────────────────────────────── HALF-OPEN
                                  probe fails:  HALF-OPEN ──► OPEN

    ``allow()`` answers "may this miss enqueue background work right
    now?".  While open it returns False until ``cooldown`` has elapsed,
    then grants exactly one half-open probe; a probe whose outcome never
    arrives (worker lost, enqueue deferred) re-arms after another
    cooldown rather than wedging the breaker half-open forever.

    Outcomes are reported from the JobManager's drain thread while
    ``allow()`` runs on the event loop, so every transition holds a lock.
    """

    def __init__(self, threshold: int = 3, cooldown: float = 30.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.threshold = max(1, int(threshold))
        self.cooldown = float(cooldown)
        self.clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._failures = 0
        self._opened_at = 0.0
        self._probe_at = 0.0
        #: Observable effort counters (tests and /v1/healthz read these).
        self.counts = {"trips": 0, "probes": 0, "recoveries": 0}

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def allow(self) -> bool:
        """True when a miss may enqueue work (closed, or as a probe)."""
        now = self.clock()
        with self._lock:
            if self._state == "closed":
                return True
            if self._state == "open":
                if now - self._opened_at < self.cooldown:
                    return False
                self._state = "half_open"
            elif now - self._probe_at < self.cooldown:
                return False  # a probe is already outstanding
            self._probe_at = now
            self.counts["probes"] += 1
            return True

    def record_success(self) -> None:
        """A background drain finished cleanly; close if recovering."""
        with self._lock:
            self._failures = 0
            if self._state != "closed":
                self._state = "closed"
                self.counts["recoveries"] += 1

    def record_failure(self) -> None:
        """A background drain crashed or quarantined work."""
        now = self.clock()
        with self._lock:
            self._failures += 1
            tripping = (self._state == "half_open"
                        or (self._state == "closed"
                            and self._failures >= self.threshold))
            if tripping:
                self._state = "open"
                self._opened_at = now
                self.counts["trips"] += 1

    def retry_after(self) -> int:
        """Whole seconds until the next probe could be allowed (≥ 1)."""
        now = self.clock()
        with self._lock:
            if self._state == "open":
                remaining = self.cooldown - (now - self._opened_at)
            elif self._state == "half_open":
                remaining = self.cooldown - (now - self._probe_at)
            else:
                return 1
        return max(1, math.ceil(remaining))

    def snapshot(self) -> Dict[str, object]:
        """The healthz view: state, consecutive failures, transitions."""
        with self._lock:
            return {
                "state": self._state,
                "consecutive_failures": self._failures,
                **self.counts,
            }


class StaleEntry(NamedTuple):
    """One remembered fresh document: body source + its strong ETag."""

    doc: Dict
    etag: str


class StaleDocCache:
    """Bounded, recency-evicting memory of fresh figure documents.

    Every fresh 200 figure/suite response deposits its document here;
    while the circuit breaker is open, a miss whose key has an entry is
    answered from it — explicitly marked stale — instead of failing
    closed.  Bounded LRU so varied query traffic cannot grow it without
    limit; staleness is acceptable by construction (the entry *was* a
    correct answer for this exact query, and the stale ETag derives from
    the same run digests).
    """

    def __init__(self, keep: int = 64) -> None:
        self.keep = max(1, int(keep))
        self._entries: "OrderedDict[str, StaleEntry]" = OrderedDict()

    def put(self, key: str, doc: Dict, etag: str) -> None:
        self._entries[key] = StaleEntry(doc=doc, etag=etag)
        self._entries.move_to_end(key)
        while len(self._entries) > self.keep:
            self._entries.popitem(last=False)

    def get(self, key: str) -> Optional[StaleEntry]:
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
        return entry

    def __len__(self) -> int:
        return len(self._entries)
