"""In-process async single-flight: concurrent identical work runs once.

This is the *first* of two dedup layers under the serve API.  Within one
server process, any number of concurrent requests for the same missing
document collapse here: the first caller (the **leader**) executes the
supplier coroutine, everyone else (**joiners**) awaits the same future.
The supplier itself enqueues simulation jobs on the campaign runner,
whose cross-worker lease-based :class:`~repro.campaign.lease.SingleFlight`
is the *second* layer — so even multiple server processes sharing one
cache directory cost a given simulation exactly once.

Failure semantics (pinned by ``tests/test_serve_singleflight.py``):

* a leader's exception propagates to every joiner (each sees it exactly
  once, via its own ``await``), and the flight is cleared so the next
  caller retries fresh;
* cancelling the leader mid-flight releases all joiners with
  :class:`FlightCancelled` — joiners never hang on a future nobody will
  resolve;
* cancelling a *joiner* affects only that joiner (the flight, and the
  leader, keep going).
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable, Dict, TypeVar

T = TypeVar("T")


class FlightCancelled(RuntimeError):
    """The flight's leader was cancelled before producing a result."""

    def __init__(self, key: str) -> None:
        super().__init__(f"single-flight leader for {key!r} was cancelled")
        self.key = key


class _Flight:
    __slots__ = ("future", "joiners")

    def __init__(self, future: "asyncio.Future") -> None:
        self.future = future
        self.joiners = 0


class AsyncSingleFlight:
    """Per-key coalescing of concurrent coroutine executions."""

    def __init__(self) -> None:
        self._flights: Dict[str, _Flight] = {}
        #: Observable effort counters (tests and /v1/healthz read these).
        self.counts = {"leaders": 0, "joins": 0}

    def in_flight(self, key: str) -> bool:
        return key in self._flights

    def __len__(self) -> int:
        return len(self._flights)

    async def run(self, key: str,
                  supplier: Callable[[], Awaitable[T]]) -> T:
        """Return *supplier*'s result, running it at most once per key
        at any moment; concurrent callers share one execution."""
        flight = self._flights.get(key)
        if flight is not None:
            flight.joiners += 1
            self.counts["joins"] += 1
            # shield: a cancelled joiner must not cancel the shared future.
            return await asyncio.shield(flight.future)

        flight = _Flight(asyncio.get_running_loop().create_future())
        self._flights[key] = flight
        self.counts["leaders"] += 1
        try:
            result = await supplier()
        except asyncio.CancelledError:
            self._resolve(key, flight, error=FlightCancelled(key))
            raise
        except BaseException as err:
            self._resolve(key, flight, error=err)
            raise
        else:
            self._resolve(key, flight, result=result)
            return result
        finally:
            # Eviction guarantee: a completed flight must never outlive
            # its resolution, on *any* exit path — the map would otherwise
            # grow one dead entry per distinct key under varied traffic.
            # tests/test_serve_singleflight.py pins len(flights) == 0.
            if self._flights.get(key) is flight:
                del self._flights[key]

    def _resolve(self, key: str, flight: _Flight,
                 result=None, error: BaseException = None) -> None:
        self._flights.pop(key, None)
        if flight.future.done():
            return
        if error is not None:
            flight.future.set_exception(error)
            # Mark retrieved: with zero joiners nobody will ever await the
            # future, and an unretrieved-exception warning would fire.
            flight.future.exception()
        else:
            flight.future.set_result(result)
