"""Cycle-level SIMT GPU simulator substrate.

This package implements the baseline GPU of the paper's Section II: multiple
streaming multiprocessors (SMs), each interleaving up to 48 warps in two
scheduler groups, a banked 128 KB register file (8 bank groups of 8 banks),
four execution pipelines (2x SP, SFU, memory), a scoreboard per warp, SIMT
post-dominator reconvergence, shared-memory scratchpads, L1 caches with
MSHRs, a shared L2, and a DRAM latency/bandwidth model.

The WIR mechanisms (``repro.core``) plug into the SM via a narrow hook
interface so the same pipeline runs both the baseline and all reuse designs.
"""

from repro.sim.config import GPUConfig, WIRConfig
from repro.sim.gpu import GPU, KernelLaunch, RunResult
from repro.sim.grid import Dim3

__all__ = [
    "GPU",
    "GPUConfig",
    "WIRConfig",
    "KernelLaunch",
    "RunResult",
    "Dim3",
]
