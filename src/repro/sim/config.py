"""Simulation configuration (the paper's Table II, plus WIR knobs).

:class:`GPUConfig` holds machine parameters; :class:`WIRConfig` holds the
warp-instruction-reuse design parameters.  The model zoo in
``repro.core.models`` produces pre-configured ``WIRConfig`` instances for
each design point evaluated in the paper (Base, R, RL, RLP, RLPV, RPV,
RLPVc, NoVSB, Affine, Affine+RLPV).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Optional


class SchedulerPolicy(Enum):
    """Warp scheduler policies."""

    GTO = "gto"  # greedy-then-oldest (paper default)
    LRR = "lrr"  # loose round-robin


class RegisterPolicy(Enum):
    """Physical register management policies (paper Section V-E)."""

    MAX_REGISTER = "max-register"
    CAPPED_REGISTER = "capped-register"


@dataclass
class CacheConfig:
    """Set-associative cache parameters."""

    size_bytes: int
    line_bytes: int = 128
    ways: int = 4
    mshr_entries: int = 64
    hit_latency: int = 28

    @property
    def num_sets(self) -> int:
        sets = self.size_bytes // (self.line_bytes * self.ways)
        if sets <= 0:
            raise ValueError("cache too small for its associativity/line size")
        return sets


@dataclass
class WIRConfig:
    """Parameters of the warp-instruction-reuse design.

    ``enabled=False`` yields the Base GPU.  Each optimisation from the
    paper's Section VI can be toggled independently so the incremental
    designs R -> RL -> RLP -> RLPV are expressible, together with the
    comparison models (RPV, RLPVc, NoVSB).
    """

    enabled: bool = False
    #: Reuse buffer entries (paper default 256, swept 32..512 in Fig 21).
    reuse_buffer_entries: int = 256
    #: Reuse buffer associativity (1 = direct-indexed, the paper's default;
    #: the associative alternative was "marginal" — Section V-C).
    reuse_buffer_associativity: int = 1
    #: Value signature buffer entries (paper default 256, swept in Fig 20).
    vsb_entries: int = 256
    #: VSB associativity (1 = direct-indexed, the paper's default).
    vsb_associativity: int = 1
    #: ``NoVSB`` model: renaming without value-signature sharing.
    use_vsb: bool = True
    #: Load reuse (Section VI-A).
    load_reuse: bool = False
    #: Pending-retry mechanism (Section VI-B).
    pending_retry: bool = False
    #: Pending-retry queue depth (paper: 16 entries).
    retry_queue_entries: int = 16
    #: Verify cache (Section VI-C); 0 entries disables it.
    verify_cache_entries: int = 0
    #: Register management policy (Section V-E).
    register_policy: RegisterPolicy = RegisterPolicy.MAX_REGISTER
    #: Extra backend pipeline latency added by the reuse stages
    #: (rename 1 + reuse 1 + regalloc 2 = 4 cycles by default; swept in Fig 22).
    extra_pipeline_latency: int = 4
    #: H3 hash output width in bits (paper: 32).
    hash_bits: int = 32
    #: Barrier-count field width in the reuse buffer (paper: 5 bits).
    barrier_count_bits: int = 5
    #: Affine execution model (the "Affine" baseline of Section VII-A);
    #: orthogonal to ``enabled`` so Affine+RLPV is expressible.
    affine: bool = False
    #: Run ``WIRUnit.check_invariants()`` every N cycles (0 = only at the
    #: end of the run).  Perf runs keep 0; tests and checked mode arm it.
    invariant_check_interval: int = 0
    #: Graceful degradation: on an invariant violation, a reuse-value
    #: mismatch, or a (repairable) oracle divergence, quarantine the SM's
    #: WIR unit — log, flush the reuse structures, continue in baseline
    #: mode — instead of aborting the run.
    quarantine: bool = False


@dataclass
class TraceConfig:
    """Observability knobs (``repro.trace``); everything defaults off.

    With both toggles off the simulator takes the exact pre-observability
    code paths: no attributor or tracer objects exist and no stat groups
    are registered, so serialized results stay bit-identical.
    """

    #: Event tracing (ring-buffer tracer, Chrome export).
    enabled: bool = False
    #: Per-cycle stall attribution (``sm*.stall.*`` counters).
    stalls: bool = False
    #: Maximum events retained; once full, new events are dropped (counted).
    ring_capacity: int = 65536
    #: Capture window period in cycles; 0 = capture every cycle.
    sample_period: int = 0
    #: Cycles captured at the start of each period.
    sample_window: int = 1024


@dataclass
class GPUConfig:
    """Machine parameters (paper Table II defaults)."""

    # --- chip ---
    num_sms: int = 15
    core_clock_mhz: int = 700

    # --- per-SM resources ---
    warp_size: int = 32
    max_warps_per_sm: int = 48
    max_blocks_per_sm: int = 8
    num_schedulers: int = 2
    scheduler_policy: SchedulerPolicy = SchedulerPolicy.GTO
    #: Physical warp registers per SM (1,024 = 32,768 thread registers).
    num_physical_registers: int = 1024
    #: 128 KB register file: 8 bank groups, each 8 x 128-bit banks.
    register_bank_groups: int = 8
    #: Scratchpad (shared) memory per SM.
    scratchpad_bytes: int = 48 * 1024

    # --- pipelines ---
    #: SP pipeline count (int + fp).
    num_sp_pipelines: int = 2
    sp_latency: int = 8
    sfu_latency: int = 20
    shared_mem_latency: int = 24
    #: Width of each pipeline in lanes (one warp per cycle).
    pipeline_width: int = 32

    # --- caches / memory ---
    l1d: CacheConfig = field(default_factory=lambda: CacheConfig(32 * 1024, ways=4))
    l1c: CacheConfig = field(
        default_factory=lambda: CacheConfig(8 * 1024, ways=2, mshr_entries=16)
    )
    l2_latency: int = 200
    dram_latency: int = 440
    #: L2 partitions (Table II: 6 partitions of 128 KB, 8-way).
    l2_partitions: int = 6
    l2_partition_config: CacheConfig = field(
        default_factory=lambda: CacheConfig(128 * 1024, ways=8, mshr_entries=32)
    )
    #: DRAM scheduling queue entries per partition.
    dram_queue_entries: int = 32
    #: NoC bandwidth per direction per cycle in bytes.
    noc_bytes_per_cycle: int = 32

    # --- limits ---
    max_cycles: int = 5_000_000

    # --- checkpointing (host robustness, not modelled hardware) ---
    #: Snapshot the full simulator state every N cycles so a killed or
    #: timed-out run can resume bit-identically (DESIGN.md §12).  ``None``
    #: disables checkpointing entirely (the default; runs are unchanged).
    checkpoint_every: Optional[int] = None

    # --- host execution strategy (simulation speed, not modelled hardware) ---
    #: "scalar" interprets every issued instruction (the oracle, default);
    #: "vector" uses per-instruction compiled numpy kernels plus the fast
    #: issue loop; "superblock" adds trace compilation of straight-line
    #: instruction runs on top of the vector engine.  All produce
    #: bit-identical results (see DESIGN.md §8 and §16).
    exec_engine: str = "scalar"

    # --- reuse design ---
    wir: WIRConfig = field(default_factory=WIRConfig)

    # --- observability ---
    trace: TraceConfig = field(default_factory=TraceConfig)

    def with_wir(self, wir: WIRConfig) -> "GPUConfig":
        """Return a copy of this config with a different WIR design."""
        return replace(self, wir=wir)

    @property
    def warps_per_scheduler(self) -> int:
        return self.max_warps_per_sm // self.num_schedulers

    @property
    def register_file_bytes(self) -> int:
        # Each warp register is 32 lanes x 4 bytes = 128 bytes.
        return self.num_physical_registers * self.warp_size * 4

    def validate(self) -> None:
        """Sanity-check parameter combinations; raise ``ValueError`` if bad."""
        if self.max_warps_per_sm % self.num_schedulers:
            raise ValueError("warps must divide evenly among schedulers")
        if self.warp_size != 32:
            raise ValueError("this simulator models 32-thread warps")
        if self.num_physical_registers < 64:
            raise ValueError("too few physical registers")
        if self.wir.extra_pipeline_latency < 0:
            raise ValueError("extra pipeline latency must be non-negative")
        if self.wir.reuse_buffer_entries < 0 or self.wir.vsb_entries < 0:
            raise ValueError("buffer entry counts must be non-negative")
        if self.trace.ring_capacity < 1:
            raise ValueError("trace ring capacity must be at least 1")
        if self.trace.sample_period < 0 or self.trace.sample_window < 0:
            raise ValueError("trace sampling parameters must be non-negative")
        if self.checkpoint_every is not None and self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be at least 1 cycle")
        if self.exec_engine not in ("scalar", "vector", "superblock"):
            raise ValueError(
                f"unknown exec engine {self.exec_engine!r}; "
                "expected 'scalar', 'vector', or 'superblock'")
