"""Human-readable SM state dumps for deadlock / timeout diagnostics.

Pure formatting over live :class:`~repro.sim.smcore.SMCore` state — kept out
of ``smcore.py`` so the event-routing core stays within its line budget.
"""

from __future__ import annotations


def sm_debug_snapshot(core) -> str:
    """Render one SM's scheduler-visible state (see ``SMCore.debug_snapshot``)."""
    lines = [
        f"SM{core.sm_id} @ cycle {core.cycle}: "
        f"{len(core._events)} queued events, "
        f"{core.resident_blocks} resident blocks"
    ]
    for slot, warp in enumerate(core.warps):
        if warp is None:
            continue
        flags = []
        if warp.exited:
            flags.append("exited")
        if warp.at_barrier:
            flags.append("barrier")
        if core._warp_waiting[slot]:
            flags.append("retry-wait")
        blocked = core._warp_blocked_until[slot]
        if blocked > core.cycle:
            flags.append(f"blocked_until={blocked}")
        regs, preds = core.scoreboard.pending_snapshot(slot)
        lines.append(
            f"  warp slot {slot} (block {warp.block.block_id}."
            f"{warp.warp_in_block}): pc={warp.pc} inflight={warp.inflight}"
            f" pending_regs={list(regs)} pending_preds={list(preds)}"
            + (" [" + ",".join(flags) + "]" if flags else "")
        )
    if core.unit is not None:
        lines.append(
            f"  wir: rb_occupancy={core.unit.reuse_buffer.occupancy()}"
            f" retry_queue={core.unit.reuse_buffer.retry_queue_used}"
            f" vsb_occupancy={core.unit.vsb.occupancy()}"
            f" phys_free={core.unit.physfile.free_count}"
            f" quarantined={core.wir_quarantined}"
        )
    return "\n".join(lines)
