"""Functional execution semantics for every opcode.

The engine computes real 32-bit lane values; the WIR machinery hashes and
compares these exact values, so value-signature collisions, verify-read
mismatches, and load-reuse results are grounded in genuine data rather than
being statistically modelled.

Engines do not talk to the SM core directly: the pipeline's execute stage
(:class:`repro.pipeline.stages.ExecuteStage`) owns the engine instance and
binds :meth:`execute` as the stage's functional kernel, so the scalar
oracle and the vectorized engine plug into the same declarative stage
interface (DESIGN.md §13).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.isa.instruction import Instruction, Operand, OperandKind
from repro.isa.opcodes import CmpOp, Opcode
from repro.sim.grid import WARP_SIZE
from repro.sim.warp import Warp


def _as_f32(bits: np.ndarray) -> np.ndarray:
    return bits.view(np.float32)


def _from_f32(values: np.ndarray) -> np.ndarray:
    return np.asarray(values, dtype=np.float32).view(np.uint32)


def _as_i32(bits: np.ndarray) -> np.ndarray:
    return bits.view(np.int32)


def _from_i32(values: np.ndarray) -> np.ndarray:
    return np.asarray(values, dtype=np.int32).view(np.uint32)


_INT_BINOPS: Dict[Opcode, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    Opcode.ADD: lambda a, b: _from_i32(_as_i32(a) + _as_i32(b)),
    Opcode.SUB: lambda a, b: _from_i32(_as_i32(a) - _as_i32(b)),
    Opcode.MUL: lambda a, b: _from_i32(_as_i32(a) * _as_i32(b)),
    Opcode.MULHI: lambda a, b: (
        (a.astype(np.uint64) * b.astype(np.uint64)) >> np.uint64(32)
    ).astype(np.uint32),
    Opcode.MIN: lambda a, b: _from_i32(np.minimum(_as_i32(a), _as_i32(b))),
    Opcode.MAX: lambda a, b: _from_i32(np.maximum(_as_i32(a), _as_i32(b))),
    Opcode.AND: lambda a, b: a & b,
    Opcode.OR: lambda a, b: a | b,
    Opcode.XOR: lambda a, b: a ^ b,
    Opcode.SHL: lambda a, b: a << (b & np.uint32(31)),
    Opcode.SHR: lambda a, b: a >> (b & np.uint32(31)),
}

_FP_BINOPS: Dict[Opcode, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    Opcode.FADD: lambda a, b: _from_f32(_as_f32(a) + _as_f32(b)),
    Opcode.FSUB: lambda a, b: _from_f32(_as_f32(a) - _as_f32(b)),
    Opcode.FMUL: lambda a, b: _from_f32(_as_f32(a) * _as_f32(b)),
    Opcode.FMIN: lambda a, b: _from_f32(np.minimum(_as_f32(a), _as_f32(b))),
    Opcode.FMAX: lambda a, b: _from_f32(np.maximum(_as_f32(a), _as_f32(b))),
}

_SFU_UNOPS: Dict[Opcode, Callable[[np.ndarray], np.ndarray]] = {
    Opcode.RCP: lambda a: _from_f32(np.float32(1.0) / _as_f32(a)),
    Opcode.SQRT: lambda a: _from_f32(np.sqrt(np.abs(_as_f32(a)))),
    Opcode.RSQRT: lambda a: _from_f32(
        np.float32(1.0) / np.sqrt(np.abs(_as_f32(a)) + np.float32(1e-30))
    ),
    Opcode.SIN: lambda a: _from_f32(np.sin(_as_f32(a))),
    Opcode.COS: lambda a: _from_f32(np.cos(_as_f32(a))),
    Opcode.EX2: lambda a: _from_f32(np.exp2(np.clip(_as_f32(a), -126, 127))),
    Opcode.LG2: lambda a: _from_f32(np.log2(np.abs(_as_f32(a)) + np.float32(1e-30))),
}

_CMP_INT: Dict[CmpOp, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    CmpOp.EQ: lambda a, b: _as_i32(a) == _as_i32(b),
    CmpOp.NE: lambda a, b: _as_i32(a) != _as_i32(b),
    CmpOp.LT: lambda a, b: _as_i32(a) < _as_i32(b),
    CmpOp.LE: lambda a, b: _as_i32(a) <= _as_i32(b),
    CmpOp.GT: lambda a, b: _as_i32(a) > _as_i32(b),
    CmpOp.GE: lambda a, b: _as_i32(a) >= _as_i32(b),
}

_CMP_FP: Dict[CmpOp, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    CmpOp.EQ: lambda a, b: _as_f32(a) == _as_f32(b),
    CmpOp.NE: lambda a, b: _as_f32(a) != _as_f32(b),
    CmpOp.LT: lambda a, b: _as_f32(a) < _as_f32(b),
    CmpOp.LE: lambda a, b: _as_f32(a) <= _as_f32(b),
    CmpOp.GT: lambda a, b: _as_f32(a) > _as_f32(b),
    CmpOp.GE: lambda a, b: _as_f32(a) >= _as_f32(b),
}


@dataclass
class ExecResult:
    """Functional outcome of one warp instruction.

    ``result`` is the destination register value (None for instructions
    without a register destination); ``pred_result`` is a setp outcome;
    ``taken_mask`` is a branch outcome; ``addresses``/``store_values`` carry
    memory operands for the memory pipeline.
    """

    mask: np.ndarray
    sources: Tuple[np.ndarray, ...] = ()
    result: Optional[np.ndarray] = None
    pred_result: Optional[np.ndarray] = None
    taken_mask: Optional[np.ndarray] = None
    addresses: Optional[np.ndarray] = None
    store_values: Optional[np.ndarray] = None


def resolve_operand(warp: Warp, operand: Operand) -> np.ndarray:
    """Per-lane uint32 values of one source operand."""
    if operand.kind is OperandKind.REG:
        return warp.read_reg(operand.value)
    if operand.kind is OperandKind.IMM:
        return np.full(WARP_SIZE, operand.value, dtype=np.uint32)
    if operand.kind is OperandKind.SREG:
        return warp.special_value(operand.sreg_name)
    if operand.kind is OperandKind.ADDR:
        # Address arithmetic is unsigned 32-bit plus a signed byte offset.
        addr = warp.read_reg(operand.value).astype(np.int64) + operand.offset
        return (addr & 0xFFFFFFFF).astype(np.uint32)
    raise ValueError(f"cannot resolve operand {operand}")


def execute(inst: Instruction, warp: Warp) -> ExecResult:
    """Compute the functional result of *inst* on *warp*.

    The caller is responsible for committing the result (writing the
    destination register / predicate, performing the memory operation,
    resolving the branch) so the timing model controls *when* state changes.
    """
    mask = warp.guard_mask(inst.guard)
    opcode = inst.opcode

    if opcode is Opcode.BRA:
        return ExecResult(mask=mask, taken_mask=mask & warp.active_mask)

    if opcode in (Opcode.EXIT, Opcode.BAR, Opcode.MEMBAR, Opcode.NOP):
        return ExecResult(mask=mask)

    sources = tuple(resolve_operand(warp, src) for src in inst.srcs)

    if opcode in _INT_BINOPS:
        return ExecResult(mask=mask, sources=sources,
                          result=_INT_BINOPS[opcode](sources[0], sources[1]))
    if opcode in _FP_BINOPS:
        return ExecResult(mask=mask, sources=sources,
                          result=_FP_BINOPS[opcode](sources[0], sources[1]))
    if opcode in _SFU_UNOPS:
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            result = _SFU_UNOPS[opcode](sources[0])
        return ExecResult(mask=mask, sources=sources, result=result)

    if opcode is Opcode.MOV:
        return ExecResult(mask=mask, sources=sources, result=sources[0].copy())
    if opcode is Opcode.ABS:
        return ExecResult(mask=mask, sources=sources,
                          result=_from_i32(np.abs(_as_i32(sources[0]))))
    if opcode is Opcode.NEG:
        return ExecResult(mask=mask, sources=sources,
                          result=_from_i32(-_as_i32(sources[0])))
    if opcode is Opcode.NOT:
        return ExecResult(mask=mask, sources=sources, result=~sources[0])
    if opcode is Opcode.FABS:
        return ExecResult(mask=mask, sources=sources,
                          result=sources[0] & np.uint32(0x7FFFFFFF))
    if opcode is Opcode.FNEG:
        return ExecResult(mask=mask, sources=sources,
                          result=sources[0] ^ np.uint32(0x80000000))
    if opcode in (Opcode.DIV, Opcode.REM):
        a, b = _as_i32(sources[0]), _as_i32(sources[1])
        safe = np.where(b == 0, np.int32(1), b)
        with np.errstate(divide="ignore"):
            if opcode is Opcode.DIV:
                out = a // safe
            else:
                out = a % safe
        out = np.where(b == 0, np.int32(-1), out)
        return ExecResult(mask=mask, sources=sources, result=_from_i32(out))
    if opcode is Opcode.FDIV:
        with np.errstate(divide="ignore", invalid="ignore"):
            result = _from_f32(_as_f32(sources[0]) / _as_f32(sources[1]))
        return ExecResult(mask=mask, sources=sources, result=result)
    if opcode is Opcode.MAD:
        a, b, c = (_as_i32(s) for s in sources)
        return ExecResult(mask=mask, sources=sources, result=_from_i32(a * b + c))
    if opcode is Opcode.FMAD:
        a, b, c = (_as_f32(s) for s in sources)
        return ExecResult(mask=mask, sources=sources, result=_from_f32(a * b + c))
    if opcode is Opcode.CVT_I2F:
        return ExecResult(mask=mask, sources=sources,
                          result=_from_f32(_as_i32(sources[0]).astype(np.float32)))
    if opcode is Opcode.CVT_F2I:
        with np.errstate(invalid="ignore"):
            # Widen to float64 first: int32 saturation bounds are not
            # representable in float32 and would round past the limit.
            vals = np.nan_to_num(_as_f32(sources[0]).astype(np.float64),
                                 nan=0.0, posinf=2**31 - 1, neginf=-(2**31))
            clipped = np.clip(vals, -(2.0**31), 2.0**31 - 1)
        return ExecResult(mask=mask, sources=sources,
                          result=_from_i32(clipped.astype(np.int64).astype(np.int32)))
    if opcode is Opcode.SELP:
        pred = warp.read_pred(inst.pred_src)
        return ExecResult(mask=mask, sources=sources,
                          result=np.where(pred, sources[0], sources[1]))
    if opcode in (Opcode.SETP, Opcode.FSETP):
        table = _CMP_INT if opcode is Opcode.SETP else _CMP_FP
        return ExecResult(mask=mask, sources=sources,
                          pred_result=table[inst.cmp](sources[0], sources[1]))
    if opcode.value.startswith("ld."):
        return ExecResult(mask=mask, sources=sources, addresses=sources[0])
    if opcode.value.startswith("st."):
        return ExecResult(mask=mask, sources=sources,
                          addresses=sources[0], store_values=sources[1])

    raise NotImplementedError(f"no semantics for {opcode}")


# ---------------------------------------------------------------------------
# Execution engines
#
# ``ScalarExecEngine`` is the seed interpreter above, untouched: every issue
# re-dispatches on the opcode and re-resolves each operand.  It is the
# correctness oracle and the default.
#
# ``VectorExecEngine`` compiles each static instruction once, the first time
# it issues, into a closure with the opcode dispatch, guard, comparison
# table, and operand resolvers already bound — all 32 lanes still evaluate
# as single numpy array ops, but the per-issue Python interpretation
# (frozenset chains, operand-kind branching, ``np.full`` immediates) is
# hoisted out of the hot loop.  Instructions whose opcode has no compiled
# kernel fall back to the scalar interpreter, so the two engines are
# value-identical by construction: every kernel reuses the exact arithmetic
# lambdas of the scalar tables.
# ---------------------------------------------------------------------------


def _sfu_wrap(fn: Callable[[np.ndarray], np.ndarray]) -> Callable:
    def compute(sources: Tuple[np.ndarray, ...]) -> np.ndarray:
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            return fn(sources[0])
    return compute


def _div_rem(opcode: Opcode) -> Callable:
    def compute(sources: Tuple[np.ndarray, ...]) -> np.ndarray:
        a, b = _as_i32(sources[0]), _as_i32(sources[1])
        safe = np.where(b == 0, np.int32(1), b)
        with np.errstate(divide="ignore"):
            out = a // safe if opcode is Opcode.DIV else a % safe
        return _from_i32(np.where(b == 0, np.int32(-1), out))
    return compute


def _fdiv(sources: Tuple[np.ndarray, ...]) -> np.ndarray:
    with np.errstate(divide="ignore", invalid="ignore"):
        return _from_f32(_as_f32(sources[0]) / _as_f32(sources[1]))


def _cvt_f2i(sources: Tuple[np.ndarray, ...]) -> np.ndarray:
    with np.errstate(invalid="ignore"):
        vals = np.nan_to_num(_as_f32(sources[0]).astype(np.float64),
                             nan=0.0, posinf=2**31 - 1, neginf=-(2**31))
        clipped = np.clip(vals, -(2.0**31), 2.0**31 - 1)
    return _from_i32(clipped.astype(np.int64).astype(np.int32))


#: Register-result opcodes: opcode -> fn(sources) -> uint32 lane values.
#: Every entry reuses the scalar tables' arithmetic, so results are
#: bit-identical between engines.
_RESULT_OPS: Dict[Opcode, Callable[[Tuple[np.ndarray, ...]], np.ndarray]] = {}
for _op, _fn in _INT_BINOPS.items():
    _RESULT_OPS[_op] = (lambda f: lambda s: f(s[0], s[1]))(_fn)
for _op, _fn in _FP_BINOPS.items():
    _RESULT_OPS[_op] = (lambda f: lambda s: f(s[0], s[1]))(_fn)
for _op, _fn in _SFU_UNOPS.items():
    _RESULT_OPS[_op] = _sfu_wrap(_fn)
_RESULT_OPS.update({
    Opcode.MOV: lambda s: s[0].copy(),
    Opcode.ABS: lambda s: _from_i32(np.abs(_as_i32(s[0]))),
    Opcode.NEG: lambda s: _from_i32(-_as_i32(s[0])),
    Opcode.NOT: lambda s: ~s[0],
    Opcode.FABS: lambda s: s[0] & np.uint32(0x7FFFFFFF),
    Opcode.FNEG: lambda s: s[0] ^ np.uint32(0x80000000),
    Opcode.DIV: _div_rem(Opcode.DIV),
    Opcode.REM: _div_rem(Opcode.REM),
    Opcode.FDIV: _fdiv,
    Opcode.MAD: lambda s: _from_i32(
        _as_i32(s[0]) * _as_i32(s[1]) + _as_i32(s[2])),
    Opcode.FMAD: lambda s: _from_f32(
        _as_f32(s[0]) * _as_f32(s[1]) + _as_f32(s[2])),
    Opcode.CVT_I2F: lambda s: _from_f32(_as_i32(s[0]).astype(np.float32)),
    Opcode.CVT_F2I: _cvt_f2i,
})
del _op, _fn


def _compile_operand(operand: Operand) -> Callable[[Warp], np.ndarray]:
    """Bind one source operand to a resolver closure.

    Register reads return views (exactly like :func:`resolve_operand`);
    immediates are materialized once and shared — the simulator treats
    source arrays as read-only, the same contract special registers
    already rely on.
    """
    kind = operand.kind
    if kind is OperandKind.REG:
        index = operand.value
        return lambda warp: warp.registers[index]
    if kind is OperandKind.IMM:
        shared = np.full(WARP_SIZE, operand.value, dtype=np.uint32)
        shared.flags.writeable = False
        return lambda warp: shared
    if kind is OperandKind.SREG:
        name = operand.sreg_name
        return lambda warp: warp.special_value(name)
    if kind is OperandKind.ADDR:
        index, offset = operand.value, operand.offset
        def resolve_addr(warp: Warp) -> np.ndarray:
            addr = warp.registers[index].astype(np.int64) + offset
            return (addr & 0xFFFFFFFF).astype(np.uint32)
        return resolve_addr
    raise ValueError(f"cannot resolve operand {operand}")


def _compile_kernel(inst: Instruction) -> Optional[Callable[[Warp], ExecResult]]:
    """Compile one instruction to a ``kernel(warp) -> ExecResult`` closure.

    Returns ``None`` when the opcode has no vector kernel; the engine then
    falls back to the scalar interpreter for that instruction.
    """
    guard = inst.guard
    opcode = inst.opcode

    if opcode is Opcode.BRA:
        def bra_kernel(warp: Warp) -> ExecResult:
            mask = warp.guard_mask(guard)
            return ExecResult(mask=mask, taken_mask=mask & warp.active_mask)
        return bra_kernel

    if opcode in (Opcode.EXIT, Opcode.BAR, Opcode.MEMBAR, Opcode.NOP):
        return lambda warp: ExecResult(mask=warp.guard_mask(guard))

    resolvers = tuple(_compile_operand(src) for src in inst.srcs)

    # Mask resolver specialised on the (static) guard: the unguarded case —
    # the vast majority — skips the guard_mask call and predicate blend.
    if guard is None:
        def mask_of(warp: Warp) -> np.ndarray:
            return warp.active_mask.copy()
    else:
        def mask_of(warp: Warp) -> np.ndarray:
            return warp.guard_mask(guard)

    compute = _RESULT_OPS.get(opcode)
    if compute is not None:
        # Arity-specialised source gathering (saves a generator + tuple()
        # round trip per issue on the hottest kernel shape).
        if len(resolvers) == 2:
            resolve_a, resolve_b = resolvers

            def alu_kernel(warp: Warp) -> ExecResult:
                sources = (resolve_a(warp), resolve_b(warp))
                return ExecResult(mask=mask_of(warp), sources=sources,
                                  result=compute(sources))
        elif len(resolvers) == 1:
            resolve_a, = resolvers

            def alu_kernel(warp: Warp) -> ExecResult:
                sources = (resolve_a(warp),)
                return ExecResult(mask=mask_of(warp), sources=sources,
                                  result=compute(sources))
        else:
            def alu_kernel(warp: Warp) -> ExecResult:
                sources = tuple(resolve(warp) for resolve in resolvers)
                return ExecResult(mask=mask_of(warp), sources=sources,
                                  result=compute(sources))
        return alu_kernel

    if opcode is Opcode.SELP:
        pred_src = inst.pred_src
        resolve_a, resolve_b = resolvers

        def selp_kernel(warp: Warp) -> ExecResult:
            sources = (resolve_a(warp), resolve_b(warp))
            pred = warp.read_pred(pred_src)
            return ExecResult(mask=mask_of(warp), sources=sources,
                              result=np.where(pred, sources[0], sources[1]))
        return selp_kernel

    if opcode in (Opcode.SETP, Opcode.FSETP):
        table = _CMP_INT if opcode is Opcode.SETP else _CMP_FP
        cmp_fn = table[inst.cmp]
        resolve_a, resolve_b = resolvers

        def setp_kernel(warp: Warp) -> ExecResult:
            sources = (resolve_a(warp), resolve_b(warp))
            return ExecResult(mask=mask_of(warp), sources=sources,
                              pred_result=cmp_fn(sources[0], sources[1]))
        return setp_kernel

    if opcode.value.startswith("ld."):
        resolve_addr = resolvers[0]

        def load_kernel(warp: Warp) -> ExecResult:
            addresses = resolve_addr(warp)
            return ExecResult(mask=mask_of(warp), sources=(addresses,),
                              addresses=addresses)
        return load_kernel

    if opcode.value.startswith("st."):
        resolve_addr, resolve_values = resolvers

        def store_kernel(warp: Warp) -> ExecResult:
            addresses = resolve_addr(warp)
            values = resolve_values(warp)
            return ExecResult(mask=mask_of(warp), sources=(addresses, values),
                              addresses=addresses, store_values=values)
        return store_kernel

    return None


class ScalarExecEngine:
    """The seed per-issue interpreter — the correctness oracle."""

    name = "scalar"

    def __init__(self, program=None) -> None:
        del program

    def execute(self, inst: Instruction, warp: Warp) -> ExecResult:
        return execute(inst, warp)


class VectorExecEngine:
    """Per-instruction compiled kernels with a scalar fallback.

    Kernels are compiled lazily on first issue and cached per static
    instruction; the cache keeps a reference to the instruction so its
    ``id`` can never be recycled while the kernel is live.
    """

    name = "vector"

    def __init__(self, program=None) -> None:
        del program
        self._kernels: Dict[int, Tuple[Instruction, Optional[Callable]]] = {}
        self.compiled = 0
        self.fallbacks = 0

    def execute(self, inst: Instruction, warp: Warp) -> ExecResult:
        entry = self._kernels.get(id(inst))
        if entry is None:
            kernel = _compile_kernel(inst)
            self._kernels[id(inst)] = (inst, kernel)
            if kernel is None:
                self.fallbacks += 1
            else:
                self.compiled += 1
        else:
            kernel = entry[1]
        if kernel is None:
            return execute(inst, warp)
        return kernel(warp)


class SuperblockExecEngine(VectorExecEngine):
    """Vector kernels for the per-instruction path; the superblock trace
    compiler (:mod:`repro.sim.superblock`) supplies the block fast path.

    This class only changes the engine *name*: instructions outside a
    compiled superblock (or issued while an observer/WIR probe disables
    block dispatch) execute through the inherited per-instruction kernels.
    """

    name = "superblock"


_ENGINES = {"scalar": ScalarExecEngine, "vector": VectorExecEngine,
            "superblock": SuperblockExecEngine}


def make_engine(name: str, program=None):
    """Instantiate the execution engine selected by ``GPUConfig.exec_engine``."""
    try:
        cls = _ENGINES[name]
    except KeyError:
        raise ValueError(
            f"unknown exec engine {name!r}; expected one of {sorted(_ENGINES)}"
        ) from None
    return cls(program)
