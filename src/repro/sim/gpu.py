"""Top-level GPU: kernel launch, block dispatch, and the simulation loop.

A :class:`GPU` owns the SM array and the shared memory subsystem for one
kernel launch.  Thread blocks are dispatched greedily to SMs with free
capacity (round-robin), and a completed block immediately frees its slots
for the next pending block.  The simulation loop is cycle-driven with idle
skipping: when no SM has issueable work the clock jumps to the earliest
scheduled event.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.isa.program import Program
from repro.sim.config import GPUConfig
from repro.sim.grid import Dim3, enumerate_blocks
from repro.sim.memory.space import MemoryImage
from repro.sim.memory.subsystem import MemorySubsystem
from repro.sim.smcore import SMCore, SMCounters


class SimulationTimeout(RuntimeError):
    """The launch did not complete within ``config.max_cycles``."""


@dataclass
class KernelLaunch:
    """One kernel invocation."""

    program: Program
    grid: Dim3
    block: Dim3
    image: MemoryImage = field(default_factory=MemoryImage)

    @property
    def total_blocks(self) -> int:
        return self.grid.count

    @property
    def total_threads(self) -> int:
        return self.grid.count * self.block.count


@dataclass
class RunResult:
    """Everything measured during one launch."""

    cycles: int
    config: GPUConfig
    launch: KernelLaunch
    sm_counters: List[SMCounters]
    #: Aggregated register file stats (dict snapshot per SM).
    regfile_stats: List[Dict[str, int]]
    l1d_stats: Dict[str, int]
    l1c_stats: Dict[str, int]
    l2_stats: Dict[str, int]
    dram_accesses: int
    noc_flits: int
    scratchpad_accesses: int
    #: WIR structure stats, when the design was enabled.
    wir_stats: Optional[Dict[str, float]] = None
    #: Per-SM profiler results, when a profiler factory was supplied.
    profiles: Optional[List] = None

    # --- aggregate helpers ----------------------------------------------------

    def total(self, field_name: str) -> int:
        return sum(getattr(c, field_name) for c in self.sm_counters)

    @property
    def issued_instructions(self) -> int:
        return self.total("issued")

    @property
    def reused_instructions(self) -> int:
        return self.total("reused")

    @property
    def backend_instructions(self) -> int:
        return self.total("backend_insts")

    @property
    def reuse_fraction(self) -> float:
        issued = self.issued_instructions
        return self.reused_instructions / issued if issued else 0.0

    def regfile_total(self, key: str) -> int:
        return sum(stats[key] for stats in self.regfile_stats)


class GPU:
    """The simulated GPU chip."""

    def __init__(
        self,
        config: GPUConfig,
        profiler_factory: Optional[Callable[[], object]] = None,
    ) -> None:
        config.validate()
        self.config = config
        self._profiler_factory = profiler_factory

    def run(self, launch: KernelLaunch) -> RunResult:
        """Simulate one kernel launch to completion."""
        config = self.config
        subsystem = MemorySubsystem(config, launch.image)
        profilers = []
        sms: List[SMCore] = []
        for sm_id in range(config.num_sms):
            profiler = self._profiler_factory() if self._profiler_factory else None
            if profiler is not None:
                profilers.append(profiler)
            sms.append(SMCore(sm_id, config, launch.program, subsystem, profiler))

        pending = deque(enumerate_blocks(launch.grid, launch.block))

        def fill(sm: SMCore) -> None:
            while pending and sm.can_accept(pending[0]):
                sm.dispatch_block(pending.popleft())

        def on_complete(sm_id: int, _block_id: int) -> None:
            fill(sms[sm_id])

        for sm in sms:
            sm.on_block_complete = on_complete
        # Initial fill round-robins blocks across SMs (as the hardware block
        # dispatcher does) instead of packing the first SM solid.
        while pending:
            dispatched = False
            for sm in sms:
                if pending and sm.can_accept(pending[0]):
                    sm.dispatch_block(pending.popleft())
                    dispatched = True
            if not dispatched:
                break

        cycle = 0
        while True:
            active = False
            for sm in sms:
                active |= sm.tick(cycle)
            if not pending and not any(sm.busy() for sm in sms):
                break
            if cycle >= config.max_cycles:
                raise SimulationTimeout(
                    f"kernel {launch.program.name!r} exceeded "
                    f"{config.max_cycles} cycles"
                )
            if active:
                cycle += 1
            else:
                wakes = [w for w in (sm.next_wake() for sm in sms) if w is not None]
                if not wakes:
                    # Pending blocks but no SM progress: should be unreachable.
                    raise SimulationTimeout(
                        f"kernel {launch.program.name!r} deadlocked at cycle {cycle}"
                    )
                cycle = max(cycle + 1, min(wakes))

        return self._collect(cycle, launch, sms, subsystem, profilers)

    def _collect(
        self,
        cycles: int,
        launch: KernelLaunch,
        sms: List[SMCore],
        subsystem: MemorySubsystem,
        profilers: List,
    ) -> RunResult:
        def sum_stats(stats_list: List[Dict[str, int]]) -> Dict[str, int]:
            totals: Dict[str, int] = {}
            for stats in stats_list:
                for key, value in stats.items():
                    totals[key] = totals.get(key, 0) + value
            return totals

        wir_stats = None
        if self.config.wir.enabled:
            wir_stats = self._collect_wir(sms)
            for sm in sms:
                sm.unit.check_invariants()

        return RunResult(
            cycles=cycles,
            config=self.config,
            launch=launch,
            sm_counters=[sm.counters for sm in sms],
            regfile_stats=[vars(sm.regfile.stats).copy() for sm in sms],
            l1d_stats=sum_stats([sm.port.l1d.stats.snapshot() for sm in sms]),
            l1c_stats=sum_stats([sm.port.l1c.stats.snapshot() for sm in sms]),
            l2_stats=subsystem.l2_stats,
            dram_accesses=subsystem.dram_accesses,
            noc_flits=subsystem.noc.flits,
            scratchpad_accesses=sum(sm.port.scratchpad_accesses for sm in sms),
            wir_stats=wir_stats,
            profiles=profilers or None,
        )

    def _collect_wir(self, sms: List[SMCore]) -> Dict[str, float]:
        """Aggregate the WIR structure statistics across SMs."""
        totals: Dict[str, float] = {}

        def add(key: str, value: float) -> None:
            totals[key] = totals.get(key, 0) + value

        for sm in sms:
            unit = sm.unit
            for key, value in vars(unit.counters).items():
                add(key, value)
            for key, value in vars(unit.reuse_buffer.stats).items():
                add(f"rb_{key}", value)
            for key, value in vars(unit.vsb.stats).items():
                add(f"vsb_{key}", value)
            for key, value in vars(unit.verify_cache.stats).items():
                add(f"vc_{key}", value)
            add("refcount_ops", unit.refcount.operations)
            add("phys_peak", unit.physfile.peak_in_use)
            add("phys_avg", unit.physfile.average_in_use)
            add("phys_allocations", unit.physfile.allocations)
        num_sms = max(1, len(sms))
        totals["phys_peak"] /= num_sms
        totals["phys_avg"] /= num_sms
        return totals
