"""Top-level GPU: kernel launch, block dispatch, and the simulation loop.

A :class:`GPU` owns the SM array and the shared memory subsystem for one
kernel launch.  Thread blocks are dispatched greedily to SMs with free
capacity (round-robin), and a completed block immediately frees its slots
for the next pending block.  The simulation loop is cycle-driven with idle
skipping: when no SM has issueable work the clock jumps to the earliest
scheduled event.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.ckpt import write_checkpoint
from repro.isa.program import Program
from repro.sim.config import GPUConfig
from repro.sim.grid import Dim3, enumerate_blocks
from repro.sim.memory.space import MemoryImage
from repro.sim.memory.subsystem import MemorySubsystem
from repro.sim.smcore import SMCore, SMCounters
from repro.stats import StatGroup, dataclass_from_dict, dataclass_to_dict


class SimulationTimeout(RuntimeError):
    """The launch did not complete within ``config.max_cycles``."""


@dataclass
class KernelLaunch:
    """One kernel invocation."""

    program: Program
    grid: Dim3
    block: Dim3
    image: MemoryImage = field(default_factory=MemoryImage)

    @property
    def total_blocks(self) -> int:
        return self.grid.count

    @property
    def total_threads(self) -> int:
        return self.grid.count * self.block.count


@dataclass
class RunResult:
    """Everything measured during one launch.

    Measurements live in one hierarchical stats registry rooted at
    :attr:`stats`: per-SM subtrees (``sm0.core``, ``sm0.regfile``,
    ``sm0.l1d``, ``sm0.wir.rb`` ...) plus the chip-level ``memory``
    subtree.  Use :meth:`stat` / :meth:`sm_stat` for dotted-path access;
    the legacy per-component views (``l1d_stats``, ``wir_stats``, ...) are
    derived from the registry.  The whole result round-trips through JSON
    (:meth:`to_dict` / :meth:`from_dict`), which is what the on-disk run
    cache and the parallel sweep workers move around; only the live
    :attr:`launch` object and profiler handles are process-local.
    """

    cycles: int
    config: GPUConfig
    #: Root of the hierarchical stats registry for this run.
    stats: StatGroup
    #: The live launch (``None`` on deserialized results).
    launch: Optional[KernelLaunch] = None
    #: JSON-safe launch description (kernel name and geometry).
    launch_summary: Dict[str, object] = field(default_factory=dict)
    #: Per-SM profiler results, when a profiler factory was supplied.
    profiles: Optional[List] = None
    #: Live :class:`repro.trace.events.EventTracer` when event tracing was
    #: enabled (``None`` otherwise and on deserialized results).
    trace: Optional[object] = None

    # --- registry access ------------------------------------------------------

    def stat(self, path: str):
        """Dotted-path lookup from the root (``"sm0.regfile.read_retries"``)."""
        return self.stats.lookup(path)

    @property
    def sm_groups(self) -> List[StatGroup]:
        """The per-SM registry subtrees, in SM order."""
        children = self.stats.children
        return [children[name] for name in sorted(
            (n for n in children if n.startswith("sm")),
            key=lambda n: int(n[2:]),
        )]

    def sm_stat(self, path: str):
        """Sum a per-SM dotted path (relative to each ``sm{N}``) across SMs."""
        return sum(group.lookup(path) for group in self.sm_groups)

    def merged_sm(self) -> StatGroup:
        """All per-SM subtrees summed into one group."""
        return StatGroup.merged(self.sm_groups, name="sm")

    # --- aggregate helpers ----------------------------------------------------

    @property
    def sm_counters(self) -> List[StatGroup]:
        """Per-SM core counter groups (the old ``SMCounters`` view)."""
        return [group.lookup("core") for group in self.sm_groups]

    def total(self, field_name: str) -> int:
        return self.sm_stat(f"core.{field_name}")

    @property
    def issued_instructions(self) -> int:
        return self.total("issued")

    @property
    def reused_instructions(self) -> int:
        return self.total("reused")

    @property
    def backend_instructions(self) -> int:
        return self.total("backend_insts")

    @property
    def reuse_fraction(self) -> float:
        issued = self.issued_instructions
        return self.reused_instructions / issued if issued else 0.0

    def stall_breakdown(self) -> Optional[Dict[str, Dict[str, int]]]:
        """Per-SM stall-reason counts (``None`` unless run with
        ``config.trace.stalls``).  Keys are ``sm{N}``; each value maps
        reason -> cycles, in taxonomy order, plus ``resident_warp_cycles``.
        """
        sm_groups = self.sm_groups
        if not sm_groups or "stall" not in sm_groups[0].children:
            return None
        from repro.trace.stall import STALL_REASONS
        breakdown: Dict[str, Dict[str, int]] = {}
        for group in sm_groups:
            stall = group.lookup("stall")
            row = {reason: stall.lookup(reason) for reason in STALL_REASONS}
            row["resident_warp_cycles"] = stall.lookup("resident_warp_cycles")
            breakdown[group.name] = row
        return breakdown

    def regfile_total(self, key: str) -> int:
        return self.sm_stat(f"regfile.{key}")

    @property
    def regfile_stats(self) -> List[Dict[str, int]]:
        return [group.lookup("regfile").counters() for group in self.sm_groups]

    @property
    def l1d_stats(self) -> Dict[str, int]:
        return StatGroup.merged(
            group.lookup("l1d") for group in self.sm_groups).counters()

    @property
    def l1c_stats(self) -> Dict[str, int]:
        return StatGroup.merged(
            group.lookup("l1c") for group in self.sm_groups).counters()

    @property
    def l2_stats(self) -> Dict[str, int]:
        return self.stats.lookup("memory.l2").counters()

    @property
    def dram_accesses(self) -> int:
        return self.stats.lookup("memory.dram.accesses")

    @property
    def noc_flits(self) -> int:
        return self.stats.lookup("memory.noc.flits")

    @property
    def scratchpad_accesses(self) -> int:
        return self.sm_stat("port.scratchpad_accesses")

    @property
    def wir_stats(self) -> Optional[Dict[str, float]]:
        """Merged flat view of the WIR subtrees (``None`` for Base runs).

        Structure counters keep their historical prefixes (``rb_``,
        ``vsb_``, ``vc_``); ``phys_peak``/``phys_avg`` are per-SM averages.
        """
        sm_groups = self.sm_groups
        if not sm_groups or "wir" not in sm_groups[0].children:
            return None
        merged = StatGroup.merged(
            group.lookup("wir") for group in sm_groups)
        totals: Dict[str, float] = merged.counters()
        for prefix in ("rb", "vsb", "vc"):
            for key, value in merged.lookup(prefix).counters().items():
                totals[f"{prefix}_{key}"] = value
        phys = merged.lookup("phys").counters()
        num_sms = len(sm_groups)
        totals["phys_peak"] = phys["peak"] / num_sms
        totals["phys_avg"] = phys["avg"] / num_sms
        totals["phys_allocations"] = phys["allocations"]
        totals["refcount_ops"] = phys["refcount_ops"]
        return totals

    # --- serialization --------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """Lossless plain-data form (config + launch summary + stats tree)."""
        return {
            "cycles": self.cycles,
            "config": dataclass_to_dict(self.config),
            "launch": dict(self.launch_summary),
            "stats": self.stats.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RunResult":
        return cls(
            cycles=data["cycles"],
            config=dataclass_from_dict(GPUConfig, data["config"]),
            stats=StatGroup.from_dict(data["stats"], name="run"),
            launch_summary=dict(data.get("launch", {})),
        )

    def to_json(self, **kwargs) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, **kwargs)

    @classmethod
    def from_json(cls, text: str) -> "RunResult":
        return cls.from_dict(json.loads(text))


class GPU:
    """The simulated GPU chip."""

    def __init__(
        self,
        config: GPUConfig,
        profiler_factory: Optional[Callable[[], object]] = None,
        fault_plan=None,
    ) -> None:
        config.validate()
        self.config = config
        self._profiler_factory = profiler_factory
        #: Optional :class:`repro.check.faults.FaultPlan` (fault campaigns).
        self._fault_plan = fault_plan
        #: Optional :class:`repro.check.oracle.LockstepChecker`; set by
        #: :class:`repro.check.oracle.CheckedGPU` before :meth:`run`.
        self._checker = None
        #: Where periodic checkpoints go when ``config.checkpoint_every``
        #: is set (the harness points this next to the run cache).
        self.checkpoint_path: Optional[Path] = None
        #: Extra identity merged into every checkpoint's meta block (the
        #: harness and CLI record the workload spec here so a checkpoint
        #: file is self-describing for ``repro ckpt resume``).
        self.checkpoint_meta_extra: Dict = {}

    def run(
        self, launch: KernelLaunch, resume: Optional[Dict] = None
    ) -> RunResult:
        """Simulate one kernel launch to completion.

        With *resume*, restore the checkpointed ``state`` dict (see
        :mod:`repro.ckpt`) instead of starting at cycle 0; the rest of the
        run is bit-identical to the uninterrupted one.
        """
        status, payload = self._run(launch, resume=resume)
        assert status == "done"
        return payload

    def run_to_cycle(
        self, launch: KernelLaunch, cycle: int, resume: Optional[Dict] = None
    ) -> Tuple[str, Union[RunResult, Dict]]:
        """Run until the clock reaches *cycle*, then snapshot and pause.

        Returns ``("paused", state)`` with a serializable state dict, or
        ``("done", result)`` if the kernel finished first.
        """
        return self._run(launch, resume=resume, stop_cycle=cycle)

    def _check_resumable(self, reason: str) -> None:
        """Checkpointing serializes simulator state only — observers with
        process-local state (checker, profilers, fault injectors, tracers)
        cannot be restored, so their runs refuse to checkpoint or resume."""
        problems = []
        if self._checker is not None:
            problems.append("a lockstep checker")
        if self._profiler_factory is not None:
            problems.append("profilers")
        if self._fault_plan is not None and self._fault_plan.any_enabled:
            problems.append("fault injection")
        if self.config.trace.enabled or self.config.trace.stalls:
            problems.append("tracing")
        if problems:
            raise ValueError(
                f"cannot {reason} with {' / '.join(problems)} attached: "
                "observer state is not checkpointed")

    def _run(
        self,
        launch: KernelLaunch,
        resume: Optional[Dict] = None,
        stop_cycle: Optional[int] = None,
    ) -> Tuple[str, Union[RunResult, Dict]]:
        config = self.config
        subsystem = MemorySubsystem(config, launch.image)
        tracer = None
        if config.trace.enabled:
            from repro.trace.events import CHIP_PID, EventTracer
            tracer = EventTracer(config.trace)
            subsystem.tracer = tracer.view(CHIP_PID)
        profilers = []
        sms: List[SMCore] = []
        for sm_id in range(config.num_sms):
            profiler = self._profiler_factory() if self._profiler_factory else None
            if profiler is not None:
                profilers.append(profiler)
            sms.append(SMCore(sm_id, config, launch.program, subsystem, profiler))
            if tracer is not None:
                sms[-1].attach_tracer(tracer.view(sm_id))

        if self._checker is not None:
            self._checker.begin(launch)
            for sm in sms:
                sm.checker = self._checker
        if self._fault_plan is not None and self._fault_plan.any_enabled:
            from repro.check.faults import FaultInjector
            for sm in sms:
                if sm.unit is not None:
                    sm.unit.attach_faults(
                        FaultInjector(self._fault_plan, salt=sm.sm_id))

        ckpt_path = self.checkpoint_path
        every = config.checkpoint_every
        if every is not None and ckpt_path is not None:
            self._check_resumable("checkpoint")
        if resume is not None or stop_cycle is not None:
            self._check_resumable("resume or pause")
        if (resume is None and stop_cycle is None
                and (every is None or ckpt_path is None)):
            # A plain run can never cut mid-block, so the superblock
            # runtime may batch whole-block counter sums at block entry.
            for sm in sms:
                if sm._superblock is not None:
                    sm._superblock.resumable = False

        all_blocks = list(enumerate_blocks(launch.grid, launch.block))
        if resume is not None:
            # Blocks are enumerated deterministically, so the dispatch
            # frontier is just an index into the same sequence.
            descriptors = {bd.block_id: bd for bd in all_blocks}
            pending = deque(all_blocks[resume["next_block_index"]:])
            for sm, sm_state in zip(sms, resume["sms"]):
                sm.load_state(sm_state, descriptors.__getitem__)
            subsystem.load_state(resume["memory"])
            cycle = resume["cycle"]
        else:
            pending = deque(all_blocks)
            cycle = 0

        def fill(sm: SMCore) -> None:
            while pending and sm.can_accept(pending[0]):
                sm.dispatch_block(pending.popleft())

        #: Per-SM skip memo: cycles strictly below ``wake[i]`` are provably
        #: no-op ticks for ``sms[i]`` (see ``SMCore.skip_until``), so the
        #: loop skips the call entirely.  Zeroed whenever a block dispatch
        #: gives the SM new work.  Disabled under per-cycle observers
        #: (tracing, stall attribution), which must see every cycle.
        wake = [0] * len(sms)
        skipping = tracer is None and not config.trace.stalls

        def on_complete(sm_id: int, _block_id: int) -> None:
            fill(sms[sm_id])
            wake[sm_id] = 0

        for sm in sms:
            sm.on_block_complete = on_complete
        if resume is None:
            # Initial fill round-robins blocks across SMs (as the hardware
            # block dispatcher does) instead of packing the first SM solid.
            while pending:
                dispatched = False
                for sm in sms:
                    if pending and sm.can_accept(pending[0]):
                        sm.dispatch_block(pending.popleft())
                        dispatched = True
                if not dispatched:
                    break

        next_ckpt: Optional[int] = None
        if every is not None and ckpt_path is not None:
            next_ckpt = (cycle // every + 1) * every

        while True:
            # Snapshots are taken at the top of the loop — "about to tick
            # cycle C" — so restore re-executes cycle C first.
            if stop_cycle is not None and cycle >= stop_cycle:
                return ("paused",
                        self._state_dict(cycle, launch, pending, sms,
                                         subsystem))
            if next_ckpt is not None and cycle >= next_ckpt:
                write_checkpoint(
                    ckpt_path,
                    self._state_dict(cycle, launch, pending, sms, subsystem),
                    meta=self.checkpoint_meta(launch),
                )
                next_ckpt = (cycle // every + 1) * every
            if tracer is not None:
                tracer.now = cycle
            active = False
            if skipping:
                for i, sm in enumerate(sms):
                    if cycle < wake[i]:
                        continue
                    if sm.tick(cycle):
                        active = True
                        wake[i] = 0
                    else:
                        wake[i] = sm.skip_until(cycle)
            else:
                for sm in sms:
                    active |= sm.tick(cycle)
            if not pending:
                for sm in sms:
                    if sm.busy():
                        break
                else:
                    break
            if cycle >= config.max_cycles:
                raise SimulationTimeout(
                    f"kernel {launch.program.name!r} exceeded "
                    f"{config.max_cycles} cycles\n"
                    + "\n".join(sm.debug_snapshot() for sm in sms)
                )
            if active:
                cycle += 1
            else:
                wakes = [w for w in (sm.next_wake() for sm in sms) if w is not None]
                if not wakes:
                    # Pending blocks but no SM progress: should be unreachable.
                    raise SimulationTimeout(
                        f"kernel {launch.program.name!r} deadlocked at cycle "
                        f"{cycle}\n"
                        + "\n".join(sm.debug_snapshot() for sm in sms)
                    )
                target = max(cycle + 1, min(wakes))
                # The skipped cycles never tick; attribute them in bulk
                # (each SM's classification is stable across the gap).
                gap = target - cycle - 1
                if gap:
                    for sm in sms:
                        sm.account_idle_cycles(gap)
                cycle = target

        if self._checker is not None:
            self._checker.finalize(launch, sms)
        return ("done",
                self._collect(cycle, launch, sms, subsystem, profilers,
                              tracer))

    def _state_dict(
        self,
        cycle: int,
        launch: KernelLaunch,
        pending: deque,
        sms: List[SMCore],
        subsystem: MemorySubsystem,
    ) -> Dict:
        """Serializable snapshot of the whole chip at a cycle boundary."""
        return {
            "cycle": cycle,
            "next_block_index": launch.total_blocks - len(pending),
            "sms": [sm.state_dict() for sm in sms],
            "memory": subsystem.state_dict(),
        }

    def checkpoint_meta(self, launch: KernelLaunch) -> Dict:
        """Identity of the run a checkpoint belongs to: a resume must be
        driving the exact same program, geometry, and configuration."""
        meta = {
            "program": launch.program.name,
            "grid": [launch.grid.x, launch.grid.y, launch.grid.z],
            "block": [launch.block.x, launch.block.y, launch.block.z],
            "config": dataclass_to_dict(self.config),
        }
        meta.update(self.checkpoint_meta_extra)
        return meta

    def _collect(
        self,
        cycles: int,
        launch: KernelLaunch,
        sms: List[SMCore],
        subsystem: MemorySubsystem,
        profilers: List,
        tracer=None,
    ) -> RunResult:
        """Assemble the run's stats registry and wrap it in a RunResult."""
        root = StatGroup("run")
        root.add_counter("cycles", cycles)
        if tracer is not None:
            root.adopt(tracer.stats)
        for sm in sms:
            if sm.unit is not None:
                sm.unit.finalize_stats()
                # A quarantined unit deliberately leaks transit references
                # held by the instructions it abandoned; skip its self-check.
                if not sm.wir_quarantined:
                    sm.unit.check_invariants()
            root.adopt(sm.stats)
        root.adopt(subsystem.stats_group())
        if self._checker is not None:
            root.adopt(self._checker.stats)

        launch_summary = {
            "program": launch.program.name,
            "grid": [launch.grid.x, launch.grid.y, launch.grid.z],
            "block": [launch.block.x, launch.block.y, launch.block.z],
            "total_threads": launch.total_threads,
        }
        return RunResult(
            cycles=cycles,
            config=self.config,
            stats=root,
            launch=launch,
            launch_summary=launch_summary,
            profiles=profilers or None,
            trace=tracer,
        )
