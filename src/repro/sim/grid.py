"""Grid / thread-block geometry for kernel launches."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

WARP_SIZE = 32


@dataclass(frozen=True)
class Dim3:
    """CUDA-style 3-component dimension."""

    x: int
    y: int = 1
    z: int = 1

    @property
    def count(self) -> int:
        return self.x * self.y * self.z

    def unflatten(self, flat: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Convert flat indices to (x, y, z) coordinates."""
        x = flat % self.x
        y = (flat // self.x) % self.y
        z = flat // (self.x * self.y)
        return x, y, z

    def __iter__(self) -> Iterator[int]:
        yield self.x
        yield self.y
        yield self.z


@dataclass(frozen=True)
class BlockDescriptor:
    """One thread block of a launch."""

    block_id: int                 # flat block index in the grid
    ctaid: Tuple[int, int, int]   # block coordinates
    ntid: Dim3                    # threads per block
    nctaid: Dim3                  # grid dimensions

    @property
    def num_threads(self) -> int:
        return self.ntid.count

    @property
    def num_warps(self) -> int:
        return (self.num_threads + WARP_SIZE - 1) // WARP_SIZE

    def warp_thread_indices(self, warp_in_block: int) -> np.ndarray:
        """Flat in-block thread indices covered by one warp (32 lanes).

        Lanes past the block's thread count are returned but must be masked
        inactive by the caller.
        """
        start = warp_in_block * WARP_SIZE
        return np.arange(start, start + WARP_SIZE, dtype=np.int64)


def enumerate_blocks(grid: Dim3, block: Dim3) -> Iterator[BlockDescriptor]:
    """Yield every block of a launch in flat order."""
    flat = 0
    for z in range(grid.z):
        for y in range(grid.y):
            for x in range(grid.x):
                yield BlockDescriptor(
                    block_id=flat, ctaid=(x, y, z), ntid=block, nctaid=grid
                )
                flat += 1
