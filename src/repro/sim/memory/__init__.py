"""Memory hierarchy: backing stores, caches, scratchpad, L2/DRAM, NoC."""

from repro.sim.memory.cache import Cache, CacheStats
from repro.sim.memory.space import MemoryImage, MemorySpaceStore
from repro.sim.memory.subsystem import MemoryAccessResult, MemorySubsystem

__all__ = [
    "Cache",
    "CacheStats",
    "MemoryImage",
    "MemorySpaceStore",
    "MemorySubsystem",
    "MemoryAccessResult",
]
