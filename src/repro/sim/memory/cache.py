"""Set-associative cache model with MSHR-limited outstanding misses.

The cache is a timing filter: tag state updates immediately on access, and
the caller receives the latency at which the data is available.  Misses
allocate an MSHR that is held until the fill returns; accesses that find all
MSHRs busy are delayed until the oldest outstanding fill completes (modelled
by returning a later availability cycle).  Secondary misses to a line with a
pending fill merge into the existing MSHR.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.sim.config import CacheConfig
from repro.stats import StatGroup

#: Sentinel "no outstanding fill" completion cycle (past any real cycle).
_FAR = 1 << 62


class CacheStats(StatGroup):
    """Cache event counts, registered into the run's stats tree."""

    COUNTERS = ("accesses", "hits", "misses", "mshr_merges", "mshr_stalls",
                "evictions", "writebacks")

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def snapshot(self) -> Dict[str, int]:
        return self.counters()


class Cache:
    """LRU set-associative cache with a simple MSHR model.

    ``access`` returns ``(ready_cycle, hit)``: the cycle at which the data is
    available to the requester and whether the access hit.  The next level's
    latency is supplied by the ``miss_latency`` callback so the same class
    serves L1 (miss -> L2/DRAM) and L2 partitions (miss -> DRAM).
    """

    def __init__(
        self,
        config: CacheConfig,
        miss_latency: Callable[[int, int], int],
        name: str = "cache",
    ) -> None:
        self.config = config
        self.name = name
        self._miss_latency = miss_latency
        self.stats = CacheStats(name)
        self._num_sets = config.num_sets
        self._line_shift = config.line_bytes.bit_length() - 1
        # Hot-path hoists: ``access`` reads these once per coalesced line.
        self._hit_latency = config.hit_latency
        self._ways = config.ways
        self._mshr_entries = config.mshr_entries
        # Per set: ordered list of line tags, most recently used last.
        self._sets: List[List[int]] = [[] for _ in range(self._num_sets)]
        # Pending fills: line address -> ready cycle.
        self._pending: Dict[int, int] = {}
        #: Earliest outstanding fill completion (``_FAR`` when none):
        #: ``access`` runs on every coalesced line of every memory
        #: instruction, so the fill reap is skipped while provably a no-op.
        #: Derived state — recomputed on restore, never serialized.
        self._pending_min = _FAR
        # Preloaded counter handles (StatGroup.handle): ``access`` is the
        # hottest shared path of both engines, so skip the attribute magic.
        s = self.stats
        self._c_accesses = s.handle("accesses")
        self._c_hits = s.handle("hits")
        self._c_misses = s.handle("misses")
        self._c_merges = s.handle("mshr_merges")
        self._c_stalls = s.handle("mshr_stalls")
        self._c_evictions = s.handle("evictions")

    def _set_index(self, line_addr: int) -> int:
        return line_addr % self._num_sets

    def line_address(self, byte_addr: int) -> int:
        return byte_addr >> self._line_shift

    def contains(self, line_addr: int) -> bool:
        """Tag probe without side effects (used by tests)."""
        return line_addr in self._sets[self._set_index(line_addr)]

    def _reap_pending(self, cycle: int) -> None:
        if cycle < self._pending_min:
            # No outstanding fill can have completed yet (``_pending_min``
            # only ever under-estimates, so skipping is always safe).
            return
        pending = self._pending
        done = [line for line, ready in pending.items() if ready <= cycle]
        for line in done:
            del pending[line]
        self._pending_min = min(pending.values(), default=_FAR)

    def access(
        self, line_addr: int, cycle: int, is_write: bool = False
    ) -> Tuple[int, bool]:
        """Access one cache line; returns (ready_cycle, hit)."""
        self._c_accesses.value += 1
        if cycle >= self._pending_min:
            self._reap_pending(cycle)
        line_set = self._sets[line_addr % self._num_sets]

        if line_addr in line_set:
            # A line with a pending fill counts as a miss-merge, not a hit.
            pending_ready = self._pending.get(line_addr)
            if pending_ready is not None:
                self._c_merges.value += 1
                return max(pending_ready, cycle + self._hit_latency), False
            self._c_hits.value += 1
            line_set.remove(line_addr)
            line_set.append(line_addr)
            return cycle + self._hit_latency, True

        # Miss.
        self._c_misses.value += 1
        start = cycle
        if len(self._pending) >= self._mshr_entries:
            # All MSHRs busy: the request waits for the oldest fill.
            self._c_stalls.value += 1
            start = min(self._pending.values())
            self._reap_pending(start)
        fill_latency = self._miss_latency(line_addr, start)
        ready = start + self._hit_latency + fill_latency

        # Allocate (write-allocate for simplicity; GPUs typically use
        # write-evict L1s, but allocation policy does not affect the reuse
        # mechanisms under study).
        if len(line_set) >= self._ways:
            victim = line_set.pop(0)
            self._c_evictions.value += 1
            self._pending.pop(victim, None)
        line_set.append(line_addr)
        self._pending[line_addr] = ready
        if ready < self._pending_min:
            self._pending_min = ready
        return ready, False

    def invalidate_all(self) -> None:
        self._sets = [[] for _ in range(self._num_sets)]
        self._pending.clear()
        self._pending_min = _FAR

    # --- checkpointing ------------------------------------------------------

    def state_dict(self) -> Dict:
        """Tag arrays (MRU order), in-flight fills (insertion order), and
        this cache's own stats — self-contained, because L2 partition
        caches have no live stats tree until collection time."""
        return {
            "sets": [list(line_set) for line_set in self._sets],
            "pending": [[line, ready] for line, ready in self._pending.items()],
            "stats": self.stats.to_dict(),
        }

    def load_state(self, state: Dict) -> None:
        self._sets = [list(line_set) for line_set in state["sets"]]
        self._pending = {line: ready for line, ready in state["pending"]}
        self._pending_min = min(self._pending.values(), default=_FAR)
        self.stats.load_state(state["stats"])
