"""Set-associative cache model with MSHR-limited outstanding misses.

The cache is a timing filter: tag state updates immediately on access, and
the caller receives the latency at which the data is available.  Misses
allocate an MSHR that is held until the fill returns; accesses that find all
MSHRs busy are delayed until the oldest outstanding fill completes (modelled
by returning a later availability cycle).  Secondary misses to a line with a
pending fill merge into the existing MSHR.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.sim.config import CacheConfig
from repro.stats import StatGroup


class CacheStats(StatGroup):
    """Cache event counts, registered into the run's stats tree."""

    COUNTERS = ("accesses", "hits", "misses", "mshr_merges", "mshr_stalls",
                "evictions", "writebacks")

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def snapshot(self) -> Dict[str, int]:
        return self.counters()


class Cache:
    """LRU set-associative cache with a simple MSHR model.

    ``access`` returns ``(ready_cycle, hit)``: the cycle at which the data is
    available to the requester and whether the access hit.  The next level's
    latency is supplied by the ``miss_latency`` callback so the same class
    serves L1 (miss -> L2/DRAM) and L2 partitions (miss -> DRAM).
    """

    def __init__(
        self,
        config: CacheConfig,
        miss_latency: Callable[[int, int], int],
        name: str = "cache",
    ) -> None:
        self.config = config
        self.name = name
        self._miss_latency = miss_latency
        self.stats = CacheStats(name)
        self._num_sets = config.num_sets
        self._line_shift = config.line_bytes.bit_length() - 1
        # Per set: ordered list of line tags, most recently used last.
        self._sets: List[List[int]] = [[] for _ in range(self._num_sets)]
        # Pending fills: line address -> ready cycle.
        self._pending: Dict[int, int] = {}

    def _set_index(self, line_addr: int) -> int:
        return line_addr % self._num_sets

    def line_address(self, byte_addr: int) -> int:
        return byte_addr >> self._line_shift

    def contains(self, line_addr: int) -> bool:
        """Tag probe without side effects (used by tests)."""
        return line_addr in self._sets[self._set_index(line_addr)]

    def _reap_pending(self, cycle: int) -> None:
        if not self._pending:
            return
        done = [line for line, ready in self._pending.items() if ready <= cycle]
        for line in done:
            del self._pending[line]

    def access(
        self, line_addr: int, cycle: int, is_write: bool = False
    ) -> Tuple[int, bool]:
        """Access one cache line; returns (ready_cycle, hit)."""
        self.stats.accesses += 1
        self._reap_pending(cycle)
        line_set = self._sets[self._set_index(line_addr)]

        if line_addr in line_set:
            # A line with a pending fill counts as a miss-merge, not a hit.
            pending_ready = self._pending.get(line_addr)
            if pending_ready is not None:
                self.stats.mshr_merges += 1
                return max(pending_ready, cycle + self.config.hit_latency), False
            self.stats.hits += 1
            line_set.remove(line_addr)
            line_set.append(line_addr)
            return cycle + self.config.hit_latency, True

        # Miss.
        self.stats.misses += 1
        start = cycle
        if len(self._pending) >= self.config.mshr_entries:
            # All MSHRs busy: the request waits for the oldest fill.
            self.stats.mshr_stalls += 1
            start = min(self._pending.values())
            self._reap_pending(start)
        fill_latency = self._miss_latency(line_addr, start)
        ready = start + self.config.hit_latency + fill_latency

        # Allocate (write-allocate for simplicity; GPUs typically use
        # write-evict L1s, but allocation policy does not affect the reuse
        # mechanisms under study).
        if len(line_set) >= self.config.ways:
            victim = line_set.pop(0)
            self.stats.evictions += 1
            self._pending.pop(victim, None)
        line_set.append(line_addr)
        self._pending[line_addr] = ready
        return ready, False

    def invalidate_all(self) -> None:
        self._sets = [[] for _ in range(self._num_sets)]
        self._pending.clear()

    # --- checkpointing ------------------------------------------------------

    def state_dict(self) -> Dict:
        """Tag arrays (MRU order), in-flight fills (insertion order), and
        this cache's own stats — self-contained, because L2 partition
        caches have no live stats tree until collection time."""
        return {
            "sets": [list(line_set) for line_set in self._sets],
            "pending": [[line, ready] for line, ready in self._pending.items()],
            "stats": self.stats.to_dict(),
        }

    def load_state(self, state: Dict) -> None:
        self._sets = [list(line_set) for line_set in state["sets"]]
        self._pending = {line: ready for line, ready in state["pending"]}
        self.stats.load_state(state["stats"])
