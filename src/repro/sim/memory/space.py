"""Functional backing stores for the simulated address spaces.

All simulated accesses are 4-byte words.  :class:`MemorySpaceStore` keeps a
flat ``uint32`` array that grows on demand; the functional execution engine
loads/stores vectors of per-lane addresses with an active-lane mask.

A :class:`MemoryImage` bundles the stores for every address space of one
kernel launch: one global store shared by the whole GPU, one constant and
one parameter store (read-only), and one scratchpad store per thread block
(created lazily, since scratchpad address spaces are private per block).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

import numpy as np

from repro.ckpt.codec import decode_array, encode_array
from repro.isa.opcodes import MemSpace


class MemorySpaceStore:
    """Auto-growing word-addressable backing store."""

    def __init__(self, name: str, initial_words: int = 1024) -> None:
        self.name = name
        self._data = np.zeros(max(initial_words, 16), dtype=np.uint32)

    def _ensure(self, max_word: int) -> None:
        if max_word >= self._data.size:
            new_size = self._data.size
            while new_size <= max_word:
                new_size *= 2
            grown = np.zeros(new_size, dtype=np.uint32)
            grown[: self._data.size] = self._data
            self._data = grown

    def load(self, byte_addrs: np.ndarray, mask: np.ndarray) -> np.ndarray:
        """Load 32-bit words at per-lane *byte_addrs* where *mask* is set.

        Inactive lanes return zero.  Addresses are truncated to word
        alignment (the simulator models 4-byte accesses only).
        """
        words = (byte_addrs >> 2).astype(np.int64)
        if mask.all():
            # Hot path: every lane active, so the gather needs no zero-fill
            # scatter.  Growth is the rare case — probe first, size after.
            try:
                return self._data[words]
            except IndexError:
                self._ensure(int(words.max()))
                return self._data[words]
        out = np.zeros(byte_addrs.shape[0], dtype=np.uint32)
        active_words = words[mask]
        if active_words.size:
            self._ensure(int(active_words.max()))
            out[mask] = self._data[active_words]
        return out

    def store(
        self, byte_addrs: np.ndarray, values: np.ndarray, mask: np.ndarray
    ) -> None:
        """Store 32-bit *values* at per-lane *byte_addrs* where *mask* is set.

        When multiple active lanes target the same word the highest lane
        wins, matching the unordered intra-warp store semantics of real GPUs
        (numpy fancy assignment applies later indices last).
        """
        if mask.all():
            words = (byte_addrs >> 2).astype(np.int64)
            try:
                self._data[words] = values
            except IndexError:
                self._ensure(int(words.max()))
                self._data[words] = values
            return
        if not mask.any():
            return
        words = (byte_addrs[mask] >> 2).astype(np.int64)
        self._ensure(int(words.max()))
        self._data[words] = values[mask]

    def write_block(self, byte_addr: int, values: np.ndarray) -> None:
        """Bulk initialisation helper used by workload input generators."""
        values = np.asarray(values, dtype=np.uint32).ravel()
        start = byte_addr >> 2
        self._ensure(start + values.size)
        self._data[start : start + values.size] = values

    def read_block(self, byte_addr: int, count: int) -> np.ndarray:
        """Read *count* words starting at *byte_addr* (for result checking)."""
        start = byte_addr >> 2
        self._ensure(start + count)
        return self._data[start : start + count].copy()

    @property
    def size_words(self) -> int:
        return self._data.size

    def state_dict(self) -> Dict:
        """The full backing array — including its grown size, so address
        probes after restore see the same ``size_words``."""
        return {"data": encode_array(self._data)}

    def load_state(self, state: Dict) -> None:
        self._data = decode_array(state["data"])


class MemoryImage:
    """All backing stores for one kernel launch."""

    def __init__(self) -> None:
        self.global_mem = MemorySpaceStore("global")
        self.const_mem = MemorySpaceStore("const")
        self.param_mem = MemorySpaceStore("param")
        self.local_mem = MemorySpaceStore("local")
        self._scratchpads: Dict[int, MemorySpaceStore] = {}

    def scratchpad(self, block_id: int) -> MemorySpaceStore:
        """Per-thread-block scratchpad store (created on first touch)."""
        store = self._scratchpads.get(block_id)
        if store is None:
            store = MemorySpaceStore(f"shared[{block_id}]")
            self._scratchpads[block_id] = store
        return store

    def release_scratchpad(self, block_id: int) -> None:
        """Free a completed block's scratchpad."""
        self._scratchpads.pop(block_id, None)

    def state_dict(self) -> Dict:
        return {
            "global": self.global_mem.state_dict(),
            "const": self.const_mem.state_dict(),
            "param": self.param_mem.state_dict(),
            "local": self.local_mem.state_dict(),
            "scratchpads": {
                str(block_id): store.state_dict()
                for block_id, store in self._scratchpads.items()
            },
        }

    def load_state(self, state: Dict) -> None:
        self.global_mem.load_state(state["global"])
        self.const_mem.load_state(state["const"])
        self.param_mem.load_state(state["param"])
        self.local_mem.load_state(state["local"])
        self._scratchpads = {}
        for block_id, data in state["scratchpads"].items():
            store = MemorySpaceStore(f"shared[{int(block_id)}]")
            store.load_state(data)
            self._scratchpads[int(block_id)] = store

    def store_for(self, space: MemSpace, block_id: int) -> MemorySpaceStore:
        """Resolve the backing store for *space* accessed by *block_id*."""
        if space is MemSpace.GLOBAL:
            return self.global_mem
        if space is MemSpace.SHARED:
            return self.scratchpad(block_id)
        if space is MemSpace.CONST:
            return self.const_mem
        if space is MemSpace.PARAM:
            return self.param_mem
        if space is MemSpace.LOCAL:
            return self.local_mem
        raise ValueError(f"unknown space {space}")
