"""GPU-wide memory subsystem: NoC, L2 partitions, DRAM, per-SM ports.

Timing model
------------
* L1 data / constant caches live in the per-SM :class:`SMMemoryPort`.
* An L1 miss crosses the NoC (bandwidth-limited injection), accesses the
  address-interleaved L2 partition, and on an L2 miss queues at that
  partition's DRAM channel (latency + service-rate limited).
* Shared-memory (scratchpad) accesses have a fixed latency and never leave
  the SM.

The functional side (actual values) is handled against the launch's
:class:`~repro.sim.memory.space.MemoryImage` at access time; the timing side
returns the cycle at which the warp instruction's data is ready.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.isa.opcodes import MemSpace
from repro.sim.config import GPUConfig
from repro.sim.memory.cache import Cache
from repro.sim.memory.space import MemoryImage, MemorySpaceStore
from repro.stats import StatGroup


@dataclass
class MemoryAccessResult:
    """Outcome of one warp-level memory access."""

    ready_cycle: int
    lines: int = 0
    l1_hits: int = 0
    l1_misses: int = 0
    scratchpad_accesses: int = 0
    #: Loaded values (zeros for stores / inactive lanes).
    values: Optional[np.ndarray] = None


class DRAMChannel:
    """One DRAM channel: fixed access latency plus service-rate queueing."""

    def __init__(self, extra_latency: int, service_cycles: int, queue_entries: int) -> None:
        self._extra_latency = extra_latency
        self._service_cycles = service_cycles
        self._queue_entries = queue_entries
        self._next_free = 0
        self.accesses = 0
        self.queueing_cycles = 0

    def access(self, cycle: int) -> int:
        """Register one line access; returns total added latency."""
        self.accesses += 1
        wait = max(0, self._next_free - cycle)
        # A bounded scheduling queue caps how far ahead requests can pile up.
        max_backlog = self._queue_entries * self._service_cycles
        wait = min(wait, max_backlog)
        self.queueing_cycles += wait
        self._next_free = max(self._next_free, cycle) + self._service_cycles
        return wait + self._extra_latency

    def state_dict(self) -> Dict:
        return {
            "next_free": self._next_free,
            "accesses": self.accesses,
            "queueing_cycles": self.queueing_cycles,
        }

    def load_state(self, state: Dict) -> None:
        self._next_free = state["next_free"]
        self.accesses = state["accesses"]
        self.queueing_cycles = state["queueing_cycles"]


class NoCModel:
    """Bandwidth-limited interconnect between SMs and L2 partitions."""

    def __init__(self, bytes_per_cycle: int, line_bytes: int, num_sms: int) -> None:
        self._service_cycles = max(1, line_bytes // max(1, bytes_per_cycle))
        self._next_free = [0] * num_sms
        self.flits = 0

    def traverse(self, sm_id: int, cycle: int) -> int:
        """One line transfer from *sm_id*; returns added latency."""
        self.flits += 1
        wait = max(0, self._next_free[sm_id] - cycle)
        self._next_free[sm_id] = max(self._next_free[sm_id], cycle) + self._service_cycles
        return wait + self._service_cycles

    def state_dict(self) -> Dict:
        return {"next_free": list(self._next_free), "flits": self.flits}

    def load_state(self, state: Dict) -> None:
        self._next_free = list(state["next_free"])
        self.flits = state["flits"]


class MemorySubsystem:
    """Shared L2 + DRAM + NoC serving all SMs."""

    def __init__(self, config: GPUConfig, image: MemoryImage) -> None:
        self.config = config
        self.image = image
        line_bytes = config.l1d.line_bytes
        dram_service = max(1, line_bytes // max(1, config.noc_bytes_per_cycle))
        self.dram_channels = [
            DRAMChannel(
                extra_latency=config.dram_latency - config.l2_latency,
                service_cycles=dram_service,
                queue_entries=config.dram_queue_entries,
            )
            for _ in range(config.l2_partitions)
        ]
        self.noc = NoCModel(config.noc_bytes_per_cycle, line_bytes, config.num_sms)
        #: Observability hook (chip-level ``SMTraceView`` or ``None``).
        self.tracer = None
        self.l2_partitions = [
            Cache(
                config.l2_partition_config,
                miss_latency=self._make_dram_callback(i),
                name=f"l2[{i}]",
            )
            for i in range(config.l2_partitions)
        ]

    def _make_dram_callback(self, partition: int):
        channel = self.dram_channels[partition]

        def dram_latency(_line_addr: int, cycle: int) -> int:
            return channel.access(cycle)

        return dram_latency

    def _partition_of(self, line_addr: int) -> int:
        return line_addr % len(self.l2_partitions)

    def service_l1_miss(self, sm_id: int, line_addr: int, cycle: int) -> int:
        """Latency added beyond the L1 for one missed line."""
        noc_delay = self.noc.traverse(sm_id, cycle)
        if self.tracer is not None:
            self.tracer.component_event(
                "mem", "l1_miss",
                {"sm": sm_id, "line": line_addr,
                 "partition": self._partition_of(line_addr)})
        partition = self.l2_partitions[self._partition_of(line_addr)]
        # L2 "hit latency" in its CacheConfig is the round-trip seen by the
        # SM minus the NoC component; Table II's 200-cycle L2 latency is the
        # total, so subtract the L1 probe time built into the access.
        ready, _hit = partition.access(line_addr, cycle + noc_delay)
        base = self.config.l2_latency - self.config.l1d.hit_latency
        return max(0, noc_delay + (ready - cycle) + base - partition.config.hit_latency)

    def state_dict(self) -> Dict:
        """Chip-level timing state plus the functional memory image.

        The DRAM-callback closures inside the L2 partitions are rebuilt at
        construction; ``stats_group()`` aggregates from the restored
        scalars at collection time, so no chip-level stat tree is stored.
        """
        return {
            "dram": [channel.state_dict() for channel in self.dram_channels],
            "noc": self.noc.state_dict(),
            "l2": [partition.state_dict() for partition in self.l2_partitions],
            "image": self.image.state_dict(),
        }

    def load_state(self, state: Dict) -> None:
        for channel, data in zip(self.dram_channels, state["dram"]):
            channel.load_state(data)
        self.noc.load_state(state["noc"])
        for partition, data in zip(self.l2_partitions, state["l2"]):
            partition.load_state(data)
        self.image.load_state(state["image"])

    @property
    def l2_stats(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for partition in self.l2_partitions:
            for key, value in partition.stats.snapshot().items():
                totals[key] = totals.get(key, 0) + value
        return totals

    @property
    def dram_accesses(self) -> int:
        return sum(channel.accesses for channel in self.dram_channels)

    def stats_group(self) -> StatGroup:
        """This subsystem's subtree of the run's stats registry.

        Chip-level structures aggregate their per-partition/channel scalars
        at collection time (unlike the per-SM groups, which are live).
        """
        memory = StatGroup("memory")
        l2 = memory.group("l2")
        for key, value in self.l2_stats.items():
            l2.add_counter(key, value)
        dram = memory.group("dram")
        dram.add_counter("accesses", self.dram_accesses)
        dram.add_counter(
            "queueing_cycles",
            sum(channel.queueing_cycles for channel in self.dram_channels),
        )
        memory.group("noc").add_counter("flits", self.noc.flits)
        return memory


class SMMemoryPort:
    """Per-SM memory pipeline front door: L1 caches + scratchpad timing."""

    def __init__(self, sm_id: int, config: GPUConfig, subsystem: MemorySubsystem) -> None:
        self.sm_id = sm_id
        self.config = config
        self.subsystem = subsystem
        self.l1d = Cache(config.l1d, miss_latency=self._miss_cb, name=f"l1d[{sm_id}]")
        self.l1c = Cache(config.l1c, miss_latency=self._miss_cb, name=f"l1c[{sm_id}]")
        self.stats = StatGroup("port")
        self.stats.add_counter("scratchpad_accesses")
        #: Observability hook (per-SM ``SMTraceView`` or ``None``).
        self.tracer = None

    @property
    def scratchpad_accesses(self) -> int:
        return self.stats.scratchpad_accesses

    def state_dict(self) -> Dict:
        return {
            "l1d": self.l1d.state_dict(),
            "l1c": self.l1c.state_dict(),
            "stats": self.stats.to_dict(),
        }

    def load_state(self, state: Dict) -> None:
        self.l1d.load_state(state["l1d"])
        self.l1c.load_state(state["l1c"])
        self.stats.load_state(state["stats"])

    def _miss_cb(self, line_addr: int, cycle: int) -> int:
        return self.subsystem.service_l1_miss(self.sm_id, line_addr, cycle)

    def _coalesce(self, addrs: np.ndarray, mask: np.ndarray, line_bytes: int) -> List[int]:
        """Unique line addresses touched by the active lanes.

        A sorted python set beats ``np.unique`` by an order of magnitude at
        warp width (32 lanes), and this runs once per memory instruction.
        """
        shift = line_bytes.bit_length() - 1
        lanes = addrs.tolist() if mask.all() else addrs[mask].tolist()
        return sorted({addr >> shift for addr in lanes})

    def access(
        self,
        space: MemSpace,
        block_id: int,
        addrs: np.ndarray,
        mask: np.ndarray,
        cycle: int,
        is_store: bool = False,
        store_values: Optional[np.ndarray] = None,
    ) -> MemoryAccessResult:
        """Perform one warp memory access: functional + timing.

        Global/local traffic goes through the L1D; const/param through the
        L1C; shared memory is a fixed-latency scratchpad.  Coalesced lines
        are serviced one per cycle; the instruction completes when its last
        line is ready.
        """
        store = self.subsystem.image.store_for(space, block_id)

        # Functional part.
        values: Optional[np.ndarray] = None
        if is_store:
            assert store_values is not None
            store.store(addrs, store_values, mask)
        else:
            values = store.load(addrs, mask)

        # Timing part.
        if space is MemSpace.SHARED:
            self.stats.scratchpad_accesses += 1
            if self.tracer is not None:
                self.tracer.mem_access("shared", 0, 0, 0)
            return MemoryAccessResult(
                ready_cycle=cycle + self.config.shared_mem_latency,
                scratchpad_accesses=1,
                values=values,
            )

        cache = self.l1c if space in (MemSpace.CONST, MemSpace.PARAM) else self.l1d
        lines = self._coalesce(addrs, mask, cache.config.line_bytes)
        if not lines:
            return MemoryAccessResult(ready_cycle=cycle + 1, values=values)

        ready = cycle
        hits = misses = 0
        for i, line in enumerate(lines):
            line_ready, hit = cache.access(line, cycle + i, is_write=is_store)
            ready = max(ready, line_ready)
            if hit:
                hits += 1
            else:
                misses += 1
        if self.tracer is not None:
            self.tracer.mem_access(space.name.lower(), len(lines), hits, misses)
        return MemoryAccessResult(
            ready_cycle=ready,
            lines=len(lines),
            l1_hits=hits,
            l1_misses=misses,
            values=values,
        )
