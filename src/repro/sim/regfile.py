"""Banked register file timing model.

The 128 KB register file is organised as 8 bank groups of 8 x 128-bit banks
(Section II): one 1024-bit warp register access is served by one bank group
in lockstep, and each group sustains one read and one write per cycle.
Requests to a busy group retry on following cycles; the retry count per
request is the Figure 18b metric.

Energy accounting counts *bank* accesses: a full-width warp register access
activates all 8 banks of its group; an affine-encoded access (the Affine
model of Section VII-A) activates a single bank.
"""

from __future__ import annotations

from repro.sim.config import GPUConfig
from repro.stats import StatGroup


class RegisterFileStats(StatGroup):
    """Register-file port/bank event counts (Figure 18 metrics)."""

    COUNTERS = ("read_requests", "write_requests", "read_retries",
                "write_retries", "bank_reads", "bank_writes",
                "verify_read_requests")


class RegisterFileTiming:
    """Per-SM register file port arbiter."""

    #: Banks ganged per group (1024-bit register / 128-bit banks).
    BANKS_PER_GROUP = 8

    def __init__(self, config: GPUConfig) -> None:
        self.config = config
        self.num_groups = config.register_bank_groups
        self._read_free = [0] * self.num_groups
        self._write_free = [0] * self.num_groups
        self.stats = RegisterFileStats("regfile")
        #: Observability hook (an ``SMTraceView`` or ``None``).
        self.tracer = None
        #: Vector-engine fast path: ``schedule_read``/``schedule_write`` run
        #: several times per backend instruction, so they mutate the Counter
        #: objects directly instead of going through the StatGroup attribute
        #: magic.  Same objects, so the reported stats are identical.
        self._fast_stats = config.exec_engine in ("vector", "superblock")
        counters = self.stats._stats
        self._c_read_requests = counters["read_requests"]
        self._c_read_retries = counters["read_retries"]
        self._c_write_requests = counters["write_requests"]
        self._c_write_retries = counters["write_retries"]
        self._c_bank_reads = counters["bank_reads"]
        self._c_bank_writes = counters["bank_writes"]
        self._c_verify_reads = counters["verify_read_requests"]

    def group_of(self, reg_id: int) -> int:
        return reg_id % self.num_groups

    def schedule_read(
        self, reg_id: int, cycle: int, affine: bool = False, verify: bool = False
    ) -> int:
        """Arbitrate one register read; returns the cycle the data is ready."""
        group = reg_id % self.num_groups
        start = max(cycle, self._read_free[group])
        if self._fast_stats:
            self._c_read_requests.value += 1
            self._c_read_retries.value += start - cycle
            if verify:
                self._c_verify_reads.value += 1
            self._c_bank_reads.value += 1 if affine else self.BANKS_PER_GROUP
        else:
            self.stats.read_requests += 1
            self.stats.read_retries += start - cycle
            if verify:
                self.stats.verify_read_requests += 1
            self.stats.bank_reads += 1 if affine else self.BANKS_PER_GROUP
        if self.tracer is not None and start > cycle:
            self.tracer.bank_conflict(reg_id, start - cycle, "read", verify)
        self._read_free[group] = start + 1
        return start + 1

    def schedule_write(self, reg_id: int, cycle: int, affine: bool = False) -> int:
        """Arbitrate one register write; returns the completion cycle."""
        group = reg_id % self.num_groups
        start = max(cycle, self._write_free[group])
        if self._fast_stats:
            self._c_write_requests.value += 1
            self._c_write_retries.value += start - cycle
            self._c_bank_writes.value += 1 if affine else self.BANKS_PER_GROUP
        else:
            self.stats.write_requests += 1
            self.stats.write_retries += start - cycle
            self.stats.bank_writes += 1 if affine else self.BANKS_PER_GROUP
        if self.tracer is not None and start > cycle:
            self.tracer.bank_conflict(reg_id, start - cycle, "write")
        self._write_free[group] = start + 1
        return start + 1

    def state_dict(self) -> dict:
        """Port-arbiter state (stats restore through the SM's stats tree,
        keeping the ``_c_*`` Counter references valid)."""
        return {
            "read_free": list(self._read_free),
            "write_free": list(self._write_free),
        }

    def load_state(self, state: dict) -> None:
        # In place: the superblock runtime binds these lists directly.
        self._read_free[:] = state["read_free"]
        self._write_free[:] = state["write_free"]

    @property
    def retries_per_request(self) -> float:
        total = self.stats.read_requests + self.stats.write_requests
        if not total:
            return 0.0
        return (self.stats.read_retries + self.stats.write_retries) / total
