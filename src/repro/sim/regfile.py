"""Banked register file timing model.

The 128 KB register file is organised as 8 bank groups of 8 x 128-bit banks
(Section II): one 1024-bit warp register access is served by one bank group
in lockstep, and each group sustains one read and one write per cycle.
Requests to a busy group retry on following cycles; the retry count per
request is the Figure 18b metric.

Energy accounting counts *bank* accesses: a full-width warp register access
activates all 8 banks of its group; an affine-encoded access (the Affine
model of Section VII-A) activates a single bank.
"""

from __future__ import annotations

from repro.sim.config import GPUConfig
from repro.stats import StatGroup


class RegisterFileStats(StatGroup):
    """Register-file port/bank event counts (Figure 18 metrics)."""

    COUNTERS = ("read_requests", "write_requests", "read_retries",
                "write_retries", "bank_reads", "bank_writes",
                "verify_read_requests")


class RegisterFileTiming:
    """Per-SM register file port arbiter."""

    #: Banks ganged per group (1024-bit register / 128-bit banks).
    BANKS_PER_GROUP = 8

    def __init__(self, config: GPUConfig) -> None:
        self.config = config
        self.num_groups = config.register_bank_groups
        self._read_free = [0] * self.num_groups
        self._write_free = [0] * self.num_groups
        self.stats = RegisterFileStats("regfile")
        #: Observability hook (an ``SMTraceView`` or ``None``).
        self.tracer = None

    def group_of(self, reg_id: int) -> int:
        return reg_id % self.num_groups

    def schedule_read(
        self, reg_id: int, cycle: int, affine: bool = False, verify: bool = False
    ) -> int:
        """Arbitrate one register read; returns the cycle the data is ready."""
        group = self.group_of(reg_id)
        start = max(cycle, self._read_free[group])
        self.stats.read_requests += 1
        self.stats.read_retries += start - cycle
        if verify:
            self.stats.verify_read_requests += 1
        if self.tracer is not None and start > cycle:
            self.tracer.bank_conflict(reg_id, start - cycle, "read", verify)
        self._read_free[group] = start + 1
        self.stats.bank_reads += 1 if affine else self.BANKS_PER_GROUP
        return start + 1

    def schedule_write(self, reg_id: int, cycle: int, affine: bool = False) -> int:
        """Arbitrate one register write; returns the completion cycle."""
        group = self.group_of(reg_id)
        start = max(cycle, self._write_free[group])
        self.stats.write_requests += 1
        self.stats.write_retries += start - cycle
        if self.tracer is not None and start > cycle:
            self.tracer.bank_conflict(reg_id, start - cycle, "write")
        self._write_free[group] = start + 1
        self.stats.bank_writes += 1 if affine else self.BANKS_PER_GROUP
        return start + 1

    @property
    def retries_per_request(self) -> float:
        total = self.stats.read_requests + self.stats.write_requests
        if not total:
            return 0.0
        return (self.stats.read_retries + self.stats.write_retries) / total
