"""Warp schedulers: greedy-then-oldest (GTO) and loose round-robin (LRR).

Each SM has two schedulers (Table II); scheduler *i* owns the warp slots
with ``slot % num_schedulers == i`` so the two groups of 24 warps issue
independently, one warp instruction per scheduler per cycle.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.sim.config import SchedulerPolicy


class WarpScheduler:
    """Selects one ready warp slot per cycle from its group."""

    def __init__(
        self, scheduler_id: int, slots: List[int], policy: SchedulerPolicy
    ) -> None:
        self.scheduler_id = scheduler_id
        self.slots = list(slots)
        self.policy = policy
        self._last_issued: Optional[int] = None
        self._rr_index = 0
        #: Slot age: lower = older; refreshed when a block is dispatched.
        self._age: dict = {slot: i for i, slot in enumerate(self.slots)}
        self._age_counter = len(self.slots)
        #: Fast-path arbitration (set by the SM when the vector engine is
        #: selected): GTO scans only slots currently holding a warp instead
        #: of the full static group.  Ages are unique, so the min-age winner
        #: is independent of scan order and the pick is provably identical —
        #: non-resident slots can never be ready.  LRR keeps the full scan
        #: in both modes because its ``_rr_index`` update depends on the
        #: static slot ordering.
        self.use_resident = False
        self._resident: List[int] = []
        #: Resident slots whose current instruction is not known to be
        #: scoreboard-blocked (see ``SMCore._sb_wait``).  The SM keeps this
        #: in sync with every ``_sb_wait`` toggle; when it hits zero the
        #: fused pick returns immediately.  Maintained (but unused) under
        #: the scalar engine, which never sets ``_sb_wait``.
        self.scannable = 0
        #: Observability hook: called as ``on_pick(scheduler_id, slot)``
        #: whenever a slot wins arbitration.  Never influences the choice.
        self.on_pick: Optional[Callable[[int, int], None]] = None
        #: Cycle before which a fused scan provably returns ``None`` (set by
        #: a failed ``fast_pick`` from the blocked slots' wake candidates;
        #: reset to 0 by every event that can make a slot ready earlier:
        #: scoreboard release, pending-retry wakeup, barrier release, block
        #: dispatch).  Pure optimisation state — never serialized; a restore
        #: starts at 0 and the first scan recomputes it.
        self.wake_memo = 0
        #: Greedy-hint handoff (superblock engine): when an issued warp's
        #: next instruction is already hazard-free, ``try_issue`` pins
        #: (cycle+1, slot, fu-class) here, and the next tick re-checks only
        #: the FU gate instead of re-running arbitration — the GTO greedy
        #: probe would reach the same pick.  Ephemeral, never serialized: a
        #: restore (or a consumed/stale hint) falls back to the fused scan,
        #: which is decision-identical.
        self.hint_cycle = -1
        self.hint_slot = 0
        self.hint_fu = 3

    def note_dispatch(self, slot: int) -> None:
        """Record that *slot* received a fresh warp (it becomes youngest).

        ``_resident`` is kept age-ascending (append order == dispatch order
        == age order); the fused GTO scan relies on this to return the
        first ready slot it meets."""
        self._age[slot] = self._age_counter
        self._age_counter += 1
        self.wake_memo = 0
        if slot in self._resident:
            self._resident.remove(slot)
            self._resident.append(slot)
        else:
            self._resident.append(slot)
            self.scannable += 1

    def note_finished(self, slot: int) -> None:
        """Record that *slot*'s warp exited (drop it from the fast scan).

        The slot's ``_sb_wait`` flag is always clear here (its last retire
        or issue preceded the exit), so it counted as scannable.
        """
        if slot in self._resident:
            self._resident.remove(slot)
            self.scannable -= 1

    def state_dict(self) -> dict:
        """Arbitration state (``slots``/``policy``/``use_resident`` are
        config-derived and rebuilt at construction)."""
        return {
            "last_issued": self._last_issued,
            "rr_index": self._rr_index,
            "age": {str(slot): age for slot, age in self._age.items()},
            "age_counter": self._age_counter,
            "resident": list(self._resident),
            "scannable": self.scannable,
        }

    def load_state(self, state: dict) -> None:
        self._last_issued = state["last_issued"]
        self._rr_index = state["rr_index"]
        self._age = {int(slot): age for slot, age in state["age"].items()}
        self._age_counter = state["age_counter"]
        self._resident = list(state["resident"])
        self.scannable = state["scannable"]
        self.wake_memo = 0
        self.hint_cycle = -1

    def pick(self, ready: Callable[[int], bool]) -> Optional[int]:
        """Select the next slot to issue from, or ``None`` if none is ready."""
        if self.policy is SchedulerPolicy.GTO:
            slot = self._pick_gto(ready)
        else:
            slot = self._pick_lrr(ready)
        if slot is not None and self.on_pick is not None:
            self.on_pick(self.scheduler_id, slot)
        return slot

    def _pick_gto(self, ready: Callable[[int], bool]) -> Optional[int]:
        # Greedy: stick with the last-issued warp while it stays ready.
        if self._last_issued is not None and ready(self._last_issued):
            return self._last_issued
        # Then oldest: lowest dispatch age wins.
        best: Optional[int] = None
        best_age = None
        for slot in (self._resident if self.use_resident else self.slots):
            if not ready(slot):
                continue
            age = self._age[slot]
            if best_age is None or age < best_age:
                best, best_age = slot, age
        if best is not None:
            self._last_issued = best
        return best

    def _pick_lrr(self, ready: Callable[[int], bool]) -> Optional[int]:
        n = len(self.slots)
        for offset in range(n):
            slot = self.slots[(self._rr_index + offset) % n]
            if ready(slot):
                self._rr_index = (self._rr_index + offset + 1) % n
                return slot
        return None
