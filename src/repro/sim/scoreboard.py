"""Per-warp scoreboards tracking write-pending registers (Section II).

The destination registers of an issued instruction are registered as
write-pending; the next instruction of the warp may issue only when none of
its source or destination registers (or predicates) is pending.  Retiring
instructions clear their destinations.  As in the baseline GPU — and
deliberately unchanged by the WIR design — the scoreboard operates on
*logical* register IDs.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.isa.instruction import Instruction


class Scoreboard:
    """Scoreboards for all warp slots of one SM."""

    def __init__(self, num_warp_slots: int) -> None:
        self._pending_regs: List[Set[int]] = [set() for _ in range(num_warp_slots)]
        self._pending_preds: List[Set[int]] = [set() for _ in range(num_warp_slots)]

    def reset_slot(self, slot: int) -> None:
        self._pending_regs[slot].clear()
        self._pending_preds[slot].clear()

    def can_issue(self, slot: int, inst: Instruction) -> bool:
        """RAW/WAW/WAR-safe issue check against pending writes.

        ``inst.sb_regs``/``inst.sb_preds`` are the precomputed union of the
        instruction's sources and (write-ordering) destination, so the hot
        check is two set/tuple disjointness probes.
        """
        regs = self._pending_regs[slot]
        if regs and not regs.isdisjoint(inst.sb_regs):
            return False
        preds = self._pending_preds[slot]
        if preds and not preds.isdisjoint(inst.sb_preds):
            return False
        return True

    def register(self, slot: int, inst: Instruction) -> None:
        """Mark the instruction's destinations write-pending."""
        if inst.writes_register:
            self._pending_regs[slot].add(inst.dst.value)
        elif inst.writes_predicate:
            self._pending_preds[slot].add(inst.dst.value)

    def release(self, slot: int, inst: Instruction) -> None:
        """Clear the instruction's destinations at retire."""
        if inst.writes_register:
            self._pending_regs[slot].discard(inst.dst.value)
        elif inst.writes_predicate:
            self._pending_preds[slot].discard(inst.dst.value)

    def blockers(self, slot: int, inst: Instruction) -> Tuple[List[int], List[int]]:
        """The pending (registers, predicates) that block *inst* from issue.

        Mirrors :meth:`can_issue` exactly (same operand sets, same pending
        state) but returns every offender instead of a boolean, so stall
        attribution can ask its producers why they are still in flight.
        """
        regs = self._pending_regs[slot]
        preds = self._pending_preds[slot]
        blocking_regs: List[int] = []
        blocking_preds: List[int] = []
        if regs:
            for reg in inst.source_registers():
                if reg in regs:
                    blocking_regs.append(reg)
            if inst.writes_register and inst.dst.value in regs:
                blocking_regs.append(inst.dst.value)
        if preds:
            for pred in inst.source_predicates():
                if pred in preds:
                    blocking_preds.append(pred)
            if inst.writes_predicate and inst.dst.value in preds:
                blocking_preds.append(inst.dst.value)
        return blocking_regs, blocking_preds

    def pending_count(self, slot: int) -> int:
        return len(self._pending_regs[slot]) + len(self._pending_preds[slot])

    def pending_snapshot(self, slot: int) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        """(pending registers, pending predicates) for diagnostics."""
        return (tuple(sorted(self._pending_regs[slot])),
                tuple(sorted(self._pending_preds[slot])))

    # --- checkpointing ------------------------------------------------------

    def state_dict(self) -> Dict:
        return {
            "regs": [sorted(pending) for pending in self._pending_regs],
            "preds": [sorted(pending) for pending in self._pending_preds],
        }

    def load_state(self, state: Dict) -> None:
        # In place: pipeline stages hold direct references to these lists.
        self._pending_regs[:] = [set(pending) for pending in state["regs"]]
        self._pending_preds[:] = [set(pending) for pending in state["preds"]]
