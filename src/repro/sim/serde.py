"""Checkpoint codecs for pipeline payloads (the stage/serde layer).

One home for the plain-data encoding of every object that crosses a
checkpoint boundary inside an SM — :class:`~repro.sim.exec_engine.ExecResult`
vectors, :class:`~repro.core.wir_unit.IssueDecision` records, pending-retry
waiters, and the SM event heap — shared by :class:`~repro.sim.smcore.SMCore`
and the :mod:`repro.ckpt` tools (``repro ckpt inspect`` summarises queued
events through the same tables), so the encoding knowledge exists exactly
once.

Array payloads ride on :func:`repro.ckpt.codec.encode_array`; everything
else is JSON-native.  Decoders that rebuild live objects (waiters, event
payloads) take the owning ``core`` as their first argument — a warp is
identified by its slot (a warp can never finish while it has in-flight
instructions, so the slot still holds it at restore) and an instruction by
its pc (restore indexes the program, so per-``id(inst)`` plan/kernel caches
repopulate lazily and purely).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.ckpt.codec import decode_array, encode_array
from repro.core.reuse_buffer import Waiter
from repro.core.wir_unit import IssueDecision
from repro.sim.exec_engine import ExecResult

# Event kinds on the SM heap.  Events are plain (cycle, seq, kind, payload)
# records dispatched by ``SMCore._dispatch`` — declarative data instead of
# bound closures, so an event queue can be serialized into a checkpoint and
# rebuilt in a fresh process.  ``seq`` is unique per SM, so heap ordering
# never compares payloads.
EV_RETIRE = 0        # payload (warp, inst)
EV_REUSE_COMMIT = 1  # payload (warp, inst, result_reg)
EV_WRITEBACK = 2     # payload (warp, inst, exec_result, decision, ready)
EV_WIR_COMMIT = 3    # payload (warp, inst, decision, dest)
EV_SB_WRITEBACK = 4  # payload (warp, inst, ready) — superblock fast path

#: Serialized names (checkpoint files store names, not raw ints, so a
#: renumbering is caught by schema validation instead of silent mis-dispatch).
EVENT_KIND_NAMES = {
    EV_RETIRE: "retire",
    EV_REUSE_COMMIT: "reuse_commit",
    EV_WRITEBACK: "writeback",
    EV_WIR_COMMIT: "wir_commit",
    EV_SB_WRITEBACK: "sb_writeback",
}
EVENT_KINDS_BY_NAME = {name: kind for kind, name in EVENT_KIND_NAMES.items()}


# ------------------------------------------------------------- exec results

def encode_exec_result(res: ExecResult) -> dict:
    return {
        "mask": encode_array(res.mask),
        "sources": [encode_array(src) for src in res.sources],
        "result": encode_array(res.result),
        "pred_result": encode_array(res.pred_result),
        "taken_mask": encode_array(res.taken_mask),
        "addresses": encode_array(res.addresses),
        "store_values": encode_array(res.store_values),
    }


def decode_exec_result(data: dict) -> ExecResult:
    return ExecResult(
        mask=decode_array(data["mask"]),
        sources=tuple(decode_array(src) for src in data["sources"]),
        result=decode_array(data["result"]),
        pred_result=decode_array(data["pred_result"]),
        taken_mask=decode_array(data["taken_mask"]),
        addresses=decode_array(data["addresses"]),
        store_values=decode_array(data["store_values"]),
    )


# ---------------------------------------------------------- issue decisions

def encode_decision(decision: Optional[IssueDecision]) -> Optional[dict]:
    if decision is None:
        return None
    tag = decision.tag
    return {
        "action": decision.action,
        "src_phys": list(decision.src_phys),
        "tag": ([tag[0], [list(desc) for desc in tag[1]]]
                if tag is not None else None),
        "result_reg": decision.result_reg,
        "rb_index": decision.rb_index,
        "rb_token": decision.rb_token,
        "reserved": decision.reserved,
        "divergent": decision.divergent,
    }


def decode_decision(data: Optional[dict]) -> Optional[IssueDecision]:
    if data is None:
        return None
    tag = data["tag"]
    return IssueDecision(
        action=data["action"],
        src_phys=tuple(data["src_phys"]),
        tag=((tag[0], tuple((kind, operand) for kind, operand in tag[1]))
             if tag is not None else None),
        result_reg=data["result_reg"],
        rb_index=data["rb_index"],
        rb_token=data["rb_token"],
        reserved=data["reserved"],
        divergent=data["divergent"],
    )


# ------------------------------------------------------------------ waiters

def encode_waiter(waiter: Waiter) -> dict:
    warp, inst, exec_result = waiter.descriptor
    return {
        "slot": warp.warp_slot,
        "pc": inst.pc,
        "exec": encode_exec_result(exec_result),
    }


def decode_waiter(core, data: dict) -> Waiter:
    warp = core.warps[data["slot"]]
    inst = core.program.instructions[data["pc"]]
    return core.pipeline.reuse_probe.make_waiter(
        warp, inst, decode_exec_result(data["exec"]))


# ------------------------------------------------------------------- events

def encode_event(event: Tuple[int, int, int, tuple]) -> dict:
    """One heap record as plain data (see module docstring for identity)."""
    cycle, seq, kind, payload = event
    data: dict = {"cycle": cycle, "seq": seq, "kind": EVENT_KIND_NAMES[kind]}
    if kind == EV_RETIRE:
        warp, inst = payload
        data["payload"] = {"slot": warp.warp_slot, "pc": inst.pc}
    elif kind == EV_REUSE_COMMIT:
        warp, inst, result_reg = payload
        data["payload"] = {"slot": warp.warp_slot, "pc": inst.pc,
                           "result_reg": result_reg}
    elif kind == EV_WRITEBACK:
        warp, inst, exec_result, decision, ready = payload
        data["payload"] = {
            "slot": warp.warp_slot, "pc": inst.pc,
            "exec": encode_exec_result(exec_result),
            "decision": encode_decision(decision),
            # The raw (unclamped) writeback cycle: the allocate/verify stage
            # passes it on to allocation/regfile scheduling, so the heap
            # cycle alone (clamped by _schedule) would not reproduce it.
            "ready": ready,
        }
    elif kind == EV_SB_WRITEBACK:
        warp, inst, ready = payload
        # Superblock steps commit functionally at issue, so the event only
        # carries identity plus the raw (unclamped) writeback cycle.
        data["payload"] = {"slot": warp.warp_slot, "pc": inst.pc,
                           "ready": ready}
    else:  # EV_WIR_COMMIT
        warp, inst, decision, dest = payload
        data["payload"] = {"slot": warp.warp_slot, "pc": inst.pc,
                           "decision": encode_decision(decision),
                           "dest": dest}
    return data


def decode_event(core, data: dict) -> Tuple[int, int, int, tuple]:
    kind = EVENT_KINDS_BY_NAME[data["kind"]]
    p = data["payload"]
    warp = core.warps[p["slot"]]
    inst = core.program.instructions[p["pc"]]
    if kind == EV_RETIRE:
        payload: tuple = (warp, inst)
    elif kind == EV_REUSE_COMMIT:
        payload = (warp, inst, p["result_reg"])
    elif kind == EV_WRITEBACK:
        payload = (warp, inst, decode_exec_result(p["exec"]),
                   decode_decision(p["decision"]), p["ready"])
    elif kind == EV_SB_WRITEBACK:
        payload = (warp, inst, p["ready"])
    else:
        payload = (warp, inst, decode_decision(p["decision"]), p["dest"])
    return (data["cycle"], data["seq"], kind, payload)


def event_kind_summary(events) -> dict:
    """Histogram of serialized event kinds (``repro ckpt inspect``)."""
    summary: dict = {}
    for event in events:
        kind = event.get("kind", "?")
        summary[kind] = summary.get(kind, 0) + 1
    return summary


# ------------------------------------------------------------ SM snapshots

def sm_state_dict(core) -> dict:
    """Complete snapshot of one :class:`~repro.sim.smcore.SMCore` at a
    cycle boundary (pure reads).

    The stage pipeline serializes itself through the stages' inherited
    ``state_dict`` hooks.  Not serialized: pure lazily-repopulated engine
    caches (superblock tables, scheduler wake memos and hints), config-
    derived constants, and preloaded stat handles.
    """
    events = sorted(core._events, key=lambda event: (event[0], event[1]))
    return {
        "cycle": core.cycle,
        "warps": [warp.state_dict() if warp is not None else None
                  for warp in core.warps],
        "blocks": {
            str(block_id): {"slots": list(bs.slots),
                            "live_warps": bs.live_warps}
            for block_id, bs in core._blocks.items()
        },
        "scoreboard": core.scoreboard.state_dict(),
        "schedulers": [sched.state_dict() for sched in core.schedulers],
        "regfile": core.regfile.state_dict(),
        "port": core.port.state_dict(),
        "affine": core.affine.state_dict(),
        "unit": (core.unit.state_dict(encode_waiter)
                 if core.unit is not None else None),
        "wir_quarantined": core.wir_quarantined,
        "pipeline": core.pipeline.state_dict(),
        "events": [encode_event(event) for event in events],
        "event_seq": core._event_seq,
        "sleep_until": core._sleep_until,
        "warp_blocked_until": list(core._warp_blocked_until),
        "warp_waiting": list(core._warp_waiting),
        "sb_wait": list(core._sb_wait),
        "stats": core.stats.to_dict(),
    }


def sm_load_state(core, state: dict, descriptor_of) -> None:
    """Restore a snapshot onto a freshly constructed SM.

    *descriptor_of* maps a block id back to its
    :class:`~repro.sim.grid.BlockDescriptor`.  Every slot-state list (and
    the event heap) is restored *in place*: pipeline stages and the
    superblock runtime cached direct references at construction, so a
    replacement list would split the state.
    """
    import heapq

    from repro.sim.smcore import _BlockState
    from repro.sim.warp import Warp

    core.cycle = state["cycle"]
    # Warps first: waiter and event decoding below needs live objects.
    for slot in range(len(core.warps)):
        core.warps[slot] = None
    for slot, wstate in enumerate(state["warps"]):
        if wstate is None:
            continue
        warp = Warp(slot, descriptor_of(wstate["block_id"]),
                    wstate["warp_in_block"], core.program)
        warp.load_state(wstate)
        core.warps[slot] = warp
    core._blocks = {}
    for block_id_str, bstate in state["blocks"].items():
        block_id = int(block_id_str)
        bs = _BlockState(descriptor_of(block_id), list(bstate["slots"]))
        bs.live_warps = bstate["live_warps"]
        core._blocks[block_id] = bs
    core.scoreboard.load_state(state["scoreboard"])
    for sched, sstate in zip(core.schedulers, state["schedulers"]):
        sched.load_state(sstate)
    core.regfile.load_state(state["regfile"])
    core.port.load_state(state["port"])
    core.affine.load_state(state["affine"])
    core.wir_quarantined = state["wir_quarantined"]
    if core.unit is not None:
        core.unit.load_state(state["unit"],
                             lambda data: decode_waiter(core, data))
        core._refresh_register_cap()
    core.pipeline.load_state(state["pipeline"])
    core._events[:] = [decode_event(core, event)
                       for event in state["events"]]
    heapq.heapify(core._events)
    core._event_seq = state["event_seq"]
    core._sleep_until = state["sleep_until"]
    core._warp_blocked_until[:] = state["warp_blocked_until"]
    # After the unit restore: rebuilding waiters via the reuse-probe stage
    # set flags for queued slots; the stored list is authoritative.
    core._warp_waiting[:] = state["warp_waiting"]
    core._sb_wait[:] = state["sb_wait"]
    core.stats.load_state(state["stats"])
