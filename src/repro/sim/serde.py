"""Checkpoint codecs for pipeline payloads (the stage/serde layer).

One home for the plain-data encoding of every object that crosses a
checkpoint boundary inside an SM — :class:`~repro.sim.exec_engine.ExecResult`
vectors, :class:`~repro.core.wir_unit.IssueDecision` records, pending-retry
waiters, and the SM event heap — shared by :class:`~repro.sim.smcore.SMCore`
and the :mod:`repro.ckpt` tools (``repro ckpt inspect`` summarises queued
events through the same tables), so the encoding knowledge exists exactly
once.

Array payloads ride on :func:`repro.ckpt.codec.encode_array`; everything
else is JSON-native.  Decoders that rebuild live objects (waiters, event
payloads) take the owning ``core`` as their first argument — a warp is
identified by its slot (a warp can never finish while it has in-flight
instructions, so the slot still holds it at restore) and an instruction by
its pc (restore indexes the program, so per-``id(inst)`` plan/kernel caches
repopulate lazily and purely).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.ckpt.codec import decode_array, encode_array
from repro.core.reuse_buffer import Waiter
from repro.core.wir_unit import IssueDecision
from repro.sim.exec_engine import ExecResult

# Event kinds on the SM heap.  Events are plain (cycle, seq, kind, payload)
# records dispatched by ``SMCore._dispatch`` — declarative data instead of
# bound closures, so an event queue can be serialized into a checkpoint and
# rebuilt in a fresh process.  ``seq`` is unique per SM, so heap ordering
# never compares payloads.
EV_RETIRE = 0        # payload (warp, inst)
EV_REUSE_COMMIT = 1  # payload (warp, inst, result_reg)
EV_WRITEBACK = 2     # payload (warp, inst, exec_result, decision, ready)
EV_WIR_COMMIT = 3    # payload (warp, inst, decision, dest)

#: Serialized names (checkpoint files store names, not raw ints, so a
#: renumbering is caught by schema validation instead of silent mis-dispatch).
EVENT_KIND_NAMES = {
    EV_RETIRE: "retire",
    EV_REUSE_COMMIT: "reuse_commit",
    EV_WRITEBACK: "writeback",
    EV_WIR_COMMIT: "wir_commit",
}
EVENT_KINDS_BY_NAME = {name: kind for kind, name in EVENT_KIND_NAMES.items()}


# ------------------------------------------------------------- exec results

def encode_exec_result(res: ExecResult) -> dict:
    return {
        "mask": encode_array(res.mask),
        "sources": [encode_array(src) for src in res.sources],
        "result": encode_array(res.result),
        "pred_result": encode_array(res.pred_result),
        "taken_mask": encode_array(res.taken_mask),
        "addresses": encode_array(res.addresses),
        "store_values": encode_array(res.store_values),
    }


def decode_exec_result(data: dict) -> ExecResult:
    return ExecResult(
        mask=decode_array(data["mask"]),
        sources=tuple(decode_array(src) for src in data["sources"]),
        result=decode_array(data["result"]),
        pred_result=decode_array(data["pred_result"]),
        taken_mask=decode_array(data["taken_mask"]),
        addresses=decode_array(data["addresses"]),
        store_values=decode_array(data["store_values"]),
    )


# ---------------------------------------------------------- issue decisions

def encode_decision(decision: Optional[IssueDecision]) -> Optional[dict]:
    if decision is None:
        return None
    tag = decision.tag
    return {
        "action": decision.action,
        "src_phys": list(decision.src_phys),
        "tag": ([tag[0], [list(desc) for desc in tag[1]]]
                if tag is not None else None),
        "result_reg": decision.result_reg,
        "rb_index": decision.rb_index,
        "rb_token": decision.rb_token,
        "reserved": decision.reserved,
        "divergent": decision.divergent,
    }


def decode_decision(data: Optional[dict]) -> Optional[IssueDecision]:
    if data is None:
        return None
    tag = data["tag"]
    return IssueDecision(
        action=data["action"],
        src_phys=tuple(data["src_phys"]),
        tag=((tag[0], tuple((kind, operand) for kind, operand in tag[1]))
             if tag is not None else None),
        result_reg=data["result_reg"],
        rb_index=data["rb_index"],
        rb_token=data["rb_token"],
        reserved=data["reserved"],
        divergent=data["divergent"],
    )


# ------------------------------------------------------------------ waiters

def encode_waiter(waiter: Waiter) -> dict:
    warp, inst, exec_result = waiter.descriptor
    return {
        "slot": warp.warp_slot,
        "pc": inst.pc,
        "exec": encode_exec_result(exec_result),
    }


def decode_waiter(core, data: dict) -> Waiter:
    warp = core.warps[data["slot"]]
    inst = core.program.instructions[data["pc"]]
    return core.pipeline.reuse_probe.make_waiter(
        warp, inst, decode_exec_result(data["exec"]))


# ------------------------------------------------------------------- events

def encode_event(event: Tuple[int, int, int, tuple]) -> dict:
    """One heap record as plain data (see module docstring for identity)."""
    cycle, seq, kind, payload = event
    data: dict = {"cycle": cycle, "seq": seq, "kind": EVENT_KIND_NAMES[kind]}
    if kind == EV_RETIRE:
        warp, inst = payload
        data["payload"] = {"slot": warp.warp_slot, "pc": inst.pc}
    elif kind == EV_REUSE_COMMIT:
        warp, inst, result_reg = payload
        data["payload"] = {"slot": warp.warp_slot, "pc": inst.pc,
                           "result_reg": result_reg}
    elif kind == EV_WRITEBACK:
        warp, inst, exec_result, decision, ready = payload
        data["payload"] = {
            "slot": warp.warp_slot, "pc": inst.pc,
            "exec": encode_exec_result(exec_result),
            "decision": encode_decision(decision),
            # The raw (unclamped) writeback cycle: the allocate/verify stage
            # passes it on to allocation/regfile scheduling, so the heap
            # cycle alone (clamped by _schedule) would not reproduce it.
            "ready": ready,
        }
    else:  # EV_WIR_COMMIT
        warp, inst, decision, dest = payload
        data["payload"] = {"slot": warp.warp_slot, "pc": inst.pc,
                           "decision": encode_decision(decision),
                           "dest": dest}
    return data


def decode_event(core, data: dict) -> Tuple[int, int, int, tuple]:
    kind = EVENT_KINDS_BY_NAME[data["kind"]]
    p = data["payload"]
    warp = core.warps[p["slot"]]
    inst = core.program.instructions[p["pc"]]
    if kind == EV_RETIRE:
        payload: tuple = (warp, inst)
    elif kind == EV_REUSE_COMMIT:
        payload = (warp, inst, p["result_reg"])
    elif kind == EV_WRITEBACK:
        payload = (warp, inst, decode_exec_result(p["exec"]),
                   decode_decision(p["decision"]), p["ready"])
    else:
        payload = (warp, inst, decode_decision(p["decision"]), p["dest"])
    return (data["cycle"], data["seq"], kind, payload)


def event_kind_summary(events) -> dict:
    """Histogram of serialized event kinds (``repro ckpt inspect``)."""
    summary: dict = {}
    for event in events:
        kind = event.get("kind", "?")
        summary[kind] = summary.get(kind, 0) + 1
    return summary
