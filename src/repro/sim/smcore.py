"""Streaming multiprocessor core: schedulers, pipelines, and event loop.

The SM uses a hybrid cycle/event model: warp schedulers issue up to one
instruction per scheduler per cycle, and each issued instruction's journey
through the backend (operand read with bank arbitration, functional-unit or
memory latency, the WIR allocation stages, writeback) is computed with
monotonic resource counters and scheduled as retire events on a heap.
Functional state (register values, memory) commits at issue in program
order per warp — the scoreboard guarantees consumers never issue before
their producers retire, so the early commit is architecturally invisible.

The WIR unit plugs in via three hooks (issue / allocation / commit); with
``config.wir.enabled == False`` the same pipeline runs the Base GPU.
"""

from __future__ import annotations

import heapq
import logging
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.check.errors import (DivergenceError, InvariantViolation,
                                ReuseCorruptionError)
from repro.ckpt.codec import decode_array, encode_array
from repro.core.affine import AFFINE_PRESERVING_OPS, AffineTracker, is_affine_value
from repro.core.reuse_buffer import Waiter
from repro.core.wir_unit import IssueDecision, WIRUnit
from repro.isa.instruction import Instruction, OperandKind
from repro.isa.opcodes import MemSpace, Opcode, OpClass
from repro.isa.program import Program
from repro.sim.config import GPUConfig, SchedulerPolicy
from repro.sim.exec_engine import ExecResult, make_engine
from repro.sim.grid import BlockDescriptor
from repro.sim.memory.subsystem import MemorySubsystem, SMMemoryPort
from repro.sim.regfile import RegisterFileTiming
from repro.sim.scheduler import WarpScheduler
from repro.sim.scoreboard import Scoreboard
from repro.sim.warp import Warp
from repro.stats import StatGroup
from repro.trace.stall import StallAttributor

_LOG = logging.getLogger(__name__)

#: Sleep-memo target for an SM with no time-based wake candidate (it wakes
#: on events or a block dispatch, both of which bypass / reset the memo).
_NEVER = 1 << 62

# Event kinds on the SM heap.  Events are plain (cycle, seq, kind, payload)
# records dispatched by :meth:`SMCore._dispatch` — declarative data instead
# of bound closures, so an event queue can be serialized into a checkpoint
# and rebuilt in a fresh process.  ``seq`` is unique per SM, so heap
# ordering never compares payloads.
EV_RETIRE = 0        # payload (warp, inst)
EV_REUSE_COMMIT = 1  # payload (warp, inst, result_reg)
EV_WRITEBACK = 2     # payload (warp, inst, exec_result, decision, ready)
EV_WIR_COMMIT = 3    # payload (warp, inst, decision, dest)

#: Serialized names (checkpoint files store names, not raw ints, so a
#: renumbering is caught by schema validation instead of silent mis-dispatch).
EVENT_KIND_NAMES = {
    EV_RETIRE: "retire",
    EV_REUSE_COMMIT: "reuse_commit",
    EV_WRITEBACK: "writeback",
    EV_WIR_COMMIT: "wir_commit",
}
EVENT_KINDS_BY_NAME = {name: kind for kind, name in EVENT_KIND_NAMES.items()}


class SMCounters(StatGroup):
    """Per-SM dynamic event counts feeding the energy model and figures.

    ``reused`` counts instructions that bypassed the backend via reuse
    (including pending-retry wakeups); ``backend_insts`` entered the
    register-read/execute path; the ``fu_*_lanes`` counters track lane
    activations (affine execution may activate a single lane);
    ``affine_fu_insts`` executed on one lane under the Affine model.
    """

    COUNTERS = ("cycles", "issued", "retired", "reused", "reused_loads",
                "backend_insts", "control_insts", "barrier_insts",
                "store_insts", "fu_sp_insts", "fu_sfu_insts", "fu_sp_lanes",
                "fu_sfu_lanes", "mem_insts", "affine_fu_insts",
                "blocks_completed", "warps_completed")
    HISTOGRAMS = ("issued_by_class",)

    def note_class(self, cls: OpClass) -> None:
        self.issued_by_class.increment(cls.value)


class _BlockState:
    """Lifecycle bookkeeping for one resident thread block."""

    __slots__ = ("descriptor", "slots", "live_warps")

    def __init__(self, descriptor: BlockDescriptor, slots: List[int]) -> None:
        self.descriptor = descriptor
        self.slots = slots
        self.live_warps = len(slots)


class SMCore:
    """One streaming multiprocessor."""

    def __init__(
        self,
        sm_id: int,
        config: GPUConfig,
        program: Program,
        subsystem: MemorySubsystem,
        profiler=None,
    ) -> None:
        self.sm_id = sm_id
        self.config = config
        self.program = program
        #: Direct reference for the fast ready scan (skips two attribute hops
        #: and ``Program.__getitem__`` per probe).
        self._instructions = program.instructions
        self.profiler = profiler

        self.warps: List[Optional[Warp]] = [None] * config.max_warps_per_sm
        self.scoreboard = Scoreboard(config.max_warps_per_sm)
        self.regfile = RegisterFileTiming(config)
        self.port = SMMemoryPort(sm_id, config, subsystem)
        self.affine = AffineTracker(enabled=config.wir.affine)
        self.unit: Optional[WIRUnit] = (
            WIRUnit(config, self.regfile, self.affine) if config.wir.enabled else None
        )
        #: Lockstep golden-model checker (set by ``CheckedGPU`` runs).
        self.checker = None
        #: Graceful degradation: once quarantined, the WIR unit stops
        #: offering reuse and every instruction takes the baseline path.
        self.wir_quarantined = False
        self.counters = SMCounters("core")
        #: Observability (repro.trace): the event-trace view installed by
        #: :meth:`attach_tracer`, and the per-cycle stall attributor.  Both
        #: stay ``None`` unless enabled in ``config.trace``, in which case
        #: they observe but never influence timing.
        self.tracer = None
        self.stall: Optional[StallAttributor] = (
            StallAttributor(self) if config.trace.stalls else None
        )

        #: This SM's subtree of the run's stats registry: the component
        #: groups are adopted live, so ``sm{N}.regfile.read_retries`` et al
        #: resolve during and after the run.
        self.stats = StatGroup(f"sm{sm_id}")
        self.stats.adopt(self.counters)
        self.stats.adopt(self.regfile.stats)
        self.stats.adopt(self.port.l1d.stats, name="l1d")
        self.stats.adopt(self.port.l1c.stats, name="l1c")
        self.stats.adopt(self.port.stats, name="port")
        if self.unit is not None:
            self.stats.adopt(self.unit.counters)
        if self.stall is not None:
            self.stats.adopt(self.stall.stats)
            if self.unit is not None:
                self.unit.stall_probe = self.stall.note_verify

        num_sched = config.num_schedulers
        self.schedulers = [
            WarpScheduler(
                i,
                [s for s in range(config.max_warps_per_sm) if s % num_sched == i],
                config.scheduler_policy,
            )
            for i in range(num_sched)
        ]
        #: Owning scheduler per warp slot (for ``scannable`` accounting).
        self._sched_of_slot = [
            self.schedulers[s % num_sched]
            for s in range(config.max_warps_per_sm)
        ]

        #: Execution engine (DESIGN.md §8): "scalar" is the seed interpreter
        #: and stays the oracle; "vector" compiles per-instruction kernels
        #: and additionally opts this SM into the fast ready scan and the
        #: schedulers' resident-slot arbitration.  Both paths are
        #: bit-identical — the fast variants are algebraic rewrites, proven
        #: so by tests/test_exec_differential.py.
        self.engine = make_engine(config.exec_engine, program)
        #: Bound dispatch, looked up once (``_issue`` runs per instruction).
        self._engine_execute = self.engine.execute
        self._fast_path = config.exec_engine == "vector"
        self._ready_impl = self._ready_fast if self._fast_path else self._ready
        #: Fully fused arbitration (pick + ready in one loop) is GTO-only;
        #: LRR keeps ``scheduler.pick`` because its round-robin pointer
        #: depends on the static scan order.
        self._fast_gto = (self._fast_path
                          and config.scheduler_policy is SchedulerPolicy.GTO)
        if self._fast_path:
            for scheduler in self.schedulers:
                scheduler.use_resident = True
            # The fast path updates these Counter/Histogram objects directly
            # (same objects the StatGroup attribute magic resolves to, so
            # reported stats are identical to the scalar engine's).
            stats = self.counters._stats
            self._c_cycles = stats["cycles"]
            self._c_issued = stats["issued"]
            self._c_retired = stats["retired"]
            self._c_backend = stats["backend_insts"]
            self._c_fu_sp_insts = stats["fu_sp_insts"]
            self._c_fu_sp_lanes = stats["fu_sp_lanes"]
            self._c_fu_sfu_insts = stats["fu_sfu_insts"]
            self._c_fu_sfu_lanes = stats["fu_sfu_lanes"]
            self._c_affine_fu = stats["affine_fu_insts"]
            self._c_mem_insts = stats["mem_insts"]
            self._c_store_insts = stats["store_insts"]
            self._h_by_class = stats["issued_by_class"]

        # Backend pipelines: initiation-interval-limited (1 warp inst/cycle).
        self._sp_free = [0] * config.num_sp_pipelines
        self._sfu_free = 0
        self._mem_free = 0

        # Event heap: (cycle, seq, kind, payload) — see EVENT_KIND_NAMES.
        self._events: List[Tuple[int, int, int, tuple]] = []
        self._event_seq = 0
        self.cycle = 0
        #: Sleep memo (vector engine): cycles below this are housekeeping-
        #: only ticks (see :meth:`tick`).  0 disables the memo, which is the
        #: permanent state under the scalar engine.
        self._sleep_until = 0

        # Resident blocks.
        self._blocks: Dict[int, _BlockState] = {}
        self._warp_blocked_until: List[int] = [0] * config.max_warps_per_sm
        #: Warps waiting in the pending-retry queue do not issue.
        self._warp_waiting: List[bool] = [False] * config.max_warps_per_sm
        #: Fast-scan memo (vector engine only): the slot's current
        #: instruction failed the scoreboard check, so the slot cannot
        #: become ready until one of its own in-flight instructions retires
        #: — the only event that shrinks its pending sets (``register`` only
        #: runs when this slot issues, ``reset_slot`` only at dispatch).
        #: Both clearing sites reset the flag.
        self._sb_wait: List[bool] = [False] * config.max_warps_per_sm

        #: Extra front-of-backend latency from the rename + reuse stages.
        extra = config.wir.extra_pipeline_latency
        self._front_delay = max(1, extra - 2) if self.unit else 1
        self._regalloc_delay = 2 if self.unit else 0

        # Register-utilisation sampling (Figure 19) interval.
        self._util_sample_interval = 64
        self.on_block_complete: Optional[Callable[[int, int], None]] = None

    def attach_tracer(self, view) -> None:
        """Wire an :class:`~repro.trace.events.SMTraceView` through every
        component of this SM (observer only; no timing influence)."""
        self.tracer = view
        self.regfile.tracer = view
        self.port.tracer = view
        for scheduler in self.schedulers:
            scheduler.on_pick = view.scheduler_pick
        if self.unit is not None:
            self.unit.tracer = view
            self.unit.reuse_buffer.tracer = view
            self.unit.vsb.tracer = view

    # ------------------------------------------------------------ block admin

    @property
    def resident_blocks(self) -> int:
        return len(self._blocks)

    def free_warp_slots(self) -> int:
        return sum(1 for warp in self.warps if warp is None)

    def can_accept(self, block: BlockDescriptor) -> bool:
        return (
            self.resident_blocks < self.config.max_blocks_per_sm
            and self.free_warp_slots() >= block.num_warps
        )

    def dispatch_block(self, block: BlockDescriptor) -> None:
        """Install a thread block into free warp slots."""
        slots: List[int] = []
        for slot in range(len(self.warps)):
            if self.warps[slot] is None:
                slots.append(slot)
                if len(slots) == block.num_warps:
                    break
        if len(slots) < block.num_warps:
            raise RuntimeError("dispatch_block called without capacity")
        for warp_in_block, slot in enumerate(slots):
            warp = Warp(slot, block, warp_in_block, self.program)
            self.warps[slot] = warp
            self.scoreboard.reset_slot(slot)
            self._warp_blocked_until[slot] = self.cycle
            self._warp_waiting[slot] = False
            self._sb_wait[slot] = False
            if self.unit is not None:
                self.unit.reset_slot(slot)
            self.schedulers[slot % len(self.schedulers)].note_dispatch(slot)
        self._blocks[block.block_id] = _BlockState(block, slots)
        self._sleep_until = 0
        self._refresh_register_cap()

    def _refresh_register_cap(self) -> None:
        if self.unit is None:
            return
        active_warps = sum(1 for warp in self.warps if warp is not None)
        self.unit.set_register_cap(self.program.num_logical_registers, active_warps)

    def _warp_finished(self, warp: Warp) -> None:
        """A warp has exited and drained its in-flight instructions."""
        state = self._blocks.get(warp.block.block_id)
        self.warps[warp.warp_slot] = None
        self.schedulers[warp.warp_slot % len(self.schedulers)].note_finished(
            warp.warp_slot)
        self.counters.warps_completed += 1
        if self.unit is not None:
            self.unit.reset_slot(warp.warp_slot)
        self._maybe_release_barrier(warp.block.block_id)
        if state is None:
            return
        state.live_warps -= 1
        if state.live_warps == 0:
            del self._blocks[warp.block.block_id]
            self.counters.blocks_completed += 1
            if self.unit is not None:
                self.unit.on_block_complete(warp.block.block_id)
            self.port.subsystem.image.release_scratchpad(warp.block.block_id)
            self._refresh_register_cap()
            if self.on_block_complete is not None:
                self.on_block_complete(self.sm_id, warp.block.block_id)

    # -------------------------------------------------------------- event loop

    def _schedule(self, cycle: int, kind: int, payload: tuple) -> None:
        self._event_seq += 1
        heapq.heappush(
            self._events,
            (max(cycle, self.cycle + 1), self._event_seq, kind, payload))

    def _dispatch(self, kind: int, payload: tuple) -> None:
        """Fire one due event record (the closure bodies of old)."""
        if kind == EV_WRITEBACK:
            warp, inst, exec_result, decision, ready = payload
            self._writeback(warp, inst, exec_result, decision, ready)
        elif kind == EV_RETIRE:
            warp, inst = payload
            self._retire(warp, inst)
        elif kind == EV_REUSE_COMMIT:
            warp, inst, result_reg = payload
            self.unit.commit_reuse(warp, inst, result_reg)
            self._retire(warp, inst)
        elif kind == EV_WIR_COMMIT:
            warp, inst, decision, dest = payload
            waiters = self.unit.commit_stage(warp, inst, decision, dest)
            self._retire(warp, inst)
            for waiter in waiters:
                waiter.on_result(dest)
        else:  # pragma: no cover - schema violation
            raise RuntimeError(f"unknown SM event kind {kind!r}")

    def busy(self) -> bool:
        return bool(self._events) or any(warp is not None for warp in self.warps)

    def next_wake(self) -> Optional[int]:
        """Earliest future cycle at which this SM has work (None if idle).

        Only called after an idle tick: no warp was issueable, so warps wake
        either on a retire event (scoreboard release, barrier, waiter) or
        when their control-hazard block / a busy pipeline expires.
        """
        candidates = []
        if self._events:
            candidates.append(self._events[0][0])
        for slot, warp in enumerate(self.warps):
            if warp is None or warp.exited or warp.at_barrier or self._warp_waiting[slot]:
                continue
            blocked = self._warp_blocked_until[slot]
            if blocked > self.cycle:
                candidates.append(blocked)
        for free in (*self._sp_free, self._sfu_free, self._mem_free):
            if free > self.cycle:
                candidates.append(free)
        return min(candidates) if candidates else None

    def tick(self, cycle: int) -> bool:
        """Advance one cycle: drain due events, then issue. Returns activity."""
        self.cycle = cycle
        events = self._events
        if (cycle < self._sleep_until
                and not (events and events[0][0] <= cycle)):
            # Vector-engine sleep memo: the last full tick was inactive, so
            # every warp is blocked on either an event (none due) or a time
            # target at or beyond ``_sleep_until`` — this tick would do
            # nothing.  Periodic housekeeping still runs so sampled stats
            # match the scalar engine cycle for cycle.
            if self.unit is not None:
                self._tick_housekeeping(cycle)
            return False
        self._sleep_until = 0
        active = False
        while events and events[0][0] <= cycle:
            _, _, kind, payload = heapq.heappop(events)
            self._dispatch(kind, payload)
            active = True
        if self._fast_gto and self.stall is None:
            for scheduler in self.schedulers:
                slot = self._fast_pick(scheduler)
                if slot is not None:
                    self._issue(slot)
                    active = True
        else:
            issued: List[int] = []
            if self._fast_gto:
                for scheduler in self.schedulers:
                    slot = self._fast_pick(scheduler)
                    if slot is not None:
                        self._issue(slot)
                        issued.append(slot)
                        active = True
            else:
                for scheduler in self.schedulers:
                    slot = scheduler.pick(self._ready_impl)
                    if slot is not None:
                        self._issue(slot)
                        issued.append(slot)
                        active = True
            if self.stall is not None:
                self.stall.observe(cycle, issued)
        if active:
            if self._fast_path:
                self._c_cycles.value += 1
            else:
                self.counters.cycles += 1
        elif self._fast_path and self.stall is None:
            # Inactive full tick: nothing can change before the earliest
            # wake candidate (see ``next_wake``), so skip straight to the
            # housekeeping-only path until then.  Disabled under stall
            # attribution, which must observe every ticked cycle.
            wake = self.next_wake()
            self._sleep_until = wake if wake is not None else _NEVER
        if self.unit is not None:
            self._tick_housekeeping(cycle)
        return active

    def _tick_housekeeping(self, cycle: int) -> None:
        """Per-cycle sampling and invariant checks (run on every ticked
        cycle, including sleep-memo ticks, so sampled stats are identical
        across engines).  No-op for unit-less SMs, so callers skip the call
        when ``self.unit is None``."""
        if cycle % self._util_sample_interval == 0:
            self.unit.physfile.sample_utilization()
        interval = self.config.wir.invariant_check_interval
        if (interval and self.unit is not None and not self.wir_quarantined
                and cycle % interval == 0):
            try:
                self.unit.check_invariants()
            except InvariantViolation as err:
                if not self.config.wir.quarantine:
                    raise
                self.quarantine_wir(str(err))

    def account_idle_cycles(self, count: int) -> None:
        """Bulk stall attribution for idle-skipped cycles.

        The GPU loop fast-forwards past cycles where no SM can issue; every
        state change that could alter a warp's classification is a
        ``next_wake`` candidate, so the classification at the current cycle
        holds for the whole skipped gap (see :mod:`repro.trace.stall`).
        """
        if self.stall is not None and count > 0:
            self.stall.observe(self.cycle, (), weight=count)

    # ------------------------------------------------------------------ issue

    def _ready(self, slot: int) -> bool:
        warp = self.warps[slot]
        if warp is None or warp.exited or warp.at_barrier or self._warp_waiting[slot]:
            return False
        if self._warp_blocked_until[slot] > self.cycle:
            return False
        inst = warp.next_instruction()
        if inst is None:
            return False
        if not self.scoreboard.can_issue(slot, inst):
            return False
        return self._pipeline_available(inst.op_class)

    def _ready_fast(self, slot: int) -> bool:
        """Vector-engine variant of :meth:`_ready` — same decision, fewer
        Python hops.

        The scheduler scan calls this for every candidate slot every cycle
        (it dominates scalar profiles), so the property/method chain of
        ``Warp.next_instruction`` and the per-call hazard loops are inlined
        against the cached instruction metadata.  A non-exited warp's pc is
        always in range (every pc change runs ``Warp._reconverge``), so the
        direct instruction-list index is safe.
        """
        warp = self.warps[slot]
        if (warp is None or warp.exited or warp.at_barrier
                or self._warp_waiting[slot] or self._sb_wait[slot]):
            return False
        cycle = self.cycle
        if self._warp_blocked_until[slot] > cycle:
            return False
        inst = self._instructions[warp.stack[-1].pc]
        regs = self.scoreboard._pending_regs[slot]
        if regs and not regs.isdisjoint(inst.sb_regs):
            self._sb_wait[slot] = True
            self._sched_of_slot[slot].scannable -= 1
            return False
        preds = self.scoreboard._pending_preds[slot]
        if preds and not preds.isdisjoint(inst.sb_preds):
            self._sb_wait[slot] = True
            self._sched_of_slot[slot].scannable -= 1
            return False
        cls = inst.op_class
        if cls is OpClass.INT or cls is OpClass.FP or cls is OpClass.PRED:
            return min(self._sp_free) <= cycle
        if cls is OpClass.SFU:
            return self._sfu_free <= cycle
        if cls is OpClass.LOAD or cls is OpClass.STORE:
            return self._mem_free <= cycle
        return True

    def _fast_pick(self, scheduler: WarpScheduler) -> Optional[int]:
        """Fused GTO arbitration (vector engine): ``scheduler.pick`` with the
        :meth:`_ready_fast` body inlined into the min-age scan.

        Decision-identical to ``scheduler.pick(self._ready_fast)``: the
        greedy probe of the last-issued slot runs first, then the oldest
        ready resident slot wins (ages are unique, so the winner does not
        depend on scan order).  Pipeline availability is hoisted out of the
        loop — ``_sp_free``/``_sfu_free``/``_mem_free`` only move when an
        issue executes, i.e. after this pick returns.
        """
        if scheduler.scannable == 0:
            # Every resident slot is scoreboard-blocked; nothing to scan.
            return None
        last = scheduler._last_issued
        if last is not None and self._ready_fast(last):
            if scheduler.on_pick is not None:
                scheduler.on_pick(scheduler.scheduler_id, last)
            return last

        cycle = self.cycle
        warps = self.warps
        waiting = self._warp_waiting
        blocked_until = self._warp_blocked_until
        sb_wait = self._sb_wait
        pend_regs = self.scoreboard._pending_regs
        pend_preds = self.scoreboard._pending_preds
        instructions = self._instructions
        sp_ok = min(self._sp_free) <= cycle
        sfu_ok = self._sfu_free <= cycle
        mem_ok = self._mem_free <= cycle
        age_of = scheduler._age

        best: Optional[int] = None
        best_age = None
        for slot in scheduler._resident:
            if sb_wait[slot] or waiting[slot]:
                continue
            warp = warps[slot]
            if warp is None or warp.exited or warp.at_barrier:
                continue
            if blocked_until[slot] > cycle:
                continue
            inst = instructions[warp.stack[-1].pc]
            regs = pend_regs[slot]
            if regs and not regs.isdisjoint(inst.sb_regs):
                sb_wait[slot] = True
                scheduler.scannable -= 1
                continue
            preds = pend_preds[slot]
            if preds and not preds.isdisjoint(inst.sb_preds):
                sb_wait[slot] = True
                scheduler.scannable -= 1
                continue
            cls = inst.op_class
            if cls is OpClass.INT or cls is OpClass.FP or cls is OpClass.PRED:
                if not sp_ok:
                    continue
            elif cls is OpClass.SFU:
                if not sfu_ok:
                    continue
            elif cls is OpClass.LOAD or cls is OpClass.STORE:
                if not mem_ok:
                    continue
            age = age_of[slot]
            if best_age is None or age < best_age:
                best, best_age = slot, age
        if best is not None:
            scheduler._last_issued = best
            if scheduler.on_pick is not None:
                scheduler.on_pick(scheduler.scheduler_id, best)
        return best

    def _pipeline_available(self, cls: OpClass) -> bool:
        if cls in (OpClass.INT, OpClass.FP, OpClass.PRED):
            return min(self._sp_free) <= self.cycle
        if cls is OpClass.SFU:
            return self._sfu_free <= self.cycle
        if cls in (OpClass.LOAD, OpClass.STORE):
            return self._mem_free <= self.cycle
        return True

    def _issue(self, slot: int) -> None:
        warp = self.warps[slot]
        if self._fast_path:
            # The pick already proved the warp is live and in range.
            inst = self._instructions[warp.stack[-1].pc]
        else:
            inst = warp.next_instruction()
        cycle = self.cycle
        exec_result = self._engine_execute(inst, warp)
        if self._fast_path:
            self._c_issued.value += 1
            self._h_by_class.increment(inst.op_class.value)
        else:
            self.counters.issued += 1
            self.counters.note_class(inst.op_class)
        warp.last_issue_cycle = cycle

        if self.profiler is not None:
            self.profiler.observe(inst, exec_result)
        if self.checker is not None:
            self.checker.observe_issue(self, warp, inst, exec_result)

        cls = inst.op_class
        if cls is OpClass.CONTROL:
            self._issue_control(warp, inst, exec_result)
            return
        if cls is OpClass.SYNC:
            self._issue_sync(warp, inst)
            return
        if cls is OpClass.NOP:
            if self.tracer is not None:
                self.tracer.issue_event(slot, "nop", {"pc": inst.pc})
            warp.advance()
            self._finish_if_exited(warp)
            return

        if self.tracer is not None:
            # Backend-bound instructions are async spans closed at retire;
            # control/sync/nop above never reach _retire, so they are
            # instants instead.
            self.tracer.begin_inst(slot, inst)

        decision: Optional[IssueDecision] = None
        if self.unit is not None and not self.wir_quarantined:
            decision = self.unit.issue_stage(
                warp, inst, exec_result, cycle,
                make_waiter=lambda: self._make_waiter(warp, inst, exec_result),
            )

        # Track store flags for load reuse before advancing.
        if cls is OpClass.STORE:
            if inst.space is MemSpace.SHARED:
                warp.shared_store_flag = True
            elif inst.space is MemSpace.GLOBAL:
                warp.global_store_flag = True

        self.scoreboard.register(slot, inst)
        warp.inflight += 1
        warp.advance()

        if decision is not None and decision.action == "reuse":
            self._do_reuse(warp, inst, exec_result, decision)
            self._checker_commit(warp, inst)
        elif decision is not None and decision.action == "queued":
            self._do_queue(warp, inst)
            # Functional commit deferred: the lockstep check runs at wakeup.
        else:
            self._do_execute(warp, inst, exec_result, decision, cycle)
            self._checker_commit(warp, inst)
        self._finish_if_exited(warp)

    # --- control / sync -------------------------------------------------------

    def _issue_control(self, warp: Warp, inst: Instruction, exec_result: ExecResult) -> None:
        self.counters.control_insts += 1
        slot = warp.warp_slot
        if self.tracer is not None:
            self.tracer.issue_event(slot, inst.opcode.name.lower(),
                                    {"pc": inst.pc})
        if inst.opcode is Opcode.BRA:
            warp.resolve_branch(inst.pc, exec_result.taken_mask, inst.target)
        else:  # exit
            warp.execute_exit(exec_result.mask)
        # Control hazard: the warp waits for branch resolution latency.
        self._warp_blocked_until[slot] = self.cycle + self.config.sp_latency // 2
        self._finish_if_exited(warp)

    def _issue_sync(self, warp: Warp, inst: Instruction) -> None:
        self.counters.barrier_insts += 1
        if self.tracer is not None:
            self.tracer.issue_event(warp.warp_slot, inst.opcode.name.lower(),
                                    {"pc": inst.pc})
        warp.advance()
        if inst.opcode is Opcode.BAR:
            warp.at_barrier = True
            self._maybe_release_barrier(warp.block.block_id)
        self._finish_if_exited(warp)

    def _maybe_release_barrier(self, block_id: int) -> None:
        state = self._blocks.get(block_id)
        if state is None:
            return
        waiting = []
        for slot in state.slots:
            warp = self.warps[slot]
            if warp is None or warp.exited:
                continue
            if not warp.at_barrier:
                return
            waiting.append(warp)
        if not waiting:
            return
        for warp in waiting:
            warp.at_barrier = False
            warp.barrier_count += 1
            warp.shared_store_flag = False
            warp.global_store_flag = False

    # --- reuse paths -----------------------------------------------------------

    def _do_reuse(
        self, warp: Warp, inst: Instruction, exec_result: ExecResult,
        decision: IssueDecision,
    ) -> None:
        """Immediate reuse hit: bypass the whole backend."""
        self.counters.reused += 1
        if inst.op_class is OpClass.LOAD:
            self.counters.reused_loads += 1
            values = self.unit.physfile.read(decision.result_reg)
            warp.write_reg(inst.dst.value, values, exec_result.mask)
        else:
            # Arithmetic reuse must be value-exact; check against the
            # functionally computed result (a genuine invariant of the design).
            reused = self.unit.physfile.read(decision.result_reg)
            if not np.array_equal(reused, exec_result.result):
                self._reuse_corrupted(
                    warp, inst, exec_result, decision.result_reg,
                    f"arithmetic reuse returned a wrong value for {inst} "
                    f"(pc={inst.pc}, warp slot {warp.warp_slot})",
                )
                return
            warp.write_reg(inst.dst.value, reused, exec_result.mask)
        retire_cycle = self.cycle + self._front_delay + 1
        self._schedule(retire_cycle, EV_REUSE_COMMIT,
                       (warp, inst, decision.result_reg))

    def _make_waiter(self, warp: Warp, inst: Instruction, exec_result: ExecResult) -> Waiter:
        """Waiter for the pending-retry queue (Section VI-B)."""
        self._warp_waiting[warp.warp_slot] = True

        def on_result(result_reg: Optional[int]) -> None:
            self._warp_waiting[warp.warp_slot] = False
            if result_reg is not None and not self.wir_quarantined:
                self._wake_queued(warp, inst, exec_result, result_reg)
                self._checker_commit(warp, inst)
                return
            if self.wir_quarantined:
                # Quarantine flushed the queue: take the baseline path.
                self._do_execute(warp, inst, exec_result, None, self.cycle)
                self._checker_commit(warp, inst)
                return
            # The pending entry was evicted before the producer retired:
            # re-enter the reuse stage (it may hit a newer entry, queue
            # again, or finally execute).
            decision = self.unit.issue_stage(
                warp, inst, exec_result, self.cycle,
                make_waiter=lambda: self._make_waiter(warp, inst, exec_result),
            )
            if decision.action == "reuse":
                self._do_reuse(warp, inst, exec_result, decision)
                self._checker_commit(warp, inst)
            elif decision.action != "queued":
                self._do_execute(warp, inst, exec_result, decision, self.cycle)
                self._checker_commit(warp, inst)

        waiter = Waiter(on_result)
        # Plain-data identity of the waiting instruction, so a checkpoint
        # can externalize the queue entry and a restore can rebuild an
        # equivalent waiter via ``_make_waiter`` (DESIGN.md §12).
        waiter.descriptor = (warp, inst, exec_result)
        return waiter

    def _do_queue(self, warp: Warp, inst: Instruction) -> None:
        """The instruction waits on a pending reuse-buffer entry."""
        # Functional commit and retire are deferred to the wakeup.

    def _wake_queued(
        self, warp: Warp, inst: Instruction, exec_result: ExecResult, result_reg: int
    ) -> None:
        self.counters.reused += 1
        if inst.op_class is OpClass.LOAD:
            self.counters.reused_loads += 1
        # Transit reference until commit_reuse (the entry that woke us could
        # be evicted before our retire fires).
        self.unit.refcount.incref(result_reg)
        values = self.unit.physfile.read(result_reg)
        if inst.op_class is not OpClass.LOAD and not np.array_equal(
            values, exec_result.result
        ):
            self._reuse_corrupted(
                warp, inst, exec_result, result_reg,
                f"pending-retry reuse returned a wrong value for {inst} "
                f"(pc={inst.pc}, warp slot {warp.warp_slot})",
            )
            return
        warp.write_reg(inst.dst.value, values, exec_result.mask)
        # Queued instructions re-probe the buffer and retire a cycle after
        # the producer's result lands.
        self._schedule(self.cycle + 1, EV_REUSE_COMMIT, (warp, inst, result_reg))

    def _reuse_corrupted(
        self, warp: Warp, inst: Instruction, exec_result: ExecResult,
        result_reg: int, reason: str,
    ) -> None:
        """A reuse hit delivered a wrong value (impossible without faults).

        Without quarantine enabled this is fatal; with it, the unit is
        quarantined and the instruction falls back to the baseline execute
        path, so the kernel still completes with correct results.
        """
        err = ReuseCorruptionError(reason)
        if not self.config.wir.quarantine:
            raise err
        # Undo the reuse bookkeeping done before the value check: the reuse
        # count and the transit reference taken at the hit / wakeup.
        self.counters.reused -= 1
        self.unit.refcount.decref(result_reg)
        self.quarantine_wir(reason)
        self._do_execute(warp, inst, exec_result, None, self.cycle)

    # --- execute path -----------------------------------------------------------

    def _do_execute(
        self,
        warp: Warp,
        inst: Instruction,
        exec_result: ExecResult,
        decision: Optional[IssueDecision],
        cycle: int,
        from_retry: bool = False,
    ) -> None:
        if self._fast_path:
            self._c_backend.value += 1
        else:
            self.counters.backend_insts += 1
        cls = inst.op_class
        if self.stall is not None:
            self.stall.note_backend(warp.warp_slot, inst,
                                    "mem" if cls is OpClass.LOAD else "exec")

        # Functional commit (loads commit below with the memory access).
        if cls is not OpClass.LOAD:
            if exec_result.result is not None:
                warp.write_reg(inst.dst.value, exec_result.result, exec_result.mask)
            if exec_result.pred_result is not None:
                warp.write_pred(inst.dst.value, exec_result.pred_result, exec_result.mask)

        start = cycle + self._front_delay

        # Operand collection: one bank read per distinct register source.
        read_ready = start
        reg_keys = self._source_bank_keys(warp, inst, decision)
        affine = self.affine
        if affine.enabled:
            for key in reg_keys:
                read_ready = max(
                    read_ready,
                    self.regfile.schedule_read(key, start, affine=affine.is_affine(key)),
                )
        else:
            for key in reg_keys:
                read_ready = max(read_ready, self.regfile.schedule_read(key, start))

        if cls in (OpClass.LOAD, OpClass.STORE):
            exec_ready = self._execute_memory(warp, inst, exec_result, read_ready)
        else:
            exec_ready = self._execute_alu(warp, inst, exec_result, read_ready, decision)

        self._schedule(exec_ready, EV_WRITEBACK,
                       (warp, inst, exec_result, decision, exec_ready))

    def _source_bank_keys(
        self, warp: Warp, inst: Instruction, decision: Optional[IssueDecision]
    ) -> List[int]:
        """Register-bank keys of the distinct register sources."""
        if decision is not None:
            return sorted(set(decision.src_phys))
        base = warp.warp_slot << 8
        # ``bank_regs`` is the cached sorted distinct source-register tuple;
        # or-ing a constant high part preserves the order.
        return [base | reg for reg in inst.bank_regs]

    def _execute_alu(
        self,
        warp: Warp,
        inst: Instruction,
        exec_result: ExecResult,
        ready: int,
        decision: Optional[IssueDecision],
    ) -> int:
        cls = inst.op_class
        fast = self._fast_path
        if fast:
            lanes = int(np.count_nonzero(exec_result.mask))
            # With the Affine model off, _affine_execution is a constant
            # False (its first check); skip the call.
            affine_exec = (self.affine.enabled and
                           self._affine_execution(warp, inst, exec_result,
                                                  decision))
        else:
            lanes = int(exec_result.mask.sum())
            affine_exec = self._affine_execution(warp, inst, exec_result, decision)
        lane_cost = 1 if affine_exec else max(lanes, 1)
        if affine_exec:
            if fast:
                self._c_affine_fu.value += 1
            else:
                self.counters.affine_fu_insts += 1

        if cls is OpClass.SFU:
            start = max(ready, self._sfu_free)
            self._sfu_free = start + 1
            if fast:
                self._c_fu_sfu_insts.value += 1
                self._c_fu_sfu_lanes.value += lane_cost
            else:
                self.counters.fu_sfu_insts += 1
                self.counters.fu_sfu_lanes += lane_cost
            return start + self.config.sfu_latency

        sp_free = self._sp_free
        pipe = 0
        free = sp_free[0]
        for i in range(1, len(sp_free)):
            if sp_free[i] < free:
                pipe, free = i, sp_free[i]
        start = max(ready, free)
        sp_free[pipe] = start + 1
        if fast:
            self._c_fu_sp_insts.value += 1
            self._c_fu_sp_lanes.value += lane_cost
        else:
            self.counters.fu_sp_insts += 1
            self.counters.fu_sp_lanes += lane_cost
        return start + self.config.sp_latency

    def _affine_execution(
        self,
        warp: Warp,
        inst: Instruction,
        exec_result: ExecResult,
        decision: Optional[IssueDecision],
    ) -> bool:
        """Affine model: 1-lane execution when inputs and output are affine."""
        if not self.affine.enabled or inst.opcode not in AFFINE_PRESERVING_OPS:
            return False
        if exec_result.result is None or not exec_result.mask.all():
            return False
        # Register inputs must be tracked-affine; immediates are affine by
        # construction; special registers are checked by value.
        for src, values in zip(inst.srcs, exec_result.sources):
            if src.kind is OperandKind.SREG and not is_affine_value(values):
                return False
        keys = self._source_bank_keys(warp, inst, decision)
        if not self.affine.all_affine(keys):
            return False
        return is_affine_value(exec_result.result)

    def _execute_memory(
        self, warp: Warp, inst: Instruction, exec_result: ExecResult, ready: int
    ) -> int:
        start = max(ready, self._mem_free)
        self._mem_free = start + 1
        if self._fast_path:
            self._c_mem_insts.value += 1
            if inst.op_class is OpClass.STORE:
                self._c_store_insts.value += 1
        else:
            self.counters.mem_insts += 1
            if inst.op_class is OpClass.STORE:
                self.counters.store_insts += 1
        result = self.port.access(
            inst.space,
            warp.block.block_id,
            exec_result.addresses,
            exec_result.mask,
            start,
            is_store=inst.op_class is OpClass.STORE,
            store_values=exec_result.store_values,
        )
        if inst.op_class is OpClass.LOAD:
            warp.write_reg(inst.dst.value, result.values, exec_result.mask)
        return result.ready_cycle

    # --- writeback / retire ------------------------------------------------------

    def _writeback(
        self,
        warp: Warp,
        inst: Instruction,
        exec_result: ExecResult,
        decision: Optional[IssueDecision],
        cycle: int,
    ) -> None:
        if not inst.writes_register:
            self._schedule(cycle, EV_RETIRE, (warp, inst))
            return

        if self.unit is not None and not self.wir_quarantined:
            ready, dest = self.unit.allocation_stage(
                warp, inst, exec_result, decision, cycle)
            self._schedule(ready, EV_WIR_COMMIT, (warp, inst, decision, dest))
            return

        # Base GPU: plain register write.
        key = (warp.warp_slot << 8) | inst.dst.value
        if self._fast_path and not self.affine.enabled:
            # record_write / record_partial_write are no-ops returning
            # False with tracking disabled; skip them and the mask check.
            affine = False
        elif exec_result.mask.all():
            affine = self.affine.record_write(key, warp.read_reg(inst.dst.value),
                                              opcode=inst.opcode)
        else:
            self.affine.record_partial_write(key)
            affine = False
        ready = self.regfile.schedule_write(key, cycle, affine=affine)
        self._schedule(ready, EV_RETIRE, (warp, inst))

    def _retire(self, warp: Warp, inst: Instruction) -> None:
        if self.stall is not None:
            self.stall.note_retire(warp.warp_slot, inst)
        if self.tracer is not None:
            self.tracer.end_inst(warp.warp_slot, inst)
        self.scoreboard.release(warp.warp_slot, inst)
        # The retire may have unblocked this slot's next instruction.
        if self._sb_wait[warp.warp_slot]:
            self._sb_wait[warp.warp_slot] = False
            self._sched_of_slot[warp.warp_slot].scannable += 1
        warp.inflight -= 1
        if self._fast_path:
            self._c_retired.value += 1
        else:
            self.counters.retired += 1
        self._finish_if_exited(warp)

    def _finish_if_exited(self, warp: Warp) -> None:
        if warp.exited and warp.inflight == 0 and self.warps[warp.warp_slot] is warp:
            self._warp_finished(warp)

    # --- checking / degradation ---------------------------------------------------

    def _checker_commit(self, warp: Warp, inst: Instruction) -> None:
        """Lockstep commit check for an instruction whose functional state
        just landed.  Under quarantine mode a repairable register/predicate
        divergence repairs the architectural value from the oracle and
        quarantines the WIR unit instead of aborting the run."""
        if self.checker is None:
            return
        try:
            self.checker.check_commit(self, warp, inst)
        except DivergenceError as err:
            if not (self.config.wir.quarantine and err.repair is not None
                    and self.unit is not None and not self.wir_quarantined):
                raise
            full = np.ones(32, dtype=bool)
            if err.kind == "register":
                warp.write_reg(inst.dst.value, err.repair, full)
            elif err.kind == "predicate":
                warp.write_pred(inst.dst.value, err.repair, full)
            else:
                raise
            self.quarantine_wir(str(err))

    def quarantine_wir(self, reason: str) -> None:
        """Graceful degradation: disable reuse, keep simulating baseline.

        The functional register state in each :class:`Warp` is the
        architectural truth, so correctness survives the quarantine; only
        the timing fidelity of the remaining instructions degrades to the
        baseline pipeline.  Counted in ``sm{N}.wir.quarantines``.
        """
        if self.unit is None or self.wir_quarantined:
            return
        self.wir_quarantined = True
        # The flush below may wake pending-retry warps outside an event, so
        # the sleep memo is no longer trustworthy.
        self._sleep_until = 0
        self.unit.counters.quarantines += 1
        if self.tracer is not None:
            self.tracer.component_event("wirunit", "quarantine",
                                        {"reason": reason[:120]})
        _LOG.warning("SM%d: WIR unit quarantined at cycle %d: %s",
                     self.sm_id, self.cycle, reason)
        self.unit.quarantine_flush()

    # ----------------------------------------------------------- checkpointing

    @staticmethod
    def _encode_exec_result(res: ExecResult) -> dict:
        return {
            "mask": encode_array(res.mask),
            "sources": [encode_array(src) for src in res.sources],
            "result": encode_array(res.result),
            "pred_result": encode_array(res.pred_result),
            "taken_mask": encode_array(res.taken_mask),
            "addresses": encode_array(res.addresses),
            "store_values": encode_array(res.store_values),
        }

    @staticmethod
    def _decode_exec_result(data: dict) -> ExecResult:
        return ExecResult(
            mask=decode_array(data["mask"]),
            sources=tuple(decode_array(src) for src in data["sources"]),
            result=decode_array(data["result"]),
            pred_result=decode_array(data["pred_result"]),
            taken_mask=decode_array(data["taken_mask"]),
            addresses=decode_array(data["addresses"]),
            store_values=decode_array(data["store_values"]),
        )

    @staticmethod
    def _encode_decision(decision: Optional[IssueDecision]) -> Optional[dict]:
        if decision is None:
            return None
        tag = decision.tag
        return {
            "action": decision.action,
            "src_phys": list(decision.src_phys),
            "tag": ([tag[0], [list(desc) for desc in tag[1]]]
                    if tag is not None else None),
            "result_reg": decision.result_reg,
            "rb_index": decision.rb_index,
            "rb_token": decision.rb_token,
            "reserved": decision.reserved,
            "divergent": decision.divergent,
        }

    @staticmethod
    def _decode_decision(data: Optional[dict]) -> Optional[IssueDecision]:
        if data is None:
            return None
        tag = data["tag"]
        return IssueDecision(
            action=data["action"],
            src_phys=tuple(data["src_phys"]),
            tag=((tag[0], tuple((kind, operand) for kind, operand in tag[1]))
                 if tag is not None else None),
            result_reg=data["result_reg"],
            rb_index=data["rb_index"],
            rb_token=data["rb_token"],
            reserved=data["reserved"],
            divergent=data["divergent"],
        )

    def _encode_waiter(self, waiter: Waiter) -> dict:
        warp, inst, exec_result = waiter.descriptor
        return {
            "slot": warp.warp_slot,
            "pc": inst.pc,
            "exec": self._encode_exec_result(exec_result),
        }

    def _decode_waiter(self, data: dict) -> Waiter:
        warp = self.warps[data["slot"]]
        inst = self._instructions[data["pc"]]
        return self._make_waiter(warp, inst,
                                 self._decode_exec_result(data["exec"]))

    def _encode_event(self, event: Tuple[int, int, int, tuple]) -> dict:
        """One heap record as plain data.

        A warp is identified by its slot (a warp can never finish while it
        has in-flight instructions, so the slot still holds it at restore);
        an instruction by its pc (restore indexes ``self._instructions``, so
        per-``id(inst)`` plan/kernel caches repopulate lazily and purely).
        """
        cycle, seq, kind, payload = event
        data: dict = {"cycle": cycle, "seq": seq,
                      "kind": EVENT_KIND_NAMES[kind]}
        if kind == EV_RETIRE:
            warp, inst = payload
            data["payload"] = {"slot": warp.warp_slot, "pc": inst.pc}
        elif kind == EV_REUSE_COMMIT:
            warp, inst, result_reg = payload
            data["payload"] = {"slot": warp.warp_slot, "pc": inst.pc,
                               "result_reg": result_reg}
        elif kind == EV_WRITEBACK:
            warp, inst, exec_result, decision, ready = payload
            data["payload"] = {
                "slot": warp.warp_slot, "pc": inst.pc,
                "exec": self._encode_exec_result(exec_result),
                "decision": self._encode_decision(decision),
                # The raw (unclamped) writeback cycle: _writeback passes it
                # on to allocation/regfile scheduling, so the heap cycle
                # alone (clamped by _schedule) would not reproduce it.
                "ready": ready,
            }
        else:  # EV_WIR_COMMIT
            warp, inst, decision, dest = payload
            data["payload"] = {"slot": warp.warp_slot, "pc": inst.pc,
                               "decision": self._encode_decision(decision),
                               "dest": dest}
        return data

    def _decode_event(self, data: dict) -> Tuple[int, int, int, tuple]:
        kind = EVENT_KINDS_BY_NAME[data["kind"]]
        p = data["payload"]
        warp = self.warps[p["slot"]]
        inst = self._instructions[p["pc"]]
        if kind == EV_RETIRE:
            payload: tuple = (warp, inst)
        elif kind == EV_REUSE_COMMIT:
            payload = (warp, inst, p["result_reg"])
        elif kind == EV_WRITEBACK:
            payload = (warp, inst, self._decode_exec_result(p["exec"]),
                       self._decode_decision(p["decision"]), p["ready"])
        else:
            payload = (warp, inst, self._decode_decision(p["decision"]),
                       p["dest"])
        return (data["cycle"], data["seq"], kind, payload)

    def state_dict(self) -> dict:
        """Complete snapshot of this SM at a cycle boundary (pure reads).

        Not serialized: the execution engine's per-instruction kernel and
        plan caches (pure, lazily repopulated), config-derived constants,
        and the ``_c_*`` fast-path counter references (restored in place
        through the stats tree).
        """
        events = sorted(self._events, key=lambda event: (event[0], event[1]))
        return {
            "cycle": self.cycle,
            "warps": [warp.state_dict() if warp is not None else None
                      for warp in self.warps],
            "blocks": {
                str(block_id): {"slots": list(bs.slots),
                                "live_warps": bs.live_warps}
                for block_id, bs in self._blocks.items()
            },
            "scoreboard": self.scoreboard.state_dict(),
            "schedulers": [sched.state_dict() for sched in self.schedulers],
            "regfile": self.regfile.state_dict(),
            "port": self.port.state_dict(),
            "affine": self.affine.state_dict(),
            "unit": (self.unit.state_dict(self._encode_waiter)
                     if self.unit is not None else None),
            "wir_quarantined": self.wir_quarantined,
            "sp_free": list(self._sp_free),
            "sfu_free": self._sfu_free,
            "mem_free": self._mem_free,
            "events": [self._encode_event(event) for event in events],
            "event_seq": self._event_seq,
            "sleep_until": self._sleep_until,
            "warp_blocked_until": list(self._warp_blocked_until),
            "warp_waiting": list(self._warp_waiting),
            "sb_wait": list(self._sb_wait),
            "stats": self.stats.to_dict(),
        }

    def load_state(self, state: dict, descriptor_of) -> None:
        """Restore a snapshot onto a freshly constructed SM.

        *descriptor_of* maps a block id back to its
        :class:`~repro.sim.grid.BlockDescriptor` (the GPU regenerates them
        deterministically from the launch geometry).
        """
        self.cycle = state["cycle"]
        # Warps first: waiter and event decoding below needs live objects.
        self.warps = [None] * len(self.warps)
        for slot, wstate in enumerate(state["warps"]):
            if wstate is None:
                continue
            warp = Warp(slot, descriptor_of(wstate["block_id"]),
                        wstate["warp_in_block"], self.program)
            warp.load_state(wstate)
            self.warps[slot] = warp
        self._blocks = {}
        for block_id_str, bstate in state["blocks"].items():
            block_id = int(block_id_str)
            bs = _BlockState(descriptor_of(block_id), list(bstate["slots"]))
            bs.live_warps = bstate["live_warps"]
            self._blocks[block_id] = bs
        self.scoreboard.load_state(state["scoreboard"])
        for sched, sstate in zip(self.schedulers, state["schedulers"]):
            sched.load_state(sstate)
        self.regfile.load_state(state["regfile"])
        self.port.load_state(state["port"])
        self.affine.load_state(state["affine"])
        self.wir_quarantined = state["wir_quarantined"]
        if self.unit is not None:
            self.unit.load_state(state["unit"], self._decode_waiter)
            self._refresh_register_cap()
        self._sp_free = list(state["sp_free"])
        self._sfu_free = state["sfu_free"]
        self._mem_free = state["mem_free"]
        self._events = [self._decode_event(event)
                        for event in state["events"]]
        heapq.heapify(self._events)
        self._event_seq = state["event_seq"]
        self._sleep_until = state["sleep_until"]
        self._warp_blocked_until = list(state["warp_blocked_until"])
        # After the unit restore: rebuilding waiters via _make_waiter set
        # flags for queued slots; the stored list is authoritative.
        self._warp_waiting = list(state["warp_waiting"])
        self._sb_wait = list(state["sb_wait"])
        self.stats.load_state(state["stats"])

    # ------------------------------------------------------------- diagnostics

    def debug_snapshot(self) -> str:
        """Human-readable SM state dump for deadlock / timeout diagnostics."""
        lines = [
            f"SM{self.sm_id} @ cycle {self.cycle}: "
            f"{len(self._events)} queued events, "
            f"{self.resident_blocks} resident blocks"
        ]
        for slot, warp in enumerate(self.warps):
            if warp is None:
                continue
            flags = []
            if warp.exited:
                flags.append("exited")
            if warp.at_barrier:
                flags.append("barrier")
            if self._warp_waiting[slot]:
                flags.append("retry-wait")
            blocked = self._warp_blocked_until[slot]
            if blocked > self.cycle:
                flags.append(f"blocked_until={blocked}")
            regs, preds = self.scoreboard.pending_snapshot(slot)
            lines.append(
                f"  warp slot {slot} (block {warp.block.block_id}."
                f"{warp.warp_in_block}): pc={warp.pc} inflight={warp.inflight}"
                f" pending_regs={list(regs)} pending_preds={list(preds)}"
                + (" [" + ",".join(flags) + "]" if flags else "")
            )
        if self.unit is not None:
            lines.append(
                f"  wir: rb_occupancy={self.unit.reuse_buffer.occupancy()}"
                f" retry_queue={self.unit.reuse_buffer.retry_queue_used}"
                f" vsb_occupancy={self.unit.vsb.occupancy()}"
                f" phys_free={self.unit.physfile.free_count}"
                f" quarantined={self.wir_quarantined}"
            )
        return "\n".join(lines)
