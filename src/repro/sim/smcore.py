"""Streaming multiprocessor core: warp residency, scheduling, event loop.

The SM uses a hybrid cycle/event model: warp schedulers issue up to one
instruction per scheduler per cycle, and each issued instruction's journey
through the backend is scheduled as events on a heap.  Functional state
commits at issue in program order per warp — the scoreboard guarantees
consumers never issue before their producers retire, so the early commit
is architecturally invisible.

The pipeline itself — select → rename → reuse probe → operand read →
execute → allocate/verify → writeback/retire — lives in
:mod:`repro.pipeline` as declarative stages composed by
:func:`~repro.pipeline.spec.build_pipeline` (DESIGN.md §13); this class
routes due events to the stage methods bound at construction.  With
``config.wir.enabled == False`` the same pipeline runs the Base GPU.
"""

from __future__ import annotations

import heapq
import logging
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.check.errors import DivergenceError, InvariantViolation
from repro.core.affine import AffineTracker
from repro.core.wir_unit import IssueDecision, WIRUnit
from repro.isa.instruction import Instruction
from repro.isa.opcodes import MemSpace, Opcode, OpClass
from repro.isa.program import Program
from repro.pipeline.spec import build_pipeline
from repro.sim.config import GPUConfig, SchedulerPolicy
from repro.sim.exec_engine import ExecResult
from repro.sim.grid import BlockDescriptor
from repro.sim.memory.subsystem import MemorySubsystem, SMMemoryPort
from repro.sim.regfile import RegisterFileTiming
from repro.sim.scheduler import WarpScheduler
from repro.sim.scoreboard import Scoreboard
from repro.sim.debug import sm_debug_snapshot
from repro.sim.serde import (
    EV_RETIRE, EV_REUSE_COMMIT, EV_SB_WRITEBACK, EV_WIR_COMMIT, EV_WRITEBACK,
    sm_load_state, sm_state_dict)
from repro.sim.warp import Warp
from repro.stats import StatGroup
from repro.trace.stall import StallAttributor

_LOG = logging.getLogger(__name__)

#: Sleep-memo target for an SM with no time-based wake candidate.
_NEVER = 1 << 62


class SMCounters(StatGroup):
    """Per-SM dynamic event counts feeding the energy model and figures.

    ``reused`` counts instructions that bypassed the backend via reuse
    (including pending-retry wakeups); ``backend_insts`` entered the
    register-read/execute path; ``fu_*_lanes`` track lane activations
    (affine execution may activate a single lane).  Hot paths update these
    through raw handles preloaded via :meth:`StatGroup.handle`.
    """

    COUNTERS = ("cycles", "issued", "retired", "reused", "reused_loads",
                "backend_insts", "control_insts", "barrier_insts",
                "store_insts", "fu_sp_insts", "fu_sfu_insts", "fu_sp_lanes",
                "fu_sfu_lanes", "mem_insts", "affine_fu_insts",
                "blocks_completed", "warps_completed")
    HISTOGRAMS = ("issued_by_class",)

    def note_class(self, cls: OpClass) -> None:
        self.handle("issued_by_class").increment(cls.value)


class _BlockState:
    """Lifecycle bookkeeping for one resident thread block."""

    __slots__ = ("descriptor", "slots", "live_warps")

    def __init__(self, descriptor: BlockDescriptor, slots: List[int]) -> None:
        self.descriptor = descriptor
        self.slots = slots
        self.live_warps = len(slots)


class SMCore:
    """One streaming multiprocessor."""

    def __init__(
        self,
        sm_id: int,
        config: GPUConfig,
        program: Program,
        subsystem: MemorySubsystem,
        profiler=None,
    ) -> None:
        self.sm_id = sm_id
        self.config = config
        self.program = program
        #: Direct reference for the fast ready scan.
        self._instructions = program.instructions
        self.profiler = profiler

        self.warps: List[Optional[Warp]] = [None] * config.max_warps_per_sm
        self.scoreboard = Scoreboard(config.max_warps_per_sm)
        self.regfile = RegisterFileTiming(config)
        self.port = SMMemoryPort(sm_id, config, subsystem)
        self.affine = AffineTracker(enabled=config.wir.affine)
        self.unit: Optional[WIRUnit] = (
            WIRUnit(config, self.regfile, self.affine) if config.wir.enabled else None
        )
        #: Lockstep golden-model checker (set by ``CheckedGPU`` runs).
        self.checker = None
        #: Once quarantined, every instruction takes the baseline path.
        self.wir_quarantined = False
        self.counters = SMCounters("core")
        #: Observability (repro.trace): both stay ``None`` unless enabled
        #: in ``config.trace``; they observe but never influence timing.
        self.tracer = None
        self.stall: Optional[StallAttributor] = (
            StallAttributor(self) if config.trace.stalls else None
        )

        #: This SM's subtree of the run's stats registry (components are
        #: adopted live).
        self.stats = StatGroup(f"sm{sm_id}")
        self.stats.adopt(self.counters)
        self.stats.adopt(self.regfile.stats)
        self.stats.adopt(self.port.l1d.stats, name="l1d")
        self.stats.adopt(self.port.l1c.stats, name="l1c")
        self.stats.adopt(self.port.stats, name="port")
        if self.unit is not None:
            self.stats.adopt(self.unit.counters)
        if self.stall is not None:
            self.stats.adopt(self.stall.stats)

        num_sched = config.num_schedulers
        self.schedulers = [
            WarpScheduler(
                i,
                [s for s in range(config.max_warps_per_sm) if s % num_sched == i],
                config.scheduler_policy,
            )
            for i in range(num_sched)
        ]
        #: Owning scheduler per warp slot (for ``scannable`` accounting).
        self._sched_of_slot = [
            self.schedulers[s % num_sched]
            for s in range(config.max_warps_per_sm)
        ]

        #: Engine selection (DESIGN.md §8, §16): "vector"/"superblock" opt
        #: into the fast ready scan and resident-slot arbitration; all
        #: paths are bit-identical (tests/test_exec_differential.py).
        self._fast_path = config.exec_engine in ("vector", "superblock")
        #: Fused pick+ready is GTO-only (LRR's pointer needs scan order).
        self._fast_gto = (self._fast_path
                          and config.scheduler_policy is SchedulerPolicy.GTO)
        if self._fast_path:
            for scheduler in self.schedulers:
                scheduler.use_resident = True

        # Event heap: (cycle, seq, kind, payload) — see serde.EVENT_KIND_NAMES.
        self._events: List[Tuple[int, int, int, tuple]] = []
        self._event_seq = 0
        self.cycle = 0
        #: Sleep memo (vector engine): cycles below it are housekeeping-only.
        self._sleep_until = 0

        # Resident blocks.
        self._blocks: Dict[int, _BlockState] = {}
        self._warp_blocked_until: List[int] = [0] * config.max_warps_per_sm
        #: Warps waiting in the pending-retry queue do not issue.
        self._warp_waiting: List[bool] = [False] * config.max_warps_per_sm
        #: Fast-scan memo (vector engine only): the slot's instruction is
        #: scoreboard-blocked until one of its own in-flight insts retires.
        self._sb_wait: List[bool] = [False] * config.max_warps_per_sm

        #: The composed stage pipeline (built after the slot-state lists
        #: above, which stages cache direct references to — DESIGN.md §13).
        self.pipeline = build_pipeline(self)
        self.stats.adopt(self.pipeline.stats)
        #: Alias for the execute stage's engine (diagnostics and tests).
        self.engine = self.pipeline.execute.engine

        # Hot-path bindings: stage methods looked up once per SM, not per
        # instruction/cycle.
        self._engine_execute = self.pipeline.execute.functional
        self._ready_impl = self.pipeline.select.ready_impl
        self._pick_fast = self.pipeline.select.fast_pick
        self._reuse_probe = self.pipeline.reuse_probe
        self._execute_stage = self.pipeline.execute
        self._allocate_verify = self.pipeline.allocate_verify
        self._writeback_retire = self.pipeline.writeback_retire
        #: Superblock trace-compilation runtime (DESIGN.md §16) or ``None``.
        self._superblock = self.pipeline.execute.superblock
        self._sp_free = self.pipeline.execute.sp_free

        # Preloaded stat handles (StatGroup.handle — the live objects).
        self._c_cycles = self.counters.handle("cycles")
        self._c_issued = self.counters.handle("issued")
        self._h_by_class = self.counters.handle("issued_by_class")

        # Register-utilisation sampling (Figure 19) interval.
        self._util_sample_interval = 64
        self.on_block_complete: Optional[Callable[[int, int], None]] = None

    def attach_tracer(self, view) -> None:
        """Wire an :class:`~repro.trace.events.SMTraceView` through every
        component of this SM (observer only; no timing influence)."""
        self.tracer = view
        self.regfile.tracer = view
        self.port.tracer = view
        self.pipeline.attach_tracer(view)
        for scheduler in self.schedulers:
            scheduler.on_pick = view.scheduler_pick
        if self.unit is not None:
            self.unit.reuse_buffer.tracer = view
            self.unit.vsb.tracer = view

    # ------------------------------------------------------------ block admin

    @property
    def resident_blocks(self) -> int:
        return len(self._blocks)

    def free_warp_slots(self) -> int:
        return sum(1 for warp in self.warps if warp is None)

    def can_accept(self, block: BlockDescriptor) -> bool:
        return (
            self.resident_blocks < self.config.max_blocks_per_sm
            and self.free_warp_slots() >= block.num_warps
        )

    def dispatch_block(self, block: BlockDescriptor) -> None:
        """Install a thread block into free warp slots."""
        slots: List[int] = []
        for slot in range(len(self.warps)):
            if self.warps[slot] is None:
                slots.append(slot)
                if len(slots) == block.num_warps:
                    break
        if len(slots) < block.num_warps:
            raise RuntimeError("dispatch_block called without capacity")
        for warp_in_block, slot in enumerate(slots):
            warp = Warp(slot, block, warp_in_block, self.program)
            self.warps[slot] = warp
            self.scoreboard.reset_slot(slot)
            self._warp_blocked_until[slot] = self.cycle
            self._warp_waiting[slot] = False
            self._sb_wait[slot] = False
            if self.unit is not None:
                self.unit.reset_slot(slot)
            self.schedulers[slot % len(self.schedulers)].note_dispatch(slot)
        self._blocks[block.block_id] = _BlockState(block, slots)
        self._sleep_until = 0
        self._refresh_register_cap()

    def _refresh_register_cap(self) -> None:
        if self.unit is None:
            return
        active_warps = sum(1 for warp in self.warps if warp is not None)
        self.unit.set_register_cap(self.program.num_logical_registers, active_warps)

    def _warp_finished(self, warp: Warp) -> None:
        """A warp has exited and drained its in-flight instructions."""
        state = self._blocks.get(warp.block.block_id)
        self.warps[warp.warp_slot] = None
        self.schedulers[warp.warp_slot % len(self.schedulers)].note_finished(
            warp.warp_slot)
        self.counters.warps_completed += 1
        if self.unit is not None:
            self.unit.reset_slot(warp.warp_slot)
        self._maybe_release_barrier(warp.block.block_id)
        if state is None:
            return
        state.live_warps -= 1
        if state.live_warps == 0:
            del self._blocks[warp.block.block_id]
            self.counters.blocks_completed += 1
            if self.unit is not None:
                self.unit.on_block_complete(warp.block.block_id)
            self.port.subsystem.image.release_scratchpad(warp.block.block_id)
            self._refresh_register_cap()
            if self.on_block_complete is not None:
                self.on_block_complete(self.sm_id, warp.block.block_id)

    # -------------------------------------------------------------- event loop

    def _schedule(self, cycle: int, kind: int, payload: tuple) -> None:
        self._event_seq += 1
        heapq.heappush(
            self._events,
            (max(cycle, self.cycle + 1), self._event_seq, kind, payload))

    def _dispatch(self, kind: int, payload: tuple) -> None:
        """Route one due event to its stage — hottest kinds probed first
        (every instruction retires; superblock writebacks dominate)."""
        if kind == EV_RETIRE:
            warp, inst = payload
            self._writeback_retire.retire(warp, inst)
        elif kind == EV_SB_WRITEBACK:
            warp, inst, ready = payload
            self._superblock.on_writeback(warp, inst, ready)
        elif kind == EV_WRITEBACK:
            warp, inst, exec_result, decision, ready = payload
            self._allocate_verify.run(warp, inst, exec_result, decision, ready)
        elif kind == EV_REUSE_COMMIT:
            warp, inst, result_reg = payload
            self._writeback_retire.commit_reuse(warp, inst, result_reg)
        elif kind == EV_WIR_COMMIT:
            warp, inst, decision, dest = payload
            self._writeback_retire.commit(warp, inst, decision, dest)
        else:  # pragma: no cover - schema violation
            raise RuntimeError(f"unknown SM event kind {kind!r}")

    def busy(self) -> bool:
        # A live warp always belongs to a resident block, so this is O(1).
        return bool(self._events) or bool(self._blocks)

    def next_wake(self) -> Optional[int]:
        """Earliest future cycle at which this SM has work (None if idle).
        O(1) under the fused scheduler with no per-cycle observers: the SM
        is only probed while inactive, when every scheduler holds a valid
        ``wake_memo`` (events reset it at their source; time-based wakes
        are exactly what the failed scan recorded).  The fallback scans
        resident slots — a live warp's slot is always resident."""
        cycle = self.cycle
        best = self._events[0][0] if self._events else None
        if self._fast_gto and self.stall is None and self.unit is None:
            for scheduler in self.schedulers:
                memo = scheduler.wake_memo
                if memo < _NEVER and (best is None or memo < best):
                    best = memo
            return best
        warps, waiting = self.warps, self._warp_waiting
        blocked_until = self._warp_blocked_until
        for scheduler in self.schedulers:
            for slot in scheduler._resident:
                warp = warps[slot]
                if (warp is None or warp.exited or warp.at_barrier
                        or waiting[slot]):
                    continue
                blocked = blocked_until[slot]
                if blocked > cycle and (best is None or blocked < best):
                    best = blocked
        for free in self._execute_stage.wake_candidates(cycle):
            if best is None or free < best:
                best = free
        return best

    def skip_until(self, cycle: int) -> int:
        """Latest cycle before which ``tick`` is provably a no-op for this
        SM (0 = tick every cycle): the sleep memo, clamped to the next due
        event and — when the WIR unit samples/checks on cycle boundaries —
        the next housekeeping boundary, so skipped ticks skip nothing."""
        target = self._sleep_until
        if not target:
            return 0
        if self._events and self._events[0][0] < target:
            target = self._events[0][0]
        if self.unit is not None:
            interval = self._util_sample_interval
            boundary = cycle + interval - cycle % interval
            check = self.config.wir.invariant_check_interval
            if check:
                nxt = cycle + check - cycle % check
                if nxt < boundary:
                    boundary = nxt
            if boundary < target:
                target = boundary
        return target

    def tick(self, cycle: int) -> bool:
        """Advance one cycle: drain due events, then issue. Returns activity."""
        self.cycle = cycle
        events = self._events
        if (cycle < self._sleep_until
                and not (events and events[0][0] <= cycle)):
            # Vector-engine sleep memo: the last full tick was inactive and
            # nothing can change before ``_sleep_until`` — housekeeping
            # still runs so sampled stats match the scalar engine exactly.
            if self.unit is not None:
                self._tick_housekeeping(cycle)
            return False
        self._sleep_until = 0
        active = False
        while events and events[0][0] <= cycle:
            _, _, kind, payload = heapq.heappop(events)
            # The two hottest kinds (every backend instruction contributes
            # one of each on the superblock path) dispatch without the
            # ``_dispatch`` call frame.
            if kind == EV_RETIRE:
                warp, inst = payload
                self._writeback_retire.retire(warp, inst)
            elif kind == EV_SB_WRITEBACK:
                warp, inst, ready = payload
                self._superblock.on_writeback(warp, inst, ready)
            else:
                self._dispatch(kind, payload)
            active = True
        if self._fast_gto and self.stall is None:
            sb = self._superblock
            for scheduler in self.schedulers:
                if scheduler.hint_cycle == cycle:
                    # Greedy hint (superblock): this slot issued last cycle
                    # and its next instruction is hazard-free, so only the
                    # FU gate needs re-checking — the fused scan's greedy
                    # probe would reach the same pick (see WarpScheduler).
                    scheduler.hint_cycle = -1
                    slot = scheduler.hint_slot
                    fu = scheduler.hint_fu
                    ex = self._execute_stage
                    if (not self._warp_waiting[slot]
                            and (fu == 0 and min(self._sp_free) <= cycle
                                 or fu == 2 and ex.mem_free <= cycle
                                 or fu == 3
                                 or fu == 1 and ex.sfu_free <= cycle)):
                        if sb is None or not sb.try_issue(
                                slot, self.warps[slot], cycle):
                            self._issue(slot)
                        active = True
                        continue
                if cycle < scheduler.wake_memo:
                    continue
                slot = self._pick_fast(scheduler)
                if slot is not None:
                    if sb is None or not sb.try_issue(
                            slot, self.warps[slot], cycle):
                        self._issue(slot)
                    active = True
        else:
            issued: List[int] = []
            for scheduler in self.schedulers:
                slot = (self._pick_fast(scheduler) if self._fast_gto
                        else scheduler.pick(self._ready_impl))
                if slot is not None:
                    self._issue(slot)
                    issued.append(slot)
                    active = True
            if self.stall is not None:
                self.stall.observe(cycle, issued)
        if active:
            self._c_cycles.value += 1
        elif self._fast_path and self.stall is None:
            # Inactive full tick: sleep until the earliest wake candidate.
            # Disabled under stall attribution (observes every cycle).
            wake = self.next_wake()
            self._sleep_until = wake if wake is not None else _NEVER
        if self.unit is not None:
            self._tick_housekeeping(cycle)
        return active

    def _tick_housekeeping(self, cycle: int) -> None:
        """Per-cycle sampling and invariant checks (run on every ticked
        cycle, including sleep-memo ticks, so sampled stats are identical
        across engines).  Callers skip the call when ``unit is None``."""
        if cycle % self._util_sample_interval == 0:
            self.unit.physfile.sample_utilization()
        interval = self.config.wir.invariant_check_interval
        if (interval and self.unit is not None and not self.wir_quarantined
                and cycle % interval == 0):
            try:
                self.unit.check_invariants()
            except InvariantViolation as err:
                if not self.config.wir.quarantine:
                    raise
                self.quarantine_wir(str(err))

    def account_idle_cycles(self, count: int) -> None:
        """Bulk stall attribution for idle-skipped cycles: the warp
        classification at the current cycle holds for the whole skipped gap
        (every relevant state change is a ``next_wake`` candidate)."""
        if self.stall is not None and count > 0:
            self.stall.observe(self.cycle, (), weight=count)

    # ------------------------------------------------------------------ issue

    def _issue(self, slot: int) -> None:
        warp = self.warps[slot]
        if self._fast_path:
            sb = self._superblock
            if sb is not None and sb.try_issue(slot, warp, self.cycle):
                return
            # The pick already proved the warp is live and in range.
            inst = self._instructions[warp.stack[-1].pc]
        else:
            inst = warp.next_instruction()
        cycle = self.cycle
        exec_result = self._engine_execute(inst, warp)
        self._c_issued.value += 1
        self._h_by_class.increment(inst.op_class.value)
        warp.last_issue_cycle = cycle

        if self.profiler is not None:
            self.profiler.observe(inst, exec_result)
        if self.checker is not None:
            self.checker.observe_issue(self, warp, inst, exec_result)

        cls = inst.op_class
        if cls is OpClass.CONTROL:
            self._issue_control(warp, inst, exec_result)
            return
        if cls is OpClass.SYNC:
            self._issue_sync(warp, inst)
            return
        if cls is OpClass.NOP:
            if self.tracer is not None:
                self.tracer.issue_event(slot, "nop", {"pc": inst.pc})
            warp.advance()
            self._finish_if_exited(warp)
            return

        if self.tracer is not None:
            # Backend-bound instructions are async spans closed at retire
            # (control/sync/nop above are instants instead).
            self.tracer.begin_inst(slot, inst)

        decision: Optional[IssueDecision] = None
        if self.unit is not None and not self.wir_quarantined:
            decision = self._reuse_probe.issue(warp, inst, exec_result)

        # Track store flags for load reuse before advancing.
        if cls is OpClass.STORE:
            if inst.space is MemSpace.SHARED:
                warp.shared_store_flag = True
            elif inst.space is MemSpace.GLOBAL:
                warp.global_store_flag = True

        self.scoreboard.register(slot, inst)
        warp.inflight += 1
        warp.advance()

        if decision is not None and decision.action == "reuse":
            self._reuse_probe.apply_hit(warp, inst, exec_result, decision)
            self._checker_commit(warp, inst)
        elif decision is not None and decision.action == "queued":
            # Waits on a pending reuse-buffer entry; commit runs at wakeup.
            pass
        else:
            self._execute_stage.run(warp, inst, exec_result, decision, cycle)
            self._checker_commit(warp, inst)
        self._finish_if_exited(warp)

    # --- control / sync -------------------------------------------------------

    def _issue_control(self, warp: Warp, inst: Instruction, exec_result: ExecResult) -> None:
        self.counters.control_insts += 1
        slot = warp.warp_slot
        if self.tracer is not None:
            self.tracer.issue_event(slot, inst.opcode.name.lower(),
                                    {"pc": inst.pc})
        if inst.opcode is Opcode.BRA:
            warp.resolve_branch(inst.pc, exec_result.taken_mask, inst.target)
        else:  # exit
            warp.execute_exit(exec_result.mask)
        # Control hazard: the warp waits for branch resolution latency.
        self._warp_blocked_until[slot] = self.cycle + self.config.sp_latency // 2
        self._finish_if_exited(warp)

    def _issue_sync(self, warp: Warp, inst: Instruction) -> None:
        self.counters.barrier_insts += 1
        if self.tracer is not None:
            self.tracer.issue_event(warp.warp_slot, inst.opcode.name.lower(),
                                    {"pc": inst.pc})
        warp.advance()
        if inst.opcode is Opcode.BAR:
            warp.at_barrier = True
            self._maybe_release_barrier(warp.block.block_id)
        self._finish_if_exited(warp)

    def _maybe_release_barrier(self, block_id: int) -> None:
        state = self._blocks.get(block_id)
        if state is None:
            return
        waiting = []
        for slot in state.slots:
            warp = self.warps[slot]
            if warp is None or warp.exited:
                continue
            if not warp.at_barrier:
                return
            waiting.append(warp)
        if not waiting:
            return
        for warp in waiting:
            warp.at_barrier = False
            warp.barrier_count += 1
            warp.shared_store_flag = False
            warp.global_store_flag = False
        for scheduler in self.schedulers:
            scheduler.wake_memo = 0

    def _finish_if_exited(self, warp: Warp) -> None:
        if warp.exited and warp.inflight == 0 and self.warps[warp.warp_slot] is warp:
            self._warp_finished(warp)

    # --- checking / degradation ---------------------------------------------------

    def _checker_commit(self, warp: Warp, inst: Instruction) -> None:
        """Lockstep commit check.  Under quarantine mode a repairable
        register/predicate divergence repairs the architectural value from
        the oracle and quarantines the WIR unit instead of aborting."""
        if self.checker is None:
            return
        try:
            self.checker.check_commit(self, warp, inst)
        except DivergenceError as err:
            if not (self.config.wir.quarantine and err.repair is not None
                    and self.unit is not None and not self.wir_quarantined):
                raise
            full = np.ones(32, dtype=bool)
            if err.kind == "register":
                warp.write_reg(inst.dst.value, err.repair, full)
            elif err.kind == "predicate":
                warp.write_pred(inst.dst.value, err.repair, full)
            else:
                raise
            self.quarantine_wir(str(err))

    def quarantine_wir(self, reason: str) -> None:
        """Graceful degradation: disable reuse, keep simulating baseline.

        The functional register state in each :class:`Warp` is the
        architectural truth, so correctness survives the quarantine; only
        timing fidelity degrades.  Counted in ``sm{N}.wir.quarantines``.
        """
        if self.unit is None or self.wir_quarantined:
            return
        self.wir_quarantined = True
        # The flush may wake pending-retry warps outside an event.
        self._sleep_until = 0
        self.unit.counters.quarantines += 1
        if self.tracer is not None:
            self.tracer.component_event("wirunit", "quarantine",
                                        {"reason": reason[:120]})
        _LOG.warning("SM%d: WIR unit quarantined at cycle %d: %s",
                     self.sm_id, self.cycle, reason)
        self.unit.quarantine_flush()

    # ----------------------------------------------------------- checkpointing

    def state_dict(self) -> dict:
        """Snapshot at a cycle boundary (see :func:`serde.sm_state_dict`)."""
        return sm_state_dict(self)

    def load_state(self, state: dict, descriptor_of) -> None:
        """Restore a snapshot (see :func:`serde.sm_load_state`)."""
        sm_load_state(self, state, descriptor_of)

    # ------------------------------------------------------------- diagnostics

    def debug_snapshot(self) -> str:
        """Human-readable SM state dump for deadlock / timeout diagnostics."""
        return sm_debug_snapshot(self)
