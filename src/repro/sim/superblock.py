"""Superblock trace compilation for the vector engine (DESIGN.md §16).

The per-instruction fast path (DESIGN.md §8) still pays Python dispatch for
every issued instruction: kernel call, ``ExecResult`` allocation, stage-method
round trips, and a five-tuple writeback event.  This module compiles each
*superblock* — a maximal straight-line run of backend instructions, cut at
branches, barriers/fences, unsupported opcodes, basic-block leaders,
reconvergence points, and (when the WIR unit probes) every reuse-probe
point — once per ``(program, config digest)`` into a list of per-instruction
*step* closures over structure-of-arrays warp state, plus per-segment *row
evaluators* that batch the functional math of a whole segment into one
overlay-dict sweep.

Bit-identity contract: a step performs exactly the same state mutations, in
exactly the same order, as the per-instruction path through ``SMCore._issue``
→ ``ExecuteStage.run`` → ``AllocateVerifyStage.run`` (Base path, observers
off), and schedules exactly as many heap events at the same cycles — one
``EV_SB_WRITEBACK`` at issue and one ``EV_RETIRE`` from its handler — so
event sequence numbers, bank arbitration order, and every counter match the
scalar oracle bit for bit (``tests/test_exec_differential.py``).

Within a block the active mask is constant (no control flow, no leaders), so
lane count and commit shape are decided once at block entry:

* **full** entry (``mask.all()``): rows commit with direct ``registers[dst][:]
  = row`` and lane cost is the constant 32;
* **masked** entry: evaluators blend each row with the previous committed
  value (``np.where(mask, row, prev)``), after which the very same direct
  commit reproduces a masked ``np.copyto`` exactly.

Rows are evaluated lazily at the issue of the first instruction of a
*segment* (segments split after loads — loads must read memory at issue) and
popped as they are consumed, so nothing here is checkpoint state: a restore
simply recomputes the remaining rows from the live registers, which at any
mid-segment point equal the overlay state by construction.  The compiled
tables hang off the program instance (identity-keyed), then by config
digest — never serialized, always rebuildable.
"""

from __future__ import annotations

from heapq import heappush
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.isa.instruction import Instruction, Operand, OperandKind
from repro.isa.opcodes import MemSpace, OpClass, Opcode
from repro.isa.program import Program, basic_blocks
from repro.sim.exec_engine import _CMP_FP, _CMP_INT, _RESULT_OPS
from repro.sim.grid import WARP_SIZE
from repro.sim.regfile import RegisterFileTiming
from repro.sim.serde import EV_RETIRE, EV_SB_WRITEBACK

_BANKS = RegisterFileTiming.BANKS_PER_GROUP

#: FU gate per op class for the greedy hint, mirroring ``ready_fast``
#: exactly: 0 = SP pipelines, 1 = SFU, 2 = memory, 3 = no FU gate.
_FU_CODE = {
    OpClass.INT: 0, OpClass.FP: 0, OpClass.PRED: 0, OpClass.SFU: 1,
    OpClass.LOAD: 2, OpClass.STORE: 2,
}

#: Config digest: every config-derived constant baked into step closures.
#: (front_delay, sp_latency, sfu_latency, num_sp_pipelines, bank_groups)
Digest = Tuple[int, int, int, int, int]


# --------------------------------------------------------------- formation

def _has_kernel(inst: Instruction) -> bool:
    """Whether *inst* has a compiled functional row evaluator."""
    cls = inst.op_class
    if cls in (OpClass.CONTROL, OpClass.SYNC, OpClass.NOP):
        return False
    opcode = inst.opcode
    if opcode in _RESULT_OPS or opcode in (Opcode.SETP, Opcode.FSETP,
                                           Opcode.SELP):
        return True
    return opcode.value.startswith(("ld.", "st."))


def is_compilable(inst: Instruction) -> bool:
    """Whether *inst* may live inside a multi-instruction superblock.

    Control flow, barriers/fences, and nops always cut; guarded
    instructions are excluded so the per-instruction mask stays equal to
    the (block-constant) entry mask; everything else must have a compiled
    functional kernel.
    """
    return inst.guard is None and _has_kernel(inst)


def is_guard_compilable(inst: Instruction) -> bool:
    """Whether a *guarded* backend instruction compiles as its own
    single-instruction block (the effective mask — entry mask AND guard
    predicate — is only known at issue, so it can never share a block)."""
    return inst.guard is not None and _has_kernel(inst)


def block_leaders(program: Program) -> set:
    """Every pc a warp can *enter* other than by falling through: basic
    block leaders plus reconvergence points (a bare ``pc += 1`` inside a
    block must never need the reconvergence check)."""
    n = len(program.instructions)
    leaders = {start for start, _ in basic_blocks(program.instructions)}
    for reconv in program.reconvergence.values():
        if 0 <= reconv < n:
            leaders.add(reconv)
    return leaders


def superblock_ranges(program: Program) -> List[Tuple[int, int]]:
    """Maximal ``(start, end_exclusive)`` runs of compilable instructions
    not crossing any leader (single-instruction runs included).  Guarded
    backend instructions always cut, but each still compiles as its own
    singleton range with the mask applied at issue."""
    leaders = block_leaders(program)
    ranges: List[Tuple[int, int]] = []
    start: Optional[int] = None
    for pc, inst in enumerate(program.instructions):
        if start is not None and pc in leaders:
            ranges.append((start, pc))
            start = None
        if is_compilable(inst):
            if start is None:
                start = pc
        else:
            if start is not None:
                ranges.append((start, pc))
                start = None
            if is_guard_compilable(inst):
                ranges.append((pc, pc + 1))
    if start is not None:
        ranges.append((start, len(program.instructions)))
    return ranges


# ----------------------------------------------------------- row evaluators
#
# An evaluator computes one instruction's functional row from an overlay of
# the block's earlier (not yet issued) results: ``ov`` maps register index ->
# committed-value row, ``pv`` maps predicate index -> committed-value row;
# misses fall back to the live warp state.  With ``mask is None`` (full
# entry) the raw result *is* the committed value; with a partial mask the
# evaluator blends with the previous committed value so the row can be
# committed with a direct full-width assignment.

def _compile_getter(operand: Operand) -> Callable:
    kind = operand.kind
    if kind is OperandKind.REG:
        index = operand.value

        def get_reg(ov, warp):
            row = ov.get(index)
            return warp.registers[index] if row is None else row
        return get_reg
    if kind is OperandKind.IMM:
        shared = np.full(WARP_SIZE, operand.value, dtype=np.uint32)
        shared.flags.writeable = False
        return lambda ov, warp: shared
    if kind is OperandKind.SREG:
        name = operand.sreg_name
        return lambda ov, warp: warp.special_value(name)
    if kind is OperandKind.ADDR:
        index, offset = operand.value, operand.offset

        def get_addr(ov, warp):
            row = ov.get(index)
            base = warp.registers[index] if row is None else row
            addr = base.astype(np.int64) + offset
            return (addr & 0xFFFFFFFF).astype(np.uint32)
        return get_addr
    raise ValueError(f"cannot resolve operand {operand}")


def _blend_reg(row, dst, ov, warp, mask):
    prev = ov.get(dst)
    if prev is None:
        prev = warp.registers[dst]
    return np.where(mask, row, prev)


def _make_alu_eval(inst: Instruction) -> Callable:
    compute = _RESULT_OPS[inst.opcode]
    getters = tuple(_compile_getter(src) for src in inst.srcs)
    dst = inst.dst.value

    # Arity-specialised bodies: a genexpr-built tuple costs a generator
    # frame per evaluation, which dominates cheap ALU rows.
    if len(getters) == 2:
        get_a, get_b = getters

        def ev(ov, pv, warp, mask):
            row = compute((get_a(ov, warp), get_b(ov, warp)))
            if mask is not None:
                row = _blend_reg(row, dst, ov, warp, mask)
            ov[dst] = row
            return row
        return ev
    if len(getters) == 1:
        get_a, = getters

        def ev(ov, pv, warp, mask):
            row = compute((get_a(ov, warp),))
            if mask is not None:
                row = _blend_reg(row, dst, ov, warp, mask)
            ov[dst] = row
            return row
        return ev

    def ev(ov, pv, warp, mask):
        row = compute(tuple(get(ov, warp) for get in getters))
        if mask is not None:
            row = _blend_reg(row, dst, ov, warp, mask)
        ov[dst] = row
        return row
    return ev


def _make_selp_eval(inst: Instruction) -> Callable:
    get_a, get_b = (_compile_getter(src) for src in inst.srcs)
    pred_src = inst.pred_src
    dst = inst.dst.value

    def ev(ov, pv, warp, mask):
        pred = pv.get(pred_src)
        if pred is None:
            pred = warp.predicates[pred_src]
        row = np.where(pred, get_a(ov, warp), get_b(ov, warp))
        if mask is not None:
            row = _blend_reg(row, dst, ov, warp, mask)
        ov[dst] = row
        return row
    return ev


def _make_setp_eval(inst: Instruction) -> Callable:
    table = _CMP_INT if inst.opcode is Opcode.SETP else _CMP_FP
    cmp_fn = table[inst.cmp]
    get_a, get_b = (_compile_getter(src) for src in inst.srcs)
    dst = inst.dst.value

    def ev(ov, pv, warp, mask):
        row = cmp_fn(get_a(ov, warp), get_b(ov, warp))
        if mask is not None:
            prev = pv.get(dst)
            if prev is None:
                prev = warp.predicates[dst]
            row = np.where(mask, row, prev)
        pv[dst] = row
        return row
    return ev


def _make_load_eval(inst: Instruction) -> Callable:
    # The row is the address vector; the loaded value is only known at
    # issue (memory is globally mutable), which is why loads end segments.
    get_addr = _compile_getter(inst.srcs[0])
    return lambda ov, pv, warp, mask: get_addr(ov, warp)


def _make_store_eval(inst: Instruction) -> Callable:
    get_addr, get_values = (_compile_getter(src) for src in inst.srcs)

    def ev(ov, pv, warp, mask):
        return (get_addr(ov, warp), get_values(ov, warp))
    return ev


def _operand_expr(operand: Operand, temps: Dict, consts: Dict) -> str:
    """Source-code expression for one operand inside a fused segment
    evaluator — the codegen twin of :func:`_compile_getter`, with the
    overlay dict replaced by *temps* (reg/pred -> local variable name of
    the segment's last write, exactly the overlay semantics)."""
    kind = operand.kind
    if kind is OperandKind.REG:
        return temps.get(("r", operand.value), f"R[{operand.value}]")
    if kind is OperandKind.IMM:
        shared = np.full(WARP_SIZE, operand.value, dtype=np.uint32)
        shared.flags.writeable = False
        name = f"C{len(consts)}"
        consts[name] = shared
        return name
    if kind is OperandKind.SREG:
        return f"warp.special_value({operand.sreg_name!r})"
    if kind is OperandKind.ADDR:
        base = temps.get(("r", operand.value), f"R[{operand.value}]")
        return (f"(({base}.astype(_i64) + {operand.offset})"
                f" & 0xFFFFFFFF).astype(_u32)")
    raise ValueError(f"cannot resolve operand {operand}")


def _codegen_segment(block_start: int, insts, i0: int, i1: int) -> tuple:
    """Compile one segment (block-local ``i0..i1``) into two generated
    functions — ``(full, masked)`` — each evaluating every row of the
    segment in one call: the "single fused numpy kernel" of DESIGN.md §16.

    The generated code performs exactly the operations of the
    per-instruction evaluators in the same order (same compute functions,
    same blends), with the overlay dictionaries replaced by local
    variables, so the rows are bit-identical.  Only unguarded segments are
    generated; mid-segment entry (checkpoint resume) keeps the
    per-instruction path.
    """
    consts: Dict[str, object] = {}
    temps: Dict[tuple, str] = {}
    full = ["def seg_full(warp, rows):",
            "    R = warp.registers", "    P = warp.predicates"]
    masked = ["def seg_masked(warp, rows, mask):",
              "    R = warp.registers", "    P = warp.predicates"]
    for i in range(i0, i1):
        inst = insts[i]
        pc = block_start + i
        opcode = inst.opcode
        t = f"t{i}"
        if inst.op_class is OpClass.LOAD:
            # The row is the address vector (mask-independent).
            addr = _operand_expr(inst.srcs[0], temps, consts)
            full.append(f"    rows[{pc}] = {addr}")
            masked.append(f"    rows[{pc}] = {addr}")
            continue
        if inst.op_class is OpClass.STORE:
            addr = _operand_expr(inst.srcs[0], temps, consts)
            values = _operand_expr(inst.srcs[1], temps, consts)
            full.append(f"    rows[{pc}] = ({addr}, {values})")
            masked.append(f"    rows[{pc}] = ({addr}, {values})")
            continue
        if opcode in (Opcode.SETP, Opcode.FSETP):
            table = _CMP_INT if opcode is Opcode.SETP else _CMP_FP
            fname = f"G{i}"
            consts[fname] = table[inst.cmp]
            a = _operand_expr(inst.srcs[0], temps, consts)
            b = _operand_expr(inst.srcs[1], temps, consts)
            raw = f"{fname}({a}, {b})"
            dst = inst.dst.value
            prev = temps.get(("p", dst), f"P[{dst}]")
            full.append(f"    {t} = {raw}")
            masked.append(f"    {t} = np.where(mask, {raw}, {prev})")
            temps[("p", dst)] = t
        else:
            if opcode is Opcode.SELP:
                pred = temps.get(("p", inst.pred_src), f"P[{inst.pred_src}]")
                a = _operand_expr(inst.srcs[0], temps, consts)
                b = _operand_expr(inst.srcs[1], temps, consts)
                raw = f"np.where({pred}, {a}, {b})"
            else:
                fname = f"F{i}"
                consts[fname] = _RESULT_OPS[opcode]
                args = ", ".join(_operand_expr(src, temps, consts)
                                 for src in inst.srcs)
                if len(inst.srcs) == 1:
                    args += ","
                raw = f"{fname}(({args}))"
            dst = inst.dst.value
            prev = temps.get(("r", dst), f"R[{dst}]")
            full.append(f"    {t} = {raw}")
            masked.append(f"    {t} = np.where(mask, {raw}, {prev})")
            temps[("r", dst)] = t
        full.append(f"    rows[{pc}] = {t}")
        masked.append(f"    rows[{pc}] = {t}")
    ns: Dict[str, object] = {"np": np, "_i64": np.int64, "_u32": np.uint32}
    ns.update(consts)
    exec("\n".join(full) + "\n\n" + "\n".join(masked), ns)
    return ns["seg_full"], ns["seg_masked"]


def _make_eval(inst: Instruction) -> Callable:
    opcode = inst.opcode
    if opcode in _RESULT_OPS:
        ev = _make_alu_eval(inst)
    elif opcode is Opcode.SELP:
        ev = _make_selp_eval(inst)
    elif opcode in (Opcode.SETP, Opcode.FSETP):
        ev = _make_setp_eval(inst)
    elif inst.op_class is OpClass.LOAD:
        ev = _make_load_eval(inst)
    else:
        ev = _make_store_eval(inst)
    if inst.guard is None:
        return ev
    # Guarded singleton: the effective mask is only known at issue, so the
    # evaluator always produces the *raw* full-width row (as the kernels
    # do) and the step wrapper masks the commit.
    return lambda ov, pv, warp, mask: ev(ov, pv, warp, None)


# ------------------------------------------------------------------- steps
#
# A step is the timing half of one issued instruction.  Ordering is an exact
# transcription of the per-instruction path (counters, scoreboard, advance,
# commit, bank reads, FU/memory arbitration, event push) — see the module
# docstring for the contract.  ``last`` steps use the full ``warp.advance()``
# (the next pc is a leader / program end and may reconverge or exit); inner
# steps use a bare ``pc += 1`` (provably equivalent inside a block).

def _read_sched(inst: Instruction, ngroups: int):
    """Compile-time constants for the inlined bank-read arbitration.

    ``(slot << 8) % ngroups == 0`` whenever ``ngroups`` divides 256, so the
    bank group of key ``(slot << 8) | reg`` is just ``reg % ngroups`` and can
    be precomputed per instruction.
    """
    groups = tuple(reg % ngroups for reg in inst.bank_regs)
    return groups, len(groups), len(groups) * _BANKS


def _make_alu_step(inst: Instruction, digest: Digest, last: bool) -> Callable:
    front, sp_latency, sfu_latency, nsp, ngroups = digest
    groups, nreads, bank_add = _read_sched(inst, ngroups)
    dst = inst.dst.value
    cls_value = inst.op_class.value
    guarded = inst.guard is not None
    sfu = inst.op_class is OpClass.SFU

    def step(rt, warp, slot, cycle, row, lanes, mask):
        # Guarded singletons never batch (no entry sums — dynamic lanes).
        batch = rt.batch and not guarded
        if not batch:
            rt.c_issued.value += 1
            rt.c_backend.value += 1
            b = rt.by_buckets
            b[cls_value] = b.get(cls_value, 0) + 1
        warp.last_issue_cycle = cycle
        rt.pend_regs[slot].add(dst)
        warp.inflight += 1
        if last:
            warp.advance()
        else:
            warp.stack[-1].pc += 1
        warp.registers[dst][:] = row
        start = cycle + front
        ready = start
        retries = 0
        read_free = rt.read_free
        for group in groups:
            busy = read_free[group]
            if busy < start:
                busy = start
            else:
                retries += busy - start
            read_free[group] = busy + 1
            if busy >= ready:
                ready = busy + 1
        if nreads and not batch:
            rt.rd_req.value += nreads
            rt.rd_bank.value += bank_add
        if retries:
            rt.rd_retr.value += retries
        if sfu:
            ex = rt.ex
            fu = ex.sfu_free
            if fu < ready:
                fu = ready
            ex.sfu_free = fu + 1
            if not batch:
                rt.c_sfu.value += 1
                rt.c_sfu_lanes.value += lanes
            writeback = fu + sfu_latency
        else:
            sp_free = rt.sp_free
            pipe = 0
            fu = sp_free[0]
            for i in range(1, nsp):
                if sp_free[i] < fu:
                    pipe, fu = i, sp_free[i]
            if fu < ready:
                fu = ready
            sp_free[pipe] = fu + 1
            if not batch:
                rt.c_sp.value += 1
                rt.c_sp_lanes.value += lanes
            writeback = fu + sp_latency
        # Event push, inlined (``SMCore._schedule`` minus the call hop).
        core = rt.core
        core._event_seq = seq = core._event_seq + 1
        heappush(rt.events, (writeback if writeback > cycle else cycle + 1,
                             seq, EV_SB_WRITEBACK, (warp, inst, writeback)))
    return step


def _make_setp_step(inst: Instruction, digest: Digest, last: bool) -> Callable:
    front, sp_latency, _, nsp, ngroups = digest
    groups, nreads, bank_add = _read_sched(inst, ngroups)
    dst = inst.dst.value
    cls_value = inst.op_class.value
    guarded = inst.guard is not None

    def step(rt, warp, slot, cycle, row, lanes, mask):
        # Guarded singletons never batch (no entry sums — dynamic lanes).
        batch = rt.batch and not guarded
        if not batch:
            rt.c_issued.value += 1
            rt.c_backend.value += 1
            b = rt.by_buckets
            b[cls_value] = b.get(cls_value, 0) + 1
        warp.last_issue_cycle = cycle
        rt.pend_preds[slot].add(dst)
        warp.inflight += 1
        if last:
            warp.advance()
        else:
            warp.stack[-1].pc += 1
        warp.predicates[dst][:] = row
        start = cycle + front
        ready = start
        retries = 0
        read_free = rt.read_free
        for group in groups:
            busy = read_free[group]
            if busy < start:
                busy = start
            else:
                retries += busy - start
            read_free[group] = busy + 1
            if busy >= ready:
                ready = busy + 1
        if nreads and not batch:
            rt.rd_req.value += nreads
            rt.rd_bank.value += bank_add
        if retries:
            rt.rd_retr.value += retries
        sp_free = rt.sp_free
        pipe = 0
        fu = sp_free[0]
        for i in range(1, nsp):
            if sp_free[i] < fu:
                pipe, fu = i, sp_free[i]
        if fu < ready:
            fu = ready
        sp_free[pipe] = fu + 1
        if not batch:
            rt.c_sp.value += 1
            rt.c_sp_lanes.value += lanes
        writeback = fu + sp_latency
        core = rt.core
        core._event_seq = seq = core._event_seq + 1
        heappush(rt.events, (writeback if writeback > cycle else cycle + 1,
                             seq, EV_SB_WRITEBACK, (warp, inst, writeback)))
    return step


def _make_load_step(inst: Instruction, digest: Digest, last: bool) -> Callable:
    front, _, _, _, ngroups = digest
    groups, nreads, bank_add = _read_sched(inst, ngroups)
    dst = inst.dst.value
    cls_value = inst.op_class.value
    guarded = inst.guard is not None
    space = inst.space

    def step(rt, warp, slot, cycle, row, lanes, mask):
        # Guarded singletons never batch (no entry sums — dynamic lanes).
        batch = rt.batch and not guarded
        if not batch:
            rt.c_issued.value += 1
            rt.c_backend.value += 1
            b = rt.by_buckets
            b[cls_value] = b.get(cls_value, 0) + 1
        warp.last_issue_cycle = cycle
        rt.pend_regs[slot].add(dst)
        warp.inflight += 1
        if last:
            warp.advance()
        else:
            warp.stack[-1].pc += 1
        start = cycle + front
        ready = start
        retries = 0
        read_free = rt.read_free
        for group in groups:
            busy = read_free[group]
            if busy < start:
                busy = start
            else:
                retries += busy - start
            read_free[group] = busy + 1
            if busy >= ready:
                ready = busy + 1
        if nreads and not batch:
            rt.rd_req.value += nreads
            rt.rd_bank.value += bank_add
        if retries:
            rt.rd_retr.value += retries
        ex = rt.ex
        fu = ex.mem_free
        if fu < ready:
            fu = ready
        ex.mem_free = fu + 1
        if not batch:
            rt.c_mem.value += 1
        access_mask = rt.full_mask if mask is None else mask
        result = rt.port_access(space, warp.block.block_id, row, access_mask,
                                fu, False, None)
        if mask is None:
            warp.registers[dst][:] = result.values
        else:
            np.copyto(warp.registers[dst], result.values, where=mask)
        ready = result.ready_cycle
        core = rt.core
        core._event_seq = seq = core._event_seq + 1
        heappush(rt.events, (ready if ready > cycle else cycle + 1,
                             seq, EV_SB_WRITEBACK, (warp, inst, ready)))
    return step


def _make_store_step(inst: Instruction, digest: Digest, last: bool) -> Callable:
    front, _, _, _, ngroups = digest
    groups, nreads, bank_add = _read_sched(inst, ngroups)
    cls_value = inst.op_class.value
    guarded = inst.guard is not None
    space = inst.space
    shared = space is MemSpace.SHARED
    glob = space is MemSpace.GLOBAL

    def step(rt, warp, slot, cycle, row, lanes, mask):
        # Guarded singletons never batch (no entry sums — dynamic lanes).
        batch = rt.batch and not guarded
        if not batch:
            rt.c_issued.value += 1
            rt.c_backend.value += 1
            b = rt.by_buckets
            b[cls_value] = b.get(cls_value, 0) + 1
        warp.last_issue_cycle = cycle
        # Store flags for load reuse (Section VI-A), as in ``_issue``.
        if shared:
            warp.shared_store_flag = True
        elif glob:
            warp.global_store_flag = True
        warp.inflight += 1
        if last:
            warp.advance()
        else:
            warp.stack[-1].pc += 1
        start = cycle + front
        ready = start
        retries = 0
        read_free = rt.read_free
        for group in groups:
            busy = read_free[group]
            if busy < start:
                busy = start
            else:
                retries += busy - start
            read_free[group] = busy + 1
            if busy >= ready:
                ready = busy + 1
        if nreads and not batch:
            rt.rd_req.value += nreads
            rt.rd_bank.value += bank_add
        if retries:
            rt.rd_retr.value += retries
        ex = rt.ex
        fu = ex.mem_free
        if fu < ready:
            fu = ready
        ex.mem_free = fu + 1
        if not batch:
            rt.c_mem.value += 1
            rt.c_store.value += 1
        access_mask = rt.full_mask if mask is None else mask
        result = rt.port_access(space, warp.block.block_id, row[0],
                                access_mask, fu, True, row[1])
        ready = result.ready_cycle
        core = rt.core
        core._event_seq = seq = core._event_seq + 1
        heappush(rt.events, (ready if ready > cycle else cycle + 1,
                             seq, EV_SB_WRITEBACK, (warp, inst, ready)))
    return step


def _guard_wrap(inst: Instruction, inner: Callable) -> Callable:
    """Wrap a singleton-block step for a guarded instruction.

    The effective mask — entry mask AND guard predicate, exactly
    ``Warp.guard_mask`` — and its lane count are computed at issue, before
    the delegated step's ``advance`` can pop the stack entry.  Value- and
    predicate-writing steps commit with a direct full-width assignment, so
    the raw row is pre-blended with the previous destination here (the
    same ``np.where`` trick masked block entries use)."""
    guard_index = inst.guard.index
    negated = inst.guard.negated
    cls = inst.op_class
    if cls in (OpClass.LOAD, OpClass.STORE):
        def step(rt, warp, slot, cycle, row, lanes, mask):
            pred = warp.predicates[guard_index]
            gmask = warp.stack[-1].mask & (~pred if negated else pred)
            inner(rt, warp, slot, cycle, row,
                  max(int(np.count_nonzero(gmask)), 1), gmask)
        return step
    dst = inst.dst.value
    bank = "predicates" if cls is OpClass.PRED else "registers"

    def step(rt, warp, slot, cycle, row, lanes, mask):
        pred = warp.predicates[guard_index]
        gmask = warp.stack[-1].mask & (~pred if negated else pred)
        blended = np.where(gmask, row, getattr(warp, bank)[dst])
        inner(rt, warp, slot, cycle, blended,
              max(int(np.count_nonzero(gmask)), 1), gmask)
    return step


def _make_step(inst: Instruction, digest: Digest, last: bool) -> Callable:
    cls = inst.op_class
    if cls is OpClass.LOAD:
        inner = _make_load_step(inst, digest, last)
    elif cls is OpClass.STORE:
        inner = _make_store_step(inst, digest, last)
    elif cls is OpClass.PRED:
        inner = _make_setp_step(inst, digest, last)
    else:
        inner = _make_alu_step(inst, digest, last)
    if inst.guard is None:
        return inner
    return _guard_wrap(inst, inner)


# ----------------------------------------------------------- compiled block

def _block_sums(insts) -> Optional[tuple]:
    """Static per-block counter contributions, applied once at block entry
    when the runtime batches (``SuperblockRuntime.batch``).  Everything a
    step would add that does not depend on dynamic contention: instruction
    and class counts, bank-read requests, and the per-FU instruction
    counts (lane counters scale these by the entry lane count).  ``None``
    for guarded singletons, whose lane count is only known at issue."""
    if any(inst.guard is not None for inst in insts):
        return None
    by_class: Dict[str, int] = {}
    rd_req = sp_n = sfu_n = mem_n = store_n = 0
    for inst in insts:
        key = inst.op_class.value
        by_class[key] = by_class.get(key, 0) + 1
        rd_req += len(inst.bank_regs)
        cls = inst.op_class
        if cls is OpClass.LOAD:
            mem_n += 1
        elif cls is OpClass.STORE:
            mem_n += 1
            store_n += 1
        elif cls is OpClass.SFU:
            sfu_n += 1
        else:
            sp_n += 1
    return (len(insts), tuple(by_class.items()), rd_req, rd_req * _BANKS,
            sp_n, sfu_n, mem_n, store_n)


class CompiledBlock:
    """One compiled superblock: per-instruction steps plus segment
    evaluators.  Shared by every SM running the same (program, digest)."""

    __slots__ = ("start", "end", "steps", "_evals", "_seg_end", "_seg_fn",
                 "sums")

    def __init__(self, program: Program, start: int, end: int,
                 digest: Digest) -> None:
        self.start = start
        self.end = end
        insts = program.instructions[start:end]
        self.steps = [_make_step(inst, digest, start + i + 1 == end)
                      for i, inst in enumerate(insts)]
        self._evals = [_make_eval(inst) for inst in insts]
        self.sums = _block_sums(insts)
        # Segment ends (block-local, exclusive): split *after* each load,
        # because a load's value is only known once memory is read at issue.
        self._seg_end = [0] * len(insts)
        seg_start = 0
        for i, inst in enumerate(insts):
            if inst.op_class is OpClass.LOAD:
                for j in range(seg_start, i + 1):
                    self._seg_end[j] = i + 1
                seg_start = i + 1
        for j in range(seg_start, len(insts)):
            self._seg_end[j] = len(insts)
        #: Fused per-segment evaluators keyed by segment-start index
        #: (codegen; see :func:`_codegen_segment`).  Guarded singletons keep
        #: the per-instruction path — their effective mask is applied by the
        #: guard wrapper at issue — as does mid-segment entry after a
        #: checkpoint restore.
        self._seg_fn: Dict[int, tuple] = {}
        if all(inst.guard is None for inst in insts):
            i0 = 0
            while i0 < len(insts):
                i1 = self._seg_end[i0]
                self._seg_fn[i0] = _codegen_segment(start, insts, i0, i1)
                i0 = i1

    def eval_rows(self, warp, idx: int, mask: Optional[np.ndarray],
                  rows: Dict[int, object]) -> None:
        """Evaluate rows for block-local indices ``idx .. segment end`` into
        *rows* (keyed by absolute pc).  ``mask is None`` means a full entry
        mask; otherwise rows are blended into committed values (see module
        docstring)."""
        fns = self._seg_fn.get(idx)
        if fns is not None:
            if mask is None:
                fns[0](warp, rows)
            else:
                fns[1](warp, rows, mask)
            return
        overlay: Dict[int, np.ndarray] = {}
        pred_overlay: Dict[int, np.ndarray] = {}
        start = self.start
        for i in range(idx, self._seg_end[idx]):
            rows[start + i] = self._evals[i](overlay, pred_overlay, warp, mask)


def compiled_table(program: Program, digest: Digest) -> list:
    """The per-pc dispatch table for (program, digest), built once and
    shared across SMs and runs.  Tables hang off the program instance
    (keyed by *identity*, so equal but distinct programs never alias, and
    the cache dies with the program)."""
    per_program: Optional[Dict[Digest, list]] = getattr(
        program, "_superblock_tables", None)
    if per_program is None:
        per_program = {}
        program._superblock_tables = per_program
    table = per_program.get(digest)
    if table is None:
        table = [None] * len(program.instructions)
        for start, end in superblock_ranges(program):
            block = CompiledBlock(program, start, end, digest)
            for i in range(start, end):
                table[i] = (block, i - start)
        per_program[digest] = table
    return table


# ----------------------------------------------------------------- runtime

class SuperblockRuntime:
    """Per-SM execution state for the superblock fast path.

    Owns no checkpoint state: pending rows and entry memos are rebuilt
    lazily from live warp state after a restore, and the compiled table is
    re-fetched from the module cache.  The fast path only activates when
    every observer hook is absent (tracer, checker, profiler, stall
    attribution, affine tracking) and WIR probes are off (unit absent or
    quarantined) — otherwise every instruction takes the bit-identical
    per-instruction path.
    """

    def __init__(self, core, execute_stage, front_delay: int) -> None:
        config = core.config
        self.core = core
        self.ex = execute_stage
        self.digest: Digest = (front_delay, config.sp_latency,
                               config.sfu_latency, config.num_sp_pipelines,
                               config.register_bank_groups)
        # The inlined bank arbitration precomputes ``reg % groups`` per
        # instruction, valid only when the slot's high key bits vanish.
        self._bankable = 256 % config.register_bank_groups == 0
        slots = config.max_warps_per_sm
        #: Per-slot pending rows (absolute pc -> row), popped on issue.
        self.rows: List[Dict[int, object]] = [{} for _ in range(slots)]
        #: Per-slot block-entry memo: (block, lane_cost, mask-or-None).
        self.entry: List[Optional[tuple]] = [None] * slots
        #: Lazily refreshed dispatch table (None = needs refresh).
        self.table: Optional[list] = None
        self._off = [None] * len(core.program.instructions)
        #: Entry-batched counters (``CompiledBlock.sums``) are only safe
        #: when nothing can observe half-applied sums: the GPU clears
        #: ``resumable`` for plain runs (no pause, no checkpointing) and
        #: ``_refresh`` additionally requires the WIR unit to be absent
        #: (a quarantine flush may invalidate mid-block).
        self.resumable = True
        self.batch = False

        regfile = core.regfile
        self.read_free = regfile._read_free
        self.write_free = regfile._write_free
        self.ngroups = regfile.num_groups
        self.schedule = core._schedule
        self.pend_regs = core.scoreboard._pending_regs
        self.pend_preds = core.scoreboard._pending_preds
        self.sb_wait = core._sb_wait
        self.sched_of_slot = core._sched_of_slot
        self.instructions = core.program.instructions
        #: Per-pc FU gate for the greedy hint (see ``_FU_CODE``).
        self.fu_code = [_FU_CODE.get(inst.op_class, 3)
                        for inst in self.instructions]
        #: The core's event heap (``SMCore.load_state`` restores it in
        #: place, so the direct reference stays valid across restores);
        #: steps push writeback events on it without the ``_schedule`` hop.
        self.events = core._events
        self.sp_free = execute_stage.sp_free
        self.port_access = core.port.access
        self.full_mask = np.ones(WARP_SIZE, dtype=bool)
        self.full_mask.flags.writeable = False

        counters = core.counters
        self.c_issued = counters.handle("issued")
        # ``load_state`` clears/updates this dict in place, so the direct
        # bucket reference stays valid across checkpoint restores.
        self.by_buckets = counters.handle("issued_by_class").buckets
        self.c_backend = counters.handle("backend_insts")
        self.c_sp = counters.handle("fu_sp_insts")
        self.c_sp_lanes = counters.handle("fu_sp_lanes")
        self.c_sfu = counters.handle("fu_sfu_insts")
        self.c_sfu_lanes = counters.handle("fu_sfu_lanes")
        self.c_mem = counters.handle("mem_insts")
        self.c_store = counters.handle("store_insts")
        rf_counters = regfile.stats._stats
        self.rd_req = rf_counters["read_requests"]
        self.rd_retr = rf_counters["read_retries"]
        self.rd_bank = rf_counters["bank_reads"]
        self.wr_req = rf_counters["write_requests"]
        self.wr_retr = rf_counters["write_retries"]
        self.wr_bank = rf_counters["bank_writes"]

        if core.unit is not None:
            # Reuse-state invalidation hook: a quarantine flush voids every
            # assumption about mid-block probe outcomes, so drop all cached
            # dispatch state and re-decide at the next issue.
            core.unit.on_flush.append(self.invalidate)

    # ------------------------------------------------------------- dispatch

    def _refresh(self) -> list:
        core = self.core
        if (not self._bankable or core.tracer is not None
                or core.checker is not None or core.profiler is not None
                or core.stall is not None or core.affine.enabled
                or (core.unit is not None and not core.wir_quarantined)):
            # Observer attached or WIR probes live: every pc is a probe /
            # observation point, so no superblock forms.
            table = self._off
        else:
            table = compiled_table(core.program, self.digest)
        self.batch = core.unit is None and not self.resumable
        self.table = table
        return table

    def invalidate(self) -> None:
        """Drop all cached dispatch state (quarantine flush hook)."""
        self.table = None
        for rows in self.rows:
            rows.clear()
        for slot in range(len(self.entry)):
            self.entry[slot] = None

    def try_issue(self, slot: int, warp, cycle: int) -> bool:
        """Issue the warp's next instruction through its compiled step.
        Returns False when the pc is not inside a superblock (caller falls
        back to the per-instruction path)."""
        table = self.table
        if table is None:
            table = self._refresh()
        pc = warp.stack[-1].pc
        slotted = table[pc]
        if slotted is None:
            return False
        block, idx = slotted
        state = self.entry[slot]
        if idx == 0 or state is None or state[0] is not block:
            mask = warp.stack[-1].mask
            lanes = int(np.count_nonzero(mask))
            if lanes == WARP_SIZE:
                state = (block, WARP_SIZE, None)
            else:
                state = (block, max(lanes, 1), mask)
            self.entry[slot] = state
            sums = block.sums
            if sums is not None and self.batch:
                # Whole-block static counters, applied once per entry (the
                # per-instruction values are recomputed exactly — integer
                # sums — and a batching run can never cut mid-block).
                n, by_items, rd_req, rd_bank, sp_n, sfu_n, mem_n, store_n = sums
                self.c_issued.value += n
                self.c_backend.value += n
                b = self.by_buckets
                for key, count in by_items:
                    b[key] = b.get(key, 0) + count
                if rd_req:
                    self.rd_req.value += rd_req
                    self.rd_bank.value += rd_bank
                lane_cost = state[1]
                if sp_n:
                    self.c_sp.value += sp_n
                    self.c_sp_lanes.value += sp_n * lane_cost
                if sfu_n:
                    self.c_sfu.value += sfu_n
                    self.c_sfu_lanes.value += sfu_n * lane_cost
                if mem_n:
                    self.c_mem.value += mem_n
                    self.c_store.value += store_n
        rows = self.rows[slot]
        row = rows.pop(pc, None)
        if row is None:
            block.eval_rows(warp, idx, state[2], rows)
            row = rows.pop(pc)
        block.steps[idx](self, warp, slot, cycle, row, state[1], state[2])
        # Post-issue hazard memo: the step advanced the pc and registered
        # its writes, so when the warp's next instruction is already
        # scoreboard-blocked, mark ``sb_wait`` now — the next scheduler
        # scan would conclude exactly this, and the retire-side release
        # re-checks the hazard before clearing the flag.
        npc = warp.stack[-1].pc
        nxt = self.instructions[npc]
        regs = self.pend_regs[slot]
        preds = self.pend_preds[slot]
        if ((regs and not regs.isdisjoint(nxt.sb_regs))
                or (preds and not preds.isdisjoint(nxt.sb_preds))):
            self.sb_wait[slot] = True
            self.sched_of_slot[slot].scannable -= 1
        else:
            # Greedy hint: this slot is the scheduler's GTO greedy warp and
            # its next instruction is hazard-free, so the only issue gate
            # left at cycle+1 is FU availability — every warp flag and the
            # control-hazard window are provably unchanged until then.  The
            # next tick re-checks just that gate and skips arbitration.
            sched = self.sched_of_slot[slot]
            sched.hint_cycle = cycle + 1
            sched.hint_slot = slot
            sched.hint_fu = self.fu_code[npc]
        return True

    def on_writeback(self, warp, inst, ready: int) -> None:
        """EV_SB_WRITEBACK handler: the Base-path allocate/verify stage
        (plain register write, then retire) with the bank write and the
        retire-event push inlined."""
        if inst.writes_register:
            group = ((warp.warp_slot << 8) | inst.dst.value) % self.ngroups
            write_free = self.write_free
            busy = write_free[group]
            if busy < ready:
                busy = ready
            write_free[group] = busy + 1
            self.wr_req.value += 1
            self.wr_retr.value += busy - ready
            self.wr_bank.value += _BANKS
            ready = busy + 1
        core = self.core
        floor = core.cycle + 1
        core._event_seq = seq = core._event_seq + 1
        heappush(self.events, (ready if ready > floor else floor,
                               seq, EV_RETIRE, (warp, inst)))
