"""Per-warp architectural state and the SIMT reconvergence stack.

Each warp holds its logical register values (the functional state), its
predicate registers, the post-dominator reconvergence stack, barrier status,
and the per-warp store flags the load-reuse mechanism consults
(Section VI-A of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.ckpt.codec import decode_array, encode_array
from repro.isa.instruction import NUM_LOGICAL_REGS, NUM_PRED_REGS
from repro.isa.program import EXIT_PC, Program
from repro.sim.grid import WARP_SIZE, BlockDescriptor


@dataclass
class StackEntry:
    """One SIMT stack level: an active mask executing toward a reconvergence pc."""

    mask: np.ndarray   # bool (32,)
    pc: int
    reconv_pc: int


class Warp:
    """One warp's architectural and control state."""

    def __init__(
        self,
        warp_slot: int,
        block: BlockDescriptor,
        warp_in_block: int,
        program: Program,
    ) -> None:
        self.warp_slot = warp_slot            # hardware warp slot in the SM
        self.block = block
        self.warp_in_block = warp_in_block
        self.program = program

        thread_ids = block.warp_thread_indices(warp_in_block)
        valid = thread_ids < block.num_threads
        tid_x, tid_y, tid_z = block.ntid.unflatten(np.minimum(
            thread_ids, block.num_threads - 1
        ))
        self.tid = (
            tid_x.astype(np.uint32),
            tid_y.astype(np.uint32),
            tid_z.astype(np.uint32),
        )
        self.lane_ids = np.arange(WARP_SIZE, dtype=np.uint32)

        # Functional state.
        self.registers = np.zeros((NUM_LOGICAL_REGS, WARP_SIZE), dtype=np.uint32)
        self.predicates = np.zeros((NUM_PRED_REGS, WARP_SIZE), dtype=bool)

        # SIMT control state.
        self.stack: List[StackEntry] = [
            StackEntry(mask=valid.copy(), pc=0, reconv_pc=EXIT_PC)
        ]
        self.exited = not valid.any()

        # Synchronisation state.
        self.at_barrier = False
        #: Number of barriers this warp's block has passed (load-reuse scope).
        self.barrier_count = 0
        #: Store flags (Section VI-A): set on shared/global store, cleared at
        #: the next barrier; while set, loads in this warp must not reuse.
        self.shared_store_flag = False
        self.global_store_flag = False

        # Scheduling bookkeeping.
        self.inflight = 0              # issued but not retired instructions
        self.last_issue_cycle = -1

    # --- checkpointing ------------------------------------------------------

    def state_dict(self) -> dict:
        """Plain-data snapshot (identity + functional + control state).

        ``tid``/``lane_ids`` are derived from ``(block, warp_in_block)`` at
        construction and never mutate, so only the identity is stored.
        """
        return {
            "slot": self.warp_slot,
            "block_id": self.block.block_id,
            "warp_in_block": self.warp_in_block,
            "registers": encode_array(self.registers),
            "predicates": encode_array(self.predicates),
            "stack": [
                {"mask": encode_array(e.mask), "pc": e.pc,
                 "reconv_pc": e.reconv_pc}
                for e in self.stack
            ],
            "exited": self.exited,
            "at_barrier": self.at_barrier,
            "barrier_count": self.barrier_count,
            "shared_store_flag": self.shared_store_flag,
            "global_store_flag": self.global_store_flag,
            "inflight": self.inflight,
            "last_issue_cycle": self.last_issue_cycle,
        }

    def load_state(self, state: dict) -> None:
        """Restore a snapshot onto a freshly constructed warp (same
        ``(slot, block, warp_in_block, program)`` identity)."""
        self.registers[:] = decode_array(state["registers"])
        self.predicates[:] = decode_array(state["predicates"])
        self.stack = [
            StackEntry(mask=decode_array(e["mask"]), pc=e["pc"],
                       reconv_pc=e["reconv_pc"])
            for e in state["stack"]
        ]
        self.exited = state["exited"]
        self.at_barrier = state["at_barrier"]
        self.barrier_count = state["barrier_count"]
        self.shared_store_flag = state["shared_store_flag"]
        self.global_store_flag = state["global_store_flag"]
        self.inflight = state["inflight"]
        self.last_issue_cycle = state["last_issue_cycle"]

    # --- control flow -----------------------------------------------------

    @property
    def pc(self) -> int:
        return self.stack[-1].pc

    @property
    def active_mask(self) -> np.ndarray:
        return self.stack[-1].mask

    @property
    def divergent(self) -> bool:
        """Whether any originally-valid lane is inactive at the top of stack."""
        return len(self.stack) > 1 or not self.stack[-1].mask.all()

    def next_instruction(self):
        if self.exited:
            return None
        return self.program[self.pc]

    def advance(self) -> None:
        """Move the top-of-stack past the instruction just executed."""
        top = self.stack[-1]
        top.pc += 1
        self._reconverge()

    def _reconverge(self) -> None:
        while len(self.stack) > 1 and self.stack[-1].pc == self.stack[-1].reconv_pc:
            self.stack.pop()
        if self.stack[-1].pc >= len(self.program):
            self.exited = True

    def resolve_branch(self, branch_pc: int, taken_mask: np.ndarray, target: int) -> bool:
        """Resolve the (possibly divergent) branch at *branch_pc*.

        ``taken_mask`` must already be limited to the current active mask.
        Returns ``True`` if the branch diverged, in which case the taken and
        fall-through fragments are pushed on the SIMT stack with the
        post-dominator pc as their reconvergence point.
        """
        top = self.stack[-1]
        not_taken = top.mask & ~taken_mask
        if not taken_mask.any():
            top.pc = branch_pc + 1
            self._reconverge()
            return False
        if not not_taken.any():
            top.pc = target
            self._reconverge()
            return False
        reconv_pc = self.program.reconvergence_pc(branch_pc)
        if reconv_pc == EXIT_PC:
            reconv_pc = len(self.program)
        # Current entry becomes the reconvergence continuation; the two
        # fragments are pushed (taken path executes first).
        top.pc = reconv_pc
        self.stack.append(
            StackEntry(mask=not_taken.copy(), pc=branch_pc + 1, reconv_pc=reconv_pc)
        )
        self.stack.append(
            StackEntry(mask=taken_mask.copy(), pc=target, reconv_pc=reconv_pc)
        )
        self._reconverge()
        return True

    def execute_exit(self, exit_mask: np.ndarray) -> None:
        """Retire lanes in *exit_mask* permanently from every stack level."""
        for entry in self.stack:
            entry.mask &= ~exit_mask
        # Drop empty levels from the top; if any were dropped the new top
        # resumes at its own pc and must not be advanced.
        popped = False
        while len(self.stack) > 1 and not self.stack[-1].mask.any():
            self.stack.pop()
            popped = True
        if not self.stack[-1].mask.any():
            self.exited = True
        elif not popped:
            self.advance()

    # --- register access ---------------------------------------------------

    def read_reg(self, index: int) -> np.ndarray:
        return self.registers[index]

    def write_reg(self, index: int, values: np.ndarray, mask: np.ndarray) -> None:
        np.copyto(self.registers[index], values.astype(np.uint32), where=mask)

    def read_pred(self, index: int) -> np.ndarray:
        return self.predicates[index]

    def write_pred(self, index: int, values: np.ndarray, mask: np.ndarray) -> None:
        np.copyto(self.predicates[index], values, where=mask)

    def guard_mask(self, guard) -> np.ndarray:
        """Active mask after applying an optional predicate guard."""
        mask = self.active_mask.copy()
        if guard is not None:
            pred = self.predicates[guard.index]
            mask &= ~pred if guard.negated else pred
        return mask

    def special_value(self, name: str) -> np.ndarray:
        """Resolve a special register to its per-lane values."""
        block = self.block
        if name == "%tid.x":
            return self.tid[0]
        if name == "%tid.y":
            return self.tid[1]
        if name == "%tid.z":
            return self.tid[2]
        if name == "%ntid.x":
            return np.full(WARP_SIZE, block.ntid.x, dtype=np.uint32)
        if name == "%ntid.y":
            return np.full(WARP_SIZE, block.ntid.y, dtype=np.uint32)
        if name == "%ntid.z":
            return np.full(WARP_SIZE, block.ntid.z, dtype=np.uint32)
        if name == "%ctaid.x":
            return np.full(WARP_SIZE, block.ctaid[0], dtype=np.uint32)
        if name == "%ctaid.y":
            return np.full(WARP_SIZE, block.ctaid[1], dtype=np.uint32)
        if name == "%ctaid.z":
            return np.full(WARP_SIZE, block.ctaid[2], dtype=np.uint32)
        if name == "%nctaid.x":
            return np.full(WARP_SIZE, block.nctaid.x, dtype=np.uint32)
        if name == "%nctaid.y":
            return np.full(WARP_SIZE, block.nctaid.y, dtype=np.uint32)
        if name == "%nctaid.z":
            return np.full(WARP_SIZE, block.nctaid.z, dtype=np.uint32)
        if name == "%laneid":
            return self.lane_ids
        if name == "%warpid":
            return np.full(WARP_SIZE, self.warp_in_block, dtype=np.uint32)
        if name == "%smid":
            return np.zeros(WARP_SIZE, dtype=np.uint32)
        raise ValueError(f"unknown special register {name}")
