"""Unified statistics registry (see :mod:`repro.stats.registry`)."""

from repro.stats.registry import (
    Counter,
    Histogram,
    StatGroup,
    StatLookupError,
)
from repro.stats.serialize import dataclass_from_dict, dataclass_to_dict

__all__ = [
    "Counter",
    "Histogram",
    "StatGroup",
    "StatLookupError",
    "dataclass_from_dict",
    "dataclass_to_dict",
]
