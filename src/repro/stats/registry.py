"""Hierarchical statistics registry.

Every simulated component owns a :class:`StatGroup` instead of an ad-hoc
counter dataclass; the SM core and GPU adopt those groups into one tree, so
a whole run's measurements live under a single root with dotted-path access
(``sm0.regfile.read_retries``), structural merging (sum SMs into one
group), and lossless JSON (de)serialization.

Design notes
------------
* **Attribute ergonomics.** Component code keeps writing
  ``stats.hits += 1`` and tests keep asserting ``stats.hits == 1``:
  ``__getattr__`` resolves a counter name to its *value* and
  ``__setattr__`` stores back into the counter.  Subclasses declare their
  counters in ``COUNTERS`` (and bucketed counts in ``HISTOGRAMS``) and may
  add derived ``@property`` helpers, which take precedence as usual.
* **Composition over registration calls.**  A component builds its group
  standalone (tests construct a bare :class:`~repro.sim.memory.cache.Cache`
  and poke ``cache.stats`` directly); containers later :meth:`~StatGroup.adopt`
  it under a path.  The same object is visible from both sides — there is
  no copying, so stats are live until the run ends.
* **Serialization.**  Counters serialize as JSON numbers and histograms as
  objects, which keeps the wire format human-readable while staying
  lossless (ints stay ints, floats round-trip exactly).  Deserialization
  produces plain :class:`StatGroup` nodes — the typed subclasses only add
  derived properties, never state, so nothing is lost.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

Number = Union[int, float]


class StatLookupError(KeyError):
    """A dotted-path lookup named a stat or group that does not exist."""


class Counter:
    """One named scalar statistic (int until a float is added)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: Number = 0) -> None:
        self.name = name
        self.value = value

    def add(self, amount: Number = 1) -> None:
        self.value += amount

    def set(self, value: Number) -> None:
        self.value = value

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Histogram:
    """Bucketed counts (e.g. issued instructions by opcode class)."""

    __slots__ = ("name", "buckets")

    def __init__(self, name: str, buckets: Optional[Dict[str, Number]] = None) -> None:
        self.name = name
        self.buckets: Dict[str, Number] = dict(buckets) if buckets else {}

    def increment(self, bucket: str, amount: Number = 1) -> None:
        self.buckets[bucket] = self.buckets.get(bucket, 0) + amount

    def merge_from(self, other: "Histogram") -> None:
        for bucket, count in other.buckets.items():
            self.increment(bucket, count)

    # Dict-style read access so existing ``issued_by_class.get(...)``-style
    # consumers keep working.
    def get(self, bucket: str, default: Number = 0) -> Number:
        return self.buckets.get(bucket, default)

    def __getitem__(self, bucket: str) -> Number:
        return self.buckets[bucket]

    def __contains__(self, bucket: str) -> bool:
        return bucket in self.buckets

    def __iter__(self) -> Iterator[str]:
        return iter(self.buckets)

    def __len__(self) -> int:
        return len(self.buckets)

    def items(self):
        return self.buckets.items()

    def total(self) -> Number:
        return sum(self.buckets.values())

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Histogram):
            return self.buckets == other.buckets
        if isinstance(other, dict):
            return self.buckets == other
        return NotImplemented

    def __repr__(self) -> str:
        return f"Histogram({self.name}={self.buckets})"


class StatGroup:
    """A node of the stats tree: named counters/histograms plus child groups.

    Subclasses declare their schema::

        class CacheStats(StatGroup):
            COUNTERS = ("accesses", "hits", "misses")

    and instances behave like the old dataclasses (``stats.hits += 1``)
    while also being tree nodes (``root.lookup("sm0.l1d.hits")``).
    """

    #: Scalar stats created at construction.
    COUNTERS: Tuple[str, ...] = ()
    #: Bucketed stats created at construction.
    HISTOGRAMS: Tuple[str, ...] = ()

    def __init__(self, name: str = "stats", **initial: Number) -> None:
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "_stats", {})
        object.__setattr__(self, "_children", {})
        for field in self.COUNTERS:
            self._stats[field] = Counter(field, initial.pop(field, 0))
        for field in self.HISTOGRAMS:
            self._stats[field] = Histogram(field, initial.pop(field, None))
        if initial:
            raise TypeError(
                f"unknown stat fields for {type(self).__name__}: "
                f"{sorted(initial)}"
            )

    # ------------------------------------------------------------- attributes

    def __getattr__(self, key: str):
        # Only reached when normal attribute lookup fails (so methods and
        # @property helpers on subclasses win).
        stats = object.__getattribute__(self, "_stats")
        stat = stats.get(key)
        if isinstance(stat, Counter):
            return stat.value
        if stat is not None:
            return stat
        child = object.__getattribute__(self, "_children").get(key)
        if child is not None:
            return child
        raise AttributeError(
            f"{type(self).__name__} {self.name!r} has no stat {key!r}"
        )

    def __setattr__(self, key: str, value) -> None:
        stats = self.__dict__.get("_stats")
        if stats is not None and isinstance(stats.get(key), Counter):
            stats[key].value = value
            return
        object.__setattr__(self, key, value)

    # ------------------------------------------------------------ registration

    def add_counter(self, name: str, value: Number = 0) -> Counter:
        """Create (or fetch) a counter on this node."""
        stat = self._stats.get(name)
        if stat is None:
            stat = Counter(name, value)
            self._stats[name] = stat
        elif not isinstance(stat, Counter):
            raise TypeError(f"stat {name!r} exists and is not a counter")
        return stat

    def add_histogram(self, name: str) -> Histogram:
        stat = self._stats.get(name)
        if stat is None:
            stat = Histogram(name)
            self._stats[name] = stat
        elif not isinstance(stat, Histogram):
            raise TypeError(f"stat {name!r} exists and is not a histogram")
        return stat

    def handle(self, name: str) -> Union[Counter, Histogram]:
        """Raw :class:`Counter` / :class:`Histogram` object for *name*.

        The one supported way to preload stat objects for hot paths
        (``handle.value += 1`` skips the attribute magic of
        :meth:`__getattr__` / :meth:`__setattr__` while updating the same
        object the registry reports).  Raises :class:`StatLookupError` for
        unknown names instead of silently minting a new counter — a
        preloaded handle must alias a declared stat, not shadow one.
        """
        stat = self._stats.get(name)
        if stat is None:
            available = ", ".join(sorted(self._stats)) or "(none)"
            raise StatLookupError(
                f"no stat {name!r} on group {self.name!r}; available: "
                f"{available}")
        return stat

    def adopt(self, child: "StatGroup", name: Optional[str] = None) -> "StatGroup":
        """Attach an existing group as a child (shared, not copied)."""
        key = name if name is not None else child.name
        if key in self._stats:
            raise ValueError(f"{key!r} already names a stat on {self.name!r}")
        self._children[key] = child
        return child

    def group(self, name: str) -> "StatGroup":
        """Fetch (or create) a plain child group."""
        child = self._children.get(name)
        if child is None:
            child = StatGroup(name)
            self._children[name] = child
        return child

    # ----------------------------------------------------------------- access

    @property
    def children(self) -> Dict[str, "StatGroup"]:
        return dict(self._children)

    @property
    def stats(self) -> Dict[str, Union[Counter, Histogram]]:
        return dict(self._stats)

    def counters(self) -> Dict[str, Number]:
        """Scalar stats of this node as a plain ``{name: value}`` dict."""
        return {
            name: stat.value
            for name, stat in self._stats.items()
            if isinstance(stat, Counter)
        }

    def lookup(self, path: str):
        """Resolve a dotted path to a counter value, histogram, or group.

        ``root.lookup("sm0.regfile.read_retries")`` returns the counter's
        value; a path ending on a group returns the group.  Raises
        :class:`StatLookupError` naming the available keys on failure.
        """
        node: StatGroup = self
        parts = path.split(".")
        for i, part in enumerate(parts):
            is_leaf = i == len(parts) - 1
            stat = node._stats.get(part)
            if stat is not None:
                if not is_leaf:
                    raise StatLookupError(
                        f"{'.'.join(parts[:i + 1])!r} is a stat, not a group "
                        f"(cannot descend into {'.'.join(parts)!r})"
                    )
                return stat.value if isinstance(stat, Counter) else stat
            child = node._children.get(part)
            if child is None:
                available = sorted(node._stats) + sorted(node._children)
                raise StatLookupError(
                    f"no stat or group {part!r} under "
                    f"{'.'.join(parts[:i]) or node.name!r}; available: "
                    f"{', '.join(available) or '(none)'}"
                )
            node = child
        return node

    def flat(self, prefix: str = "") -> Dict[str, Number]:
        """All counters (and histogram buckets) as dotted-path -> value."""
        out: Dict[str, Number] = {}
        for name, stat in self._stats.items():
            path = f"{prefix}{name}"
            if isinstance(stat, Counter):
                out[path] = stat.value
            else:
                for bucket, count in stat.buckets.items():
                    out[f"{path}.{bucket}"] = count
        for name, child in self._children.items():
            out.update(child.flat(prefix=f"{prefix}{name}."))
        return out

    def walk(self, prefix: str = "") -> Iterator[Tuple[str, "StatGroup"]]:
        """Yield ``(dotted_path, group)`` for this node and all descendants."""
        yield prefix.rstrip("."), self
        for name, child in self._children.items():
            yield from child.walk(prefix=f"{prefix}{name}.")

    # ---------------------------------------------------------------- merging

    def merge_from(self, other: "StatGroup") -> "StatGroup":
        """Add *other*'s stats into this node, recursively.

        Stats/children missing on this node are created, so merging typed
        groups into a plain accumulator works; mismatched stat kinds raise.
        Returns ``self`` for chaining.
        """
        for name, stat in other._stats.items():
            if isinstance(stat, Counter):
                self.add_counter(name).add(stat.value)
            else:
                self.add_histogram(name).merge_from(stat)
        for name, child in other._children.items():
            mine = self._children.get(name)
            if mine is None:
                mine = StatGroup(name)
                self._children[name] = mine
            mine.merge_from(child)
        return self

    @classmethod
    def merged(cls, groups: Iterable["StatGroup"], name: str = "merged") -> "StatGroup":
        """A fresh plain group holding the element-wise sum of *groups*."""
        out = StatGroup(name)
        for group in groups:
            out.merge_from(group)
        return out

    # ---------------------------------------------------------- serialization

    def to_dict(self) -> Dict:
        """Lossless plain-data form (counters as numbers, histograms as
        objects, children nested under ``"groups"``)."""
        out: Dict = {}
        stats: Dict = {}
        for name, stat in self._stats.items():
            stats[name] = (
                stat.value if isinstance(stat, Counter) else dict(stat.buckets)
            )
        if stats:
            out["stats"] = stats
        if self._children:
            out["groups"] = {
                name: child.to_dict() for name, child in self._children.items()
            }
        return out

    @classmethod
    def from_dict(cls, data: Dict, name: str = "stats") -> "StatGroup":
        """Rebuild a (plain) tree produced by :meth:`to_dict`."""
        group = StatGroup(name)
        for key, value in data.get("stats", {}).items():
            if isinstance(value, dict):
                group.add_histogram(key).buckets.update(value)
            else:
                group.add_counter(key, value)
        for key, child in data.get("groups", {}).items():
            group._children[key] = StatGroup.from_dict(child, name=key)
        return group

    def load_state(self, data: Dict) -> None:
        """In-place restore of a :meth:`to_dict` payload.

        Unlike :meth:`from_dict` (which builds a fresh plain tree), this
        writes values *into* the existing counter/histogram objects —
        components and engine fast paths hold direct references to them
        (see ``adopt``), so a checkpoint restore must mutate, never
        replace.  Stats/children absent from *data* keep their current
        (zero, on a fresh build) values; unknown keys are created plain.
        """
        for key, value in data.get("stats", {}).items():
            if isinstance(value, dict):
                hist = self.add_histogram(key)
                hist.buckets.clear()
                hist.buckets.update(value)
            else:
                self.add_counter(key).set(value)
        for key, child in data.get("groups", {}).items():
            target = self._children.get(key)
            if target is None:
                target = StatGroup(key)
                self._children[key] = target
            target.load_state(child)

    def to_json(self, **kwargs) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, **kwargs)

    @classmethod
    def from_json(cls, text: str, name: str = "stats") -> "StatGroup":
        return cls.from_dict(json.loads(text), name=name)

    # ------------------------------------------------------------------ misc

    def reset(self) -> None:
        """Zero every stat in this subtree (groups keep their structure)."""
        for stat in self._stats.values():
            if isinstance(stat, Counter):
                stat.reset()
            else:
                stat.buckets.clear()
        for child in self._children.values():
            child.reset()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StatGroup):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}({self.name!r}, "
            f"stats={len(self._stats)}, children={len(self._children)})"
        )
