"""Dataclass/enum (de)serialization helpers for run artifacts.

The run cache and the parallel sweep workers move complete
:class:`~repro.sim.gpu.RunResult` objects across process and filesystem
boundaries, which requires the configuration dataclasses
(:class:`~repro.sim.config.GPUConfig` and friends) to round-trip through
JSON.  The encoder here is generic over dataclasses whose fields are plain
values, enums, or other such dataclasses — exactly the shape of the config
tree — so adding a config knob never needs a serializer change.
"""

from __future__ import annotations

import dataclasses
from enum import Enum
from typing import Any, Dict, Type, get_type_hints

_HINT_CACHE: Dict[type, Dict[str, Any]] = {}


def _type_hints(cls: type) -> Dict[str, Any]:
    hints = _HINT_CACHE.get(cls)
    if hints is None:
        hints = get_type_hints(cls)
        _HINT_CACHE[cls] = hints
    return hints


def dataclass_to_dict(obj: Any) -> Any:
    """Encode a dataclass instance (recursively) as plain JSON data."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            field.name: dataclass_to_dict(getattr(obj, field.name))
            for field in dataclasses.fields(obj)
        }
    if isinstance(obj, Enum):
        return obj.value
    if isinstance(obj, (list, tuple)):
        return [dataclass_to_dict(item) for item in obj]
    return obj


def dataclass_from_dict(cls: Type, data: Any) -> Any:
    """Decode :func:`dataclass_to_dict` output back into *cls*."""
    if dataclasses.is_dataclass(cls) and isinstance(data, dict):
        hints = _type_hints(cls)
        kwargs = {}
        for field in dataclasses.fields(cls):
            if field.name not in data:
                continue
            kwargs[field.name] = _decode_field(hints[field.name], data[field.name])
        return cls(**kwargs)
    return data


def _decode_field(hint: Any, value: Any) -> Any:
    if value is None:
        return None
    if isinstance(hint, type):
        if issubclass(hint, Enum):
            return hint(value)
        if dataclasses.is_dataclass(hint):
            return dataclass_from_dict(hint, value)
    return value
