"""Observability layer: per-cycle stall attribution + bounded event tracing.

See DESIGN.md §7 for the stall taxonomy, event schema, and sampling model.
"""

from repro.trace.chrome import export_chrome_trace, validate_chrome_trace
from repro.trace.events import (
    CHIP_PID,
    COMPONENT_TIDS,
    EventRing,
    EventTracer,
    SMTraceView,
)
from repro.trace.stall import STALL_REASONS, StallAttributor, StallCounters

__all__ = [
    "CHIP_PID",
    "COMPONENT_TIDS",
    "EventRing",
    "EventTracer",
    "SMTraceView",
    "STALL_REASONS",
    "StallAttributor",
    "StallCounters",
    "export_chrome_trace",
    "validate_chrome_trace",
]
