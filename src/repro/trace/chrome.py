"""Chrome ``trace_event`` export for the ring-buffer tracer.

The exported JSON is the *object* form (``{"traceEvents": [...]}``), which
both ``chrome://tracing`` and Perfetto load directly.  Timestamps are
simulated cycles (one cycle == one microsecond on the timeline, which keeps
the viewer's zoom levels sane for runs of 1e4–1e6 cycles).

Process/thread naming metadata ("M" events) is synthesized at export time
from the pids/tids actually seen, so the viewer shows "SM 0" / "warp 3" /
"reuse buffer" rows instead of bare integers.

Spans whose "e" fell off the end of the bounded ring would render as
infinitely long in the viewer, so unmatched async begin events are dropped
at export (the count is reported in the returned metadata).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Set, Tuple

from repro.trace.events import CHIP_PID, COMPONENT_TIDS, EventTracer

_TID_NAMES = {
    COMPONENT_TIDS["sched"]: "scheduler",
    COMPONENT_TIDS["regfile"]: "register file",
    COMPONENT_TIDS["rb"]: "reuse buffer",
    COMPONENT_TIDS["vsb"]: "VSB",
    COMPONENT_TIDS["mem"]: "memory port",
    COMPONENT_TIDS["wirunit"]: "WIR unit",
}


def _pid_name(pid: int) -> str:
    return "memory subsystem" if pid == CHIP_PID else f"SM {pid}"


def _tid_name(tid: int) -> str:
    return _TID_NAMES.get(tid, f"warp {tid}")


def export_chrome_trace(tracer: EventTracer, path: Optional[str] = None) -> dict:
    """Render *tracer*'s ring into a Chrome trace object.

    Writes JSON to *path* when given; always returns the trace dict.
    """
    events = tracer.ring.events()

    # Pair async begins/ends by (pid, cat, id); keep only matched pairs.
    begun: Dict[Tuple[int, str, int], int] = {}
    ended: Set[Tuple[int, str, int]] = set()
    for event in events:
        ph = event["ph"]
        if ph in ("b", "e"):
            key = (event["pid"], event["cat"], event["id"])
            if ph == "b":
                begun[key] = event["ts"]
            elif key in begun:
                ended.add(key)

    trace_events: List[dict] = []
    dropped_unmatched = 0
    seen: Set[Tuple[int, int]] = set()
    for event in events:
        ph = event["ph"]
        if ph in ("b", "e"):
            key = (event["pid"], event["cat"], event["id"])
            if key not in ended:
                dropped_unmatched += 1
                continue
        seen.add((event["pid"], event["tid"]))
        trace_events.append(event)

    # Name every process and thread we actually emitted on.
    metadata: List[dict] = []
    for pid in sorted({pid for pid, _ in seen}):
        metadata.append({"ph": "M", "name": "process_name", "pid": pid,
                         "tid": 0, "args": {"name": _pid_name(pid)}})
    for pid, tid in sorted(seen):
        metadata.append({"ph": "M", "name": "thread_name", "pid": pid,
                         "tid": tid, "args": {"name": _tid_name(tid)}})

    trace = {
        "traceEvents": metadata + trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "repro.trace",
            "clock": "cycles",
            "ring_dropped": tracer.ring.dropped,
            "unmatched_spans_dropped": dropped_unmatched,
        },
    }
    if path is not None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(trace, handle, indent=1)
    return trace


_REQUIRED = {
    "b": ("name", "cat", "ts", "pid", "tid", "id"),
    "e": ("name", "cat", "ts", "pid", "tid", "id"),
    "i": ("name", "cat", "ts", "pid", "tid"),
    "X": ("name", "cat", "ts", "pid", "tid", "dur"),
    "M": ("name", "pid", "tid", "args"),
}


def validate_chrome_trace(trace: dict) -> List[str]:
    """Schema/nesting lint for an exported trace; returns problem strings.

    Checks the invariants the golden-file test (and CI) rely on: required
    keys per phase, integer non-negative timestamps, and — for async
    spans — that every id has exactly one "b" and one "e", with
    ``ts(b) <= ts(e)``.
    """
    problems: List[str] = []
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]

    spans: Dict[Tuple[int, str, int], List[dict]] = {}
    for pos, event in enumerate(events):
        ph = event.get("ph")
        if ph not in _REQUIRED:
            problems.append(f"event {pos}: unknown ph {ph!r}")
            continue
        for key in _REQUIRED[ph]:
            if key not in event:
                problems.append(f"event {pos} (ph={ph}): missing {key!r}")
        if ph != "M":
            ts = event.get("ts")
            if not isinstance(ts, int) or ts < 0:
                problems.append(f"event {pos}: bad ts {ts!r}")
        if ph in ("b", "e"):
            key = (event.get("pid"), event.get("cat"), event.get("id"))
            spans.setdefault(key, []).append(event)

    for key, pair in sorted(spans.items(), key=lambda item: str(item[0])):
        phases = [event.get("ph") for event in pair]
        if phases != ["b", "e"]:
            problems.append(f"span {key}: phases {phases} != ['b', 'e']")
            continue
        if pair[0].get("ts", 0) > pair[1].get("ts", 0):
            problems.append(f"span {key}: begin ts after end ts")
        if pair[0].get("name") != pair[1].get("name"):
            problems.append(f"span {key}: begin/end name mismatch")
    return problems
