"""Bounded ring-buffer event tracer (the observability layer's event half).

One :class:`EventTracer` serves a whole run: the GPU loop advances
:attr:`EventTracer.now` once per simulated cycle, and every component emits
through a cheap per-SM facade (:class:`SMTraceView`) that stamps events with
the current cycle and its process id.  Events are plain dicts already in
Chrome ``trace_event`` shape (``ph``/``name``/``cat``/``ts``/``pid``/
``tid``), so export is a straight dump (see :mod:`repro.trace.chrome`).

Overhead is bounded twice over:

* a **sampling window** — with ``sample_period > 0`` only cycles where
  ``now % period < window`` open new events (in-flight instruction spans
  still close, so exported spans are never left dangling);
* a **bounded ring** — at most ``ring_capacity`` events are kept; once the
  ring is full, new events are counted as ``dropped`` and discarded, which
  preserves the (matched) spans already captured from the run's start.

Instruction lifetimes are Chrome *async* spans ("b"/"e" matched by an id
unique per dynamic instruction) rather than same-thread "B"/"E" duration
events: one warp can have several instructions in flight at once, and
overlapping durations on one tid would violate Chrome's nesting rules.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.stats import StatGroup

#: Reserved thread ids for non-warp rows of an SM's track (warp slots are
#: 0..max_warps_per_sm-1, far below these).
COMPONENT_TIDS: Dict[str, int] = {
    "sched": 100,
    "regfile": 101,
    "rb": 102,
    "vsb": 103,
    "mem": 104,
    "wirunit": 105,
}

#: Process id of the chip-level memory subsystem track (SMs use their id).
CHIP_PID = 1000


class TraceStats(StatGroup):
    """Tracer effort counters (adopted into the run registry as ``trace``)."""

    COUNTERS = ("emitted", "dropped", "sampled_out")


class EventRing:
    """Fixed-capacity event store that keeps the earliest events.

    Dropping *new* events once full (instead of rotating the oldest out)
    keeps begin/end span pairs from the captured prefix intact; the
    ``dropped`` count records how much of the tail was lost.
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.dropped = 0
        self._events: List[dict] = []

    def __len__(self) -> int:
        return len(self._events)

    def append(self, event: dict) -> bool:
        if len(self._events) >= self.capacity:
            self.dropped += 1
            return False
        self._events.append(event)
        return True

    def events(self) -> List[dict]:
        return list(self._events)


class EventTracer:
    """Run-wide event collector with cycle-window sampling."""

    def __init__(self, config) -> None:
        #: Current simulation cycle; the GPU loop keeps this fresh.
        self.now = 0
        self.ring = EventRing(config.ring_capacity)
        self._period = config.sample_period
        self._window = config.sample_window
        self._next_id = 0
        self.stats = TraceStats("trace")
        #: Open async spans: (pid, slot, pc) -> FIFO of span ids.
        self._open: Dict[Tuple[int, int, int], List[int]] = {}

    # ----------------------------------------------------------------- gating

    def sampling(self) -> bool:
        """Whether the current cycle is inside the capture window."""
        if self._period <= 0:
            return True
        return self.now % self._period < self._window

    # --------------------------------------------------------------- emission

    def _emit(self, event: dict) -> None:
        if self.ring.append(event):
            self.stats.emitted += 1
        else:
            self.stats.dropped += 1

    def instant(self, pid: int, tid: int, name: str, cat: str,
                args: Optional[dict] = None) -> None:
        if not self.sampling():
            self.stats.sampled_out += 1
            return
        event = {"ph": "i", "name": name, "cat": cat, "ts": self.now,
                 "pid": pid, "tid": tid, "s": "t"}
        if args:
            event["args"] = args
        self._emit(event)

    def begin_span(self, pid: int, tid: int, pc: int, name: str, cat: str,
                   args: Optional[dict] = None) -> None:
        if not self.sampling():
            self.stats.sampled_out += 1
            return
        self._next_id += 1
        ident = self._next_id
        self._open.setdefault((pid, tid, pc), []).append(ident)
        event = {"ph": "b", "name": name, "cat": cat, "ts": self.now,
                 "pid": pid, "tid": tid, "id": ident}
        if args:
            event["args"] = args
        self._emit(event)

    def end_span(self, pid: int, tid: int, pc: int, name: str, cat: str) -> None:
        """Close the oldest open span for (pid, tid, pc), if any.

        Ends are *not* sampling-gated: a span opened inside a capture
        window must close even if the window has since passed, or the
        export would contain a dangling "b".
        """
        fifo = self._open.get((pid, tid, pc))
        if not fifo:
            return
        ident = fifo.pop(0)
        if not fifo:
            del self._open[(pid, tid, pc)]
        self._emit({"ph": "e", "name": name, "cat": cat, "ts": self.now,
                    "pid": pid, "tid": tid, "id": ident})

    # ------------------------------------------------------------------ views

    def view(self, pid: int) -> "SMTraceView":
        return SMTraceView(self, pid)


class SMTraceView:
    """Per-SM (or chip-level) emission facade bound to one process id."""

    __slots__ = ("tracer", "pid")

    def __init__(self, tracer: EventTracer, pid: int) -> None:
        self.tracer = tracer
        self.pid = pid

    # --- instruction lifetime spans ------------------------------------------

    def begin_inst(self, slot: int, inst) -> None:
        self.tracer.begin_span(self.pid, slot, inst.pc,
                               inst.opcode.name.lower(), "inst",
                               args={"pc": inst.pc})

    def end_inst(self, slot: int, inst) -> None:
        self.tracer.end_span(self.pid, slot, inst.pc,
                             inst.opcode.name.lower(), "inst")

    # --- instants -------------------------------------------------------------

    def issue_event(self, slot: int, name: str,
                    args: Optional[dict] = None) -> None:
        """Control/barrier/nop issue (no backend journey to span)."""
        self.tracer.instant(self.pid, slot, name, "issue", args)

    def wir_event(self, slot: int, name: str,
                  args: Optional[dict] = None) -> None:
        """WIR lifecycle event attributed to a warp slot (rename,
        reuse_hit, reuse_queue, verify_read, vsb_share, quarantine...)."""
        self.tracer.instant(self.pid, slot, name, "wir", args)

    def component_event(self, comp: str, name: str,
                        args: Optional[dict] = None) -> None:
        """Event on a component track (rb/vsb evictions and fills...)."""
        self.tracer.instant(self.pid, COMPONENT_TIDS[comp], name, comp, args)

    def scheduler_pick(self, scheduler_id: int, slot: int) -> None:
        self.tracer.instant(self.pid, COMPONENT_TIDS["sched"], "pick",
                            "sched", {"scheduler": scheduler_id, "slot": slot})

    def bank_conflict(self, reg_id: int, retries: int, kind: str,
                      verify: bool = False) -> None:
        args = {"reg": reg_id, "retries": retries, "kind": kind}
        if verify:
            args["verify"] = True
        self.tracer.instant(self.pid, COMPONENT_TIDS["regfile"],
                            "bank_conflict", "regfile", args)

    def mem_access(self, space: str, lines: int, hits: int,
                   misses: int) -> None:
        self.tracer.instant(self.pid, COMPONENT_TIDS["mem"], "mem_access",
                            "mem", {"space": space, "lines": lines,
                                    "hits": hits, "misses": misses})
