"""Per-cycle stall attribution (the observability layer's accounting half).

Every cycle, every *resident* warp slot of an SM is classified into exactly
one reason — either it issued, or the first condition that prevented issue,
checked in the same order the select stage's ``ready`` predicate checks them:

========================  ====================================================
``issued``                the slot issued an instruction this cycle
``empty``                 warp exited (draining in-flight work) or has no
                          next instruction
``barrier``               waiting at a ``bar.sync``
``reuse_queue_wait``      parked in the pending-retry queue (Section VI-B)
``control_hazard``        blocked on branch-resolution latency
``verify_wait``           blocked by the scoreboard on a producer currently
                          in its VSB verify-read
``memory_pending``        blocked by the scoreboard on an in-flight load
``scoreboard_raw``        blocked by the scoreboard on any other producer
                          (ALU latency, rename/reuse front latency)
``exec_pipe_busy``        ready, but the needed execution pipeline is busy
``not_selected``          ready, but lost scheduler arbitration
========================  ====================================================

The conservation invariant — per SM, the reason counts sum exactly to
``resident_warp_cycles`` — holds by construction (one bucket per resident
slot per cycle) and is asserted by tests and the ``repro trace`` CLI.

The scoreboard tracks *logical* destination IDs, not why the producer is
slow, so the attributor keeps a side map from pending destinations to the
producer's kind: loads register ``"mem"``, other backend instructions
``"exec"`` (reported as ``scoreboard_raw``), and the WIR unit flips an
entry to ``"verify"`` while the producer performs its VSB verify-read.

Idle-skipped cycles (the GPU fast-forwards when no SM can issue) are
accounted in bulk with ``weight = gap``: every state transition that could
change a warp's classification — a retire event, a control-hazard expiry, a
pipeline becoming free — is a ``next_wake`` candidate, so the
classification computed at the gap's first cycle is constant across it.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.stats import StatGroup

#: All stall reasons, in classification-priority order (``issued`` first).
STALL_REASONS: Tuple[str, ...] = (
    "issued",
    "empty",
    "barrier",
    "reuse_queue_wait",
    "control_hazard",
    "verify_wait",
    "memory_pending",
    "scoreboard_raw",
    "exec_pipe_busy",
    "not_selected",
)


class StallCounters(StatGroup):
    """Per-SM stall accounting: one counter per reason plus the total.

    ``resident_warp_cycles`` counts (resident warp, cycle) pairs and always
    equals the sum of the reason counters (the conservation invariant).
    """

    COUNTERS = STALL_REASONS + ("resident_warp_cycles",)

    def bump(self, reason: str, weight: int) -> None:
        self._stats[reason].add(weight)

    def breakdown(self) -> Dict[str, int]:
        """Reason -> count, in priority order (without the total)."""
        return {reason: self._stats[reason].value for reason in STALL_REASONS}

    def check_conservation(self) -> None:
        total = sum(self.breakdown().values())
        if total != self.resident_warp_cycles:
            raise AssertionError(
                f"stall conservation violated on {self.name!r}: reasons sum "
                f"to {total} but resident_warp_cycles is "
                f"{self.resident_warp_cycles}")


class StallAttributor:
    """Classifies one SM's resident warps every cycle.

    Constructed by (and bound to) its :class:`~repro.sim.smcore.SMCore`; it
    reads the core's issue-gating state directly, so classification and the
    select stage's ``ready`` predicate can never drift apart silently — the conservation
    test cross-checks ``stall.issued`` against ``core.issued``.
    """

    def __init__(self, sm) -> None:
        self.sm = sm
        self.stats = StallCounters("stall")
        #: (slot, dst id, is_predicate) -> "exec" | "mem" | "verify" for
        #: every scoreboard-pending destination of a backend instruction.
        self._producer_kind: Dict[Tuple[int, int, bool], str] = {}

    # ------------------------------------------------------- producer tracking

    def note_backend(self, slot: int, inst, kind: str) -> None:
        """A backend instruction started executing; remember why its
        scoreboard entry will stay pending (``"mem"`` or ``"exec"``)."""
        if inst.writes_register:
            self._producer_kind[(slot, inst.dst.value, False)] = kind
        elif inst.writes_predicate:
            self._producer_kind[(slot, inst.dst.value, True)] = kind

    def note_verify(self, slot: int, reg: int) -> None:
        """The producer of (slot, reg) entered its VSB verify-read."""
        self._producer_kind[(slot, reg, False)] = "verify"

    def note_retire(self, slot: int, inst) -> None:
        if inst.writes_register:
            self._producer_kind.pop((slot, inst.dst.value, False), None)
        elif inst.writes_predicate:
            self._producer_kind.pop((slot, inst.dst.value, True), None)

    # ----------------------------------------------------------- classification

    def observe(self, cycle: int, issued: Sequence[int], weight: int = 1) -> None:
        """Account *weight* cycles of the SM's current state.

        *issued* lists the slots that issued this cycle (empty for bulk
        idle-gap accounting, where by definition nothing could issue).
        """
        stats = self.stats
        for slot, warp in enumerate(self.sm.warps):
            if warp is None:
                continue
            stats.resident_warp_cycles += weight
            if slot in issued:
                stats.bump("issued", weight)
            else:
                stats.bump(self._classify(slot, warp, cycle), weight)

    def _classify(self, slot: int, warp, cycle: int) -> str:
        sm = self.sm
        if warp.exited:
            return "empty"
        if warp.at_barrier:
            return "barrier"
        if sm._warp_waiting[slot]:
            return "reuse_queue_wait"
        if sm._warp_blocked_until[slot] > cycle:
            return "control_hazard"
        inst = warp.next_instruction()
        if inst is None:
            return "empty"
        regs, preds = sm.scoreboard.blockers(slot, inst)
        if regs or preds:
            kinds = self._producer_kind
            found = set()
            for reg in regs:
                found.add(kinds.get((slot, reg, False), "exec"))
            for pred in preds:
                found.add(kinds.get((slot, pred, True), "exec"))
            if "verify" in found:
                return "verify_wait"
            if "mem" in found:
                return "memory_pending"
            return "scoreboard_raw"
        if not sm.pipeline.execute.available(inst.op_class, cycle):
            return "exec_pipe_busy"
        return "not_selected"
