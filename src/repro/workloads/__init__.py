"""Synthetic benchmark suite mirroring the paper's Table I.

Each of the 34 benchmarks is a kernel written in the simulator's ISA with an
input generator tuned so its repeated-computation profile lands where the
paper's Figure 2 ordering puts it (Table I lists the benchmarks in Figure 2
order: SobelFilter most repetitive, heartwall least).  The builders return a
:class:`~repro.workloads.common.BuiltWorkload` bundling the program, launch
geometry, initialised memory image, and an output region for cross-model
equivalence checks.
"""

from repro.workloads.common import BuiltWorkload
from repro.workloads.registry import (
    DEMO_WORKLOADS,
    WORKLOADS,
    WorkloadInfo,
    all_abbrs,
    build_workload,
    get_workload,
)

__all__ = [
    "BuiltWorkload",
    "DEMO_WORKLOADS",
    "WORKLOADS",
    "WorkloadInfo",
    "all_abbrs",
    "build_workload",
    "get_workload",
]
