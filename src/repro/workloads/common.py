"""Shared pieces for the benchmark builders.

Register conventions used across kernels (not enforced, just a convention
that keeps the assembly readable):

* ``r0`` — threadIdx.x, ``r1`` — global thread id (after PROLOGUE)
* ``r2``/``r3`` — scratch address registers
* higher registers — kernel-specific

Data generators produce the *sources of repetition* the paper identifies:
flat image regions (identical pixel neighbourhoods), duplicated work items
(identical queries/points), smooth fields (many equal deltas), and
plain random data for the low-reuse benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple

import numpy as np

from repro.isa.assembler import assemble
from repro.isa.program import Program
from repro.sim.grid import Dim3
from repro.sim.memory.space import MemoryImage

#: Prologue computing r0 = tid.x, r1 = global thread id.
PROLOGUE = """
    mov   r0, %tid.x
    mov   r2, %ctaid.x
    mov   r3, %ntid.x
    mad   r1, r2, r3, r0
"""


@dataclass
class BuiltWorkload:
    """One ready-to-run benchmark instance."""

    name: str
    program: Program
    grid: Dim3
    block: Dim3
    image: MemoryImage
    #: (byte address, word count) in global memory holding the results, used
    #: for cross-model output-equivalence checks.
    output_region: Optional[Tuple[int, int]] = None
    #: Optional reference checker: called with the output words after a run.
    check: Optional[Callable[[np.ndarray], None]] = None

    def output_words(self) -> Optional[np.ndarray]:
        if self.output_region is None:
            return None
        addr, count = self.output_region
        return self.image.global_mem.read_block(addr, count)

    def verify(self) -> None:
        """Run the reference check, if one is attached."""
        if self.check is not None:
            words = self.output_words()
            assert words is not None, "workload has a check but no output region"
            self.check(words)


def rng_for(seed: int, salt: str) -> np.random.Generator:
    """Deterministic per-benchmark RNG."""
    return np.random.default_rng((seed, salt.encode()))


# --------------------------------------------------------------------------
# Input generators (the redundancy knobs)
# --------------------------------------------------------------------------

def flat_patch_image(
    width: int, height: int, rng: np.random.Generator,
    patch: int = 8, levels: int = 4, max_value: int = 250,
) -> np.ndarray:
    """Image of constant patches: large flat regions drive value reuse."""
    ph = (height + patch - 1) // patch
    pw = (width + patch - 1) // patch
    values = rng.integers(0, levels, size=(ph, pw)) * (max_value // max(1, levels - 1))
    img = np.repeat(np.repeat(values, patch, axis=0), patch, axis=1)
    return img[:height, :width].astype(np.uint32)


def smooth_field(
    count: int, rng: np.random.Generator, step_every: int = 16, amplitude: int = 8
) -> np.ndarray:
    """Piecewise-constant 1D field with occasional small steps."""
    steps = rng.integers(-amplitude, amplitude + 1, size=(count // step_every) + 1)
    field_values = np.repeat(np.cumsum(steps) + 100, step_every)[:count]
    return field_values.astype(np.uint32)


def duplicated_values(
    count: int, rng: np.random.Generator, unique: int
) -> np.ndarray:
    """Draw *count* items from a pool of only *unique* distinct values."""
    pool = rng.integers(1, 1 << 16, size=unique, dtype=np.uint32)
    return pool[rng.integers(0, unique, size=count)]


def warp_pattern_values(
    count: int, rng: np.random.Generator, unique_rows: int,
    bits: int = 16, lanes: int = 32,
) -> np.ndarray:
    """Data whose aligned 32-lane rows repeat: warp-granular duplication.

    Warp *computations* repeat only when the whole 32-lane operand vector
    repeats; per-lane duplication is not enough.  This generator draws each
    aligned warp row from a small pool of row patterns, the way duplicate
    queries/points arrive in batched workloads.
    """
    rows = (count + lanes - 1) // lanes
    pool = rng.integers(1, 1 << bits, size=(unique_rows, lanes), dtype=np.uint32)
    picks = rng.integers(0, unique_rows, size=rows)
    return pool[picks].reshape(-1)[:count]


def random_words(count: int, rng: np.random.Generator, bits: int = 24) -> np.ndarray:
    """Dense random data: the low-reuse end of the spectrum."""
    return rng.integers(1, 1 << bits, size=count, dtype=np.uint32)


def random_floats(
    count: int, rng: np.random.Generator, low: float = 0.1, high: float = 4.0
) -> np.ndarray:
    """Random float32 payloads, returned as their uint32 bit patterns."""
    values = rng.uniform(low, high, size=count).astype(np.float32)
    return values.view(np.uint32)


def quantised_floats(
    count: int, rng: np.random.Generator, levels: int = 8,
    low: float = 0.5, high: float = 2.0,
) -> np.ndarray:
    """Float32 data drawn from few distinct values (repetition-friendly)."""
    pool = np.linspace(low, high, levels, dtype=np.float32)
    return pool[rng.integers(0, levels, size=count)].view(np.uint32)


def build_vectoradd(scale: int = 1, seed: int = 7) -> BuiltWorkload:
    """Demo kernel: ``out[i] = a[i] + b[i]`` over duplicated-value inputs.

    Not one of Table I's 34 benchmarks — a minimal, fast workload for the
    ``repro trace`` quick-start and CI smoke runs.  The duplicated inputs
    still exercise the reuse path under WIR models.
    """
    rng = rng_for(seed, "vectoradd")
    n = 2048 * scale
    a_base, b_base, out_base = 4096, 1 << 18, 1 << 20
    a = duplicated_values(n, rng, unique=64)
    b = duplicated_values(n, rng, unique=64)
    image = MemoryImage()
    image.global_mem.write_block(a_base, a)
    image.global_mem.write_block(b_base, b)
    expected = (a.astype(np.uint64) + b) & 0xFFFFFFFF

    def check(words: np.ndarray) -> None:
        assert np.array_equal(words, expected.astype(np.uint32)), \
            "vectoradd output mismatch"

    source = PROLOGUE + f"""
    shl   r4, r1, 2
    add   r5, r4, {a_base}
    add   r6, r4, {b_base}
    ld.global r7, [r5]
    ld.global r8, [r6]
    add   r9, r7, r8
    add   r10, r4, {out_base}
    st.global -, [r10], r9
    exit
"""
    return build("vectoradd", source, Dim3(n // 128), Dim3(128), image,
                 output_region=(out_base, n), check=check)


def build(
    name: str,
    source: str,
    grid: Dim3,
    block: Dim3,
    image: MemoryImage,
    output_region: Optional[Tuple[int, int]] = None,
    check: Optional[Callable[[np.ndarray], None]] = None,
) -> BuiltWorkload:
    """Assemble and bundle one workload."""
    return BuiltWorkload(
        name=name,
        program=assemble(source, name=name),
        grid=grid,
        block=block,
        image=image,
        output_region=output_region,
        check=check,
    )
