"""Computational-finance benchmarks: BO, MC, SQ, BS.

binomialOptions prices a small option tree per block with shared-memory
relaxation behind barriers (few distinct strike/price pairs repeat across
blocks); MonteCarlo runs per-thread LCG paths (mostly unique values);
SobolQRNG XORs constant direction vectors; BlackScholes evaluates the
closed-form price per option on fully unique inputs — the paper's
least-reusable FP-heavy benchmark.
"""

from __future__ import annotations

import numpy as np

from repro.sim.grid import Dim3
from repro.sim.memory.space import MemoryImage
from repro.workloads.common import (
    PROLOGUE,
    BuiltWorkload,
    build,
    duplicated_values,
    random_floats,
    random_words,
    rng_for,
)

BASE = 4096
OUT_BASE = 1 << 20


def build_bo(scale: int = 1, seed: int = 7) -> BuiltWorkload:
    """binoOpts (CUDA SDK): binomial tree relaxation in scratchpad.

    Option parameters are drawn from a handful of (S, K) pairs, so whole
    blocks price identical trees — relaxation arithmetic repeats across
    blocks and the staged tree values are shared through the scratchpad.
    """
    rng = rng_for(seed, "BO")
    blocks = 8 * scale
    params = duplicated_values(blocks * 2, rng, unique=3) & 0xFF
    image = MemoryImage()
    image.global_mem.write_block(BASE, params)
    steps = 6
    source = PROLOGUE + f"""
    mov   r4, %ctaid.x
    shl   r5, r4, 3
    add   r5, r5, {BASE}
    ld.global r6, [r5]                 // S (spot class)
    ld.global r7, [r5+4]               // K (strike class)
    // leaf payoff: max(S * u^tid - K, 0), integerised
    mul   r8, r6, r0
    add   r8, r8, r6
    sub   r9, r8, r7
    max   r9, r9, 0
    shl   r10, r0, 2
    st.shared -, [r10], r9
    bar.sync
    mov   r11, 0                       // step
bo_loop:
    shl   r12, r0, 2
    ld.shared r13, [r12]               // V[i]
    ld.shared r14, [r12+4]             // V[i+1]
    add   r15, r13, r14
    shr   r15, r15, 1                  // discounted expectation
    bar.sync
    st.shared -, [r12], r15
    bar.sync
    add   r11, r11, 1
    setp.lt p0, r11, {steps}
@p0 bra   bo_loop
    shl   r16, r1, 2
    add   r16, r16, {OUT_BASE}
    st.global -, [r16], r15
    exit
"""
    return build("BO", source, Dim3(blocks), Dim3(128), image,
                 output_region=(OUT_BASE, blocks * 128))


def build_mc(scale: int = 1, seed: int = 7) -> BuiltWorkload:
    """MonteCarlo (CUDA SDK): LCG paths with per-thread seeds (49% FP)."""
    rng = rng_for(seed, "MC")
    threads = 768 * scale
    seeds = random_words(threads, rng)
    image = MemoryImage()
    image.global_mem.write_block(BASE, seeds)
    paths = 8
    source = PROLOGUE + f"""
    shl   r4, r1, 2
    add   r4, r4, {BASE}
    ld.global r5, [r4]                 // seed
    mov   r6, 0                        // payoff accumulator (float bits)
    mov   r7, 0                        // path
mc_loop:
    mul   r8, r5, 1103515245
    add   r5, r8, 12345                // LCG step
    shr   r9, r5, 16
    and   r9, r9, 1023
    cvt.i2f r10, r9
    fmul  r11, r10, 0f0.0009765625     // uniform in [0,1)
    fmul  r12, r11, r11
    fadd  r13, r12, 0f0.08             // drift + vol^2 term
    fadd  r6, r6, r13
    add   r7, r7, 1
    setp.lt p0, r7, {paths}
@p0 bra   mc_loop
    fmul  r14, r6, 0f0.125             // mean payoff
    shl   r15, r1, 2
    add   r15, r15, {OUT_BASE}
    st.global -, [r15], r14
    exit
"""
    return build("MC", source, Dim3(threads // 128), Dim3(128), image,
                 output_region=(OUT_BASE, threads))


def build_sq(scale: int = 1, seed: int = 7) -> BuiltWorkload:
    """SobolQRNG (CUDA SDK): XOR of constant direction vectors.

    The direction-vector loads repeat for every thread (read-only constant
    memory reuse), while the per-index XOR results are mostly unique.
    """
    rng = rng_for(seed, "SQ")
    threads = 1024 * scale
    directions = random_words(32, rng)
    seeds = random_words(threads, rng, bits=20)
    image = MemoryImage()
    image.global_mem.write_block(BASE, seeds)
    # Direction vectors are per-dimension constants; the unrolled generator
    # holds them as immediates (divergent XOR accumulation per bit).
    steps = "".join(
        """
    and   r7, r5, {bit}
    setp.ne p0, r7, 0
@p0 xor   r4, r4, {v}""".format(bit=1 << b, v=int(directions[b]))
        for b in range(8)
    )
    source = PROLOGUE + f"""
    mov   r4, 0                        // result
    shl   r5, r1, 2
    add   r5, r5, {BASE}
    ld.global r5, [r5]                 // scrambled start index
    xor   r5, r5, r1                   // Gray-code walker
{steps}
    shl   r10, r1, 2
    add   r10, r10, {OUT_BASE}
    st.global -, [r10], r4
    exit
"""
    return build("SQ", source, Dim3(threads // 128), Dim3(128), image,
                 output_region=(OUT_BASE, threads))


def build_bs(scale: int = 1, seed: int = 7) -> BuiltWorkload:
    """BlackSchls (CUDA SDK): closed-form pricing on unique inputs (74% FP).

    Every option has a unique (price, strike, time) triple, so the
    SFU-heavy evaluation chain almost never repeats — the paper's lowest
    reuse benchmark together with heartwall.
    """
    rng = rng_for(seed, "BS")
    options = 768 * scale
    prices = random_floats(options, rng, low=10.0, high=120.0)
    strikes = random_floats(options, rng, low=20.0, high=100.0)
    times = random_floats(options, rng, low=0.1, high=2.0)
    image = MemoryImage()
    image.global_mem.write_block(BASE, prices)
    image.global_mem.write_block(BASE + 64 * 1024, strikes)
    image.global_mem.write_block(BASE + 128 * 1024, times)
    source = PROLOGUE + f"""
    shl   r4, r1, 2
    add   r5, r4, {BASE}
    ld.global r6, [r5]                 // S
    add   r7, r4, {BASE + 64 * 1024}
    ld.global r8, [r7]                 // K
    add   r9, r4, {BASE + 128 * 1024}
    ld.global r10, [r9]                // T
    fdiv  r11, r6, r8                  // S/K
    lg2   r12, r11                     // log-moneyness
    sqrt  r13, r10                     // sqrt(T)
    fmul  r14, r13, 0f0.30             // vol * sqrt(T)
    fdiv  r15, r12, r14                // d1 core
    fmad  r16, r14, 0f0.5, r15         // d1
    fsub  r17, r16, r14                // d2
    // logistic CND approximation: 1 / (1 + 2^(-3 d))
    fmul  r18, r16, 0f-3.0
    ex2   r19, r18
    fadd  r19, r19, 0f1.0
    rcp   r20, r19                     // N(d1)
    fmul  r21, r17, 0f-3.0
    ex2   r22, r21
    fadd  r22, r22, 0f1.0
    rcp   r23, r22                     // N(d2)
    fmul  r24, r6, r20                 // S N(d1)
    fmul  r25, r8, r23
    fmul  r25, r25, 0f0.95             // discounted K N(d2)
    fsub  r26, r24, r25                // call price
    shl   r27, r1, 2
    add   r27, r27, {OUT_BASE}
    st.global -, [r27], r26
    exit
"""
    return build("BS", source, Dim3(options // 128), Dim3(128), image,
                 output_region=(OUT_BASE, options))
