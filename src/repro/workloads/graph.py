"""Irregular / graph benchmarks: BT, NW, BF.

b+tree runs duplicated key queries down a constant-memory tree (repetition
comes from duplicate queries — a high-reuse integer workload); nw is the
Needleman-Wunsch DP cell update with a small substitution table; bfs is a
divergent frontier expansion over a random graph (low reuse, heavy
divergence).
"""

from __future__ import annotations

import numpy as np

from repro.sim.grid import Dim3
from repro.sim.memory.space import MemoryImage
from repro.workloads.common import (
    PROLOGUE,
    BuiltWorkload,
    build,
    duplicated_values,
    random_words,
    rng_for,
    warp_pattern_values,
)

BASE = 4096
OUT_BASE = 1 << 20


def build_bt(scale: int = 1, seed: int = 7) -> BuiltWorkload:
    """b+tree (Rodinia): binary search of duplicated keys in a sorted array.

    Real OLTP query batches contain many duplicate keys; every duplicate
    repeats the identical compare/step chain, making b+tree one of the most
    reuse-friendly benchmarks in the paper's Figure 2.
    """
    rng = rng_for(seed, "BT")
    tree_size = 256
    queries = 1024 * scale
    keys = np.sort(random_words(tree_size, rng, bits=16))
    # Batched queries repeat at warp granularity: whole warps of identical
    # query vectors arrive repeatedly (hot keys in OLTP batches).
    picks = warp_pattern_values(queries, rng, unique_rows=5, bits=8)
    query_keys = keys[picks % tree_size]
    image = MemoryImage()
    # Tree nodes live in *global* memory (as in the real b+tree): duplicate
    # query warps reload the same hot nodes, which load reuse then serves
    # from the register file instead of the L1.
    tree_base = BASE + 512 * 1024
    image.global_mem.write_block(tree_base, keys)
    image.global_mem.write_block(BASE, query_keys)
    source = PROLOGUE + f"""
    shl   r4, r1, 2
    add   r4, r4, {BASE}
    ld.global r5, [r4]                 // query key
    mov   r6, 0                        // lo
    mov   r7, {tree_size}              // hi
    mov   r8, 0                        // level
bt_loop:
    add   r9, r6, r7
    shr   r9, r9, 1                    // mid
    shl   r10, r9, 2
    add   r10, r10, {tree_base}
    ld.global r11, [r10]               // node key
    setp.lt p0, r11, r5
@p0 mov   r6, r9                       // descend right
@!p0 mov  r7, r9                       // descend left
    add   r8, r8, 1
    setp.lt p1, r8, 8
@p1 bra   bt_loop
    shl   r12, r1, 2
    add   r12, r12, {OUT_BASE}
    st.global -, [r12], r6
    exit
"""
    return build("BT", source, Dim3(queries // 128), Dim3(128), image,
                 output_region=(OUT_BASE, queries))


def build_nw(scale: int = 1, seed: int = 7) -> BuiltWorkload:
    """nw (Rodinia): Needleman-Wunsch anti-diagonal cell updates.

    score = max(nw + sub, n - gap, w - gap) over a 4-letter alphabet —
    the tiny substitution table makes the max/add chains repeat.
    """
    rng = rng_for(seed, "NW")
    cells = 1024 * scale
    north = warp_pattern_values(cells + 64, rng, unique_rows=4, bits=6)
    sub = (rng.integers(-4, 5, size=16).astype(np.int32)).view(np.uint32)
    seq = random_words(cells, rng, bits=2)  # 4-letter alphabet
    image = MemoryImage()
    image.global_mem.write_block(BASE, north)
    image.global_mem.write_block(BASE + 64 * 1024, seq)
    image.const_mem.write_block(0, sub)
    source = PROLOGUE + f"""
    shl   r4, r1, 2
    add   r4, r4, {BASE + 8}
    ld.global r5, [r4]                 // north score
    ld.global r6, [r4-4]               // north-west score
    ld.global r7, [r4-8]               // west score (previous diagonal)
    add   r8, r4, {64 * 1024 - 8}
    ld.global r9, [r8]                 // sequence letters packed index
    and   r10, r9, 15
    shl   r10, r10, 2
    ld.const r11, [r10]                // substitution score
    add   r12, r6, r11                 // match path
    sub   r13, r5, 2                   // gap from north
    sub   r14, r7, 2                   // gap from west
    max   r15, r12, r13
    max   r15, r15, r14
    shl   r16, r1, 2
    add   r16, r16, {OUT_BASE}
    st.global -, [r16], r15
    exit
"""
    return build("NW", source, Dim3(cells // 128), Dim3(128), image,
                 output_region=(OUT_BASE, cells))


def build_bf(scale: int = 1, seed: int = 7) -> BuiltWorkload:
    """bfs (Rodinia): one frontier-expansion level over a random graph.

    Data-dependent branching (is this node on the frontier?) and pointer
    chasing make bfs divergent and nearly reuse-free.
    """
    rng = rng_for(seed, "BF")
    nodes = 1024 * scale
    degree = 4
    edges = random_words(nodes * degree, rng, bits=10) % nodes
    frontier = (rng.random(nodes) < 0.3).astype(np.uint32)
    costs = random_words(nodes, rng, bits=8)
    image = MemoryImage()
    image.global_mem.write_block(BASE, edges.astype(np.uint32))
    image.global_mem.write_block(BASE + 128 * 1024, frontier)
    image.global_mem.write_block(BASE + 192 * 1024, costs)
    source = PROLOGUE + f"""
    shl   r4, r1, 2
    add   r5, r4, {BASE + 128 * 1024}
    ld.global r6, [r5]                 // on frontier?
    setp.eq p0, r6, 0
@p0 exit                               // divergent early exit
    shl   r7, r1, 4                    // edge list base (degree 4)
    add   r7, r7, {BASE}
    mov   r8, 0                        // best neighbour cost
    mov   r9, 0                        // e
bf_loop:
    shl   r10, r9, 2
    add   r11, r7, r10
    ld.global r12, [r11]               // neighbour id
    shl   r13, r12, 2
    add   r13, r13, {BASE + 192 * 1024}
    ld.global r14, [r13]               // neighbour cost
    max   r8, r8, r14
    add   r9, r9, 1
    setp.lt p1, r9, {degree}
@p1 bra   bf_loop
    add   r15, r8, 1
    shl   r16, r1, 2
    add   r16, r16, {OUT_BASE}
    st.global -, [r16], r15
    exit
"""
    return build("BF", source, Dim3(nodes // 128), Dim3(128), image,
                 output_region=(OUT_BASE, nodes))
