"""Image-processing benchmarks: SF, S1, S2, HS, DC, DW, LK, HW.

These mirror the corresponding Rodinia / CUDA SDK kernels at small scale:
each thread processes one pixel (or one small row segment) of a 2D image
staged in global memory.  The redundancy knob is the input image: flat-patch
images make neighbourhood loads and the arithmetic on them repeat heavily
(SobelFilter, srad-v2), smooth fields repeat moderately (hotspot, srad-v1),
and random textures almost never repeat (heartwall).
"""

from __future__ import annotations

import numpy as np

from repro.sim.grid import Dim3
from repro.sim.memory.space import MemoryImage
from repro.workloads.common import (
    PROLOGUE,
    BuiltWorkload,
    build,
    flat_patch_image,
    random_words,
    rng_for,
    smooth_field,
)

#: Image geometry shared by the 2D kernels (row stride in bytes = 256).
WIDTH = 64
IMG_BASE = 4096          # leaves room for negative-offset neighbour loads
GAIN_BASE = 768 * 1024   # small host-updated lookup tables
OUT_BASE = 1 << 20


def _image_setup(rows: int, data: np.ndarray) -> MemoryImage:
    image = MemoryImage()
    image.global_mem.write_block(IMG_BASE, data[: rows * WIDTH])
    return image


def build_sf(scale: int = 1, seed: int = 7) -> BuiltWorkload:
    """SobelFilter (CUDA SDK): 3x3 Sobel on a flat-patch image.

    The paper's Figure 3 kernel.  Flat patches make whole neighbourhoods
    identical across pixels and across thread blocks, so the |Gx|+|Gy|
    arithmetic repeats heavily — the most reuse-friendly benchmark.
    """
    rng = rng_for(seed, "SF")
    rows = 18 * scale
    img = flat_patch_image(WIDTH, rows, rng, patch=16, levels=3)
    image = _image_setup(rows, img.ravel())
    # fScale lookup lives in global memory (host-updated between frames);
    # only four hot addresses -> prime load-reuse traffic across warps.
    image.global_mem.write_block(GAIN_BASE, np.array([1, 2, 3, 2], dtype=np.uint32))
    threads = WIDTH * (rows - 2)
    source = PROLOGUE + f"""
    shl   r4, r1, 2
    add   r4, r4, {IMG_BASE + 256}     // centre pixel of row y+1
    ld.global r5,  [r4-260]            // ul
    ld.global r6,  [r4-256]            // um
    ld.global r7,  [r4-252]            // ur
    ld.global r8,  [r4-4]              // ml
    ld.global r9,  [r4+4]              // mr
    ld.global r10, [r4+252]            // ll
    ld.global r11, [r4+256]            // lm
    ld.global r12, [r4+260]            // lr
    add   r13, r7, r12
    shl   r14, r9, 1
    add   r13, r13, r14
    add   r14, r5, r10
    shl   r15, r8, 1
    add   r14, r14, r15
    sub   r13, r13, r14
    abs   r13, r13
    add   r14, r5, r7
    shl   r15, r6, 1
    add   r14, r14, r15
    add   r15, r10, r12
    shl   r16, r11, 1
    add   r15, r15, r16
    sub   r14, r14, r15
    abs   r14, r14
    add   r15, r13, r14
    and   r18, r11, 3                  // gain class from the centre row pixel
    shl   r18, r18, 2
    add   r18, r18, {GAIN_BASE}
    ld.global r19, [r18]               // per-class gain (4 hot addresses)
    mul   r15, r15, r19
    cvt.i2f r16, r15
    fmul  r16, r16, 0f0.0625
    cvt.f2i r16, r16
    shl   r17, r1, 2
    add   r17, r17, {OUT_BASE}
    st.global -, [r17], r16
    exit
"""
    return build("SF", source, Dim3(threads // 128), Dim3(128), image,
                 output_region=(OUT_BASE, threads))


def _srad(name: str, data: np.ndarray, rows: int, image: MemoryImage) -> BuiltWorkload:
    """Shared SRAD diffusion-coefficient kernel body (srad-v1 / srad-v2)."""
    image.global_mem.write_block(GAIN_BASE, np.array([1], dtype=np.uint32))
    threads = WIDTH * (rows - 2)
    source = PROLOGUE + f"""
    shl   r4, r1, 2
    add   r4, r4, {IMG_BASE + 256}
    ld.global r5, [r4]                 // Jc
    ld.global r6, [r4-256]             // N
    ld.global r7, [r4+256]             // S
    ld.global r8, [r4-4]               // W
    ld.global r9, [r4+4]               // E
    sub   r10, r6, r5                  // dN
    sub   r11, r7, r5                  // dS
    sub   r12, r8, r5                  // dW
    sub   r13, r9, r5                  // dE
    cvt.i2f r14, r10
    cvt.i2f r15, r11
    cvt.i2f r16, r12
    cvt.i2f r17, r13
    fmul  r18, r14, r14
    fmad  r18, r15, r15, r18
    fmad  r18, r16, r16, r18
    fmad  r18, r17, r17, r18           // G2 = sum of squares
    cvt.i2f r19, r5
    fmax  r19, r19, 0f1.0
    fdiv  r20, r18, r19                // normalised gradient
    mov   r26, {GAIN_BASE}
    ld.global r27, [r26]               // q0sqr (host-updated per iteration)
    cvt.i2f r28, r27
    fmul  r20, r20, r28                // normalise by q0sqr
    fadd  r21, r20, 0f1.0
    rcp   r22, r21                     // diffusion coefficient c
    fmul  r23, r22, r14                // c * dN
    cvt.f2i r24, r23
    shl   r25, r1, 2
    add   r25, r25, {OUT_BASE}
    st.global -, [r25], r24
    exit
"""
    return build(name, source, Dim3(threads // 128), Dim3(128), image,
                 output_region=(OUT_BASE, threads))


def build_s2(scale: int = 1, seed: int = 7) -> BuiltWorkload:
    """srad-v2 (Rodinia): anisotropic diffusion on a flat-patch image."""
    rng = rng_for(seed, "S2")
    rows = 18 * scale
    img = flat_patch_image(WIDTH, rows, rng, patch=12, levels=4)
    return _srad("S2", img, rows, _image_setup(rows, img.ravel()))


def build_s1(scale: int = 1, seed: int = 7) -> BuiltWorkload:
    """srad-v1 (Rodinia): same diffusion step on a smoother, busier image."""
    rng = rng_for(seed, "S1")
    rows = 18 * scale
    data = smooth_field(WIDTH * rows, rng, step_every=10, amplitude=16)
    return _srad("S1", data, rows, _image_setup(rows, data))


def build_hs(scale: int = 1, seed: int = 7) -> BuiltWorkload:
    """hotspot (Rodinia): thermal simulation step on smooth temperature.

    Neighbour loads of a smooth field repeat across adjacent threads and
    iterations; the paper highlights hotspot as load-reuse sensitive.
    """
    rng = rng_for(seed, "HS")
    rows = 18 * scale
    temp = smooth_field(WIDTH * rows, rng, step_every=24, amplitude=3)
    power = flat_patch_image(WIDTH, rows, rng, patch=16, levels=2, max_value=8)
    image = _image_setup(rows, temp)
    image.global_mem.write_block(IMG_BASE + 64 * 1024, power.ravel())
    image.global_mem.write_block(GAIN_BASE, np.array([2, 3, 4, 3], dtype=np.uint32))
    threads = WIDTH * (rows - 2)
    source = PROLOGUE + f"""
    shl   r4, r1, 2
    add   r4, r4, {IMG_BASE + 256}
    ld.global r5, [r4]                 // T
    ld.global r6, [r4-256]             // T north
    ld.global r7, [r4+256]             // T south
    ld.global r8, [r4-4]               // T west
    ld.global r9, [r4+4]               // T east
    ld.global r10, [r4+{64 * 1024}]    // power
    add   r11, r6, r7
    add   r11, r11, r8
    add   r11, r11, r9
    shl   r12, r5, 2
    sub   r11, r11, r12                // laplacian
    add   r11, r11, r10
    and   r15, r10, 3                  // coefficient class from power
    shl   r15, r15, 2
    add   r15, r15, {GAIN_BASE}
    ld.global r16, [r15]               // Rz coefficient (few hot addresses)
    mul   r11, r11, r16
    shr   r11, r11, 3                  // * dt/C
    add   r13, r5, r11                 // T'
    shl   r14, r1, 2
    add   r14, r14, {OUT_BASE}
    st.global -, [r14], r13
    exit
"""
    return build("HS", source, Dim3(threads // 128), Dim3(128), image,
                 output_region=(OUT_BASE, threads))


def build_dc(scale: int = 1, seed: int = 7) -> BuiltWorkload:
    """dct8x8 (CUDA SDK): 8-point row DCT with constant-memory cosines."""
    rng = rng_for(seed, "DC")
    blocks = 6 * scale
    threads = blocks * 128
    data = (random_words(threads * 8, rng, bits=7) & 0x7F)
    image = MemoryImage()
    image.global_mem.write_block(IMG_BASE, data)
    # Cosine table (scaled to integers) in constant memory: one 8-entry row
    # per output frequency; the kernel computes one frequency per thread.
    cosines = (np.cos(np.pi * (2 * np.arange(8)[None, :] + 1)
                      * np.arange(8)[:, None] / 16) * 64).astype(np.int32)
    image.const_mem.write_block(0, cosines.view(np.uint32).ravel())
    taps = "".join(
        """
    ld.global r12, [r6+{off}]
    ld.const  r14, [r7+{off}]
    mad   r8, r12, r14, r8""".format(off=4 * i)
        for i in range(8)
    )
    source = PROLOGUE + f"""
    and   r4, r1, 7                    // frequency index k = gtid % 8
    shr   r5, r1, 3                    // sample row = gtid / 8
    shl   r6, r5, 5                    // row base (8 samples * 4 bytes)
    add   r6, r6, {IMG_BASE}
    shl   r7, r4, 5                    // cosine row base
    mov   r8, 0                        // accumulator (fully unrolled DCT row)
{taps}
    shr   r8, r8, 6
    shl   r15, r1, 2
    add   r15, r15, {OUT_BASE}
    st.global -, [r15], r8
    exit
"""
    return build("DC", source, Dim3(blocks), Dim3(128), image,
                 output_region=(OUT_BASE, threads))


def build_dw(scale: int = 1, seed: int = 7) -> BuiltWorkload:
    """dwt2d (Rodinia): one Haar wavelet level on a flat-patch image."""
    rng = rng_for(seed, "DW")
    rows = 16 * scale
    img = flat_patch_image(WIDTH, rows, rng, patch=8, levels=5)
    image = _image_setup(rows, img.ravel())
    threads = WIDTH * rows // 2
    source = PROLOGUE + f"""
    shl   r4, r1, 3                    // pair address: 2 pixels per thread
    add   r4, r4, {IMG_BASE}
    ld.global r5, [r4]
    ld.global r6, [r4+4]
    add   r7, r5, r6
    shr   r7, r7, 1                    // average (low band)
    sub   r8, r5, r6                   // difference (high band)
    abs   r8, r8
    shl   r9, r1, 2
    add   r9, r9, {OUT_BASE}
    st.global -, [r9], r7
    add   r10, r9, {threads * 4}
    st.global -, [r10], r8
    exit
"""
    return build("DW", source, Dim3(threads // 128), Dim3(128), image,
                 output_region=(OUT_BASE, threads * 2))


def build_lk(scale: int = 1, seed: int = 7) -> BuiltWorkload:
    """leukocyte (Rodinia): GICOV-style repeated template sampling.

    Every warp repeatedly walks the same set of template rows with a
    *poorly coalesced* per-lane stride: each warp load touches 32 distinct
    cache lines, and the working set (rows x 32 lines) exceeds the L1, so
    the baseline thrashes.  Load reuse keeps one reuse-buffer tag per row
    and serves the repeats from the register file — the paper's standout
    case (>2x speedup, 61.5% fewer L1 misses).
    """
    rng = rng_for(seed, "LK")
    rows, rounds = 16, 6
    lane_stride = 132                  # bytes: one line per lane, 33-line rows
    row_stride = 132 * 32
    span_words = (rows * row_stride + 4096) // 4
    data = random_words(span_words, rng)
    image = MemoryImage()
    image.global_mem.write_block(IMG_BASE, data)
    iters = rows * rounds
    source = PROLOGUE + f"""
    mov   r2, %laneid
    mul   r3, r2, {lane_stride}
    add   r3, r3, {IMG_BASE}           // per-lane template column
    mov   r4, 0                        // i
    mov   r5, 0                        // accumulator
lk_loop:
    and   r6, r4, {rows - 1}           // row = i mod rows
    mul   r7, r6, {row_stride}
    add   r8, r3, r7
    ld.global r9, [r8]                 // template sample (32 lines/warp)
    and   r10, r9, 255                 // gradient magnitude class
    cvt.i2f r12, r10
    fmul  r13, r12, 0f0.125            // normalised gradient (warp-shared)
    cvt.f2i r11, r13
    add   r11, r11, 7
    xor   r5, r5, r11                  // GICOV accumulation
    add   r4, r4, 1
    setp.lt p0, r4, {iters}
@p0 bra   lk_loop
    shl   r14, r1, 2
    add   r14, r14, {OUT_BASE}
    st.global -, [r14], r5
    exit
"""
    return build("LK", source, Dim3(8), Dim3(128), image,
                 output_region=(OUT_BASE, 8 * 128))


def build_hw(scale: int = 1, seed: int = 7) -> BuiltWorkload:
    """heartwall (Rodinia): correlation on random texture — the low-reuse end."""
    rng = rng_for(seed, "HW")
    rows = 18 * scale
    img = random_words(WIDTH * rows, rng, bits=10)
    template = random_words(64, rng, bits=8)
    image = _image_setup(rows, img)
    threads = WIDTH * (rows - 2)
    tap_values = [int(t) for t in template[:5]]
    taps = "".join(
        """
    ld.global r9, [r4+{off}]
    mul   r11, r9, {tap}
    add   r5, r5, r11""".format(off=4 * i, tap=tap_values[i])
        for i in range(5)
    )
    source = PROLOGUE + f"""
    shl   r4, r1, 2
    add   r4, r4, {IMG_BASE + 256}
    mov   r5, 0                        // correlation accumulator (unrolled)
{taps}
    abs   r5, r5
    shl   r12, r1, 2
    add   r12, r12, {OUT_BASE}
    st.global -, [r12], r5
    exit
"""
    return build("HW", source, Dim3(threads // 128), Dim3(128), image,
                 output_region=(OUT_BASE, threads))
