"""Dense linear-algebra benchmarks: SG, LU, GA, KM, SC.

sgemm works on shared-memory tiles; gaussian scales pivot rows; lud runs a
diagonal-block elimination step; kmeans and streamcluster compute distances
from points to constant-memory centres.  The redundancy knobs: gaussian's
matrix has many repeated coefficients, kmeans points are drawn from a small
pool of distinct values (duplicated work items), streamcluster points are
fully random.
"""

from __future__ import annotations

import numpy as np

from repro.sim.grid import Dim3
from repro.sim.memory.space import MemoryImage
from repro.workloads.common import (
    PROLOGUE,
    BuiltWorkload,
    build,
    duplicated_values,
    quantised_floats,
    random_floats,
    random_words,
    rng_for,
    warp_pattern_values,
)

A_BASE = 4096
B_BASE = 256 * 1024
OUT_BASE = 1 << 20


def build_sg(scale: int = 1, seed: int = 7) -> BuiltWorkload:
    """sgemm (Parboil): tiled matrix multiply with shared-memory staging.

    Each block computes one 32-wide strip of C = A x B for a K=16 reduction,
    staging the B tile in scratchpad behind a barrier — the canonical GPU
    kernel shape (random matrices: value reuse comes mostly from address
    arithmetic and the staged tile loads).
    """
    rng = rng_for(seed, "SG")
    n, k = 64, 16 * scale
    a = random_floats(n * k * 8, rng)  # one row strip per block
    b = random_floats(k * n, rng)
    image = MemoryImage()
    image.global_mem.write_block(A_BASE, a)
    image.global_mem.write_block(B_BASE, b)
    source = PROLOGUE + f"""
    // stage one column strip of B into scratchpad
    shl   r4, r0, 2
    mov   r5, %ctaid.x
    shl   r6, r5, 8                    // block column offset (64 floats)
    add   r7, r4, r6
    add   r7, r7, {B_BASE}             // B[row=tid][block column]
    ld.global r8, [r7]
    st.shared -, [r4], r8
    bar.sync
    mov   r9, 0                        // acc (float bits)
    mul   r17, r5, {k * 64}            // this block's A row strip (bytes)
    mov   r10, 0                       // i
sg_loop:
    shl   r11, r10, 2
    mul   r12, r10, 256                // A row stride (64 floats)
    add   r13, r12, r4
    add   r13, r13, r17
    add   r13, r13, {A_BASE}
    ld.global r14, [r13]               // A[i][tid]
    ld.shared r15, [r11]               // B tile element
    fmad  r9, r14, r15, r9
    add   r10, r10, 1
    setp.lt p0, r10, {k}
@p0 bra   sg_loop
    shl   r16, r1, 2
    add   r16, r16, {OUT_BASE}
    st.global -, [r16], r9
    exit
"""
    return build("SG", source, Dim3(8), Dim3(128), image,
                 output_region=(OUT_BASE, 8 * 128))


def build_ga(scale: int = 1, seed: int = 7) -> BuiltWorkload:
    """gaussian (Rodinia): elimination step with a highly repetitive matrix.

    Gaussian elimination repeatedly computes m = a[i][p] / a[p][p] and
    a[i][j] -= m * a[p][j]; with the integer matrix drawn from few values
    the multiplier arithmetic repeats across rows and blocks.
    """
    rng = rng_for(seed, "GA")
    n = 64
    rows = 16 * scale
    # Elimination rows of a structured system repeat at warp granularity.
    mat = warp_pattern_values(rows * n, rng, unique_rows=5, bits=12)
    pivot = duplicated_values(n, rng, unique=2)
    image = MemoryImage()
    image.global_mem.write_block(A_BASE, mat)
    image.const_mem.write_block(0, pivot)
    threads = rows * n
    source = PROLOGUE + f"""
    shl   r4, r1, 2
    add   r4, r4, {A_BASE}
    ld.global r5, [r4]                 // a[i][j]
    and   r6, r1, {n - 1}              // column j
    shl   r7, r6, 2
    ld.const r8, [r7]                  // pivot row element
    shr   r9, r1, 6                    // row i
    and   r10, r9, 1
    add   r10, r10, 1                  // multiplier class of this row
    mul   r11, r8, r10                 // m * pivot[j]
    sub   r12, r5, r11                 // eliminated element
    shl   r13, r1, 2
    add   r13, r13, {OUT_BASE}
    st.global -, [r13], r12
    exit
"""
    return build("GA", source, Dim3(threads // 128), Dim3(128), image,
                 output_region=(OUT_BASE, threads))


def build_lu(scale: int = 1, seed: int = 7) -> BuiltWorkload:
    """lud (Rodinia): diagonal-block LU elimination with scratchpad staging."""
    rng = rng_for(seed, "LU")
    n = 64
    rows = 12 * scale
    mat = duplicated_values(rows * n, rng, unique=16)
    image = MemoryImage()
    image.global_mem.write_block(A_BASE, mat)
    threads = rows * n
    source = PROLOGUE + f"""
    shl   r4, r1, 2
    add   r4, r4, {A_BASE}
    ld.global r5, [r4]                 // element
    shl   r6, r0, 2
    st.shared -, [r6], r5              // stage the working row
    bar.sync
    mov   r7, 0                        // partial sum
    mov   r8, 0                        // k
lu_loop:
    shl   r9, r8, 2
    ld.shared r10, [r9]                // l[k]
    ld.shared r11, [r9+64]             // u[k] (second tile half)
    mad   r7, r10, r11, r7
    add   r8, r8, 1
    setp.lt p0, r8, 8
@p0 bra   lu_loop
    sub   r12, r5, r7
    shl   r13, r1, 2
    add   r13, r13, {OUT_BASE}
    st.global -, [r13], r12
    exit
"""
    return build("LU", source, Dim3(threads // 128), Dim3(128), image,
                 output_region=(OUT_BASE, threads))


def build_km(scale: int = 1, seed: int = 7) -> BuiltWorkload:
    """kmeans (Rodinia): nearest-centre assignment over duplicated points.

    Points come from a small pool of distinct values (many observations of
    the same item), so distance computations repeat; the scattered feature
    loads also make kmeans cache-sensitive, which the paper calls out.
    """
    rng = rng_for(seed, "KM")
    points = 768 * scale
    k = 8
    # Duplicate observations arrive as repeated warp rows of features.
    feats = warp_pattern_values(points * 2, rng, unique_rows=20, bits=8)
    centres = (random_words(k * 2, rng, bits=8))
    image = MemoryImage()
    image.global_mem.write_block(A_BASE, feats)
    # Centres live in global memory (updated between kmeans iterations, so
    # the real kernel cannot place them in constant memory); every warp
    # loads the same centre addresses -> prime load-reuse traffic.
    centre_base = B_BASE + 256 * 1024
    image.global_mem.write_block(centre_base, centres)
    source = PROLOGUE + f"""
    shl   r4, r1, 3                    // 2 features per point
    add   r4, r4, {A_BASE}
    ld.global r5, [r4]                 // f0
    ld.global r6, [r4+4]               // f1
    mov   r7, 0x7fffffff               // best distance
    mov   r8, 0                        // best centre
    mov   r9, 0                        // c
km_loop:
    shl   r10, r9, 3
    add   r10, r10, {centre_base}
    ld.global r11, [r10]               // centre f0
    ld.global r12, [r10+4]             // centre f1
    sub   r13, r5, r11
    mul   r13, r13, r13
    sub   r14, r6, r12
    mad   r13, r14, r14, r13           // squared distance
    setp.lt p0, r13, r7
@p0 mov   r7, r13
@p0 mov   r8, r9
    add   r9, r9, 1
    setp.lt p1, r9, {k}
@p1 bra   km_loop
    shl   r15, r1, 2
    add   r15, r15, {OUT_BASE}
    st.global -, [r15], r8
    exit
"""
    return build("KM", source, Dim3(points // 128), Dim3(128), image,
                 output_region=(OUT_BASE, points))


def build_sc(scale: int = 1, seed: int = 7) -> BuiltWorkload:
    """streamcluster (Rodinia): weighted distance to medians, random points."""
    rng = rng_for(seed, "SC")
    points = 768 * scale
    k = 6
    feats = random_words(points * 2, rng, bits=12)
    medians = random_words(k * 2, rng, bits=12).reshape(k, 2)
    weights = random_words(points, rng, bits=4)
    image = MemoryImage()
    image.global_mem.write_block(A_BASE, feats)
    image.global_mem.write_block(B_BASE, weights)
    # The current medians are loop-invariant scalars held in registers by
    # the real kernel; fold them into immediates.
    body = "".join(
        """
    sub   r14, r5, {m0}
    mul   r14, r14, r14
    sub   r15, r6, {m1}
    mad   r14, r15, r15, r14
    mul   r14, r14, r8
    min   r9, r9, r14""".format(m0=int(m[0]), m1=int(m[1]))
        for m in medians
    )
    source = PROLOGUE + f"""
    shl   r4, r1, 3
    add   r4, r4, {A_BASE}
    ld.global r5, [r4]
    ld.global r6, [r4+4]
    shl   r7, r1, 2
    add   r7, r7, {B_BASE}
    ld.global r8, [r7]                 // weight
    mov   r9, 0x7fffffff
{body}
    shl   r16, r1, 2
    add   r16, r16, {OUT_BASE}
    st.global -, [r16], r9
    exit
"""
    return build("SC", source, Dim3(points // 128), Dim3(128), image,
                 output_region=(OUT_BASE, points))
