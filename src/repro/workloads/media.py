"""Media / signal benchmarks: SD, DX, WT.

sad computes block-matching sums of absolute differences between two video
frames that share most macroblocks (static background = repetition); dxtc
scores random colours against a palette (low reuse); fastWalshTransform
runs add/sub butterflies over scratchpad.
"""

from __future__ import annotations

import numpy as np

from repro.sim.grid import Dim3
from repro.sim.memory.space import MemoryImage
from repro.workloads.common import (
    PROLOGUE,
    BuiltWorkload,
    build,
    flat_patch_image,
    random_words,
    rng_for,
)

BASE = 4096
FRAME2 = BASE + 128 * 1024
OUT_BASE = 1 << 20


def build_sd(scale: int = 1, seed: int = 7) -> BuiltWorkload:
    """sad (Parboil): 8-tap SAD between two mostly-identical frames."""
    rng = rng_for(seed, "SD")
    pixels = 1024 * scale
    frame1 = flat_patch_image(64, pixels // 64 + 1, rng, patch=8, levels=6).ravel()
    frame2 = frame1.copy()
    # A moving object disturbs 20% of the pixels; the rest repeat exactly.
    moved = rng.integers(0, frame2.size, size=frame2.size // 5)
    frame2[moved] = random_words(moved.size, rng, bits=8)
    image = MemoryImage()
    image.global_mem.write_block(BASE, frame1[: pixels + 64])
    image.global_mem.write_block(FRAME2, frame2[: pixels + 64])
    source = PROLOGUE + f"""
    shl   r4, r1, 2
    add   r5, r4, {BASE}
    add   r6, r4, {FRAME2}
    mov   r7, 0                        // sad accumulator
    mov   r8, 0                        // tap
sd_loop:
    shl   r9, r8, 2
    add   r10, r5, r9
    ld.global r11, [r10]
    add   r12, r6, r9
    ld.global r13, [r12]
    sub   r14, r11, r13
    abs   r14, r14
    add   r7, r7, r14
    add   r8, r8, 1
    setp.lt p0, r8, 8
@p0 bra   sd_loop
    shl   r15, r1, 2
    add   r15, r15, {OUT_BASE}
    st.global -, [r15], r7
    exit
"""
    return build("SD", source, Dim3(pixels // 128), Dim3(128), image,
                 output_region=(OUT_BASE, pixels))


def build_dx(scale: int = 1, seed: int = 7) -> BuiltWorkload:
    """dxtc (CUDA SDK): nearest-palette colour scoring of random texels."""
    rng = rng_for(seed, "DX")
    texels = 768 * scale
    colours = random_words(texels * 3, rng, bits=8)
    palette = random_words(4 * 3, rng, bits=8).reshape(4, 3)
    image = MemoryImage()
    image.global_mem.write_block(BASE, colours)
    # The 4-colour palette is compile-time constant in dxtc's inner loop;
    # fold it into immediates as nvcc does.
    entries = "".join(
        """
    sub   r14, r5, {r}
    mul   r14, r14, r14
    sub   r15, r6, {g}
    mad   r14, r15, r15, r14
    sub   r16, r7, {b}
    mad   r14, r16, r16, r14
    min   r8, r8, r14""".format(r=int(c[0]), g=int(c[1]), b=int(c[2]))
        for c in palette
    )
    source = PROLOGUE + f"""
    mul   r4, r1, 12                   // rgb per texel
    add   r4, r4, {BASE}
    ld.global r5, [r4]
    ld.global r6, [r4+4]
    ld.global r7, [r4+8]
    mov   r8, 0x7fffffff               // best error (unrolled palette scan)
{entries}
    shl   r17, r1, 2
    add   r17, r17, {OUT_BASE}
    st.global -, [r17], r8
    exit
"""
    return build("DX", source, Dim3(texels // 128), Dim3(128), image,
                 output_region=(OUT_BASE, texels))


def build_wt(scale: int = 1, seed: int = 7) -> BuiltWorkload:
    """fastWlshTf (CUDA SDK): Walsh-Hadamard butterflies in scratchpad."""
    rng = rng_for(seed, "WT")
    blocks = 8 * scale
    data = random_words(blocks * 128, rng, bits=12)
    image = MemoryImage()
    image.global_mem.write_block(BASE, data)
    source = PROLOGUE + f"""
    shl   r4, r1, 2
    add   r4, r4, {BASE}
    ld.global r5, [r4]
    shl   r6, r0, 2
    st.shared -, [r6], r5
    bar.sync
    mov   r7, 1                        // stride
wt_loop:
    xor   r8, r0, r7                   // butterfly partner
    shl   r9, r8, 2
    ld.shared r10, [r9]                // partner value
    ld.shared r11, [r6]                // own value
    and   r12, r0, r7
    setp.eq p0, r12, 0
    add   r13, r11, r10                // sum path
    sub   r14, r11, r10                // difference path
    selp  r15, r13, r14, p0
    bar.sync
    st.shared -, [r6], r15
    bar.sync
    shl   r7, r7, 1
    setp.lt p1, r7, 32
@p1 bra   wt_loop
    shl   r16, r1, 2
    add   r16, r16, {OUT_BASE}
    st.global -, [r16], r15
    exit
"""
    return build("WT", source, Dim3(blocks), Dim3(128), image,
                 output_region=(OUT_BASE, blocks * 128))
