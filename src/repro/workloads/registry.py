"""Benchmark registry: the paper's Table I, in Figure 2 order.

Table I lists 34 applications from Parboil, Rodinia, and the CUDA SDK with
their floating-point instruction fractions; the paper arranges benchmarks
by their repeated-computation percentage (Figure 2), SobelFilter highest
and heartwall lowest.  ``WORKLOADS`` preserves that order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.workloads import finance, graph, imaging, linalg, media, scanreduce, stencil
from repro.workloads.common import BuiltWorkload, build_vectoradd


@dataclass(frozen=True)
class WorkloadInfo:
    """Static metadata of one benchmark (one Table I row)."""

    abbr: str
    name: str
    suite: str            # "Parboil", "Rodinia", or "CUDA SDK"
    fp_fraction: Optional[float]  # Table I %FP (None where the paper shows '-')
    builder: Callable[..., BuiltWorkload]

    def build(self, scale: int = 1, seed: int = 7) -> BuiltWorkload:
        return self.builder(scale=scale, seed=seed)


_ROWS = [
    # Figure 2 order (most repeated computations first).
    ("SF", "SobelFilter", "CUDA SDK", 0.067, imaging.build_sf),
    ("BT", "b+tree", "Rodinia", None, graph.build_bt),
    ("GA", "gaussian", "Rodinia", 0.022, linalg.build_ga),
    ("BP", "backprop", "Rodinia", 0.150, scanreduce.build_bp),
    ("PF", "pathfinder", "Rodinia", None, stencil.build_pf),
    ("BO", "binoOpts", "CUDA SDK", 0.306, finance.build_bo),
    ("ST", "stencil", "Parboil", 0.093, stencil.build_st),
    ("S2", "srad-v2", "Rodinia", 0.252, imaging.build_s2),
    ("LU", "lud", "Rodinia", 0.190, linalg.build_lu),
    ("KM", "kmeans", "Rodinia", 0.184, linalg.build_km),
    ("DW", "dwt2d", "Rodinia", None, imaging.build_dw),
    ("NW", "nw", "Rodinia", None, graph.build_nw),
    ("SV", "spmv", "Parboil", 0.063, scanreduce.build_sv),
    ("CU", "cutcp", "Parboil", 0.735, scanreduce.build_cu),
    ("MQ", "mri-q", "Parboil", 0.639, scanreduce.build_mq),
    ("SG", "sgemm", "Parboil", 0.688, linalg.build_sg),
    ("FD", "FDTD3d", "CUDA SDK", 0.330, stencil.build_fd),
    ("MC", "MonteCarlo", "CUDA SDK", 0.493, finance.build_mc),
    ("SD", "sad", "Parboil", None, media.build_sd),
    ("S1", "srad-v1", "Rodinia", 0.156, imaging.build_s1),
    ("SQ", "SobolQR", "CUDA SDK", 0.045, finance.build_sq),
    ("LB", "lbm", "Parboil", 0.542, stencil.build_lb),
    ("HS", "hotspot", "Rodinia", 0.176, imaging.build_hs),
    ("HT", "hybridsort", "Rodinia", 0.172, scanreduce.build_ht),
    ("SN", "scan", "CUDA SDK", None, scanreduce.build_sn),
    ("DC", "dct8x8", "CUDA SDK", 0.340, imaging.build_dc),
    ("WT", "fastWlshTf", "CUDA SDK", 0.161, media.build_wt),
    ("BF", "bfs", "Rodinia", None, graph.build_bf),
    ("CF", "cfd", "Rodinia", 0.629, scanreduce.build_cf),
    ("DX", "dxtc", "CUDA SDK", 0.430, media.build_dx),
    ("SC", "strmclster", "Rodinia", 0.219, linalg.build_sc),
    ("LK", "leukocyte", "Rodinia", 0.334, imaging.build_lk),
    ("BS", "BlackSchls", "CUDA SDK", 0.744, finance.build_bs),
    ("HW", "heartwall", "Rodinia", 0.092, imaging.build_hw),
]

WORKLOADS: Dict[str, WorkloadInfo] = {
    abbr: WorkloadInfo(abbr, name, suite, fp, builder)
    for abbr, name, suite, fp, builder in _ROWS
}


#: Demo kernels outside Table I (usable by name anywhere a benchmark
#: abbreviation is accepted, but never part of :func:`all_abbrs` — the
#: paper's figures sweep exactly the 34 Table I benchmarks).
DEMO_WORKLOADS: Dict[str, WorkloadInfo] = {
    "vectoradd": WorkloadInfo("vectoradd", "vectoradd (demo)", "demo", None,
                              build_vectoradd),
}


def all_abbrs() -> List[str]:
    """All benchmark abbreviations in Figure 2 order."""
    return list(WORKLOADS)


def get_workload(abbr: str) -> WorkloadInfo:
    info = WORKLOADS.get(abbr) or DEMO_WORKLOADS.get(abbr)
    if info is None:
        raise ValueError(
            f"unknown benchmark {abbr!r}; available: "
            f"{', '.join([*WORKLOADS, *DEMO_WORKLOADS])}"
        ) from None
    return info


def build_workload(abbr: str, scale: int = 1, seed: int = 7) -> BuiltWorkload:
    """Build one benchmark instance by abbreviation."""
    return get_workload(abbr).build(scale=scale, seed=seed)
